// Fault-injection / reliability-protocol overhead.
//
// Not a paper figure: this quantifies the cost of the chaos-testing
// substrate so the "zero overhead when disabled" claim stays honest. The
// same DNND build (DEEP1B stand-in, k = 10, 8 ranks) runs under four
// transport configurations:
//
//   clean          — no injector installed; the fast path the experiment
//                    benches use. This row is the baseline.
//   ckpt-off       — checkpoint hook armed with every=0 (the
//                    `--checkpoint-every 0` CLI path): must match clean —
//                    disabled checkpointing is one integer compare per
//                    iteration, nothing else.
//   ckpt-every-2   — epoch checkpoint written every 2 iterations: the
//                    real price of crash-stop insurance.
//   protocol-only  — injector installed with zero fault probabilities:
//                    isolates the retry/dedup protocol cost (sequence
//                    numbers, acks, pending-buffer copies).
//   light-faults   — 5% drop/dup, 10% delay/reorder: a misbehaving fabric.
//   heavy-faults   — 25% drop, 15% dup, 25% delay/reorder + rank stalls.
//
// Every row reports wall time, transport datagrams, protocol traffic
// (acks, retransmits, suppressed duplicates), checkpoints written, and
// final recall@10 — which must be identical in every row (the protocol
// restores exactly-once delivery, checkpointing only reads quiescent
// cuts, and the engine's arrival-order canonicalization makes the result
// schedule-independent).
#include <cinttypes>
#include <filesystem>

#include "common.hpp"
#include "core/checkpoint_store.hpp"
#include "core/dnnd_checkpoint.hpp"
#include "mpi/fault_injector.hpp"

using namespace dnnd;  // NOLINT

namespace {

struct Row {
  const char* name;
  double wall_s = 0;
  double recall = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t acks = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dups_suppressed = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t checkpoints = 0;
};

// `checkpoint_mode`: -1 = no hook installed (clean), 0 = hook armed but
// disabled (every=0), N>0 = checkpoint every N iterations.
Row run(const char* name, const core::FeatureStore<float>& base,
        const core::KnnGraph& exact, const mpi::FaultPlan& plan,
        int checkpoint_mode = -1) {
  comm::Environment env([&] {
    comm::Config cfg{.num_ranks = 8};
    cfg.fault_plan = plan;
    return cfg;
  }());
  core::DnndConfig cfg;
  cfg.k = 10;
  cfg.delta = 0.0;
  cfg.max_iterations = 10;
  cfg.redundant_check_reduction = false;  // schedule-independent setup
  core::DnndRunner<float, bench::L2Fn> runner(env, cfg, bench::L2Fn{});
  runner.distribute(base);

  const auto ckpt_dir =
      std::filesystem::temp_directory_path() / "dnnd_bench_fault_ckpt";
  std::filesystem::remove_all(ckpt_dir);
  core::CheckpointStore store(ckpt_dir.string());
  std::uint64_t checkpoints = 0;
  if (checkpoint_mode >= 0) {
    runner.set_checkpoint_hook(
        static_cast<std::size_t>(checkpoint_mode), [&](std::size_t, bool) {
          core::write_checkpoint_generation(store, runner, 64ull << 20);
          ++checkpoints;
        });
  }

  util::Timer timer;
  runner.build();
  Row row;
  row.name = name;
  row.wall_s = timer.elapsed_s();
  row.recall = core::graph_recall(runner.gather(), exact, 10);
  row.datagrams = env.world().datagrams_posted();
  const auto transport = env.aggregate_transport_counters();
  row.acks = transport.acks_sent;
  row.retransmits = transport.retransmits;
  row.dups_suppressed = transport.duplicates_suppressed;
  row.injected_drops = env.fault_stats().dropped;
  row.checkpoints = checkpoints;
  std::filesystem::remove_all(ckpt_dir);
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Fault-injection overhead: DNND build on clean vs faulty transport "
      "(recall must not move)");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(2000.0 * scale);
  const auto base =
      data::GaussianMixture(bench::billion_standin_spec(32, 211)).sample(n, 1);
  const auto exact = baselines::brute_force_knn_graph(base, bench::L2Fn{}, 10);

  mpi::FaultPlan clean;  // never installed (empty plan)

  mpi::FaultPlan protocol_only;
  protocol_only.force_protocol = true;

  mpi::FaultPlan light;
  light.seed = 1009;
  light.defaults = mpi::EdgePolicy{.drop = 0.05,
                                   .duplicate = 0.05,
                                   .delay = 0.10,
                                   .reorder = 0.10,
                                   .max_delay_ticks = 8};

  mpi::FaultPlan heavy;
  heavy.seed = 2003;
  heavy.defaults = mpi::EdgePolicy{.drop = 0.25,
                                   .duplicate = 0.15,
                                   .delay = 0.25,
                                   .reorder = 0.25,
                                   .max_delay_ticks = 16};
  heavy.stall = 0.02;
  heavy.max_stall_ticks = 12;

  const Row rows[] = {
      run("clean", base, exact, clean),
      run("ckpt-off", base, exact, clean, 0),
      run("ckpt-every-2", base, exact, clean, 2),
      run("protocol-only", base, exact, protocol_only),
      run("light-faults", base, exact, light),
      run("heavy-faults", base, exact, heavy),
  };

  std::printf("%-14s %9s %8s %10s %10s %11s %10s %6s %8s\n", "transport",
              "wall[s]", "x-clean", "datagrams", "acks", "retransmits",
              "dup-supp", "ckpts", "recall");
  const double base_wall = rows[0].wall_s;
  for (const Row& r : rows) {
    std::printf("%-14s %9.3f %8.2f %10" PRIu64 " %10" PRIu64 " %11" PRIu64
                " %10" PRIu64 " %6" PRIu64 " %8.4f\n",
                r.name, r.wall_s, r.wall_s / base_wall, r.datagrams, r.acks,
                r.retransmits, r.dups_suppressed, r.checkpoints, r.recall);
  }
  std::printf(
      "\nAll rows must report the same recall: the retry/dedup protocol "
      "restores\nexactly-once delivery, checkpointing only reads the "
      "quiescent iteration\ncut, and the engine canonicalizes arrival "
      "order, so the constructed graph\nis independent of both the fault "
      "schedule and the checkpoint cadence.\nckpt-off must match clean: "
      "a disarmed hook costs one compare per iteration.\n");
  return 0;
}

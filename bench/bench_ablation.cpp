// Ablation — attributing the §4.3 savings to individual techniques.
//
// The paper evaluates the three communication-saving techniques only as a
// bundle (Figure 4); DESIGN.md calls out that they are independent design
// choices, so this bench toggles them one at a time:
//
//   baseline      optimized_checks = false   (Figure 1a pattern)
//   one-sided     §4.3.1 only                (no redundant check, no prune)
//   + redundant   §4.3.1 + §4.3.2
//   + prune       §4.3.1 + §4.3.3
//   full          all three (the Figure 4 "optimized" configuration)
//
// It also verifies the ablations do not cost quality (recall per config).
#include <cinttypes>

#include "common.hpp"

using namespace dnnd;  // NOLINT

namespace {

struct Config {
  const char* label;
  bool optimized;
  bool redundant;
  bool prune;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation: per-technique attribution of the Section 4.3 savings");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(4000.0 * scale);
  const data::GaussianMixture family(bench::billion_standin_spec(96, 107));
  const auto base = family.sample(n, 1);
  const auto exact = baselines::brute_force_knn_graph(base, bench::L2Fn{}, 10);

  const Config configs[] = {
      {"baseline (Fig 1a)", false, false, false},
      {"one-sided only", true, false, false},
      {"one-sided + redundant", true, true, false},
      {"one-sided + prune", true, false, true},
      {"full (Fig 1b)", true, true, true},
  };

  std::printf("%-24s %12s %14s %10s %8s\n", "configuration", "messages",
              "bytes", "recall", "iters");
  bench::print_rule();

  std::uint64_t baseline_msgs = 0, baseline_bytes = 0;
  for (const auto& config : configs) {
    comm::Environment env(comm::Config{.num_ranks = 8});
    core::DnndConfig cfg;
    cfg.k = 10;
    cfg.optimized_checks = config.optimized;
    cfg.redundant_check_reduction = config.redundant;
    cfg.distance_pruning = config.prune;
    core::DnndRunner<float, bench::L2Fn> runner(env, cfg, bench::L2Fn{});
    runner.distribute(base);
    const auto stats = runner.build();
    const auto comm_stats = env.aggregate_stats();
    std::uint64_t messages = 0, bytes = 0;
    for (const char* label :
         {"type1", "type2plus", "type3", "type1_unopt", "type2_unopt"}) {
      const auto c = comm_stats.by_label(label);
      messages += c.remote_messages;
      bytes += c.remote_bytes;
    }
    if (baseline_msgs == 0) {
      baseline_msgs = messages;
      baseline_bytes = bytes;
    }
    const double recall = core::graph_recall(runner.gather(), exact, 10);
    std::printf("%-24s %12" PRIu64 " %14" PRIu64 " %10.4f %8zu   "
                "(%.0f%% msgs, %.0f%% bytes of baseline)\n",
                config.label, messages, bytes, recall, stats.iterations,
                100.0 * static_cast<double>(messages) /
                    static_cast<double>(baseline_msgs),
                100.0 * static_cast<double>(bytes) /
                    static_cast<double>(baseline_bytes));
  }

  std::printf(
      "\nExpected shape: one-sided alone already halves Type-1 traffic; the "
      "redundant\ncheck removes Type-2+ sends; pruning removes Type-3 "
      "replies; recall is flat\nacross all rows (the techniques are "
      "lossless).\n");
  return 0;
}

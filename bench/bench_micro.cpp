// Microbenchmarks (google-benchmark) for the hot kernels under the
// experiment harness: distance metrics, neighbor-list updates, message
// serialization, the comm layer round trip, and pmem allocation.
//
// These are not paper experiments; they exist so regressions in the
// substrate are visible independently of the end-to-end benches.
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/neighbor_list.hpp"
#include "pmem/allocator.hpp"
#include "pmem/arena.hpp"
#include "serial/archive.hpp"
#include "util/rng.hpp"

namespace {

using namespace dnnd;  // NOLINT

std::vector<float> random_vector(std::size_t dim, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = rng.uniform_float(-1, 1);
  return v;
}

void BM_SquaredL2(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = random_vector(dim, 1), b = random_vector(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::squared_l2(std::span<const float>(a), std::span<const float>(b)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_SquaredL2)->Arg(25)->Arg(96)->Arg(128)->Arg(784);

void BM_Cosine(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = random_vector(dim, 1), b = random_vector(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::cosine(std::span<const float>(a), std::span<const float>(b)));
  }
}
BENCHMARK(BM_Cosine)->Arg(25)->Arg(96)->Arg(256);

void BM_JaccardSorted(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(3);
  std::vector<std::uint32_t> a, b;
  for (std::uint32_t i = 0; a.size() < size; ++i) {
    if (rng.bernoulli(0.5)) a.push_back(i);
  }
  for (std::uint32_t i = 0; b.size() < size; ++i) {
    if (rng.bernoulli(0.5)) b.push_back(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::jaccard_sorted(
        std::span<const std::uint32_t>(a), std::span<const std::uint32_t>(b)));
  }
}
BENCHMARK(BM_JaccardSorted)->Arg(16)->Arg(64)->Arg(256);

void BM_NeighborListUpdate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(4);
  core::NeighborList list(k);
  std::uint64_t inserted = 0;
  for (auto _ : state) {
    inserted += static_cast<std::uint64_t>(
        list.update(static_cast<core::VertexId>(rng.uniform_below(100000)),
                    static_cast<core::Dist>(rng.uniform_double()), true));
  }
  benchmark::DoNotOptimize(inserted);
}
BENCHMARK(BM_NeighborListUpdate)->Arg(10)->Arg(30)->Arg(100);

void BM_SerializeFeatureMessage(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto feature = random_vector(dim, 5);
  for (auto _ : state) {
    serial::OutArchive out;
    out.write(core::VertexId{1});
    out.write(core::VertexId{2});
    out.write(core::Dist{3.5f});
    out.write_vector(feature);
    benchmark::DoNotOptimize(out.bytes().data());
  }
}
BENCHMARK(BM_SerializeFeatureMessage)->Arg(96)->Arg(128);

void BM_CommRoundTrip(benchmark::State& state) {
  // One barrier-delimited all-to-all of small messages across 4 ranks.
  const int ranks = 4;
  comm::Environment env(comm::Config{.num_ranks = ranks});
  std::vector<comm::HandlerId> h(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "noop", [](int, serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  for (auto _ : state) {
    env.execute_phase([&](int rank) {
      for (int dest = 0; dest < ranks; ++dest) {
        for (int i = 0; i < 16; ++i) {
          env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)],
                               std::uint32_t{7});
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ranks * ranks * 16);
}
BENCHMARK(BM_CommRoundTrip);

void BM_CommRoundTripTraced(benchmark::State& state) {
  // Same all-to-all with causal tracing at the given root sample period
  // (0 = untraced fast path). Comparing period 0 here against
  // BM_CommRoundTrip — and both against a DNND_TELEMETRY=OFF build —
  // bounds the envelope/dispatch overhead of the tracing machinery.
  const int ranks = 4;
  comm::Config cfg;
  cfg.num_ranks = ranks;
  cfg.trace_sample_period = static_cast<std::uint64_t>(state.range(0));
  comm::Environment env(cfg);
  std::vector<comm::HandlerId> h(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "noop", [](int, serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  for (auto _ : state) {
    env.execute_phase([&](int rank) {
      for (int dest = 0; dest < ranks; ++dest) {
        for (int i = 0; i < 16; ++i) {
          env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)],
                               std::uint32_t{7});
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ranks * ranks * 16);
}
BENCHMARK(BM_CommRoundTripTraced)->Arg(0)->Arg(64)->Arg(1);

void BM_ArenaAllocateFree(benchmark::State& state) {
  std::vector<unsigned char> buffer(16 << 20);
  auto* header = reinterpret_cast<pmem::ArenaHeader*>(buffer.data());
  pmem::arena_format(header, buffer.size());
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = pmem::arena_allocate(header, bytes);
    benchmark::DoNotOptimize(p);
    pmem::arena_deallocate(header, p, bytes);
  }
}
BENCHMARK(BM_ArenaAllocateFree)->Arg(32)->Arg(512)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks (google-benchmark) for the hot kernels under the
// experiment harness: distance metrics, neighbor-list updates, message
// serialization, the comm layer round trip, and pmem allocation.
//
// These are not paper experiments; they exist so regressions in the
// substrate are visible independently of the end-to-end benches.
//
// After the google-benchmark suite, main() runs the distance-kernel sweep
// (metric × element type × dim × batch × dispatch) and writes the rows —
// evals/s, effective GB/s, and SIMD speedup over the pinned scalar
// reference — to BENCH_micro.json (schema dnnd.bench.v1, see
// bench/common.hpp). The committed snapshot of that file is the measured
// evidence for the kernel-layer speedup claims in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "comm/environment.hpp"
#include "common.hpp"
#include "core/distance.hpp"
#include "core/distance_kernels.hpp"
#include "core/feature_store.hpp"
#include "core/neighbor_list.hpp"
#include "pmem/allocator.hpp"
#include "pmem/arena.hpp"
#include "serial/archive.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dnnd;  // NOLINT

std::vector<float> random_vector(std::size_t dim, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) x = rng.uniform_float(-1, 1);
  return v;
}

void BM_SquaredL2(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = random_vector(dim, 1), b = random_vector(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::squared_l2(std::span<const float>(a), std::span<const float>(b)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_SquaredL2)->Arg(25)->Arg(96)->Arg(128)->Arg(784);

void BM_Cosine(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto a = random_vector(dim, 1), b = random_vector(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::cosine(std::span<const float>(a), std::span<const float>(b)));
  }
}
BENCHMARK(BM_Cosine)->Arg(25)->Arg(96)->Arg(256);

void BM_JaccardSorted(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(3);
  std::vector<std::uint32_t> a, b;
  for (std::uint32_t i = 0; a.size() < size; ++i) {
    if (rng.bernoulli(0.5)) a.push_back(i);
  }
  for (std::uint32_t i = 0; b.size() < size; ++i) {
    if (rng.bernoulli(0.5)) b.push_back(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::jaccard_sorted(
        std::span<const std::uint32_t>(a), std::span<const std::uint32_t>(b)));
  }
}
BENCHMARK(BM_JaccardSorted)->Arg(16)->Arg(64)->Arg(256);

void BM_NeighborListUpdate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(4);
  core::NeighborList list(k);
  std::uint64_t inserted = 0;
  for (auto _ : state) {
    inserted += static_cast<std::uint64_t>(
        list.update(static_cast<core::VertexId>(rng.uniform_below(100000)),
                    static_cast<core::Dist>(rng.uniform_double()), true));
  }
  benchmark::DoNotOptimize(inserted);
}
BENCHMARK(BM_NeighborListUpdate)->Arg(10)->Arg(30)->Arg(100);

void BM_SerializeFeatureMessage(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto feature = random_vector(dim, 5);
  for (auto _ : state) {
    serial::OutArchive out;
    out.write(core::VertexId{1});
    out.write(core::VertexId{2});
    out.write(core::Dist{3.5f});
    out.write_vector(feature);
    benchmark::DoNotOptimize(out.bytes().data());
  }
}
BENCHMARK(BM_SerializeFeatureMessage)->Arg(96)->Arg(128);

void BM_CommRoundTrip(benchmark::State& state) {
  // One barrier-delimited all-to-all of small messages across 4 ranks.
  const int ranks = 4;
  comm::Environment env(comm::Config{.num_ranks = ranks});
  std::vector<comm::HandlerId> h(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "noop", [](int, serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  for (auto _ : state) {
    env.execute_phase([&](int rank) {
      for (int dest = 0; dest < ranks; ++dest) {
        for (int i = 0; i < 16; ++i) {
          env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)],
                               std::uint32_t{7});
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ranks * ranks * 16);
}
BENCHMARK(BM_CommRoundTrip);

void BM_CommRoundTripTraced(benchmark::State& state) {
  // Same all-to-all with causal tracing at the given root sample period
  // (0 = untraced fast path). Comparing period 0 here against
  // BM_CommRoundTrip — and both against a DNND_TELEMETRY=OFF build —
  // bounds the envelope/dispatch overhead of the tracing machinery.
  const int ranks = 4;
  comm::Config cfg;
  cfg.num_ranks = ranks;
  cfg.trace_sample_period = static_cast<std::uint64_t>(state.range(0));
  comm::Environment env(cfg);
  std::vector<comm::HandlerId> h(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "noop", [](int, serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  for (auto _ : state) {
    env.execute_phase([&](int rank) {
      for (int dest = 0; dest < ranks; ++dest) {
        for (int i = 0; i < 16; ++i) {
          env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)],
                               std::uint32_t{7});
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ranks * ranks * 16);
}
BENCHMARK(BM_CommRoundTripTraced)->Arg(0)->Arg(64)->Arg(1);

void BM_ArenaAllocateFree(benchmark::State& state) {
  std::vector<unsigned char> buffer(16 << 20);
  auto* header = reinterpret_cast<pmem::ArenaHeader*>(buffer.data());
  pmem::arena_format(header, buffer.size());
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = pmem::arena_allocate(header, bytes);
    benchmark::DoNotOptimize(p);
    pmem::arena_deallocate(header, p, bytes);
  }
}
BENCHMARK(BM_ArenaAllocateFree)->Arg(32)->Arg(512)->Arg(8192);

// ---- distance-kernel sweep (BENCH_micro.json) --------------------------

template <typename T>
struct KernelCase {
  const char* metric;
  void (*batch)(const T*, const T* const*, std::size_t, std::size_t,
                core::Dist*);
};

template <typename T>
const KernelCase<T> kKernelCases[] = {
    {"squared_l2", &core::k_batch_squared_l2<T>},
    {"cosine", &core::k_batch_cosine<T>},
    {"inner_product", &core::k_batch_inner_product<T>},
};

/// Evals/s for one (metric, dim, batch, dispatch) cell: repeated batched
/// sweeps over a 1024-row padded block store, timed after a warmup pass.
template <typename T>
double measure_evals_per_sec(const KernelCase<T>& kc,
                             const core::DenseBlockStore<T>& store,
                             const std::vector<T>& query, std::size_t batch) {
  const std::size_t n = store.size();
  std::vector<const T*> ptrs(n);
  for (std::size_t i = 0; i < n; ++i) ptrs[i] = store.row_ptr(i);
  std::vector<core::Dist> out(batch);
  const std::size_t dim = store.dim();

  auto sweep = [&]() {
    for (std::size_t base = 0; base + batch <= n; base += batch) {
      kc.batch(query.data(), ptrs.data() + base, batch, dim, out.data());
      benchmark::DoNotOptimize(out.data());
    }
    return n / batch * batch;  // evals per sweep
  };
  (void)sweep();  // warmup: faults pages, resolves dispatch

  std::uint64_t evals = 0;
  util::Timer timer;
  double elapsed = 0;
  do {
    evals += sweep();
    elapsed = timer.elapsed_s();
  } while (elapsed < 0.2);
  return static_cast<double>(evals) / elapsed;
}

template <typename T>
void kernel_sweep_rows(bench::BenchReport& report) {
  const char* type_name = std::is_same_v<T, float> ? "f32" : "u8";
  util::Xoshiro256 rng(0xBE7C);
  for (const std::size_t dim : {64UL, 128UL, 768UL}) {
    core::DenseBlockStore<T> store;
    store.reserve(1024);
    std::vector<T> feature(dim);
    for (std::size_t i = 0; i < 1024; ++i) {
      for (auto& x : feature) {
        if constexpr (std::is_same_v<T, float>) {
          x = rng.uniform_float(-1, 1);
        } else {
          x = static_cast<T>(rng.uniform_below(256));
        }
      }
      store.add(static_cast<core::VertexId>(i), feature);
    }
    std::vector<T> query(store.row(0).begin(), store.row(0).end());

    for (const std::size_t batch : {1UL, 8UL, 64UL}) {
      for (const auto& kc : kKernelCases<T>) {
        // Candidate row + query stream per evaluation.
        const double bytes_per_eval = 2.0 * static_cast<double>(dim) *
                                      static_cast<double>(sizeof(T));
        double scalar_rate = 0;
        for (const bool simd : {false, true}) {
          if (simd && !(core::simd_kernels_compiled() &&
                        core::simd_runtime_supported())) {
            continue;
          }
          core::ScopedKernelDispatch d(
              simd ? core::KernelDispatch::kForceSimd
                   : core::KernelDispatch::kForceScalar);
          const double rate = measure_evals_per_sec(kc, store, query, batch);
          if (!simd) scalar_rate = rate;
          const char* dispatch = simd ? "simd" : "scalar";
          auto& row = report.add_row(std::string("kernel/") + kc.metric + "/" +
                                     type_name + "/dim" +
                                     std::to_string(dim) + "/batch" +
                                     std::to_string(batch) + "/" + dispatch);
          row.params["metric"] = kc.metric;
          row.params["type"] = type_name;
          row.params["dim"] = std::to_string(dim);
          row.params["batch"] = std::to_string(batch);
          row.params["dispatch"] = dispatch;
          row.metrics["evals_per_sec"] = rate;
          row.metrics["gbps"] = rate * bytes_per_eval / 1e9;
          if (simd && scalar_rate > 0) {
            row.metrics["speedup_vs_scalar"] = rate / scalar_rate;
          }
          std::printf(
              "kernel %-13s %-3s dim %4zu batch %3zu %-6s  %10.3e evals/s  "
              "%7.2f GB/s%s\n",
              kc.metric, type_name, dim, batch, dispatch, rate,
              rate * bytes_per_eval / 1e9,
              simd && scalar_rate > 0
                  ? ("  (" + std::to_string(rate / scalar_rate) + "x)").c_str()
                  : "");
        }
      }
    }
  }
}

void run_kernel_sweep() {
  bench::print_header(
      "distance-kernel sweep: blocked scalar reference vs AVX2 dispatch "
      "(bit-identical values; see core/distance_kernels.hpp)");
  std::printf("simd compiled: %s   simd runtime: %s\n",
              core::simd_kernels_compiled() ? "yes" : "no",
              core::simd_runtime_supported() ? "yes" : "no");
  bench::BenchReport report("bench_micro");
  kernel_sweep_rows<float>(report);
  kernel_sweep_rows<std::uint8_t>(report);
  report.write("BENCH_micro.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_kernel_sweep();
  return 0;
}

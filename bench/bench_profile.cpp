// §7 — performance profiling breakdown.
//
// The paper's first stated future-work item: "further performance
// profiling is required to identify bottlenecks, such as finding how much
// the computation or communication is heavier than the other". This bench
// provides that view for the reproduction: per-phase simulated work and
// barrier counts, per-handler communication volume, and the compute/
// communication split implied by the work model, across rank counts.
#include <cinttypes>

#include "common.hpp"

using namespace dnnd;  // NOLINT

int main() {
  bench::print_header(
      "Section 7 profiling: where DNND spends its work (per phase, per "
      "message type, compute vs communication)");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(6000.0 * scale);
  const auto base =
      data::GaussianMixture(bench::billion_standin_spec(96, 107)).sample(n, 1);

  for (const int ranks : {4, 16}) {
    comm::Environment env(comm::Config{.num_ranks = ranks});
    core::DnndConfig cfg;
    cfg.k = 10;
    core::DnndRunner<float, bench::L2Fn> runner(env, cfg, bench::L2Fn{});
    runner.distribute(base);
    runner.build();
    runner.optimize();

    std::printf("\n-- %d ranks, %zu points --\n", ranks, n);
    std::printf("%-12s %16s %10s %9s\n", "phase", "sim-units", "share",
                "barriers");
    double total = 0;
    for (const auto& [name, cost] : runner.phase_profile()) {
      total += cost.simulated_parallel_units;
    }
    for (const auto& [name, cost] : runner.phase_profile()) {
      std::printf("%-12s %16.3e %9.1f%% %9zu\n", name.c_str(),
                  cost.simulated_parallel_units,
                  100.0 * cost.simulated_parallel_units / total,
                  cost.barriers);
    }

    // Compute vs communication under the work model.
    std::uint64_t evals = 0;
    for (int r = 0; r < ranks; ++r) {
      evals += runner.engine(r).distance_evals();
    }
    const auto stats = env.aggregate_stats();
    const double compute =
        static_cast<double>(evals) * static_cast<double>(base.dim());
    const double communication =
        static_cast<double>(stats.total_remote_bytes()) * 0.25;
    std::printf("compute %.3e units (%.0f%%) vs communication %.3e units "
                "(%.0f%%)\n",
                compute, 100.0 * compute / (compute + communication),
                communication,
                100.0 * communication / (compute + communication));

    std::printf("top message types by volume:\n");
    for (const auto& h : stats.handlers()) {
      if (h.remote_bytes == 0) continue;
      std::printf("  %-12s %12" PRIu64 " msgs %14" PRIu64 " bytes\n",
                  h.label.c_str(), h.remote_messages, h.remote_bytes);
    }

    // Registry view of the same run (merged across ranks) plus the
    // recorded barrier-wait distribution; the full artifacts land next to
    // the bench so they can be diffed between commits or opened in
    // chrome://tracing.
    if constexpr (telemetry::kEnabled) {
      const auto merged = env.aggregate_metrics();
      std::printf("telemetry: %" PRIu64 " distance evals, %" PRIu64
                  " neighbor-list updates, inbox-depth peak %" PRId64 "\n",
                  merged.counter_value("engine.distance_evals"),
                  merged.counter_value("engine.updates"),
                  merged.gauge_peak("comm.inbox_depth"));
      const auto& waits = merged.histogram_of("comm.barrier_wait_us");
      std::printf("barrier waits: %" PRIu64 " drains, mean %.0f us, max %"
                  PRIu64 " us\n",
                  waits.count(), waits.mean(), waits.max());
    }
    const std::string prefix = "profile_r" + std::to_string(ranks);
    env.export_telemetry(prefix + ".metrics.json", prefix + ".trace.json",
                         prefix + ".timeseries.json");
    std::printf("wrote %s.{metrics,trace,timeseries}.json\n", prefix.c_str());
  }

  std::printf(
      "\nReading guide: 'checks' dominating sim-units with type2plus "
      "dominating bytes\nis the paper's motivation for §4.3 — the feature "
      "vectors on Type-2 messages\nare the communication bottleneck.\n");
  return 0;
}

// Table 2 — Hnswlib parameter survey.
//
// Paper: graphs are built for a grid of (M, ef_construction) and queried
// over an ef sweep; for each DNND graph, the cheapest HNSW graph with
// equal-or-better query quality is selected. The published picks are
// Hnsw A (M=64, efc=50) / B (M=64, efc=200) on DEEP and C (M=32, efc=25)
// / D (M=64, efc=200) on BigANN.
//
// Here: the same survey at simulation scale. For each grid point we report
// build cost and the recall reached at a fixed query budget, then apply
// the paper's selection rule against DNND k10 and k20/k30 references to
// name this run's A/B analogues.
#include "common.hpp"

using namespace dnnd;  // NOLINT

namespace {

struct SurveyRow {
  std::size_t M, efc;
  double build_units;
  double build_wall_s;
  double recall_at_budget;
};

}  // namespace

int main() {
  bench::print_header(
      "Table 2: HNSW parameter survey (paper picks: A=M64/efc50, "
      "B=M64/efc200, C=M32/efc25, D=M64/efc200)");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(5000.0 * scale);
  const std::size_t num_queries = 200;
  constexpr std::size_t kTop = 10;

  const data::GaussianMixture family(bench::billion_standin_spec(96, 107));
  const auto base = family.sample(n, 1);
  const auto queries = family.sample(num_queries, 2);
  const auto truth =
      baselines::brute_force_query_batch(base, queries, bench::L2Fn{}, kTop);

  // DNND reference qualities the selection rule compares against.
  auto dnnd_recall = [&](std::size_t k) {
    comm::Environment env(comm::Config{.num_ranks = 8});
    core::DnndConfig cfg;
    cfg.k = k;
    core::DnndRunner<float, bench::L2Fn> runner(env, cfg, bench::L2Fn{});
    runner.distribute(base);
    runner.build();
    runner.optimize();
    const auto graph = runner.gather();
    core::GraphSearcher searcher(graph, base, bench::L2Fn{});
    core::SearchParams params;
    params.num_neighbors = kTop;
    params.epsilon = 0.2;
    params.num_entry_points = 24;
    return bench::recall_of(searcher.batch_search(queries, params, 1), truth,
                            kTop);
  };
  const double dnnd_k10 = dnnd_recall(10);
  const double dnnd_k20 = dnnd_recall(20);
  std::printf("\nDNND reference recall@10 (epsilon=0.2): k10 %.4f, k20 %.4f\n",
              dnnd_k10, dnnd_k20);

  std::printf("\n%-6s %-6s %14s %10s %12s\n", "M", "efc", "build-units",
              "wall[s]", "recall@ef64");
  bench::print_rule();

  std::vector<SurveyRow> rows;
  for (const std::size_t M : {6UL, 12UL, 24UL}) {
    for (const std::size_t efc : {25UL, 50UL, 100UL, 200UL}) {
      baselines::HnswIndex<float, bench::L2Fn> index(
          base, bench::L2Fn{},
          baselines::HnswParams{.M = M, .ef_construction = efc});
      util::Timer timer;
      index.build();
      const double wall = timer.elapsed_s();
      std::vector<std::vector<core::Neighbor>> computed;
      computed.reserve(queries.size());
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        computed.push_back(index.search(queries.row(qi), kTop, 64));
      }
      const double recall = core::mean_query_recall(computed, truth, kTop);
      const double units =
          static_cast<double>(index.stats().build_distance_evals) * 96.0;
      rows.push_back(SurveyRow{M, efc, units, wall, recall});
      std::printf("%-6zu %-6zu %14.3e %10.2f %12.4f\n", M, efc, units, wall,
                  recall);
    }
  }

  // Paper's selection rule: cheapest HNSW graph whose recall >= the DNND
  // reference (here at the fixed ef budget).
  auto pick = [&](double reference) -> const SurveyRow* {
    const SurveyRow* best = nullptr;
    for (const auto& row : rows) {
      if (row.recall_at_budget + 1e-9 < reference) continue;
      if (best == nullptr || row.build_units < best->build_units) best = &row;
    }
    return best;
  };
  if (const auto* a = pick(dnnd_k10)) {
    std::printf("\nHnsw A analogue (matches DNND k10): M=%zu efc=%zu\n", a->M,
                a->efc);
  } else {
    std::printf("\nHnsw A analogue: no grid point reached DNND k10 quality\n");
  }
  if (const auto* b = pick(dnnd_k20)) {
    std::printf("Hnsw B analogue (matches DNND k20): M=%zu efc=%zu\n", b->M,
                b->efc);
  } else {
    std::printf(
        "Hnsw B analogue: no grid point reached DNND k20 quality (the "
        "paper's 'Hnswlib could not construct graphs of higher quality than "
        "DNND k30 within 24 hours' effect)\n");
  }
  return 0;
}

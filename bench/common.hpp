// Shared infrastructure for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper at
// simulation scale (DESIGN.md §4 maps experiment → binary). The knobs
// below scale the workloads: DNND_BENCH_SCALE (float multiplier on point
// counts, default 1.0) lets a beefier machine run closer to paper scale
// without recompiling.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "baselines/brute_force.hpp"
#include "baselines/hnsw.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/nn_descent.hpp"
#include "core/recall.hpp"
#include "data/datasets.hpp"
#include "data/synthetic.hpp"
#include "util/timer.hpp"

namespace dnnd::bench {

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};
struct L2U8Fn {
  float operator()(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b) const {
    return core::l2(a, b);
  }
};
struct CosFn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::cosine(a, b);
  }
};
struct JacFn {
  float operator()(std::span<const std::uint32_t> a,
                   std::span<const std::uint32_t> b) const {
    return core::jaccard_sorted(a, b);
  }
};

inline double bench_scale() {
  if (const char* env = std::getenv("DNND_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

/// Billion-scale stand-in (DEEP1B-like unless u8): overlapping clusters so
/// the k-NN graph is connected, as real embedding corpora are. The
/// center_range/cluster_std ratio is calibrated (see EXPERIMENTS.md):
/// wider ranges give near-perfect graph recall but a disconnected k-NN
/// graph that no greedy search can traverse; this setting keeps graph
/// recall ≈ 0.99 while epsilon sweeps trace the paper's recall range.
inline data::MixtureSpec billion_standin_spec(std::size_t dim,
                                              std::uint64_t seed) {
  data::MixtureSpec spec;
  spec.dim = dim;
  spec.num_clusters = 64;
  spec.center_range = 2.0f;
  spec.cluster_std = 1.5f;
  spec.seed = seed;
  return spec;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_rule() {
  std::printf("--------------------------------------------------------------------------\n");
}

/// Mean recall@k of a batch of SearchResults against brute-force truth.
inline double recall_of(const std::vector<core::SearchResult>& results,
                        const std::vector<std::vector<core::VertexId>>& truth,
                        std::size_t k) {
  std::vector<std::vector<core::Neighbor>> computed;
  computed.reserve(results.size());
  for (const auto& r : results) computed.push_back(r.neighbors);
  return core::mean_query_recall(computed, truth, k);
}

}  // namespace dnnd::bench

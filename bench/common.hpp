// Shared infrastructure for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper at
// simulation scale (DESIGN.md §4 maps experiment → binary). The knobs
// below scale the workloads: DNND_BENCH_SCALE (float multiplier on point
// counts, default 1.0) lets a beefier machine run closer to paper scale
// without recompiling.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/brute_force.hpp"
#include "baselines/hnsw.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/distance_kernels.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/nn_descent.hpp"
#include "core/recall.hpp"
#include "data/datasets.hpp"
#include "data/synthetic.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace dnnd::bench {

// The dense metrics are the kernel functors themselves, so every bench
// (and the tests that reuse these aliases) exercises the batched,
// runtime-dispatched code path; Jaccard is sparse and stays on the
// element loop.
using L2Fn = core::L2Kernel<float>;
using L2U8Fn = core::L2Kernel<std::uint8_t>;
using CosFn = core::CosineKernel<float>;
struct JacFn {
  float operator()(std::span<const std::uint32_t> a,
                   std::span<const std::uint32_t> b) const {
    return core::jaccard_sorted(a, b);
  }
};

inline double bench_scale() {
  if (const char* env = std::getenv("DNND_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 1.0;
}

/// Billion-scale stand-in (DEEP1B-like unless u8): overlapping clusters so
/// the k-NN graph is connected, as real embedding corpora are. The
/// center_range/cluster_std ratio is calibrated (see EXPERIMENTS.md):
/// wider ranges give near-perfect graph recall but a disconnected k-NN
/// graph that no greedy search can traverse; this setting keeps graph
/// recall ≈ 0.99 while epsilon sweeps trace the paper's recall range.
inline data::MixtureSpec billion_standin_spec(std::size_t dim,
                                              std::uint64_t seed) {
  data::MixtureSpec spec;
  spec.dim = dim;
  spec.num_clusters = 64;
  spec.center_range = 2.0f;
  spec.cluster_std = 1.5f;
  spec.seed = seed;
  return spec;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_rule() {
  std::printf("--------------------------------------------------------------------------\n");
}

/// Machine-readable bench output: every bench binary collects its result
/// rows into a BenchReport and writes one `BENCH_<name>.json` with schema
/// `dnnd.bench.v1` — committed snapshots of these files are how measured
/// numbers enter the repo (EXPERIMENTS.md quotes them).
///
/// Schema:
///   { "schema": "dnnd.bench.v1", "bench": "<binary>",
///     "rows": [ { "name": "<row id>",
///                 "params":  { "<k>": "<string>", ... },
///                 "metrics": { "<k>": <number>, ... } }, ... ] }
class BenchReport {
 public:
  struct Row {
    std::string name;
    std::map<std::string, std::string> params;
    std::map<std::string, double> metrics;
  };

  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  Row& add_row(std::string name) {
    rows_.push_back(Row{std::move(name), {}, {}});
    return rows_.back();
  }

  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  void write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      throw std::runtime_error("BenchReport: cannot open " + path);
    }
    os << "{\n  \"schema\": \"dnnd.bench.v1\",\n  \"bench\": ";
    util::json::write_string(os, bench_name_);
    os << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
      util::json::write_string(os, row.name);
      os << ", \"params\": {";
      bool first = true;
      for (const auto& [k, v] : row.params) {
        os << (first ? "" : ", ");
        first = false;
        util::json::write_string(os, k);
        os << ": ";
        util::json::write_string(os, v);
      }
      os << "}, \"metrics\": {";
      first = true;
      for (const auto& [k, v] : row.metrics) {
        os << (first ? "" : ", ");
        first = false;
        util::json::write_string(os, k);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        os << ": " << buf;
      }
      os << "}}";
    }
    os << "\n  ]\n}\n";
    if (!os.flush()) {
      throw std::runtime_error("BenchReport: write failed for " + path);
    }
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string bench_name_;
  std::vector<Row> rows_;
};

/// Mean recall@k of a batch of SearchResults against brute-force truth.
inline double recall_of(const std::vector<core::SearchResult>& results,
                        const std::vector<std::vector<core::VertexId>>& truth,
                        std::size_t k) {
  std::vector<std::vector<core::Neighbor>> computed;
  computed.reserve(results.size());
  for (const auto& r : results) computed.push_back(r.neighbors);
  return core::mean_query_recall(computed, truth, k);
}

}  // namespace dnnd::bench

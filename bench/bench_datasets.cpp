// Table 1 — datasets used in the evaluation.
//
// Prints the paper's dataset registry alongside the synthetic stand-ins
// this reproduction instantiates (dimension and metric preserved, entry
// counts scaled; DESIGN.md §2), then materializes each stand-in once to
// verify the generators produce what the registry promises.
#include <cinttypes>

#include "common.hpp"

using namespace dnnd;  // NOLINT

int main() {
  bench::print_header("Table 1: Datasets used in the evaluation (paper vs stand-in)");
  std::printf("%-15s %10s %15s %15s %10s %8s\n", "Dataset", "Dim",
              "Paper entries", "Stand-in size", "Metric", "Type");
  bench::print_rule();

  const double scale = bench::bench_scale();
  for (const auto& spec : data::table1()) {
    const auto n = static_cast<std::size_t>(
        static_cast<double>(spec.scaled_entries) * scale);
    const char* type = spec.element == data::ElementKind::kFloat32 ? "f32"
                       : spec.element == data::ElementKind::kUint8 ? "u8"
                                                                   : "sparse";
    std::printf("%-15s %10zu %15zu %15zu %10s %8s\n", spec.name.c_str(),
                spec.dim, spec.paper_entries, n,
                std::string(core::metric_name(spec.metric)).c_str(), type);

    // Materialize a small draw of each stand-in and sanity-print its shape.
    switch (spec.element) {
      case data::ElementKind::kFloat32: {
        const auto ds = data::make_dense_float(spec, 0.05 * scale, 8);
        std::printf("%-15s %10zu rows materialized, row dim %zu\n", "",
                    ds.base.size(), ds.base.dim());
        break;
      }
      case data::ElementKind::kUint8: {
        const auto ds = data::make_dense_u8(spec, 0.05 * scale, 8);
        std::printf("%-15s %10zu rows materialized, row dim %zu\n", "",
                    ds.base.size(), ds.base.dim());
        break;
      }
      case data::ElementKind::kSparseIds: {
        const auto ds = data::make_sparse(spec, 0.05 * scale, 8);
        std::size_t total = 0;
        for (std::size_t i = 0; i < ds.base.size(); ++i) {
          total += ds.base.row(i).size();
        }
        std::printf("%-15s %10zu rows materialized, mean set size %.1f\n", "",
                    ds.base.size(),
                    ds.base.empty()
                        ? 0.0
                        : static_cast<double>(total) /
                              static_cast<double>(ds.base.size()));
        break;
      }
    }
  }
  std::printf("\nScale multiplier (DNND_BENCH_SCALE): %.2f\n",
              bench::bench_scale());
  return 0;
}

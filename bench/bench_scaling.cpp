// Figure 3 / Table 3 — k-NNG construction time vs number of compute nodes.
//
// Paper: DNND with k ∈ {10, 20, 30} on 4–32 nodes against single-node
// Hnswlib references (Hnsw A/B on DEEP, C/D on BigANN); DNND shows strong
// scaling (e.g. DEEP k10: 6.96 h @ 4 nodes → 1.84 h @ 16, 3.8x) that
// flattens toward 32 nodes.
//
// Here: the same sweep over simulated ranks. Wall-clock on a single-core
// host cannot show scaling, so the headline metric is *simulated parallel
// time*: per barrier-delimited superstep, the maximum per-rank work
// (distance evals weighted by dimension + bytes sent), summed over the
// run — the quantity that the paper's wall time measures on real
// hardware. Wall time and total distance evals are reported alongside.
#include <algorithm>
#include <bit>

#include "common.hpp"

using namespace dnnd;  // NOLINT

namespace {

template <typename T, typename Fn>
void run_dataset(const char* name, const core::FeatureStore<T>& base, Fn fn,
                 bench::BenchReport& report) {
  std::printf("\n-- %s (%zu points, dim %zu) --\n", name, base.size(),
              base.dim());

  // Single-process HNSW references (the paper's Hnsw A/B/C/D are
  // single-node runs; build work is the comparable cost metric).
  struct HnswRef {
    const char* label;
    std::size_t M, efc;
  };
  for (const auto& ref : {HnswRef{"Hnsw fast (A/C-like)", 12, 40},
                          HnswRef{"Hnsw quality (B/D-like)", 16, 200}}) {
    baselines::HnswIndex<T, Fn> index(
        base, fn, baselines::HnswParams{.M = ref.M, .ef_construction = ref.efc});
    util::Timer timer;
    index.build();
    const double wall = timer.elapsed_s();
    // Express HNSW build cost in the same simulated units: distance evals
    // weighted by dimension (it is single-node, so no byte charge).
    const double units = static_cast<double>(index.stats().build_distance_evals) *
                         static_cast<double>(base.dim());
    std::printf("  %-24s 1 node   sim-units %12.3e  wall %6.2fs\n", ref.label,
                units, wall);
    auto& row = report.add_row(std::string("hnsw/") + name + "/M" +
                               std::to_string(ref.M));
    row.params["dataset"] = name;
    row.params["baseline"] = ref.label;
    row.params["n"] = std::to_string(base.size());
    row.metrics["sim_units"] = units;
    row.metrics["wall_s"] = wall;
  }

  for (const std::size_t k : {10UL, 20UL, 30UL}) {
    // The paper starts k=10 at 4 nodes, k=20 at 8, k=30 at 16 (smaller
    // counts hit memory/time limits); mirror the sweep shape.
    std::vector<int> rank_counts;
    if (k == 10) rank_counts = {1, 2, 4, 8, 16, 32};
    if (k == 20) rank_counts = {2, 4, 8, 16, 32};
    if (k == 30) rank_counts = {4, 8, 16, 32};

    std::printf("  DNND k=%zu:\n", k);
    std::printf("    %6s %14s %10s %7s %9s\n", "ranks", "sim-units",
                "wall[s]", "iters", "speedup");
    double base_units = 0;
    for (const int ranks : rank_counts) {
      comm::Environment env(comm::Config{.num_ranks = ranks});
      core::DnndConfig cfg;
      cfg.k = k;
      cfg.batch_size = std::uint64_t{1} << 18;
      core::DnndRunner<T, Fn> runner(env, cfg, fn);
      runner.distribute(base);
      util::Timer timer;
      const auto stats = runner.build();
      runner.optimize();  // paper timings include the optimization step
      const auto& total = runner.last_build_stats();
      const double wall = timer.elapsed_s();
      if (base_units == 0) base_units = total.simulated_parallel_units;
      std::printf("    %6d %14.3e %10.2f %7zu %8.2fx\n", ranks,
                  total.simulated_parallel_units, wall, stats.iterations,
                  base_units / total.simulated_parallel_units);
      auto& row = report.add_row(std::string("dnnd/") + name + "/k" +
                                 std::to_string(k) + "/ranks" +
                                 std::to_string(ranks));
      row.params["dataset"] = name;
      row.params["k"] = std::to_string(k);
      row.params["ranks"] = std::to_string(ranks);
      row.params["n"] = std::to_string(base.size());
      row.metrics["sim_units"] = total.simulated_parallel_units;
      row.metrics["wall_s"] = wall;
      row.metrics["iterations"] = static_cast<double>(stats.iterations);
      row.metrics["speedup_vs_smallest"] =
          base_units / total.simulated_parallel_units;
    }
  }
}

/// FNV-1a over every row's (id, distance-bits): cheap bit-identity probe.
std::uint64_t graph_fingerprint(const core::KnnGraph& graph) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (core::VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const core::Neighbor& n : graph.neighbors(v)) {
      mix(n.id);
      mix(std::bit_cast<std::uint32_t>(n.distance));
    }
  }
  return h;
}

/// Intra-rank thread sweep (the tentpole's headline): one NN-Descent
/// build per pool size, same seed. The host is single-core, so the
/// scaling metric is the deterministic per-thread work ledger: eval
/// tasks are charged round-robin to virtual threads in task order, and
/// `sim-thread-units` is the busiest thread's charge (the parallel
/// makespan analogue, same convention as sim-units above). The builds
/// are bit-identical by construction — the fingerprint column proves it.
template <typename T, typename Fn>
void run_thread_sweep(const char* name, const core::FeatureStore<T>& base,
                      Fn fn, bench::BenchReport& report) {
  std::printf("\n-- %s: intra-rank thread sweep (k=10) --\n", name);
  std::printf("    %8s %16s %14s %10s %9s  %s\n", "threads",
              "sim-thread-units", "ledger-evals", "wall[s]", "speedup",
              "graph");
  double base_units = 0;
  std::uint64_t base_print = 0;
  for (const std::size_t threads : {1UL, 2UL, 4UL, 8UL}) {
    core::NnDescentConfig cfg;
    cfg.k = 10;
    cfg.seed = 12;
    cfg.threads = threads;
    core::NnDescentStats stats;
    util::Timer timer;
    const auto graph = core::build_nn_descent(base, fn, cfg, &stats);
    const double wall = timer.elapsed_s();

    std::uint64_t busiest = 0, ledger = 0;
    for (const std::uint64_t w : stats.thread_work) {
      busiest = std::max(busiest, w);
      ledger += w;
    }
    const double units =
        static_cast<double>(busiest) * static_cast<double>(base.dim());
    const std::uint64_t print = graph_fingerprint(graph);
    if (base_units == 0) {
      base_units = units;
      base_print = print;
    }
    const bool identical = print == base_print;
    std::printf("    %8zu %16.3e %14llu %10.2f %8.2fx  %s\n", threads, units,
                static_cast<unsigned long long>(ledger), wall,
                base_units / units, identical ? "bit-identical" : "DIVERGED");
    auto& row = report.add_row(std::string("dnnd_threads/") + name +
                               "/k10/threads" + std::to_string(threads));
    row.params["dataset"] = name;
    row.params["k"] = "10";
    row.params["threads"] = std::to_string(threads);
    row.params["n"] = std::to_string(base.size());
    row.params["graph_matches_1thread"] = identical ? "true" : "false";
    row.metrics["sim_thread_units"] = units;
    row.metrics["ledger_distance_evals"] = static_cast<double>(ledger);
    row.metrics["pool_tasks"] = static_cast<double>(stats.tasks);
    row.metrics["wall_s"] = wall;
    row.metrics["speedup_vs_1thread"] = base_units / units;
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3 / Table 3: k-NNG construction cost vs simulated node count "
      "(paper: strong scaling to 16 nodes, flattening at 32)");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(6000.0 * scale);

  bench::BenchReport report("bench_scaling");
  {
    const auto base =
        data::GaussianMixture(bench::billion_standin_spec(96, 107))
            .sample(n, 1);
    run_dataset("deep_standin", base, bench::L2Fn{}, report);
    run_thread_sweep("deep_standin", base, bench::L2Fn{}, report);
  }
  {
    const auto base =
        data::GaussianMixture(bench::billion_standin_spec(128, 108))
            .sample_u8(n, 1);
    run_dataset("bigann_standin", base, bench::L2U8Fn{}, report);
    run_thread_sweep("bigann_standin", base, bench::L2U8Fn{}, report);
  }
  report.write("BENCH_scaling.json");

  std::printf(
      "\nReading guide: 'speedup' is relative to the smallest rank count in "
      "each row,\nas in Table 3 (paper k10 DEEP: 4->16 nodes = 3.8x; "
      "16->32 only 1.2x).\nWall time on this single-core simulator does "
      "not scale — sim-units is the\nhardware-independent analogue of the "
      "paper's hours (EXPERIMENTS.md).\n");
  return 0;
}

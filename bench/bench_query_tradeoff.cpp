// Figure 2 — recall@10 vs query throughput tradeoff.
//
// Paper: for the graphs built in Figure 3 (DNND k10/k20/k30 and Hnsw A–D),
// sweep the query knob (epsilon for DNND, ef for HNSW) and plot recall@10
// against queries-per-second. Findings: DNND k20 matches Hnswlib's best
// graphs; DNND k30 beats them.
//
// Here: identical sweeps on the DEEP1B and BigANN stand-ins. Each line of
// output is one data point of one curve (dataset, index, knob, recall,
// QPS, mean distance evals per query). QPS is single-core, so absolute
// numbers are small; curve shapes and orderings are the reproduced result.
#include "common.hpp"

using namespace dnnd;  // NOLINT

namespace {

constexpr std::size_t kTop = 10;

template <typename T, typename Fn>
void sweep_dnnd(const char* dataset, const char* label, std::size_t k,
                const core::FeatureStore<T>& base,
                const core::FeatureStore<T>& queries,
                const std::vector<std::vector<core::VertexId>>& truth,
                Fn fn) {
  comm::Environment env(comm::Config{.num_ranks = 8});
  core::DnndConfig cfg;
  cfg.k = k;
  core::DnndRunner<T, Fn> runner(env, cfg, fn);
  runner.distribute(base);
  runner.build();
  runner.optimize();
  const auto graph = runner.gather();
  core::GraphSearcher searcher(graph, base, fn);

  // The paper sweeps epsilon 0 and 0.1..0.4 in steps of 0.025; a coarser
  // grid keeps single-core run time sane while tracing the same curve.
  for (const double epsilon : {0.0, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4}) {
    core::SearchParams params;
    params.num_neighbors = kTop;
    params.epsilon = epsilon;
    params.num_entry_points = 24;
    util::Timer timer;
    const auto results = searcher.batch_search(queries, params, 1);
    const double seconds = timer.elapsed_s();
    std::uint64_t evals = 0;
    for (const auto& r : results) evals += r.distance_evals;
    std::printf("%-8s %-10s eps=%-5.3f  recall@10 %.4f  qps %8.0f  "
                "evals/query %7.0f\n",
                dataset, label, epsilon,
                bench::recall_of(results, truth, kTop),
                static_cast<double>(queries.size()) / seconds,
                static_cast<double>(evals) /
                    static_cast<double>(queries.size()));
  }
}

template <typename T, typename Fn>
void sweep_hnsw(const char* dataset, const char* label, std::size_t M,
                std::size_t efc, const core::FeatureStore<T>& base,
                const core::FeatureStore<T>& queries,
                const std::vector<std::vector<core::VertexId>>& truth,
                Fn fn) {
  baselines::HnswIndex<T, Fn> index(
      base, fn, baselines::HnswParams{.M = M, .ef_construction = efc});
  index.build();
  for (const std::size_t ef : {10UL, 20UL, 40UL, 80UL, 160UL, 320UL}) {
    util::Timer timer;
    std::vector<std::vector<core::Neighbor>> computed;
    computed.reserve(queries.size());
    std::uint64_t evals = 0;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      computed.push_back(index.search(queries.row(qi), kTop, ef, &evals));
    }
    const double seconds = timer.elapsed_s();
    std::printf("%-8s %-10s ef=%-6zu  recall@10 %.4f  qps %8.0f  "
                "evals/query %7.0f\n",
                dataset, label, ef,
                core::mean_query_recall(computed, truth, kTop),
                static_cast<double>(queries.size()) / seconds,
                static_cast<double>(evals) /
                    static_cast<double>(queries.size()));
  }
}

template <typename T, typename Fn>
void run_dataset(const char* dataset, const core::FeatureStore<T>& base,
                 const core::FeatureStore<T>& queries, Fn fn) {
  const auto truth =
      baselines::brute_force_query_batch(base, queries, fn, kTop);
  std::printf("\n-- %s (%zu points, %zu queries) --\n", dataset, base.size(),
              queries.size());
  // DNND curves (Figure 2's k10/k20/k30 lines).
  sweep_dnnd(dataset, "DNND-k10", 10, base, queries, truth, fn);
  sweep_dnnd(dataset, "DNND-k20", 20, base, queries, truth, fn);
  sweep_dnnd(dataset, "DNND-k30", 30, base, queries, truth, fn);
  // HNSW curves (A/C-like fast build, B/D-like quality build).
  sweep_hnsw(dataset, "Hnsw-fast", 12, 40, base, queries, truth, fn);
  sweep_hnsw(dataset, "Hnsw-qual", 16, 200, base, queries, truth, fn);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2: recall@10 vs query throughput (paper: DNND k20 ~ best "
      "Hnsw; DNND k30 better)");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(5000.0 * scale);
  const std::size_t num_queries = 200;

  {
    const data::GaussianMixture family(bench::billion_standin_spec(96, 107));
    run_dataset("DEEP", family.sample(n, 1), family.sample(num_queries, 2),
                bench::L2Fn{});
  }
  {
    const data::GaussianMixture family(bench::billion_standin_spec(128, 108));
    run_dataset("BigANN", family.sample_u8(n, 1),
                family.sample_u8(num_queries, 2), bench::L2U8Fn{});
  }

  std::printf(
      "\nReading guide: each (index, knob) line is one point of a Figure-2 "
      "curve.\nCompare at equal recall: higher qps (fewer evals/query) wins. "
      "Figures 2c/2d\nare the recall >= 0.90 region of the same data.\n");
  return 0;
}

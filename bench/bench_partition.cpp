// Partitioning ablation — hash (the paper's §4 scheme) vs locality-aware
// placement (RP-tree reorder + range partition, Pyramid-style).
//
// The paper partitions "based on the hash values of the vertex IDs" and
// never revisits the choice; its related-work section cites Pyramid,
// which partitions by data locality. This bench quantifies the tradeoff
// the choice embodies: hash gives perfect balance but no locality (every
// neighbor check is off-node with probability (R-1)/R), locality keeps
// same-cluster checks on-node at the risk of imbalance.
#include <cinttypes>

#include "common.hpp"
#include "core/partition.hpp"

using namespace dnnd;  // NOLINT

namespace {

struct Outcome {
  double recall = 0;
  std::uint64_t remote_messages = 0;
  std::uint64_t remote_bytes = 0;
  double sim_units = 0;
  std::uint64_t max_rank_points = 0;
};

Outcome run(const core::FeatureStore<float>& base,
            std::optional<core::Partition> partition, int ranks,
            const core::KnnGraph& exact) {
  comm::Environment env(comm::Config{.num_ranks = ranks});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, bench::L2Fn> runner(env, cfg, bench::L2Fn{}, {},
                                              std::move(partition));
  runner.distribute(base);
  const auto stats = runner.build();
  Outcome out;
  out.recall = core::graph_recall(runner.gather(), exact, 10);
  const auto comm_stats = env.aggregate_stats();
  out.remote_messages = comm_stats.total_remote_messages();
  out.remote_bytes = comm_stats.total_remote_bytes();
  out.sim_units = stats.simulated_parallel_units;
  for (int r = 0; r < ranks; ++r) {
    out.max_rank_points = std::max<std::uint64_t>(
        out.max_rank_points, runner.engine(r).local_point_count());
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Partitioning ablation: hash (paper) vs RP-locality placement");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(6000.0 * scale);
  constexpr int kRanks = 16;

  // Moderately separated clusters: the regime where locality placement
  // has something to exploit.
  data::MixtureSpec spec;
  spec.dim = 32;
  spec.num_clusters = 32;
  spec.center_range = 5.0f;
  spec.cluster_std = 1.2f;
  spec.seed = 271;
  const auto base = data::GaussianMixture(spec).sample(n, 1);
  const auto exact = baselines::brute_force_knn_graph(base, bench::L2Fn{}, 10);

  const auto hash = run(base, std::nullopt, kRanks, exact);

  const auto order = core::rp_tree_order(base);
  const auto [reordered, original] = core::reorder_dense(base, order);
  // Ground truth ids change with the reorder; recompute.
  const auto exact_reordered =
      baselines::brute_force_knn_graph(reordered, bench::L2Fn{}, 10);
  const auto locality = run(reordered,
                            core::Partition::even_ranges(reordered.size(),
                                                         kRanks),
                            kRanks, exact_reordered);

  std::printf("%-22s %14s %14s\n", "", "hash", "rp-locality");
  std::printf("%-22s %14.4f %14.4f\n", "graph recall", hash.recall,
              locality.recall);
  std::printf("%-22s %14" PRIu64 " %14" PRIu64 "  (%.0f%%)\n",
              "off-node messages", hash.remote_messages,
              locality.remote_messages,
              100.0 * static_cast<double>(locality.remote_messages) /
                  static_cast<double>(hash.remote_messages));
  std::printf("%-22s %14" PRIu64 " %14" PRIu64 "  (%.0f%%)\n",
              "off-node bytes", hash.remote_bytes, locality.remote_bytes,
              100.0 * static_cast<double>(locality.remote_bytes) /
                  static_cast<double>(hash.remote_bytes));
  std::printf("%-22s %14.3e %14.3e\n", "sim-units", hash.sim_units,
              locality.sim_units);
  std::printf("%-22s %14" PRIu64 " %14" PRIu64 "  (ideal %zu)\n",
              "max points per rank", hash.max_rank_points,
              locality.max_rank_points, n / kRanks);

  std::printf(
      "\nReading guide: locality placement trades a little balance (max "
      "points per\nrank) for a sizeable cut in off-node traffic; the hash "
      "scheme the paper uses\nis the simplest and most balanced but pays "
      "full communication.\n");
  return 0;
}

// Figure 4 — effectiveness of the §4.3 communication-saving techniques.
//
// Paper setup: k = 10, 16 nodes, both billion-scale datasets; counts the
// messages sent during neighbor checks and their total size, comparing the
// unoptimized pattern (Type 1 + Type 2) against the optimized one (Type 1
// + Type 2+ + Type 3). Reported outcome: ~50% reduction in both message
// count and volume.
//
// Here: identical message taxonomy on the DEEP1B / BigANN stand-ins with
// k = 10 and 16 simulated ranks. "Off-node" messages are those whose
// destination rank differs from the source, exactly what the per-handler
// counters in the comm layer record.
#include <cinttypes>

#include "common.hpp"

using namespace dnnd;  // NOLINT

namespace {

struct CommTotals {
  std::uint64_t type1 = 0, type2 = 0, type2plus = 0, type3 = 0;
  std::uint64_t bytes1 = 0, bytes2 = 0, bytes2plus = 0, bytes3 = 0;

  [[nodiscard]] std::uint64_t messages() const {
    return type1 + type2 + type2plus + type3;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return bytes1 + bytes2 + bytes2plus + bytes3;
  }
};

template <typename T, typename Fn>
CommTotals run(const core::FeatureStore<T>& base, Fn fn, bool optimized) {
  comm::Environment env(comm::Config{.num_ranks = 16});
  core::DnndConfig cfg;
  cfg.k = 10;
  cfg.optimized_checks = optimized;
  core::DnndRunner<T, Fn> runner(env, cfg, fn);
  runner.distribute(base);
  runner.build();
  const auto stats = env.aggregate_stats();
  CommTotals totals;
  const auto t1o = stats.by_label("type1");
  const auto t1u = stats.by_label("type1_unopt");
  totals.type1 = t1o.remote_messages + t1u.remote_messages;
  totals.bytes1 = t1o.remote_bytes + t1u.remote_bytes;
  const auto t2 = stats.by_label("type2_unopt");
  totals.type2 = t2.remote_messages;
  totals.bytes2 = t2.remote_bytes;
  const auto t2p = stats.by_label("type2plus");
  totals.type2plus = t2p.remote_messages;
  totals.bytes2plus = t2p.remote_bytes;
  const auto t3 = stats.by_label("type3");
  totals.type3 = t3.remote_messages;
  totals.bytes3 = t3.remote_bytes;
  return totals;
}

void report(const char* dataset, const CommTotals& unopt,
            const CommTotals& opt) {
  std::printf("\n-- %s (k=10, 16 ranks) --\n", dataset);
  std::printf("%-22s %14s %14s\n", "", "unoptimized", "optimized");
  std::printf("%-22s %14" PRIu64 " %14" PRIu64 "\n", "Type 1 messages",
              unopt.type1, opt.type1);
  std::printf("%-22s %14" PRIu64 " %14s\n", "Type 2 messages", unopt.type2,
              "-");
  std::printf("%-22s %14s %14" PRIu64 "\n", "Type 2+ messages", "-",
              opt.type2plus);
  std::printf("%-22s %14s %14" PRIu64 "\n", "Type 3 messages", "-",
              opt.type3);
  std::printf("%-22s %14" PRIu64 " %14" PRIu64 "  (%.1f%% of unoptimized)\n",
              "Total messages (4a)", unopt.messages(), opt.messages(),
              100.0 * static_cast<double>(opt.messages()) /
                  static_cast<double>(unopt.messages()));
  std::printf("%-22s %14" PRIu64 " %14" PRIu64 "  (%.1f%% of unoptimized)\n",
              "Total bytes (4b)", unopt.bytes(), opt.bytes(),
              100.0 * static_cast<double>(opt.bytes()) /
                  static_cast<double>(unopt.bytes()));
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4: neighbor-check communication, unoptimized vs optimized "
      "(paper: ~50% reduction in count and volume)");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(8000.0 * scale);

  {
    const auto base =
        data::GaussianMixture(bench::billion_standin_spec(96, 107))
            .sample(n, 1);
    report("Yandex DEEP 1B stand-in (96-d float32)",
           run(base, bench::L2Fn{}, false), run(base, bench::L2Fn{}, true));
  }
  {
    const auto base =
        data::GaussianMixture(bench::billion_standin_spec(128, 108))
            .sample_u8(n, 1);
    report("BigANN stand-in (128-d uint8)", run(base, bench::L2U8Fn{}, false),
           run(base, bench::L2U8Fn{}, true));
  }

  std::printf(
      "\nNote: BigANN rows carry uint8 features, so its Type 2/2+ bytes are "
      "~4x smaller\nthan DEEP's at equal dimension count — the Figure 4b "
      "asymmetry in the paper.\n");
  return 0;
}

// §7 (dynamic updates) — incremental refinement vs full rebuild.
//
// The paper argues Metall-backed persistence "will facilitate rapid graph
// updates... new data points may be added/deleted, followed by a short
// graph refinement phase, which will fit NN-Descent's iterative nature
// well". This bench quantifies that: for update batches of growing size,
// compare the cost of refine-after-mutation against rebuilding from
// scratch, and verify quality is maintained.
#include "common.hpp"

using namespace dnnd;  // NOLINT

int main() {
  bench::print_header(
      "Section 7: incremental updates — refine cost vs full rebuild");

  const double scale = bench::bench_scale();
  const auto n = static_cast<std::size_t>(4000.0 * scale);
  const data::GaussianMixture family(bench::billion_standin_spec(32, 99));
  const auto base = family.sample(n, 1);

  comm::Environment env(comm::Config{.num_ranks = 8});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, bench::L2Fn> runner(env, cfg, bench::L2Fn{});
  runner.distribute(base);
  const auto build_stats = runner.build();
  std::printf("initial build: %zu points, %zu iters, sim-units %.3e\n", n,
              build_stats.iterations, build_stats.simulated_parallel_units);

  std::printf("\n%-18s %10s %14s %16s %10s\n", "operation", "batch",
              "refine-units", "rebuild-units", "recall");
  bench::print_rule();

  std::size_t next_id = n;
  for (const double fraction : {0.01, 0.05, 0.10, 0.25}) {
    const auto batch = static_cast<std::size_t>(
        static_cast<double>(n) * fraction);
    // Insert `batch` fresh points from the same distribution.
    const auto raw = family.sample(batch, 1000 + next_id);
    core::FeatureStore<float> extra;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      extra.add(static_cast<core::VertexId>(next_id + i), raw.row(i));
    }
    next_id += batch;

    runner.add_points(extra);
    const auto refine_stats = runner.refine();

    // Reference: building the same-sized dataset from scratch.
    comm::Environment env2(comm::Config{.num_ranks = 8});
    core::DnndRunner<float, bench::L2Fn> rebuild(env2, cfg, bench::L2Fn{});
    // Gather the current live set via the runner's shards.
    core::FeatureStore<float> everything;
    for (int r = 0; r < env.num_ranks(); ++r) {
      const auto& pts = runner.engine(r).local_points();
      for (std::size_t i = 0; i < pts.size(); ++i) {
        everything.add(pts.id_at(i), pts.row(i));
      }
    }
    // Rebuild requires dense ids; ours are (no deletions yet), sorted by
    // construction order though — reindex densely for the rebuild only.
    core::FeatureStore<float> dense;
    for (core::VertexId v = 0; v < everything.size(); ++v) {
      dense.add(v, everything[static_cast<core::VertexId>(v)]);
    }
    rebuild.distribute(dense);
    const auto rebuild_stats = rebuild.build();

    // Spot-check quality of the incrementally maintained graph.
    const auto graph = runner.gather();
    const auto exact = baselines::brute_force_knn_graph(everything,
                                                        bench::L2Fn{}, 10);
    const double recall = core::graph_recall(graph, exact, 10);

    std::printf("%-18s %10zu %14.3e %16.3e %9.4f   (refine = %.0f%% of "
                "rebuild)\n",
                "insert+refine", batch,
                refine_stats.simulated_parallel_units,
                rebuild_stats.simulated_parallel_units, recall,
                100.0 * refine_stats.simulated_parallel_units /
                    rebuild_stats.simulated_parallel_units);
  }

  // Deletion: remove 10% and refine.
  {
    std::vector<core::VertexId> removed;
    for (core::VertexId v = 0; v < n; v += 10) removed.push_back(v);
    runner.remove_points(removed);
    const auto refine_stats = runner.refine();
    std::printf("%-18s %10zu %14.3e %16s %10s\n", "delete+refine",
                removed.size(), refine_stats.simulated_parallel_units, "-",
                "-");
  }

  std::printf(
      "\nExpected shape: refine cost grows with batch size but stays well "
      "below the\nfull rebuild for small fractions — the update path the "
      "paper's §7 envisions.\n");
  return 0;
}

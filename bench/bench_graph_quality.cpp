// §5.2 — Preliminary NN graph quality evaluation.
//
// Paper: DNND on the six small Table-1 datasets, k = 100, recall against a
// brute-force k-NNG; reported 0.93 (NYTimes), 0.98 (Last.fm), ≥0.99 for
// the rest. Here: the six synthetic stand-ins at scaled size with a
// proportionally scaled k, same brute-force methodology. The claim being
// reproduced is "DNND constructs high-quality k-NNGs on every metric
// family", i.e. recall well above 0.9 across the board.
#include "common.hpp"

using namespace dnnd;  // NOLINT

namespace {

struct Row {
  std::string name;
  std::size_t n;
  std::size_t k;
  double recall;
  std::size_t iterations;
  double wall_s;
};

template <typename T, typename Fn>
Row run_one(const std::string& name, const core::FeatureStore<T>& base,
            Fn fn, std::size_t k) {
  comm::Environment env(comm::Config{.num_ranks = 8});
  core::DnndConfig cfg;
  cfg.k = k;
  core::DnndRunner<T, Fn> runner(env, cfg, fn);
  runner.distribute(base);
  util::Timer timer;
  const auto stats = runner.build();
  const double wall = timer.elapsed_s();
  const auto exact = baselines::brute_force_knn_graph(base, fn, k);
  return Row{name, base.size(), k,
             core::graph_recall(runner.gather(), exact, k), stats.iterations,
             wall};
}

}  // namespace

int main() {
  bench::print_header(
      "Section 5.2: DNND graph recall vs brute force (paper: k=100, "
      "0.93-0.99+; stand-ins scaled)");
  std::printf("%-15s %8s %5s %10s %7s %9s\n", "Dataset", "Points", "k",
              "Recall", "Iters", "Build[s]");
  bench::print_rule();

  const double scale = bench::bench_scale();
  constexpr std::size_t kNeighbors = 16;  // k=100 scaled to stand-in sizes
  std::vector<Row> rows;

  for (const char* name : {"fashion-mnist", "glove-25", "mnist", "nytimes",
                           "lastfm"}) {
    const auto& spec = data::dataset_by_name(name);
    const auto ds = data::make_dense_float(spec, 0.25 * scale, 0);
    if (spec.metric == core::Metric::kCosine) {
      rows.push_back(run_one(name, ds.base, bench::CosFn{}, kNeighbors));
    } else {
      rows.push_back(run_one(name, ds.base, bench::L2Fn{}, kNeighbors));
    }
  }
  {
    const auto& spec = data::dataset_by_name("kosarak");
    const auto ds = data::make_sparse(spec, 0.25 * scale, 0);
    rows.push_back(run_one("kosarak", ds.base, bench::JacFn{}, kNeighbors));
  }

  for (const auto& row : rows) {
    std::printf("%-15s %8zu %5zu %10.4f %7zu %9.2f\n", row.name.c_str(),
                row.n, row.k, row.recall, row.iterations, row.wall_s);
  }

  std::printf(
      "\nPaper reference: NYTimes 0.93, Last.fm 0.98, others >= 0.99 "
      "(k=100, full-size corpora).\n");
  return 0;
}

// Tests for synthetic generators, the Table-1 dataset registry, and the
// dataset file formats (fvecs/bvecs/ivecs, fbin/u8bin).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "core/distance.hpp"
#include "data/datasets.hpp"
#include "data/io.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TempFile {
 public:
  explicit TempFile(const std::string& name) : path_(temp_path(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// -- generators -----------------------------------------------------------------

TEST(Synthetic, MixtureShapeAndDeterminism) {
  data::MixtureSpec spec;
  spec.dim = 12;
  spec.seed = 5;
  const data::GaussianMixture family(spec);
  const auto a = family.sample(100, 1);
  const auto b = family.sample(100, 1);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.dim(), 12u);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto ra = a.row(i), rb = b.row(i);
    for (std::size_t d = 0; d < 12; ++d) EXPECT_EQ(ra[d], rb[d]);
  }
  // A different draw seed gives different points.
  const auto c = family.sample(100, 2);
  EXPECT_NE(a.row(0)[0], c.row(0)[0]);
}

TEST(Synthetic, MixtureIsActuallyClustered) {
  // Mean distance to same-draw points should be far below the distance
  // between random center pairs — i.e., local structure exists.
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 5;
  spec.cluster_std = 0.5f;
  spec.center_range = 20.0f;
  const data::GaussianMixture family(spec);
  const auto points = family.sample(200, 1);
  // Nearest-neighbor distance should be ~cluster scale, not center scale.
  double nearest_sum = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    float best = std::numeric_limits<float>::infinity();
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, core::l2(points.row(i), points.row(j)));
    }
    nearest_sum += best;
  }
  EXPECT_LT(nearest_sum / 50.0, 4.0 * spec.cluster_std * std::sqrt(8.0));
}

TEST(Synthetic, U8QuantizationPreservesNeighborhoods) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.seed = 9;
  const data::GaussianMixture family(spec);
  const auto f = family.sample(50, 1);
  const auto u = family.sample_u8(50, 1);
  ASSERT_EQ(u.size(), 50u);
  // The nearest float neighbor of point 0 should be among the closest few
  // u8 neighbors (quantization is order-preserving up to rounding).
  auto nearest = [&](const auto& store, auto dist) {
    std::size_t best_j = 1;
    float best = std::numeric_limits<float>::infinity();
    for (std::size_t j = 1; j < store.size(); ++j) {
      const float d = dist(store.row(0), store.row(j));
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    return best_j;
  };
  const auto nf = nearest(f, [](auto a, auto b) { return core::l2(a, b); });
  const auto nu = nearest(u, [](auto a, auto b) { return core::l2(a, b); });
  EXPECT_EQ(nf, nu);
}

TEST(Synthetic, UniformCoversRange) {
  const auto points = data::make_uniform(500, 4, -2.0f, 3.0f, 77);
  float lo = 1e9f, hi = -1e9f;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const float v : points.row(i)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  EXPECT_GE(lo, -2.0f);
  EXPECT_LT(hi, 3.0f);
  EXPECT_LT(lo, -1.5f);  // actually spans the range
  EXPECT_GT(hi, 2.5f);
}

TEST(Synthetic, SparseSetsAreSortedDistinctAndBounded) {
  data::SparseSetSpec spec;
  const data::SparseSetFamily family(spec);
  const auto points = family.sample(100, 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto row = points.row(i);
    EXPECT_GE(row.size(), spec.min_size);
    EXPECT_LE(row.size(), spec.max_size);
    for (std::size_t j = 1; j < row.size(); ++j) {
      EXPECT_LT(row[j - 1], row[j]);  // sorted + distinct
    }
    for (const auto item : row) EXPECT_LT(item, spec.universe);
  }
}

TEST(Synthetic, SparseTopicsCreateJaccardStructure) {
  data::SparseSetSpec spec;
  spec.num_topics = 4;  // few topics: same-topic pairs are common
  const data::SparseSetFamily family(spec);
  const auto points = family.sample(60, 1);
  // Some pair should be much closer than 1.0 (topic overlap).
  float best = 1.0f;
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      best = std::min(best, core::jaccard_sorted(points.row(i), points.row(j)));
    }
  }
  EXPECT_LT(best, 0.6f);
}

// -- registry ---------------------------------------------------------------------

TEST(Datasets, Table1HasAllEightRows) {
  const auto& specs = data::table1();
  ASSERT_EQ(specs.size(), 8u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_TRUE(names.contains("kosarak"));
  EXPECT_TRUE(names.contains("deep1b"));
  EXPECT_TRUE(names.contains("bigann"));
}

TEST(Datasets, SpecsMatchPaperTable1) {
  const auto& deep = data::dataset_by_name("deep1b");
  EXPECT_EQ(deep.dim, 96u);
  EXPECT_EQ(deep.paper_entries, 1'000'000'000u);
  EXPECT_EQ(deep.metric, core::Metric::kL2);
  EXPECT_TRUE(deep.billion_scale);

  const auto& bigann = data::dataset_by_name("bigann");
  EXPECT_EQ(bigann.dim, 128u);
  EXPECT_EQ(bigann.element, data::ElementKind::kUint8);

  const auto& kosarak = data::dataset_by_name("kosarak");
  EXPECT_EQ(kosarak.metric, core::Metric::kJaccard);
  EXPECT_EQ(kosarak.element, data::ElementKind::kSparseIds);

  const auto& glove = data::dataset_by_name("glove-25");
  EXPECT_EQ(glove.dim, 25u);
  EXPECT_EQ(glove.metric, core::Metric::kCosine);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(data::dataset_by_name("sift1b"), std::invalid_argument);
}

TEST(Datasets, FactoriesRespectScaleAndKind) {
  const auto& spec = data::dataset_by_name("glove-25");
  const auto ds = data::make_dense_float(spec, 0.1, 20);
  EXPECT_EQ(ds.base.size(), spec.scaled_entries / 10);
  EXPECT_EQ(ds.base.dim(), 25u);
  EXPECT_EQ(ds.queries.size(), 20u);

  EXPECT_THROW(data::make_dense_float(data::dataset_by_name("bigann"), 1, 1),
               std::invalid_argument);
  EXPECT_THROW(data::make_sparse(spec, 1, 1), std::invalid_argument);

  const auto u8 = data::make_dense_u8(data::dataset_by_name("bigann"), 0.05, 5);
  EXPECT_EQ(u8.base.dim(), 128u);

  const auto sparse =
      data::make_sparse(data::dataset_by_name("kosarak"), 0.1, 5);
  EXPECT_EQ(sparse.base.size(), 300u);
}

// -- file formats -------------------------------------------------------------------

TEST(Io, FvecsRoundTrip) {
  TempFile file("dnnd_io.fvecs");
  data::MixtureSpec spec;
  spec.dim = 7;
  const auto points = data::GaussianMixture(spec).sample(40, 1);
  data::write_fvecs(file.path(), points);
  const auto loaded = data::read_fvecs(file.path());
  ASSERT_EQ(loaded.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto a = points.row(i), b = loaded.row(i);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); ++d) EXPECT_EQ(a[d], b[d]);
  }
}

TEST(Io, BvecsRoundTrip) {
  TempFile file("dnnd_io.bvecs");
  data::MixtureSpec spec;
  spec.dim = 16;
  const auto points = data::GaussianMixture(spec).sample_u8(25, 1);
  data::write_bvecs(file.path(), points);
  const auto loaded = data::read_bvecs(file.path());
  ASSERT_EQ(loaded.size(), 25u);
  for (std::size_t i = 0; i < 25; ++i) {
    const auto a = points.row(i), b = loaded.row(i);
    for (std::size_t d = 0; d < a.size(); ++d) EXPECT_EQ(a[d], b[d]);
  }
}

TEST(Io, IvecsRoundTripWithVariableRows) {
  TempFile file("dnnd_io.ivecs");
  const std::vector<std::vector<core::VertexId>> rows = {
      {1, 2, 3}, {}, {42}, {7, 7, 7, 7}};
  data::write_ivecs(file.path(), rows);
  EXPECT_EQ(data::read_ivecs(file.path()), rows);
}

TEST(Io, FbinRoundTrip) {
  TempFile file("dnnd_io.fbin");
  data::MixtureSpec spec;
  spec.dim = 5;
  const auto points = data::GaussianMixture(spec).sample(30, 3);
  data::write_fbin(file.path(), points);
  const auto loaded = data::read_fbin(file.path());
  ASSERT_EQ(loaded.size(), 30u);
  ASSERT_EQ(loaded.dim(), 5u);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_EQ(points.row(i)[d], loaded.row(i)[d]);
    }
  }
}

TEST(Io, U8binRoundTrip) {
  TempFile file("dnnd_io.u8bin");
  data::MixtureSpec spec;
  spec.dim = 9;
  const auto points = data::GaussianMixture(spec).sample_u8(12, 1);
  data::write_u8bin(file.path(), points);
  const auto loaded = data::read_u8bin(file.path());
  ASSERT_EQ(loaded.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t d = 0; d < 9; ++d) {
      EXPECT_EQ(points.row(i)[d], loaded.row(i)[d]);
    }
  }
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(data::read_fvecs(temp_path("missing.fvecs")),
               std::runtime_error);
  EXPECT_THROW(data::read_fbin(temp_path("missing.fbin")), std::runtime_error);
}

TEST(Io, TruncatedFbinThrows) {
  TempFile file("dnnd_io_trunc.fbin");
  {
    std::ofstream out(file.path(), std::ios::binary);
    const std::uint32_t n = 100, dim = 100;
    out.write(reinterpret_cast<const char*>(&n), 4);
    out.write(reinterpret_cast<const char*>(&dim), 4);
    // promises 100*100 floats, writes none
  }
  EXPECT_THROW(data::read_fbin(file.path()), std::runtime_error);
}

}  // namespace

// Unit tests for the simulated transport (mpi::World) and the threaded
// phase driver's termination detection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "mpi/threaded_driver.hpp"
#include "mpi/world.hpp"

namespace {

using dnnd::mpi::Datagram;
using dnnd::mpi::World;

Datagram make_datagram(int source, std::uint32_t messages,
                       const std::string& payload) {
  Datagram d;
  d.source = source;
  d.message_count = messages;
  d.payload.resize(payload.size());
  std::memcpy(d.payload.data(), payload.data(), payload.size());
  return d;
}

TEST(World, RejectsNonPositiveRankCount) {
  EXPECT_THROW(World(0), std::invalid_argument);
  EXPECT_THROW(World(-3), std::invalid_argument);
}

TEST(World, DeliversInFifoOrder) {
  World world(2);
  world.note_messages_submitted(2);
  world.post(1, make_datagram(0, 1, "first"));
  world.post(1, make_datagram(0, 1, "second"));

  Datagram out;
  ASSERT_TRUE(world.try_collect(1, out));
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.payload.data()),
                        out.payload.size()),
            "first");
  ASSERT_TRUE(world.try_collect(1, out));
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(out.payload.data()),
                        out.payload.size()),
            "second");
  EXPECT_FALSE(world.try_collect(1, out));
}

TEST(World, MailboxesAreIndependent) {
  World world(3);
  world.note_messages_submitted(1);
  world.post(2, make_datagram(0, 1, "x"));
  EXPECT_TRUE(world.mailbox_empty(0));
  EXPECT_TRUE(world.mailbox_empty(1));
  EXPECT_FALSE(world.mailbox_empty(2));
}

TEST(World, QuiescenceTracksCounters) {
  World world(2);
  EXPECT_TRUE(world.quiescent());
  world.note_messages_submitted(3);
  EXPECT_FALSE(world.quiescent());
  world.note_messages_processed(2);
  EXPECT_FALSE(world.quiescent());
  world.note_messages_processed(1);
  EXPECT_TRUE(world.quiescent());
}

TEST(World, CountsDatagrams) {
  World world(2);
  world.note_messages_submitted(2);
  world.post(0, make_datagram(1, 1, "a"));
  world.post(1, make_datagram(0, 1, "b"));
  EXPECT_EQ(world.datagrams_posted(), 2u);
}

// -- Threaded driver ---------------------------------------------------------

TEST(ThreadedDriver, CompletesTrivialPhase) {
  World world(4);
  std::atomic<int> ran{0};
  dnnd::mpi::run_threaded_phase(
      world, 4, [&](int) { ran.fetch_add(1); }, [](int) {},
      [](int) { return std::size_t{0}; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadedDriver, DrainsMessageChains) {
  // Each message processed on a rank spawns a follow-up to the next rank
  // until a hop budget runs out; the barrier must not complete early.
  constexpr int kRanks = 4;
  constexpr int kInitialPerRank = 8;
  constexpr int kHops = 5;
  World world(kRanks);
  std::atomic<std::uint64_t> handled{0};

  auto send_hop = [&](int from, int hops_left) {
    Datagram d;
    d.source = from;
    d.message_count = 1;
    d.payload.resize(sizeof(int));
    std::memcpy(d.payload.data(), &hops_left, sizeof(int));
    world.note_messages_submitted(1);
    world.post((from + 1) % kRanks, std::move(d));
  };

  auto process = [&](int rank) -> std::size_t {
    Datagram d;
    std::size_t n = 0;
    while (world.try_collect(rank, d)) {
      int hops = 0;
      std::memcpy(&hops, d.payload.data(), sizeof(int));
      if (hops > 0) send_hop(rank, hops - 1);
      handled.fetch_add(1);
      world.note_messages_processed(1);
      ++n;
    }
    return n;
  };

  dnnd::mpi::run_threaded_phase(
      world, kRanks,
      [&](int rank) {
        for (int i = 0; i < kInitialPerRank; ++i) send_hop(rank, kHops);
      },
      [](int) {}, process);

  EXPECT_TRUE(world.quiescent());
  EXPECT_EQ(handled.load(),
            static_cast<std::uint64_t>(kRanks * kInitialPerRank * (kHops + 1)));
}

// -- Counter semantics under concurrency -------------------------------------

TEST(WorldCounters, ProcessedNeverExceedsSubmittedUnderThreads) {
  // The termination invariant: processed() can never be observed above
  // submitted(). The observer reads processed *first*, then submitted —
  // with submission-first counting that order bounds p <= s under every
  // interleaving; a post-first (or buffered-but-uncounted) protocol would
  // let the observer catch p > s or a spurious quiescent() mid-chain.
  constexpr int kRanks = 4;
  constexpr int kChains = 16;
  constexpr int kHops = 20;
  World world(kRanks);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t p = world.processed();
      const std::uint64_t s = world.submitted();
      if (p > s) violations.fetch_add(1);
    }
  });

  auto send_hop = [&](int from, int hops_left) {
    Datagram d;
    d.source = from;
    d.message_count = 1;
    d.payload.resize(sizeof(int));
    std::memcpy(d.payload.data(), &hops_left, sizeof(int));
    world.note_messages_submitted(1);
    // Widen the submitted-but-not-yet-visible window the counters must
    // cover (a real communicator buffers sends here).
    std::this_thread::yield();
    world.post((from + 1) % kRanks, std::move(d));
  };
  std::atomic<std::uint64_t> handled{0};
  auto process = [&](int rank) -> std::size_t {
    Datagram d;
    std::size_t n = 0;
    while (world.try_collect(rank, d)) {
      int hops = 0;
      std::memcpy(&hops, d.payload.data(), sizeof(int));
      if (hops > 0) send_hop(rank, hops - 1);
      handled.fetch_add(1);
      world.note_messages_processed(1);
      ++n;
    }
    return n;
  };

  dnnd::mpi::run_threaded_phase(
      world, kRanks,
      [&](int rank) {
        for (int i = 0; i < kChains; ++i) send_hop(rank, kHops);
      },
      [](int) {}, process);

  stop.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_TRUE(world.quiescent());
  // The barrier completed only after the *entire* chain volume drained: no
  // spurious fixpoint cut a chain short.
  EXPECT_EQ(handled.load(),
            static_cast<std::uint64_t>(kRanks * kChains * (kHops + 1)));
  EXPECT_EQ(world.submitted(), world.processed());
}

TEST(WorldCounters, SubmissionCountingClosesTheBufferingWindow) {
  // A message can be submitted (counted) long before its datagram is
  // posted. Quiescence must read false for the whole gap, else a driver
  // polling during it would exit its barrier with the message in flight.
  World world(2);
  EXPECT_TRUE(world.quiescent());
  world.note_messages_submitted(1);  // handed to the communicator...
  EXPECT_FALSE(world.quiescent());   // ...sitting in a send buffer
  world.post(1, make_datagram(0, 1, "late"));
  EXPECT_FALSE(world.quiescent());  // on the wire
  Datagram out;
  ASSERT_TRUE(world.try_collect(1, out));
  EXPECT_FALSE(world.quiescent());  // collected, handler not yet run
  world.note_messages_processed(1);
  EXPECT_TRUE(world.quiescent());
}

TEST(ThreadedDriver, PropagatesPhaseExceptions) {
  World world(3);
  EXPECT_THROW(
      dnnd::mpi::run_threaded_phase(
          world, 3,
          [](int rank) {
            if (rank == 1) throw std::runtime_error("boom");
          },
          [](int) {}, [](int) { return std::size_t{0}; }),
      std::runtime_error);
}

}  // namespace

// Offline analyzer tests: load-skew / straggler detection over a
// hand-written Chrome trace, the tolerance-based metrics diff, and the
// timeseries summary. Documents are authored as strings so each test
// pins the exact artifact shape the real exporters emit.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/analysis.hpp"
#include "util/json.hpp"

namespace {

using dnnd::telemetry::analyze_load;
using dnnd::telemetry::diff_metrics;
using dnnd::telemetry::summarize_timeseries;
namespace json = dnnd::util::json;

// A two-rank trace: rank 1 does 4x rank 0's work, one matched cross-rank
// flow pair plus one dangling start, and queue_us samples on the handler
// spans.
const char* kTrace = R"({"traceEvents":[
  {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
  {"name":"sample","cat":"phase","ph":"X","ts":0,"dur":100,"pid":0,"tid":0},
  {"name":"recv.type2","cat":"handler","ph":"X","ts":150,"dur":100,"pid":0,
   "tid":0,"args":{"trace":"0x1","span":"0x2","hop":1,"src":1,"queue_us":10}},
  {"name":"barrier_wait","cat":"comm","ph":"X","ts":300,"dur":400,"pid":0,
   "tid":0},
  {"name":"type2","cat":"flow","ph":"s","ts":10,"pid":0,"tid":0,"id":"0xa"},
  {"name":"type9","cat":"flow","ph":"s","ts":11,"pid":0,"tid":0,"id":"0xdead"},
  {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"rank 1"}},
  {"name":"sample","cat":"phase","ph":"X","ts":0,"dur":500,"pid":1,"tid":0},
  {"name":"recv.type3","cat":"handler","ph":"X","ts":600,"dur":300,"pid":1,
   "tid":0,"args":{"trace":"0x1","span":"0x3","hop":2,"src":0,"queue_us":90}},
  {"name":"recv.type2","cat":"handler","ph":"X","ts":950,"dur":0,"pid":1,
   "tid":0,"args":{"trace":"0x1","span":"0x4","hop":3,"src":0,"queue_us":20}},
  {"name":"type2","cat":"flow","ph":"f","ts":20,"pid":1,"tid":0,"id":"0xa",
   "bp":"e"}
],"displayTimeUnit":"ms"})";

TEST(AnalyzeLoad, ComputesSkewStragglersBarrierShareAndFlows) {
  const auto report = analyze_load(json::parse(kTrace), 1.25);

  ASSERT_EQ(report.ranks.size(), 2u);
  EXPECT_EQ(report.ranks[0].rank, 0);
  EXPECT_EQ(report.ranks[0].handler_us, 100u);
  EXPECT_EQ(report.ranks[0].phase_us, 100u);
  EXPECT_EQ(report.ranks[0].barrier_us, 400u);
  EXPECT_EQ(report.ranks[1].work_us(), 800u);

  // work: rank0 = 200, rank1 = 800 -> mean 500, max/mean = 1.6.
  EXPECT_DOUBLE_EQ(report.mean_work_us, 500.0);
  EXPECT_EQ(report.max_work_us, 800u);
  EXPECT_DOUBLE_EQ(report.max_over_mean, 1.6);
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0], 1);

  // barrier share = 400 / (1000 + 400).
  EXPECT_NEAR(report.barrier_share, 400.0 / 1400.0, 1e-9);

  EXPECT_EQ(report.queue_samples, 3u);
  EXPECT_EQ(report.queue_p50_us, 20u);
  EXPECT_EQ(report.queue_p99_us, 90u);

  EXPECT_EQ(report.flows_started, 2u);
  EXPECT_EQ(report.flows_finished, 1u);
  EXPECT_EQ(report.flows_matched, 1u);  // 0xa; 0xdead dangles
}

TEST(AnalyzeLoad, BalancedRunFlagsNoStragglers) {
  const auto doc = json::parse(
      R"({"traceEvents":[
        {"name":"w","cat":"phase","ph":"X","ts":0,"dur":100,"pid":0,"tid":0},
        {"name":"w","cat":"phase","ph":"X","ts":0,"dur":110,"pid":1,"tid":0}
      ]})");
  const auto report = analyze_load(doc, 1.25);
  EXPECT_TRUE(report.stragglers.empty());
  EXPECT_NEAR(report.max_over_mean, 110.0 / 105.0, 1e-9);
}

std::string metrics_doc(int msgs, int bytes, int retransmits, int evals) {
  std::ostringstream os;
  os << R"({"schema":"dnnd.metrics.v1","enabled":true,"ranks":2,"handlers":[)"
     << R"({"label":"ping","remote_messages":)" << msgs
     << R"(,"remote_bytes":)" << bytes
     << R"(,"local_messages":0,"local_bytes":0}],)"
     << R"("transport":{"retransmits":)" << retransmits
     << R"(,"duplicates_suppressed":0,"acks_sent":0,"acks_received":0},)"
     << R"("metrics":{"counters":{"engine.distance_evals":)" << evals
     << R"(,"comm.barrier_wait_us":999},"gauges":{},"histograms":{}}})";
  return os.str();
}

TEST(DiffMetrics, IdenticalDocumentsPassAtZeroTolerance) {
  const auto doc = json::parse(metrics_doc(100, 4000, 0, 5000));
  const auto report = diff_metrics(doc, doc, 0.0);
  EXPECT_TRUE(report.within_tolerance());
  EXPECT_EQ(report.violations, 0u);
  // handler row (4 fields) + transport (4) + 1 counter; the _us-suffixed
  // counter is wall-clock-valued and must be excluded from the diff.
  EXPECT_EQ(report.compared, 9u);
}

TEST(DiffMetrics, DriftBeyondToleranceFailsAndSortsViolationsFirst) {
  const auto base = json::parse(metrics_doc(100, 4000, 0, 5000));
  const auto cur = json::parse(metrics_doc(103, 4000, 0, 5000));
  EXPECT_TRUE(diff_metrics(base, cur, 5.0).within_tolerance());

  const auto report = diff_metrics(base, cur, 1.0);
  EXPECT_FALSE(report.within_tolerance());
  EXPECT_EQ(report.violations, 1u);
  ASSERT_FALSE(report.deltas.empty());
  EXPECT_TRUE(report.deltas[0].violated);  // violations sort first
  EXPECT_EQ(report.deltas[0].name, "handler.ping.remote_messages");
  EXPECT_NEAR(report.deltas[0].rel_change, 0.03, 1e-9);
}

TEST(DiffMetrics, ZeroBaselineToleratesOnlyZero) {
  const auto base = json::parse(metrics_doc(100, 4000, 0, 5000));
  const auto cur = json::parse(metrics_doc(100, 4000, 7, 5000));
  // retransmits 0 -> 7 violates at any tolerance.
  EXPECT_FALSE(diff_metrics(base, cur, 1000.0).within_tolerance());
}

TEST(DiffMetrics, CountersPresentOnOneSideOnlyViolateUnlessZero) {
  const auto base = json::parse(metrics_doc(100, 4000, 0, 5000));
  auto with_extra = [](int value) {
    std::string doc = metrics_doc(100, 4000, 0, 5000);
    const std::string needle = "\"engine.distance_evals\"";
    doc.insert(doc.find(needle),
               "\"engine.new_counter\":" + std::to_string(value) + ",");
    return json::parse(doc);
  };
  // A brand-new non-zero counter is a behaviour change...
  const auto report = diff_metrics(base, with_extra(5), 50.0);
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_EQ(report.only_in_current[0], "counter.engine.new_counter");
  EXPECT_FALSE(report.within_tolerance());
  // ...but a zero-valued one (never-hit code path) is not.
  EXPECT_TRUE(diff_metrics(base, with_extra(0), 50.0).within_tolerance());
}

TEST(SummarizeTimeseries, CountsSnapshotsAndIterations) {
  const auto doc = json::parse(
      R"({"schema":"dnnd.timeseries.v1","enabled":true,"ranks":2,"tick_us":0,
          "snapshots":[
            {"t_us":100,"seq":1,"label":"iteration","per_rank":[]},
            {"t_us":200,"seq":2,"label":"tick","per_rank":[]},
            {"t_us":450,"seq":3,"label":"iteration","per_rank":[]}
          ]})");
  const auto summary = summarize_timeseries(doc);
  EXPECT_TRUE(summary.enabled);
  EXPECT_EQ(summary.snapshots, 3u);
  EXPECT_EQ(summary.iteration_snapshots, 2u);
  EXPECT_EQ(summary.span_us, 350u);
}

TEST(LoadJsonFile, MissingFileIsNulloptCorruptFileThrows) {
  EXPECT_FALSE(
      dnnd::telemetry::load_json_file("/nonexistent/path.json").has_value());
  const std::string path = ::testing::TempDir() + "corrupt.json";
  { std::ofstream(path) << "{not json"; }
  EXPECT_THROW((void)dnnd::telemetry::load_json_file(path),
               std::runtime_error);
}

}  // namespace

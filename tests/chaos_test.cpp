// Chaos harness for the DNND build under transport faults.
//
// Each case runs a full distributed NN-Descent build on a faulty transport
// (drops, duplicates, delays, reordering, rank stalls) and asserts the
// ISSUE invariants:
//
//   1. the termination-detecting barrier always reaches true quiescence
//      (submitted == processed, never a spurious fixpoint);
//   2. no application message is processed twice (the retry/dedup protocol
//      restores exactly-once semantics), so the constructed graph is
//      *bit-identical* to the fault-free build with the same engine seed;
//   3. recall@10 against brute force is therefore unchanged;
//   4. transport/injector statistics are consistent with the injected
//      faults (drops imply retransmits, duplicates imply suppressions).
//
// Bit-identity needs a schedule-independent configuration: delta = 0 (the
// c == 0 convergence test is schedule-independent, nonzero c counts are
// not), redundant_check_reduction = false (a lossy heuristic whose effect
// depends on message arrival order), and distribute() rather than the
// exchange path. Distance pruning stays ON — it is lossless (DESIGN.md).
//
// Replaying a failure: every assertion carries a SCOPED_TRACE line of the
// form `replay: DNND_CHAOS_SEED=<s> DNND_CHAOS_PLAN=<name>`. Exporting
// those variables makes this binary run exactly (and only) the failing
// combination; the whole schedule is a pure function of the two seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/distance_kernels.hpp"
#include "core/dnnd_runner.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"
#include "mpi/fault_injector.hpp"

namespace {

using namespace dnnd;  // NOLINT
using comm::Config;
using comm::DriverKind;
using comm::Environment;
using core::DnndConfig;
using core::DnndRunner;
using mpi::EdgePolicy;
using mpi::FaultPlan;

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

constexpr std::size_t kN = 320;
constexpr std::size_t kK = 10;
constexpr int kRanks = 4;

const core::FeatureStore<float>& dataset() {
  static const core::FeatureStore<float> points = [] {
    data::MixtureSpec spec;
    spec.dim = 8;
    spec.num_clusters = 10;
    spec.seed = 29;
    return data::GaussianMixture(spec).sample(kN, 1);
  }();
  return points;
}

const core::KnnGraph& exact_graph() {
  static const core::KnnGraph g =
      baselines::brute_force_knn_graph(dataset(), L2Fn{}, kK);
  return g;
}

/// Schedule-independent engine configuration (see file comment).
/// `threads` is the intra-rank pool size: the matrix pins the reference
/// to 1 and spot-checks threads = 4 cases against it, proving fault
/// recovery and intra-rank threading compose without losing a bit.
DnndConfig chaos_config(std::uint64_t engine_seed, std::size_t threads = 1) {
  DnndConfig cfg;
  cfg.k = kK;
  cfg.delta = 0.0;
  cfg.max_iterations = 10;
  cfg.batch_size = 4096;  // small batches: many barriers under faults
  cfg.redundant_check_reduction = false;
  cfg.seed = engine_seed;
  cfg.threads_per_rank = threads;
  return cfg;
}

struct BuildResult {
  core::KnnGraph graph;
  double recall = 0.0;
};

BuildResult run_build(std::uint64_t engine_seed, FaultPlan plan,
                      DriverKind driver) {
  Config cfg{.num_ranks = kRanks, .driver = driver};
  cfg.fault_plan = std::move(plan);
  Environment env(cfg);
  DnndRunner<float, L2Fn> runner(env, chaos_config(engine_seed), L2Fn{});
  runner.distribute(dataset());
  runner.build();

  EXPECT_TRUE(env.world().quiescent())
      << "spurious barrier exit: submitted=" << env.world().submitted()
      << " processed=" << env.world().processed();
  EXPECT_EQ(env.world().submitted(), env.world().processed());

  BuildResult result;
  result.graph = runner.gather();
  result.recall = core::graph_recall(result.graph, exact_graph(), kK);
  return result;
}

/// Fault-free sequential reference for an engine seed, computed once.
const BuildResult& reference(std::uint64_t engine_seed) {
  static std::map<std::uint64_t, BuildResult> cache;
  auto it = cache.find(engine_seed);
  if (it == cache.end()) {
    it = cache.emplace(engine_seed,
                       run_build(engine_seed, FaultPlan{},
                                 DriverKind::kSequential))
             .first;
  }
  return it->second;
}

struct NamedPlan {
  const char* name;
  FaultPlan plan;  ///< plan.seed is mixed per-case before use
};

std::vector<NamedPlan> chaos_plans() {
  std::vector<NamedPlan> plans;
  {
    NamedPlan p{.name = "protocol_only", .plan = {}};
    p.plan.force_protocol = true;
    plans.push_back(std::move(p));
  }
  {
    NamedPlan p{.name = "light_mix", .plan = {}};
    p.plan.defaults = EdgePolicy{.drop = 0.05,
                                 .duplicate = 0.05,
                                 .delay = 0.1,
                                 .reorder = 0.1,
                                 .max_delay_ticks = 6};
    plans.push_back(std::move(p));
  }
  {
    NamedPlan p{.name = "drop_heavy", .plan = {}};
    p.plan.defaults = EdgePolicy{.drop = 0.25};
    plans.push_back(std::move(p));
  }
  {
    NamedPlan p{.name = "delay_reorder", .plan = {}};
    p.plan.defaults =
        EdgePolicy{.delay = 0.5, .reorder = 0.5, .max_delay_ticks = 16};
    plans.push_back(std::move(p));
  }
  {
    NamedPlan p{.name = "stall_drop", .plan = {}};
    p.plan.defaults = EdgePolicy{.drop = 0.1};
    p.plan.stall = 0.02;
    p.plan.max_stall_ticks = 12;
    plans.push_back(std::move(p));
  }
  return plans;
}

/// splitmix64-style mix so every (engine seed, plan) pair gets an
/// independent fault-schedule seed.
std::uint64_t mix_seed(std::uint64_t engine_seed, std::size_t plan_index) {
  std::uint64_t z = engine_seed * 0x9e3779b97f4a7c15ULL +
                    (plan_index + 1) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct ChaosCase {
  std::uint64_t engine_seed;
  std::size_t plan_index;
  DriverKind driver;
  std::size_t threads = 1;  ///< intra-rank pool size (Config::threads_per_rank)
};

std::string case_name(const ::testing::TestParamInfo<ChaosCase>& info) {
  const auto plans = chaos_plans();
  std::string name = plans[info.param.plan_index].name;
  name += "_s" + std::to_string(info.param.engine_seed);
  name += info.param.driver == DriverKind::kSequential ? "_seq" : "_thr";
  if (info.param.threads > 1) {
    name += "_t" + std::to_string(info.param.threads);
  }
  return name;
}

std::vector<std::uint64_t> matrix_engine_seeds() { return {11, 12, 13, 14}; }

std::vector<ChaosCase> make_cases() {
  std::vector<ChaosCase> cases;
  const auto plans = chaos_plans();
  // 4 engine seeds x 5 plans = 20 sequential combinations...
  for (const std::uint64_t seed : matrix_engine_seeds()) {
    for (std::size_t p = 0; p < plans.size(); ++p) {
      cases.push_back(ChaosCase{seed, p, DriverKind::kSequential});
    }
  }
  // ...plus threaded spot checks (protocol + heaviest two plans).
  for (std::uint64_t seed : {11ULL, 14ULL}) {
    cases.push_back(ChaosCase{seed, 2, DriverKind::kThreaded});
    cases.push_back(ChaosCase{seed, 4, DriverKind::kThreaded});
  }
  // ...plus intra-rank-threaded spot checks: faults AND a 4-thread pool,
  // still bit-identical to the single-threaded fault-free reference.
  for (std::uint64_t seed : {12ULL, 13ULL}) {
    cases.push_back(ChaosCase{seed, 1, DriverKind::kSequential, 4});
    cases.push_back(ChaosCase{seed, 4, DriverKind::kSequential, 4});
  }
  cases.push_back(ChaosCase{14, 2, DriverKind::kThreaded, 4});
  return cases;
}

// Guard against silent no-op replays: a typo'd DNND_CHAOS_PLAN /
// DNND_CHAOS_SEED would otherwise skip every matrix case and report green.
TEST(Chaos, ReplayFilterMatchesAKnownCombination) {
  if (const char* plan = std::getenv("DNND_CHAOS_PLAN")) {
    std::string valid;
    bool known = false;
    for (const auto& p : chaos_plans()) {
      known = known || std::string(plan) == p.name;
      valid += std::string(" ") + p.name;
    }
    // tests/run_chaos.sh drives this suite AND the recovery suite with the
    // same replay variable, so kill plans (tests/recovery_test.cpp) are
    // valid-but-foreign here: they must not trip the typo guard.
    for (const char* p :
         {"kill_r1_early", "kill_r0_mid", "kill_r3_late", "double_kill"}) {
      known = known || std::string(plan) == p;
      valid += std::string(" ") + p;
    }
    EXPECT_TRUE(known) << "DNND_CHAOS_PLAN='" << plan
                       << "' matches no plan; valid:" << valid;
  }
  if (const char* seed = std::getenv("DNND_CHAOS_SEED")) {
    auto seeds = matrix_engine_seeds();
    // The recovery matrix (tests/recovery_test.cpp) replays through the
    // same variable; its seeds are valid-but-foreign here.
    seeds.insert(seeds.end(), {21, 22});
    const std::uint64_t want = std::stoull(seed);
    const bool known = std::find(seeds.begin(), seeds.end(), want) !=
                       seeds.end();
    std::string valid;
    for (const auto s : seeds) valid += " " + std::to_string(s);
    EXPECT_TRUE(known) << "DNND_CHAOS_SEED=" << seed
                       << " is not in the matrix; valid:" << valid;
  }
}

class ChaosBuild : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosBuild, ReachesQuiescenceWithBitIdenticalGraph) {
  const ChaosCase& c = GetParam();
  const NamedPlan named = chaos_plans()[c.plan_index];

  // Replay filter: when DNND_CHAOS_SEED / DNND_CHAOS_PLAN are exported,
  // run only the matching combination.
  if (const char* want = std::getenv("DNND_CHAOS_SEED");
      want != nullptr && std::stoull(want) != c.engine_seed) {
    GTEST_SKIP() << "DNND_CHAOS_SEED filter";
  }
  if (const char* want = std::getenv("DNND_CHAOS_PLAN");
      want != nullptr && std::string(want) != named.name) {
    GTEST_SKIP() << "DNND_CHAOS_PLAN filter";
  }
  SCOPED_TRACE("replay: DNND_CHAOS_SEED=" + std::to_string(c.engine_seed) +
               " DNND_CHAOS_PLAN=" + named.name);

  FaultPlan plan = named.plan;
  plan.seed = mix_seed(c.engine_seed, c.plan_index);

  Config cfg{.num_ranks = kRanks, .driver = c.driver};
  cfg.fault_plan = plan;
  Environment env(cfg);
  DnndRunner<float, L2Fn> runner(env, chaos_config(c.engine_seed, c.threads),
                                 L2Fn{});
  runner.distribute(dataset());
  runner.build();

  // Invariant 1: true quiescence, exact counters.
  EXPECT_TRUE(env.world().quiescent());
  EXPECT_EQ(env.world().submitted(), env.world().processed());

  // Invariants 2 + 3: same graph, same recall as the fault-free build.
  const auto graph = runner.gather();
  const BuildResult& ref = reference(c.engine_seed);
  EXPECT_TRUE(graph == ref.graph)
      << "graph diverged from the fault-free reference";
  EXPECT_DOUBLE_EQ(core::graph_recall(graph, exact_graph(), kK), ref.recall);
  EXPECT_GT(ref.recall, 0.9);  // and the build is actually good

  // Invariant 4: statistics consistent with the injected faults. Every
  // injector-duplicated data datagram's extra copy is either suppressed on
  // arrival or still parked in a delay queue at the end (delayed -
  // released); retransmit-induced duplicates only add suppressions.
  const auto faults = env.fault_stats();
  const auto transport = env.aggregate_transport_counters();
  EXPECT_GT(faults.posted, 0u);
  EXPECT_GE(transport.duplicates_suppressed +
                (faults.delayed - faults.released),
            faults.duplicated_data);
  if (named.plan.defaults.drop > 0.0) {
    EXPECT_GT(faults.dropped, 0u);
    EXPECT_GT(transport.retransmits, 0u);
  }
  if (named.plan.defaults.delay > 0.0) {
    EXPECT_GT(faults.delayed, 0u);
    EXPECT_GE(faults.delayed, faults.released);
  }
  if (named.plan.stall > 0.0) {
    EXPECT_GT(faults.stalls_entered, 0u);
  }
  if (named.plan.force_protocol) {
    // No faults injected: nothing dropped and every ack datagram flows,
    // though heavy backlogs can still trigger (harmless, deduped)
    // early retransmits before an ack is processed.
    EXPECT_EQ(faults.dropped, 0u);
    EXPECT_EQ(faults.duplicated, 0u);
    EXPECT_GT(transport.acks_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ChaosBuild, ::testing::ValuesIn(make_cases()),
                         case_name);

// Dispatch cross-check: the kernel determinism contract
// (core/distance_kernels.hpp) says forcing the scalar reference cannot
// change a single distance bit, so a faulty build under forced-scalar
// dispatch must still be bit-identical to the fault-free reference built
// under the default dispatch (AVX2 where the host supports it).
TEST(Chaos, LightMixUnderForcedScalarMatchesDefaultDispatchReference) {
  const std::uint64_t engine_seed = 11;
  // Computed (and cached) BEFORE the override, under default dispatch.
  const BuildResult& ref = reference(engine_seed);

  FaultPlan plan = chaos_plans()[1].plan;  // light_mix
  plan.seed = mix_seed(engine_seed, 1);
  core::ScopedKernelDispatch scalar_only(core::KernelDispatch::kForceScalar);
  const BuildResult scalar =
      run_build(engine_seed, std::move(plan), DriverKind::kSequential);
  EXPECT_TRUE(scalar.graph == ref.graph)
      << "forced-scalar chaos build diverged from the default-dispatch "
         "fault-free reference";
  EXPECT_DOUBLE_EQ(scalar.recall, ref.recall);
}

// The sequential chaos schedule itself is deterministic: same seeds, same
// injector event counts, datagram for datagram.
TEST(Chaos, SequentialFaultScheduleReplaysExactly) {
  FaultPlan plan = chaos_plans()[1].plan;  // light_mix
  plan.seed = mix_seed(99, 1);
  auto run_once = [&]() {
    Config cfg{.num_ranks = kRanks};
    cfg.fault_plan = plan;
    Environment env(cfg);
    DnndRunner<float, L2Fn> runner(env, chaos_config(99), L2Fn{});
    runner.distribute(dataset());
    runner.build();
    return std::tuple{env.world().datagrams_posted(), env.fault_stats().posted,
                      env.fault_stats().dropped, env.fault_stats().duplicated,
                      env.fault_stats().delayed,
                      env.aggregate_transport_counters().retransmits};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace

// Property tests for the striped-lock NeighborList update path.
//
// Two distinct guarantees are exercised (see neighbor_list.hpp):
//
//   1. Canonical merge (the production path in nn_descent's
//      apply_pending): partitioning a pending-update stream by target
//      stripe — one pool task per stripe, stream order preserved within
//      the task — yields the SAME final lists and the SAME summed return
//      codes as the serial fold, bit for bit, for ANY stream (duplicate
//      ids, tied distances, repeated targets). This holds because
//      updates to one list commute with updates to any other, and each
//      list's own update subsequence arrives in stream order.
//
//   2. Contended convergence (the hammer): under arbitrary thread
//      interleavings through update_locked(), the final contents still
//      equal the serial canonical fold whenever every (list, candidate)
//      pair carries one fixed distance and distances are distinct within
//      a list — the list converges to its K smallest-distance candidates
//      regardless of arrival order. (Summed return codes ARE
//      interleaving-dependent here, so only contents are asserted.)
//
// The hammer is the TSan workload for this subsystem: every access to a
// list goes through its stripe mutex, so tests/run_matrix.sh's tsan leg
// would flag any unlocked path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/neighbor_list.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace {

using namespace dnnd;  // NOLINT
using core::Dist;
using core::NeighborList;
using core::StripedNeighborLocks;
using core::ThreadPool;
using core::VertexId;

struct Update {
  VertexId target;
  VertexId candidate;
  Dist distance;
  bool is_new;
};

/// Serial canonical fold: the ground truth both properties compare to.
std::uint64_t apply_serial(std::vector<NeighborList>& lists,
                           const std::vector<Update>& stream) {
  std::uint64_t c = 0;
  for (const Update& u : stream) {
    c += static_cast<std::uint64_t>(
        lists[u.target].update(u.candidate, u.distance, u.is_new));
  }
  return c;
}

std::vector<NeighborList> make_lists(std::size_t n, std::size_t capacity) {
  std::vector<NeighborList> lists;
  lists.reserve(n);
  for (std::size_t i = 0; i < n; ++i) lists.emplace_back(capacity);
  return lists;
}

bool same_rows(const std::vector<NeighborList>& a,
               const std::vector<NeighborList>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].sorted() != b[i].sorted()) return false;
  }
  return true;
}

/// Adversarial stream: repeated targets, duplicate candidate ids with
/// DIFFERENT distances (order-dependent on purpose — the canonical merge
/// must still match), ties, and distances clustered so capacity eviction
/// churns.
std::vector<Update> random_stream(std::size_t num_lists, std::size_t length,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Update> stream;
  stream.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    Update u;
    u.target = static_cast<VertexId>(rng.uniform_below(num_lists));
    u.candidate = static_cast<VertexId>(rng.uniform_below(64));
    // Quantized distances: plenty of exact ties and duplicates.
    u.distance = static_cast<Dist>(rng.uniform_below(32)) * 0.5f;
    u.is_new = rng.uniform_below(2) == 1;
    stream.push_back(u);
  }
  return stream;
}

// -- property 1: canonical stripe merge == serial fold -----------------------

class StripedMerge
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(StripedMerge, MatchesSerialFoldExactly) {
  const auto [threads, capacity] = GetParam();
  constexpr std::size_t kLists = 24;
  StripedNeighborLocks locks;  // 8 stripes over 24 lists
  ThreadPool pool(threads);

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto stream = random_stream(kLists, 800, seed);

    auto serial = make_lists(kLists, capacity);
    const std::uint64_t serial_c = apply_serial(serial, stream);

    // The production merge shape: one task per stripe, each holding its
    // stripe lock across the scan, per-stripe counters summed in stripe
    // order (exactly nn_descent's apply_pending).
    auto striped = make_lists(kLists, capacity);
    std::vector<std::uint64_t> stripe_c(locks.stripes(), 0);
    pool.run(locks.stripes(), [&](std::size_t s) {
      std::uint64_t local = 0;
      const std::lock_guard<std::mutex> lock(locks.mutex_at(s));
      for (const Update& u : stream) {
        if (locks.stripe_of(u.target) != s) continue;
        local += static_cast<std::uint64_t>(
            striped[u.target].update(u.candidate, u.distance, u.is_new));
      }
      stripe_c[s] = local;
    });
    std::uint64_t striped_total = 0;
    for (const std::uint64_t c : stripe_c) striped_total += c;

    EXPECT_TRUE(same_rows(serial, striped))
        << "threads=" << threads << " capacity=" << capacity
        << " seed=" << seed;
    EXPECT_EQ(striped_total, serial_c)
        << "threads=" << threads << " capacity=" << capacity
        << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StripedMerge,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4, 8),
                       ::testing::Values<std::size_t>(1, 4, 10)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_cap" +
             std::to_string(std::get<1>(info.param));
    });

// -- property 2: update_locked hammer ----------------------------------------

struct HammerCase {
  std::size_t threads;
  std::size_t capacity;
  std::size_t candidates;  ///< per list; < capacity exercises underfill
};

std::string hammer_name(const ::testing::TestParamInfo<HammerCase>& info) {
  return "t" + std::to_string(info.param.threads) + "_cap" +
         std::to_string(info.param.capacity) + "_c" +
         std::to_string(info.param.candidates);
}

class LockedHammer : public ::testing::TestWithParam<HammerCase> {};

TEST_P(LockedHammer, ConvergesToSerialFoldUnderContention) {
  const HammerCase& c = GetParam();
  constexpr std::size_t kLists = 12;
  util::Xoshiro256 rng(0xBEEF + c.threads * 131 + c.capacity);

  // Fixed (list, candidate) -> distance map with DISTINCT distances per
  // list: the convergence property's precondition. Candidate ids collide
  // across lists on purpose (same id, different owner, different
  // distance).
  std::vector<std::vector<Update>> fixed(kLists);
  for (std::size_t li = 0; li < kLists; ++li) {
    std::vector<Dist> dists;
    for (std::size_t j = 0; j < c.candidates; ++j) {
      dists.push_back(1.0f + static_cast<Dist>(j) * 0.25f);
    }
    util::shuffle(dists.begin(), dists.end(), rng);
    for (std::size_t j = 0; j < c.candidates; ++j) {
      fixed[li].push_back(Update{static_cast<VertexId>(li),
                                 static_cast<VertexId>(j), dists[j], true});
    }
  }

  // Serial reference: fold each list's fixed updates in id order.
  auto expected = make_lists(kLists, c.capacity);
  for (const auto& per_list : fixed) apply_serial(expected, per_list);

  // Each worker gets its own shuffled copy of the FULL update set
  // (every pair appears in every worker: maximal duplication), then all
  // workers hammer the shared lists through update_locked concurrently.
  std::vector<std::vector<Update>> schedules(c.threads);
  for (std::size_t t = 0; t < c.threads; ++t) {
    for (const auto& per_list : fixed) {
      schedules[t].insert(schedules[t].end(), per_list.begin(),
                          per_list.end());
    }
    util::shuffle(schedules[t].begin(), schedules[t].end(), rng);
  }

  StripedNeighborLocks locks;
  auto lists = make_lists(kLists, c.capacity);
  std::vector<std::thread> workers;
  workers.reserve(c.threads);
  for (std::size_t t = 0; t < c.threads; ++t) {
    workers.emplace_back([&, t]() {
      for (const Update& u : schedules[t]) {
        lists[u.target].update_locked(locks, u.target, u.candidate,
                                      u.distance, u.is_new);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_TRUE(same_rows(lists, expected))
      << "contended result diverged from the serial canonical fold";
  // Spot-check the convergence property directly: each list holds its
  // min(capacity, candidates) smallest distances.
  for (std::size_t li = 0; li < kLists; ++li) {
    const auto row = lists[li].sorted();
    ASSERT_EQ(row.size(), std::min(c.capacity, c.candidates)) << li;
    std::vector<Dist> want;
    for (const Update& u : fixed[li]) want.push_back(u.distance);
    std::sort(want.begin(), want.end());
    for (std::size_t j = 0; j < row.size(); ++j) {
      EXPECT_EQ(row[j].distance, want[j]) << "list " << li << " slot " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LockedHammer,
    ::testing::Values(HammerCase{2, 4, 16}, HammerCase{4, 4, 16},
                      HammerCase{8, 4, 16}, HammerCase{4, 1, 16},
                      HammerCase{4, 10, 6},  // underfilled: never evicts
                      HammerCase{8, 16, 48}),
    hammer_name);

// -- plumbing sanity ---------------------------------------------------------

TEST(StripedLocks, StripeOfIsStableAndInRange) {
  StripedNeighborLocks locks(8);
  EXPECT_EQ(locks.stripes(), 8u);
  for (VertexId id = 0; id < 100; ++id) {
    const std::size_t s = locks.stripe_of(id);
    EXPECT_LT(s, locks.stripes());
    EXPECT_EQ(s, locks.stripe_of(id));  // pure function of the id
  }
  // Degenerate request still yields a usable lock set.
  StripedNeighborLocks one(0);
  EXPECT_EQ(one.stripes(), 1u);
  EXPECT_EQ(one.stripe_of(12345), 0u);
}

TEST(UpdateLocked, EqualsPlainUpdateSingleThreaded) {
  StripedNeighborLocks locks;
  NeighborList plain(4), locked(4);
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<VertexId>(rng.uniform_below(32));
    const auto d = static_cast<Dist>(rng.uniform_below(64)) * 0.25f;
    const int a = plain.update(id, d, true);
    const int b = locked.update_locked(locks, 5, id, d, true);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(plain.sorted(), locked.sorted());
}

}  // namespace

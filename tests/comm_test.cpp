// Unit tests for the asynchronous communication layer: handler dispatch,
// buffering, statistics, and both phase drivers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/environment.hpp"

namespace {

using dnnd::comm::Communicator;
using dnnd::comm::Config;
using dnnd::comm::DriverKind;
using dnnd::comm::Environment;
using dnnd::comm::HandlerId;
using dnnd::comm::MessageStats;

TEST(Communicator, DeliversAsyncCallWithArguments) {
  Environment env(Config{.num_ranks = 2});
  std::uint32_t received = 0;
  int source = -1;
  // Handlers must be registered on all ranks in the same order.
  std::vector<HandlerId> ids;
  for (int r = 0; r < 2; ++r) {
    ids.push_back(env.comm(r).register_handler(
        "probe", [&, r](int src, dnnd::serial::InArchive& ar) {
          received = ar.read<std::uint32_t>();
          source = src;
          EXPECT_EQ(r, 1);  // only rank 1 should run it
        }));
  }
  env.execute_phase([&](int rank) {
    if (rank == 0) env.comm(0).async(1, ids[0], std::uint32_t{77});
  });
  EXPECT_EQ(received, 77u);
  EXPECT_EQ(source, 0);
}

TEST(Communicator, SelfSendIsDeliveredAndCountedLocal) {
  Environment env(Config{.num_ranks = 1});
  int calls = 0;
  const HandlerId h = env.comm(0).register_handler(
      "self", [&](int, dnnd::serial::InArchive& ar) {
        ar.read<std::uint8_t>();
        ++calls;
      });
  env.execute_phase([&](int) { env.comm(0).async(0, h, std::uint8_t{1}); });
  EXPECT_EQ(calls, 1);
  const auto& counters = env.comm(0).stats().handler(h);
  EXPECT_EQ(counters.local_messages, 1u);
  EXPECT_EQ(counters.remote_messages, 0u);
}

TEST(Communicator, HandlersCanSendFollowUps) {
  // A → B → C chain within one barrier.
  Environment env(Config{.num_ranks = 3});
  std::vector<HandlerId> hop(3), sink(3);
  int arrived = 0;
  for (int r = 0; r < 3; ++r) {
    hop[r] = env.comm(r).register_handler(
        "hop", [&env, &sink, r](int, dnnd::serial::InArchive& ar) {
          const auto payload = ar.read<std::uint32_t>();
          env.comm(r).async(2, sink[r], payload);
        });
    sink[r] = env.comm(r).register_handler(
        "sink", [&](int, dnnd::serial::InArchive& ar) {
          EXPECT_EQ(ar.read<std::uint32_t>(), 5u);
          ++arrived;
        });
  }
  env.execute_phase([&](int rank) {
    if (rank == 0) env.comm(0).async(1, hop[0], std::uint32_t{5});
  });
  EXPECT_EQ(arrived, 1);
}

TEST(Communicator, BuffersUntilThresholdThenFlushes) {
  Config cfg{.num_ranks = 2};
  cfg.send_buffer_bytes = 1024;  // large: nothing flushes on its own
  Environment env(cfg);
  const HandlerId h0 = env.comm(0).register_handler(
      "noop", [](int, dnnd::serial::InArchive& ar) { ar.read<std::uint8_t>(); });
  (void)env.comm(1).register_handler(
      "noop", [](int, dnnd::serial::InArchive& ar) { ar.read<std::uint8_t>(); });

  env.comm(0).async(1, h0, std::uint8_t{1});
  env.comm(0).async(1, h0, std::uint8_t{2});
  // Buffered, not yet posted: no datagram on the wire.
  EXPECT_EQ(env.world().datagrams_posted(), 0u);
  env.comm(0).flush();
  // Both messages travel in a single datagram (YGM-style aggregation).
  EXPECT_EQ(env.world().datagrams_posted(), 1u);
  env.quiesce();
  EXPECT_TRUE(env.world().quiescent());
}

TEST(Communicator, ZeroBufferSendsImmediately) {
  Config cfg{.num_ranks = 2};
  cfg.send_buffer_bytes = 0;
  Environment env(cfg);
  const HandlerId h = env.comm(0).register_handler(
      "noop", [](int, dnnd::serial::InArchive& ar) { ar.read<std::uint8_t>(); });
  (void)env.comm(1).register_handler(
      "noop", [](int, dnnd::serial::InArchive& ar) { ar.read<std::uint8_t>(); });
  env.comm(0).async(1, h, std::uint8_t{1});
  EXPECT_EQ(env.world().datagrams_posted(), 1u);
  env.quiesce();
}

TEST(Communicator, StatsCountMessagesAndBytesPerHandler) {
  Environment env(Config{.num_ranks = 2});
  std::vector<HandlerId> big(2), small(2);
  for (int r = 0; r < 2; ++r) {
    big[r] = env.comm(r).register_handler(
        "big", [](int, dnnd::serial::InArchive& ar) { ar.read_vector<float>(); });
    small[r] = env.comm(r).register_handler(
        "small", [](int, dnnd::serial::InArchive& ar) { ar.read<std::uint8_t>(); });
  }
  env.execute_phase([&](int rank) {
    if (rank != 0) return;
    env.comm(0).async(1, big[0], std::vector<float>(100, 1.0f));
    env.comm(0).async(1, small[0], std::uint8_t{1});
    env.comm(0).async(1, small[0], std::uint8_t{2});
  });
  const auto& sb = env.comm(0).stats().handler(big[0]);
  const auto& ss = env.comm(0).stats().handler(small[0]);
  EXPECT_EQ(sb.remote_messages, 1u);
  EXPECT_EQ(ss.remote_messages, 2u);
  // big: 1B handler id + ~2B varint length + 400B floats.
  EXPECT_GT(sb.remote_bytes, 400u);
  EXPECT_LT(sb.remote_bytes, 410u);
  EXPECT_GT(sb.remote_bytes, ss.remote_bytes);
}

TEST(MessageStatsUnit, MergeAddsAndValidates) {
  MessageStats a, b;
  a.add_handler("x");
  b.add_handler("x");
  a.on_send(0, true, 10);
  b.on_send(0, true, 5);
  b.on_send(0, false, 3);
  a.merge(b);
  EXPECT_EQ(a.handler(0).remote_messages, 2u);
  EXPECT_EQ(a.handler(0).remote_bytes, 15u);
  EXPECT_EQ(a.handler(0).local_bytes, 3u);

  MessageStats c;
  c.add_handler("different");
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(MessageStatsUnit, MismatchedMergeThrowsWithoutCorruptingCounters) {
  // Labels agree at id 0 but diverge at id 1. The merge must throw AND
  // must not have merged id 0 first — a half-applied merge would silently
  // corrupt Figure-4 accounting for any caller that catches and continues.
  MessageStats a, b;
  a.add_handler("same");
  a.add_handler("x");
  b.add_handler("same");
  b.add_handler("y");
  a.on_send(0, true, 10);
  b.on_send(0, true, 99);
  b.on_send(1, false, 7);

  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_EQ(a.handler(0).remote_messages, 1u);  // not 2: id 0 untouched
  EXPECT_EQ(a.handler(0).remote_bytes, 10u);
  EXPECT_EQ(a.handler(1).local_messages, 0u);

  // Size mismatch throws too (unless one side is empty, which adopts).
  MessageStats c;
  c.add_handler("same");
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  MessageStats empty;
  empty.merge(a);  // empty destination adopts the source registry
  EXPECT_EQ(empty.handler(0).remote_bytes, 10u);
}

TEST(MessageStatsUnit, ByLabelSumsAndReset) {
  MessageStats s;
  s.add_handler("t");
  s.add_handler("t");
  s.on_send(0, true, 4);
  s.on_send(1, true, 6);
  EXPECT_EQ(s.by_label("t").remote_bytes, 10u);
  EXPECT_EQ(s.total_remote_messages(), 2u);
  s.reset();
  EXPECT_EQ(s.total_remote_bytes(), 0u);
  EXPECT_EQ(s.handlers().size(), 2u);  // registry survives reset
}

TEST(Environment, PhaseCollectGathersPerRankValues) {
  Environment env(Config{.num_ranks = 4});
  const auto values = env.execute_phase_collect<std::uint64_t>(
      [](int rank) { return static_cast<std::uint64_t>(rank * rank); });
  EXPECT_EQ(values, (std::vector<std::uint64_t>{0, 1, 4, 9}));
  EXPECT_EQ(env.execute_phase_sum(
                [](int rank) { return static_cast<std::uint64_t>(rank); }),
            6u);
}

TEST(Environment, AggregateStatsMergesRanks) {
  Environment env(Config{.num_ranks = 2});
  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[r] = env.comm(r).register_handler(
        "m", [](int, dnnd::serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  env.execute_phase([&](int rank) {
    env.comm(rank).async(1 - rank, h[0], std::uint32_t{1});
  });
  EXPECT_EQ(env.aggregate_stats().handler(h[0]).remote_messages, 2u);
  env.reset_stats();
  EXPECT_EQ(env.aggregate_stats().total_remote_messages(), 0u);
}

// All-to-all stress through both drivers; results must agree.
class DriverParity : public ::testing::TestWithParam<DriverKind> {};

TEST_P(DriverParity, AllToAllCountsArrive) {
  constexpr int kRanks = 4;
  constexpr int kPerPair = 50;
  Config cfg{.num_ranks = kRanks, .driver = GetParam()};
  cfg.send_buffer_bytes = 64;  // force mid-phase flushes
  Environment env(cfg);

  std::vector<std::atomic<std::uint64_t>> sums(kRanks);
  std::vector<HandlerId> h(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    h[r] = env.comm(r).register_handler(
        "acc", [&sums, r](int, dnnd::serial::InArchive& ar) {
          sums[r].fetch_add(ar.read<std::uint32_t>(),
                            std::memory_order_relaxed);
        });
  }
  env.execute_phase([&](int rank) {
    for (int dest = 0; dest < kRanks; ++dest) {
      if (dest == rank) continue;
      for (std::uint32_t i = 1; i <= kPerPair; ++i) {
        env.comm(rank).async(dest, h[rank], i);
      }
    }
  });
  // Every rank receives kPerPair messages from each of the 3 others.
  const std::uint64_t expected = 3ULL * kPerPair * (kPerPair + 1) / 2;
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(sums[r].load(), expected);
  EXPECT_TRUE(env.world().quiescent());
}

INSTANTIATE_TEST_SUITE_P(Drivers, DriverParity,
                         ::testing::Values(DriverKind::kSequential,
                                           DriverKind::kThreaded),
                         [](const auto& info) {
                           return info.param == DriverKind::kSequential
                                      ? "Sequential"
                                      : "Threaded";
                         });

TEST(Communicator, MalformedHandlerReadsAreDetected) {
  // A handler that under-reads its arguments desynchronizes the datagram;
  // the dispatcher must notice rather than corrupt later messages.
  Environment env(Config{.num_ranks = 1, .send_buffer_bytes = 0});
  const HandlerId h = env.comm(0).register_handler(
      "bad", [](int, dnnd::serial::InArchive&) { /* reads nothing */ });
  env.comm(0).async(0, h, std::uint32_t{1});
  EXPECT_THROW(env.comm(0).process_available(), std::exception);
}

}  // namespace

// Tests for build checkpoint/restore through the pmem datastore: state
// round-trips exactly, restored runners can refine/optimize/mutate, and
// topology mismatches are rejected.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>

#include "baselines/brute_force.hpp"
#include "pmem/allocator.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_checkpoint.hpp"
#include "core/dnnd_runner.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

core::FeatureStore<float> clustered(std::size_t n) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.center_range = 5.0f;
  spec.cluster_std = 1.5f;
  spec.seed = 81;
  return data::GaussianMixture(spec).sample(n, 1);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs fixture cases in parallel processes.
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path_ = (std::filesystem::temp_directory_path() /
             ("dnnd_ckpt_" + name + ".dat"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CheckpointTest, RoundTripsShardStateExactly) {
  const auto points = clustered(300);
  core::DnndConfig cfg;
  cfg.k = 8;

  core::KnnGraph original;
  {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    original = runner.gather();
    auto mgr = pmem::Manager::create(path_, 64 << 20);
    core::save_checkpoint(mgr, runner, "ckpt");
  }
  {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    auto mgr = pmem::Manager::open(path_);
    core::load_checkpoint(mgr, runner, "ckpt");
    EXPECT_EQ(runner.global_count(), 300u);
    EXPECT_EQ(runner.gather(), original);
  }
}

TEST_F(CheckpointTest, RestoredRunnerCanRefineAndMutate) {
  const auto points = clustered(300);
  core::DnndConfig cfg;
  cfg.k = 8;
  {
    comm::Environment env(comm::Config{.num_ranks = 2});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    // Deliberately checkpoint a HALF-finished build: only 2 iterations.
    core::DnndConfig truncated = cfg;
    truncated.max_iterations = 2;
    core::DnndRunner<float, L2Fn> partial(env, truncated, L2Fn{});
    // (use the truncated runner for the build)
    partial.distribute(points);
    partial.build();
    auto mgr = pmem::Manager::create(path_, 64 << 20);
    core::save_checkpoint(mgr, partial, "ckpt");
  }
  {
    comm::Environment env(comm::Config{.num_ranks = 2});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    auto mgr = pmem::Manager::open(path_);
    core::load_checkpoint(mgr, runner, "ckpt");
    // Resume the descent to convergence.
    runner.refine();
    const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, 8);
    EXPECT_GT(core::graph_recall(runner.gather(), exact, 8), 0.9);
    // And the restored runner supports dynamic updates.
    core::FeatureStore<float> extra;
    extra.add(300, points[0]);
    runner.add_points(extra);
    runner.refine();
    EXPECT_FALSE(runner.gather().neighbors(300).empty());
  }
}

TEST_F(CheckpointTest, RankCountMismatchRejected) {
  const auto points = clustered(100);
  core::DnndConfig cfg;
  cfg.k = 6;
  {
    comm::Environment env(comm::Config{.num_ranks = 2});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    auto mgr = pmem::Manager::create(path_, 32 << 20);
    core::save_checkpoint(mgr, runner, "ckpt");
  }
  comm::Environment env(comm::Config{.num_ranks = 3});
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  auto mgr = pmem::Manager::open(path_);
  EXPECT_THROW(core::load_checkpoint(mgr, runner, "ckpt"), std::runtime_error);
}

TEST_F(CheckpointTest, KMismatchRejected) {
  const auto points = clustered(100);
  {
    comm::Environment env(comm::Config{.num_ranks = 2});
    core::DnndConfig cfg;
    cfg.k = 6;
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    auto mgr = pmem::Manager::create(path_, 32 << 20);
    core::save_checkpoint(mgr, runner, "ckpt");
  }
  comm::Environment env(comm::Config{.num_ranks = 2});
  core::DnndConfig other;
  other.k = 12;
  core::DnndRunner<float, L2Fn> runner(env, other, L2Fn{});
  auto mgr = pmem::Manager::open(path_);
  EXPECT_THROW(core::load_checkpoint(mgr, runner, "ckpt"), std::runtime_error);
}

TEST_F(CheckpointTest, MissingCheckpointRejected) {
  auto mgr = pmem::Manager::create(path_, 16 << 20);
  comm::Environment env(comm::Config{.num_ranks = 2});
  core::DnndConfig cfg;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  EXPECT_THROW(core::load_checkpoint(mgr, runner, "nope"),
               std::runtime_error);
}

// A mid-build checkpoint is an iteration-boundary consistent cut: it
// carries iteration bookkeeping and every engine's RNG stream, so a
// resumed build replays the remaining iterations bit-identically.
TEST_F(CheckpointTest, MidBuildCutRestoresRngAndResumesBitIdentically) {
  const auto points = clustered(300);
  core::DnndConfig cfg;
  cfg.k = 8;

  // Fault-free uninterrupted reference.
  core::KnnGraph full_graph;
  {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    full_graph = runner.gather();
  }

  // Interrupted build: stop after 3 iterations and checkpoint the cut.
  std::array<std::array<std::uint64_t, 4>, 4> saved_rng{};
  std::vector<std::uint64_t> saved_history;
  {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndConfig truncated = cfg;
    truncated.max_iterations = 3;
    core::DnndRunner<float, L2Fn> partial(env, truncated, L2Fn{});
    partial.distribute(points);
    partial.build();
    EXPECT_EQ(partial.completed_iterations(), 3u);
    for (int r = 0; r < 4; ++r) {
      saved_rng[static_cast<std::size_t>(r)] = partial.engine(r).rng_state();
    }
    saved_history = partial.updates_history();
    auto mgr = pmem::Manager::create(path_, 64 << 20);
    core::save_checkpoint(mgr, partial, "ckpt");
  }

  // Restore: RNG streams, progress, and history come back exactly, and
  // the resumed remainder reproduces the uninterrupted graph.
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  {
    auto mgr = pmem::Manager::open(path_);
    core::load_checkpoint(mgr, runner, "ckpt");
  }
  EXPECT_EQ(runner.completed_iterations(), 3u);
  EXPECT_FALSE(runner.converged());
  EXPECT_EQ(runner.updates_history(), saved_history);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(runner.engine(r).rng_state(),
              saved_rng[static_cast<std::size_t>(r)])
        << "rank " << r << " RNG stream not restored";
  }
  runner.resume_build();
  EXPECT_EQ(runner.gather(), full_graph);
}

// The A/B slot scheme: a save that dies mid-write (simulated by arena
// exhaustion) must leave the previous checkpoint loadable — the head only
// flips to the new slot after the slot is fully written.
TEST_F(CheckpointTest, TornSecondSaveKeepsFirstCheckpointLoadable) {
  const auto points = clustered(200);
  core::DnndConfig cfg;
  cfg.k = 6;
  comm::Environment env(comm::Config{.num_ranks = 2});
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(points);
  runner.build();

  // Probe how much one save allocates, then size the real arena so the
  // first save fits but the second runs out of space partway through.
  std::size_t one_save_bytes = 0;
  {
    const std::string probe_path = path_ + ".probe";
    auto probe = pmem::Manager::create(probe_path, 64 << 20);
    core::save_checkpoint(probe, runner, "ckpt");
    one_save_bytes = probe.allocated_bytes();
    probe.close();
    std::remove(probe_path.c_str());
  }
  auto mgr = pmem::Manager::create(path_, one_save_bytes + one_save_bytes / 2);
  core::save_checkpoint(mgr, runner, "ckpt");
  const auto first_graph = runner.gather();

  // Mutate, then attempt a second save that will die mid-write.
  core::FeatureStore<float> extra;
  extra.add(200, points[1]);
  runner.add_points(extra);
  runner.refine();
  EXPECT_THROW(core::save_checkpoint(mgr, runner, "ckpt"),
               pmem::ArenaExhausted);

  // The torn save must not have been published: a fresh load still sees
  // the first checkpoint's state.
  comm::Environment env2(comm::Config{.num_ranks = 2});
  core::DnndRunner<float, L2Fn> restored(env2, cfg, L2Fn{});
  core::load_checkpoint(mgr, restored, "ckpt");
  EXPECT_EQ(restored.global_count(), 200u);
  EXPECT_EQ(restored.gather(), first_graph);
}

TEST_F(CheckpointTest, OverwritingCheckpointKeepsLatestState) {
  const auto points = clustered(150);
  core::DnndConfig cfg;
  cfg.k = 6;
  comm::Environment env(comm::Config{.num_ranks = 2});
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(points);
  runner.build();
  auto mgr = pmem::Manager::create(path_, 64 << 20);
  core::save_checkpoint(mgr, runner, "ckpt");

  // Mutate and re-checkpoint under the same name.
  core::FeatureStore<float> extra;
  extra.add(150, points[3]);
  runner.add_points(extra);
  runner.refine();
  core::save_checkpoint(mgr, runner, "ckpt");
  const auto latest = runner.gather();

  comm::Environment env2(comm::Config{.num_ranks = 2});
  core::DnndRunner<float, L2Fn> restored(env2, cfg, L2Fn{});
  core::load_checkpoint(mgr, restored, "ckpt");
  EXPECT_EQ(restored.global_count(), 151u);
  EXPECT_EQ(restored.gather(), latest);
}

}  // namespace

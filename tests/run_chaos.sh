#!/usr/bin/env bash
# Chaos-test driver: builds the repo and runs the `chaos`- and
# `recovery`-labelled suites (full DNND builds over a matrix of engine
# seeds x fault plans x drivers, plus kill-and-resume recovery runs over
# seeds x kill plans).
#
# Usage:
#   tests/run_chaos.sh                 # run the whole chaos+recovery matrix
#   tests/run_chaos.sh -s 12 -p drop_heavy
#                                      # replay one combination (the values
#                                      # printed by a failing run's
#                                      # "replay:" trace line; kill plans
#                                      # such as kill_r0_mid select the
#                                      # recovery matrix the same way)
#   DNND_SANITIZE=thread tests/run_chaos.sh
#                                      # same matrix under TSan
#
# Each failing assertion prints `replay: DNND_CHAOS_SEED=<s>
# DNND_CHAOS_PLAN=<name>`; feeding those back via -s/-p reruns exactly that
# schedule — it is a pure function of the two seeds, no log capture needed.
set -euo pipefail

cd "$(dirname "$0")/.."

seed=""
plan=""
while getopts "s:p:h" opt; do
  case "$opt" in
    s) seed="$OPTARG" ;;
    p) plan="$OPTARG" ;;
    h)
      sed -n '2,19p' "$0"
      exit 0
      ;;
    *) exit 2 ;;
  esac
done

build_dir="build"
cmake_args=(-B "$build_dir" -S .)
if [[ -n "${DNND_SANITIZE:-}" ]]; then
  build_dir="build-${DNND_SANITIZE}"
  cmake_args=(-B "$build_dir" -S . "-DDNND_SANITIZE=${DNND_SANITIZE}")
fi

cmake "${cmake_args[@]}"
cmake --build "$build_dir" -j --target test_chaos test_fault_injection test_recovery

if [[ -n "$seed" ]]; then export DNND_CHAOS_SEED="$seed"; fi
if [[ -n "$plan" ]]; then export DNND_CHAOS_PLAN="$plan"; fi

cd "$build_dir"
ctest -L 'chaos|recovery' --no-tests=error --output-on-failure -j "$(nproc)"

// Thread-count parity matrix: the intra-rank thread pool must be
// *invisible* in every output bit. For each subsystem that threads its
// hot loops (serial NN-Descent, the distributed engine under both
// drivers, the shared-memory searcher, and the distributed query
// service), a reference run at threads=1 is bit-compared against runs at
// threads ∈ {2, 4, 8}: the graph, the recall, the convergence counters,
// the full merged metrics registry (minus wall-clock values), and the
// schedule-shape counters (engine.tasks / stats.tasks) must all be
// EXACTLY equal — not statistically close.
//
// Why this holds (the determinism argument the production code is built
// around): every parallel stage writes private, index-addressed slots;
// one canonical merge applies them in fixed (task-index, intra-task)
// order; the task decomposition is a function of the work size only; and
// everything that owns an rng stream stays sequential. See
// core/nn_descent.hpp and DESIGN.md ("Threading model").
//
// Scope notes baked into the matrix:
//   - Batch-capable functors only: the non-batch path stays truly serial
//     (its live per-pair filter makes eval counts schedule-dependent),
//     and batch vs non-batch graphs are never compared (a mid-center
//     eviction can legally re-admit a filtered pair).
//   - Cross-driver bit-equality additionally needs the schedule-
//     independent config from chaos_test.cpp (delta = 0,
//     redundant_check_reduction = false); with the default config each
//     driver is compared against its own threads=1 reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/distance_kernels.hpp"
#include "core/distributed_query.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/nn_descent.hpp"
#include "core/recall.hpp"
#include "core/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace dnnd;  // NOLINT
using comm::Config;
using comm::DriverKind;
using comm::Environment;
using core::DnndConfig;
using core::DnndRunner;

using L2Batch = core::L2Kernel<float>;

core::FeatureStore<float> clustered(std::size_t n, std::uint64_t seed = 21) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.seed = seed;
  return data::GaussianMixture(spec).sample(n, 1);
}

/// Deterministic counters of a merged registry: name -> value, skipping
/// wall-clock metrics (the only counters allowed to differ between two
/// bit-identical runs).
std::map<std::string, std::uint64_t> counter_map(
    const telemetry::MetricsRegistry& registry) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& m : registry.all()) {
    if (m.kind != telemetry::MetricKind::kCounter) continue;
    if (m.name.ends_with("_us") || m.name.ends_with("_seconds") ||
        m.name.ends_with("_ticks")) {
      continue;
    }
    out[m.name] = m.counter;
  }
  return out;
}

// -- resolve_threads: the config/env/default precedence ----------------------

/// Restores DNND_THREADS_PER_RANK on scope exit so the matrix legs that
/// export it for a whole ctest run are not perturbed by this test.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    if (const char* old = std::getenv("DNND_THREADS_PER_RANK")) {
      saved_ = old;
    }
    if (value == nullptr) {
      ::unsetenv("DNND_THREADS_PER_RANK");
    } else {
      ::setenv("DNND_THREADS_PER_RANK", value, 1);
    }
  }
  ~ScopedThreadsEnv() {
    if (saved_.has_value()) {
      ::setenv("DNND_THREADS_PER_RANK", saved_->c_str(), 1);
    } else {
      ::unsetenv("DNND_THREADS_PER_RANK");
    }
  }
  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  std::optional<std::string> saved_;
};

TEST(ResolveThreads, ConfigBeatsEnvBeatsDefault) {
  {
    ScopedThreadsEnv env(nullptr);
    EXPECT_EQ(core::resolve_threads(0), 1u);  // nothing set: serial
    EXPECT_EQ(core::resolve_threads(6), 6u);  // explicit config wins
  }
  {
    ScopedThreadsEnv env("3");
    EXPECT_EQ(core::resolve_threads(0), 3u);  // env fills the auto value
    EXPECT_EQ(core::resolve_threads(2), 2u);  // config still wins
  }
  for (const char* bad : {"0", "-4", "banana", "", "9999"}) {
    ScopedThreadsEnv env(bad);
    EXPECT_EQ(core::resolve_threads(0), 1u) << "env='" << bad << "'";
  }
}

// -- serial NN-Descent: graph + stats parity ---------------------------------

struct SerialRun {
  core::KnnGraph graph;
  core::NnDescentStats stats;
};

SerialRun run_serial(const core::FeatureStore<float>& points,
                     std::uint64_t seed, std::size_t threads) {
  core::NnDescentConfig cfg;
  cfg.k = 10;
  cfg.seed = seed;
  cfg.threads = threads;
  SerialRun run;
  run.graph = core::build_nn_descent(points, L2Batch{}, cfg, &run.stats);
  return run;
}

class SerialThreadParity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(SerialThreadParity, BitIdenticalToSingleThread) {
  const auto [seed, threads] = GetParam();
  const auto points = clustered(500, seed);
  const SerialRun ref = run_serial(points, seed, 1);
  const SerialRun run = run_serial(points, seed, threads);

  EXPECT_TRUE(run.graph == ref.graph)
      << "graph diverged at threads=" << threads;
  EXPECT_EQ(run.stats.iterations, ref.stats.iterations);
  EXPECT_EQ(run.stats.distance_evals, ref.stats.distance_evals);
  EXPECT_EQ(run.stats.updates, ref.stats.updates);
  EXPECT_EQ(run.stats.updates_per_iteration, ref.stats.updates_per_iteration);
  // Schedule shape: the task decomposition depends on the work size only.
  EXPECT_EQ(run.stats.tasks, ref.stats.tasks);
  EXPECT_GT(run.stats.tasks, 0u);

  // The eval ledger redistributes (round-robin) but conserves work.
  EXPECT_EQ(run.stats.thread_work.size(), threads);
  const std::uint64_t ledger = std::accumulate(
      run.stats.thread_work.begin(), run.stats.thread_work.end(),
      std::uint64_t{0});
  EXPECT_EQ(ledger, run.stats.distance_evals);
  ASSERT_EQ(ref.stats.thread_work.size(), 1u);
  EXPECT_EQ(ref.stats.thread_work[0], ref.stats.distance_evals);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SerialThreadParity,
    ::testing::Combine(::testing::Values<std::uint64_t>(7, 31),
                       ::testing::Values<std::size_t>(2, 4, 8)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SerialThreadParity, QualityIsUnchangedByThreading) {
  const auto points = clustered(500, 7);
  const auto exact = baselines::brute_force_knn_graph(points, L2Batch{}, 10);
  const SerialRun a = run_serial(points, 7, 1);
  const SerialRun b = run_serial(points, 7, 4);
  const double recall_a = core::graph_recall(a.graph, exact, 10);
  EXPECT_DOUBLE_EQ(core::graph_recall(b.graph, exact, 10), recall_a);
  EXPECT_GT(recall_a, 0.9);
}

// -- distributed engine: per-driver parity matrix ----------------------------

struct EngineRun {
  core::KnnGraph graph;
  double recall = 0.0;
  std::map<std::string, std::uint64_t> counters;
};

EngineRun run_engine(const core::FeatureStore<float>& points,
                     const core::KnnGraph& exact, DriverKind driver,
                     const DnndConfig& engine_cfg, std::size_t threads) {
  Environment env(Config{.num_ranks = 4, .driver = driver});
  DnndConfig cfg = engine_cfg;
  cfg.threads_per_rank = threads;
  DnndRunner<float, L2Batch> runner(env, cfg, L2Batch{});
  runner.distribute(points);
  runner.build();
  EngineRun run;
  run.graph = runner.gather();
  run.recall = core::graph_recall(run.graph, exact, engine_cfg.k);
  run.counters = counter_map(env.aggregate_metrics());
  return run;
}

DnndConfig engine_config() {
  DnndConfig cfg;
  cfg.k = 8;
  cfg.batch_size = 4096;
  cfg.seed = 5;
  return cfg;
}

struct EngineCase {
  DriverKind driver;
  std::size_t threads;
};

std::string engine_case_name(
    const ::testing::TestParamInfo<EngineCase>& info) {
  return std::string(info.param.driver == DriverKind::kSequential ? "seq"
                                                                  : "thr") +
         "_t" + std::to_string(info.param.threads);
}

class EngineThreadParity : public ::testing::TestWithParam<EngineCase> {};

/// delta = 0 + redundant-check reduction off: the chaos_test.cpp
/// configuration under which a build is a pure function of the inputs,
/// independent of the message schedule. Required for any bit-compare
/// involving the threaded DRIVER (whose inter-rank schedule varies run
/// to run — a pre-existing property, orthogonal to intra-rank threads).
DnndConfig schedule_free_config() {
  DnndConfig cfg;
  cfg.k = 8;
  cfg.delta = 0.0;
  cfg.max_iterations = 10;
  cfg.batch_size = 4096;
  cfg.redundant_check_reduction = false;
  cfg.seed = 5;
  return cfg;
}

TEST_P(EngineThreadParity, BitIdenticalToSingleThreadSameDriver) {
  const EngineCase& c = GetParam();
  const auto points = clustered(400);
  const auto exact = baselines::brute_force_knn_graph(points, L2Batch{}, 8);
  // Per-driver reference. The sequential driver runs the DEFAULT config:
  // its schedule is deterministic, so the whole counter registry must
  // match. The threaded driver's inter-rank message interleaving varies
  // run to run, which makes success-counting metrics (engine.updates)
  // differ even between two identical threads=1 runs — so its legs use
  // the schedule-free config and assert graph + recall bit-identity,
  // which that config guarantees for ANY schedule.
  const bool sequential = c.driver == DriverKind::kSequential;
  const DnndConfig cfg =
      sequential ? engine_config() : schedule_free_config();
  const EngineRun ref = run_engine(points, exact, c.driver, cfg, 1);
  const EngineRun run = run_engine(points, exact, c.driver, cfg, c.threads);

  EXPECT_TRUE(run.graph == ref.graph) << "graph diverged";
  EXPECT_DOUBLE_EQ(run.recall, ref.recall);
  EXPECT_GT(ref.recall, 0.9);
  if (sequential) {
    // Full counter parity, engine.tasks included: the merged registry is
    // bit-identical once wall-clock metrics are dropped.
    EXPECT_EQ(run.counters, ref.counters);
    if constexpr (telemetry::kEnabled) {
      ASSERT_TRUE(run.counters.contains("engine.tasks"));
      EXPECT_GT(run.counters.at("engine.tasks"), 0u);
      EXPECT_EQ(run.counters.at("engine.tasks"),
                ref.counters.at("engine.tasks"));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineThreadParity,
    ::testing::Values(EngineCase{DriverKind::kSequential, 2},
                      EngineCase{DriverKind::kSequential, 4},
                      EngineCase{DriverKind::kSequential, 8},
                      EngineCase{DriverKind::kThreaded, 2},
                      EngineCase{DriverKind::kThreaded, 4},
                      EngineCase{DriverKind::kThreaded, 8}),
    engine_case_name);

TEST(EngineThreadParity, CrossDriverBitIdentityUnderScheduleFreeConfig) {
  // With delta = 0 and redundant-check reduction off (the chaos_test.cpp
  // configuration) the build is schedule-independent, so all four
  // (driver x threads) corners produce one graph.
  const auto points = clustered(320, 29);
  const auto exact = baselines::brute_force_knn_graph(points, L2Batch{}, 10);
  DnndConfig cfg;
  cfg.k = 10;
  cfg.delta = 0.0;
  cfg.max_iterations = 10;
  cfg.batch_size = 4096;
  cfg.redundant_check_reduction = false;
  cfg.seed = 11;

  const EngineRun ref =
      run_engine(points, exact, DriverKind::kSequential, cfg, 1);
  for (const DriverKind driver :
       {DriverKind::kSequential, DriverKind::kThreaded}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const EngineRun run = run_engine(points, exact, driver, cfg, threads);
      EXPECT_TRUE(run.graph == ref.graph)
          << "driver=" << (driver == DriverKind::kSequential ? "seq" : "thr")
          << " threads=" << threads;
      EXPECT_DOUBLE_EQ(run.recall, ref.recall);
    }
  }
  EXPECT_GT(ref.recall, 0.9);
}

// -- shared-memory searcher: batch_search thread parity ----------------------

TEST(QueryThreadParity, BatchSearchResultsIndependentOfWorkerCount) {
  const auto points = clustered(500, 13);
  const auto queries = clustered(40, 14);
  core::NnDescentConfig build_cfg;
  build_cfg.k = 10;
  build_cfg.seed = 3;
  const auto graph = core::build_nn_descent(points, L2Batch{}, build_cfg);
  const core::GraphSearcher<float, L2Batch> searcher(graph, points,
                                                     L2Batch{});
  core::SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.25;

  const auto ref = searcher.batch_search(queries, params, 1);
  for (const unsigned workers : {2u, 4u, 8u}) {
    const auto got = searcher.batch_search(queries, params, workers);
    ASSERT_EQ(got.size(), ref.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].neighbors, ref[i].neighbors)
          << "workers=" << workers << " query=" << i;
      EXPECT_EQ(got[i].distance_evals, ref[i].distance_evals);
      EXPECT_EQ(got[i].visited, ref[i].visited);
    }
  }
}

// -- distributed query service: handler-side eval threading ------------------

TEST(QueryThreadParity, DistributedServiceResultsIndependentOfThreads) {
  const auto points = clustered(500, 91);
  const auto queries = clustered(30, 92);
  core::SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.25;
  params.num_entry_points = 24;

  auto run_service = [&](std::size_t threads) {
    Environment env(Config{.num_ranks = 4});
    DnndConfig cfg;
    cfg.k = 10;
    cfg.threads_per_rank = threads;
    DnndRunner<float, L2Batch> runner(env, cfg, L2Batch{});
    runner.distribute(points);
    runner.build();
    core::DistributedQueryService<float, L2Batch> service(env, runner,
                                                          L2Batch{});
    auto results = service.run(queries, params);
    return std::make_pair(std::move(results),
                          counter_map(env.aggregate_metrics()));
  };

  const auto [ref, ref_counters] = run_service(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const auto [got, counters] = run_service(threads);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].neighbors, ref[i].neighbors)
          << "threads=" << threads << " query=" << i;
      EXPECT_EQ(got[i].distance_evals, ref[i].distance_evals);
    }
    EXPECT_EQ(counters, ref_counters) << "threads=" << threads;
    if constexpr (telemetry::kEnabled) {
      ASSERT_TRUE(counters.contains("query.tasks"));
      EXPECT_GT(counters.at("query.tasks"), 0u);
    }
  }
}

}  // namespace

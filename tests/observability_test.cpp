// End-to-end causal-tracing tests over the live comm stack:
//
//   * a two-rank Type-2 -> Type-3 style reply chain whose trace stays
//     connected across ranks (one trace id, incrementing hops, every
//     flow-finish matched to a flow-start on another rank);
//   * envelope cost: an untraced message serializes the same bytes as a
//     plain handler id, a traced one strictly more;
//   * the acceptance run — a 4-rank NN-Descent build — emits a Chrome
//     trace with cross-rank-connected flow events, a timeseries document
//     with at least one snapshot per iteration, and structured JSON log
//     lines that carry the active trace id.
//
// Every JSON assertion goes through util::json::parse, so "the artifact
// is valid" is checked by a parser, not by substring luck.
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "data/synthetic.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace {

using namespace dnnd;  // NOLINT
using comm::Config;
using comm::Environment;
using comm::HandlerId;
namespace json = dnnd::util::json;

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

core::FeatureStore<float> clustered(std::size_t n) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.seed = 21;
  return data::GaussianMixture(spec).sample(n, 1);
}

/// Runs a 2-rank chain: rank 0 fires "type2" at rank 1; its handler
/// replies with "type3" back to rank 0. Returns the parsed Chrome trace.
json::Value run_chain_trace(std::uint64_t trace_sample_period) {
  Config cfg;
  cfg.num_ranks = 2;
  cfg.send_buffer_bytes = 0;
  cfg.trace_sample_period = trace_sample_period;
  Environment env(cfg);
  std::vector<HandlerId> t2(2), t3(2);
  for (int r = 0; r < 2; ++r) {
    t2[r] = env.comm(r).register_handler(
        "type2", [&env, r](int src, serial::InArchive& ar) {
          const auto v = ar.read<std::uint32_t>();
          env.comm(r).async(src, HandlerId{1}, v + 1);
        });
    t3[r] = env.comm(r).register_handler(
        "type3", [](int, serial::InArchive& ar) {
          (void)ar.read<std::uint32_t>();
        });
  }
  env.execute_phase([&](int rank) {
    if (rank == 0) env.comm(0).async(1, t2[0], std::uint32_t{7});
  });
  // Context must not leak past dispatch.
  EXPECT_FALSE(env.comm(0).active_trace_context().active());
  EXPECT_FALSE(env.comm(1).active_trace_context().active());

  std::ostringstream os;
  env.write_chrome_trace(os);
  return json::parse(os.str());
}

TEST(CausalTracing, TwoRankChainStaysConnectedAcrossRanks) {
  const auto doc = run_chain_trace(1);  // trace every root message
  const auto& events = doc.at("traceEvents").as_array();

  if constexpr (!telemetry::kEnabled) {
    for (const auto& e : events) {
      EXPECT_EQ(e.at("ph").as_string(), "M");  // metadata only, no spans
    }
    return;
  }

  // Collect flows (id -> pid per side) and the traced recv spans.
  std::map<std::string, int> start_pid, finish_pid;
  std::map<std::string, const json::Value*> recv;  // name -> span
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    const int pid = static_cast<int>(e.at("pid").as_number());
    if (ph == "s") start_pid[e.at("id").as_string()] = pid;
    if (ph == "f") {
      finish_pid[e.at("id").as_string()] = pid;
      EXPECT_EQ(e.at("bp").as_string(), "e");
    }
    if (ph == "X" && e.at("cat").as_string() == "handler") {
      recv[e.at("name").as_string()] = &e;
    }
  }

  // Two hops => two flow pairs, each finishing on the *other* rank.
  ASSERT_EQ(start_pid.size(), 2u);
  ASSERT_EQ(finish_pid.size(), 2u);
  for (const auto& [id, pid] : start_pid) {
    ASSERT_TRUE(finish_pid.contains(id)) << "dangling flow " << id;
    EXPECT_NE(finish_pid.at(id), pid) << "flow " << id << " not cross-rank";
  }

  // The chain is one trace: same trace id on both recv spans, hop 1 then
  // hop 2, each on the expected rank.
  ASSERT_TRUE(recv.contains("recv.type2"));
  ASSERT_TRUE(recv.contains("recv.type3"));
  const auto& hop1 = *recv.at("recv.type2");
  const auto& hop2 = *recv.at("recv.type3");
  EXPECT_EQ(hop1.at("pid").as_number(), 1.0);
  EXPECT_EQ(hop2.at("pid").as_number(), 0.0);
  EXPECT_EQ(hop1.at("args").at("hop").as_number(), 1.0);
  EXPECT_EQ(hop2.at("args").at("hop").as_number(), 2.0);
  EXPECT_EQ(hop1.at("args").at("trace").as_string(),
            hop2.at("args").at("trace").as_string());
  EXPECT_EQ(hop1.at("args").at("src").as_number(), 0.0);
  EXPECT_EQ(hop2.at("args").at("src").as_number(), 1.0);
  // Span ids are fresh per hop (they are the flow ids).
  EXPECT_NE(hop1.at("args").at("span").as_string(),
            hop2.at("args").at("span").as_string());
}

TEST(CausalTracing, SampleRateZeroEmitsNoFlowsAndNoTraceBytes) {
  const auto doc = run_chain_trace(0);
  for (const auto& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_TRUE(ph != "s" && ph != "f") << "flow event with sampling off";
    if (ph == "X") {
      EXPECT_NE(e.at("cat").as_string(), "handler")
          << "traced recv span with sampling off";
    }
  }
}

/// Remote bytes for N identical messages at a given sample period.
std::uint64_t ping_remote_bytes(std::uint64_t trace_sample_period) {
  Config cfg;
  cfg.num_ranks = 2;
  cfg.send_buffer_bytes = 0;
  cfg.trace_sample_period = trace_sample_period;
  Environment env(cfg);
  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[r] = env.comm(r).register_handler(
        "ping", [](int, serial::InArchive& ar) {
          (void)ar.read<std::uint32_t>();
        });
  }
  env.execute_phase([&](int rank) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      env.comm(rank).async(1 - rank, h[0], i);
    }
  });
  // aggregate_stats() returns by value — keep it alive past this statement
  // or `row` dangles (caught by the TSan matrix leg).
  const auto stats = env.aggregate_stats();
  const auto& row = stats.handlers().front();
  EXPECT_EQ(row.remote_messages, 20u);
  return row.remote_bytes;
}

TEST(CausalTracing, UntracedEnvelopeCostsNoExtraBytes) {
  const std::uint64_t untraced = ping_remote_bytes(0);
  const std::uint64_t traced = ping_remote_bytes(1);
  if constexpr (telemetry::kEnabled) {
    // Every traced message carries 4 extra varints (trace, span, hop,
    // send_ts) — at least 4 bytes each of 20 messages. The untraced
    // envelope is byte-identical to the plain handler id (the traced
    // flag rides the id's low bit and ids stay below 64).
    EXPECT_GE(traced - untraced, 20u * 4u);
  } else {
    // With telemetry compiled out the knob must change nothing at all.
    EXPECT_EQ(traced, untraced);
  }
  // Cross-configuration invariance of the untraced byte count (the
  // "OFF build carries no trace bytes" half) is enforced by
  // tests/check_metrics_regression.sh, which diffs handler byte counters
  // of both build flavors against one committed baseline.
}

TEST(CausalTracing, MaxHopCapStopsPropagation) {
  Config cfg;
  cfg.num_ranks = 2;
  cfg.send_buffer_bytes = 0;
  cfg.trace_sample_period = 1;
  Environment env(cfg);
  // Ping-pong until a hop budget far above kMaxTraceHops runs out.
  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[r] = env.comm(r).register_handler(
        "bounce", [&env, r](int src, serial::InArchive& ar) {
          const auto remaining = ar.read<std::uint32_t>();
          if (remaining > 0) {
            env.comm(r).async(src, HandlerId{0}, remaining - 1);
          }
        });
  }
  env.execute_phase([&](int rank) {
    if (rank == 0) env.comm(0).async(1, h[0], std::uint32_t{50});
  });

  if constexpr (telemetry::kEnabled) {
    std::ostringstream os;
    env.write_chrome_trace(os);
    std::uint64_t max_hop = 0, spans = 0;
    const auto doc = json::parse(os.str());
    for (const auto& e : doc.at("traceEvents").as_array()) {
      if (e.at("ph").as_string() != "X") continue;
      if (e.at("cat").as_string() != "handler") continue;
      ++spans;
      max_hop = std::max(
          max_hop,
          static_cast<std::uint64_t>(e.at("args").at("hop").as_number()));
    }
    // The cap is respected exactly: hops reach kMaxTraceHops, never past
    // it. (Propagation stops there; the bounce after the cap is untraced,
    // and the one after that may start a fresh sampled root — so there
    // can be more traced spans than the cap, just never a deeper hop.)
    EXPECT_EQ(max_hop, static_cast<std::uint64_t>(comm::kMaxTraceHops));
    EXPECT_GE(spans, static_cast<std::uint64_t>(comm::kMaxTraceHops));
  }
}

// ---------------------------------------------------------------------------
// Acceptance: a real 4-rank build
// ---------------------------------------------------------------------------

TEST(Observability, FourRankBuildEmitsConnectedFlowsAndIterationSnapshots) {
  const auto points = clustered(300);
  Config env_cfg;
  env_cfg.num_ranks = 4;
  env_cfg.trace_sample_period = 32;
  Environment env(env_cfg);
  core::DnndConfig cfg;
  cfg.k = 8;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(points);
  const auto stats = runner.build();
  ASSERT_GE(stats.iterations, 1u);

  // -- timeseries: >= 1 snapshot per iteration, timestamps monotone ------
  std::ostringstream ts;
  env.write_timeseries_json(ts);
  const auto series = json::parse(ts.str());
  EXPECT_EQ(series.at("schema").as_string(), "dnnd.timeseries.v1");
  EXPECT_EQ(series.at("enabled").as_bool(), telemetry::kEnabled);
  EXPECT_EQ(series.at("ranks").as_number(), 4.0);
  const auto& snapshots = series.at("snapshots").as_array();

  if constexpr (!telemetry::kEnabled) {
    EXPECT_TRUE(snapshots.empty());  // zero-cost: nothing is sampled
    return;
  }

  ASSERT_GE(snapshots.size(), stats.iterations);
  double prev_t = -1.0;
  std::uint64_t iteration_snaps = 0;
  for (const auto& snap : snapshots) {
    const double t = snap.at("t_us").as_number();
    EXPECT_GE(t, prev_t);
    prev_t = t;
    if (snap.at("label").as_string() == "iteration") ++iteration_snaps;
    ASSERT_EQ(snap.at("per_rank").as_array().size(), 4u);
  }
  EXPECT_GE(iteration_snaps, stats.iterations);
  // Counters accumulate: the last snapshot's distance evals reach the
  // run's total across ranks.
  std::uint64_t final_evals = 0;
  for (const auto& rank : snapshots.back().at("per_rank").as_array()) {
    const auto& counters = rank.at("counters");
    if (counters.contains("engine.distance_evals")) {
      final_evals += static_cast<std::uint64_t>(
          counters.at("engine.distance_evals").as_number());
    }
  }
  EXPECT_GT(final_evals, 0u);

  // -- trace: flows present and stitched across ranks --------------------
  std::ostringstream tr;
  env.write_chrome_trace(tr);
  const auto trace = json::parse(tr.str());
  std::map<std::string, int> start_pid;
  std::uint64_t cross_rank_flows = 0, finishes = 0;
  for (const auto& e : trace.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "s") {
      start_pid[e.at("id").as_string()] =
          static_cast<int>(e.at("pid").as_number());
    }
  }
  for (const auto& e : trace.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "f") continue;
    ++finishes;
    const auto it = start_pid.find(e.at("id").as_string());
    ASSERT_NE(it, start_pid.end()) << "flow finish without a start";
    if (it->second != static_cast<int>(e.at("pid").as_number())) {
      ++cross_rank_flows;
    }
  }
  EXPECT_GT(finishes, 0u);
  EXPECT_GT(cross_rank_flows, 0u)
      << "no flow connected two different ranks in a 4-rank build";
}

// ---------------------------------------------------------------------------
// Structured logs join the trace
// ---------------------------------------------------------------------------

TEST(Observability, JsonLogLinesFromTracedHandlersCarryTheTraceId) {
  if constexpr (!telemetry::kEnabled) {
    GTEST_SKIP() << "no trace ids under DNND_TELEMETRY=OFF";
  }
  std::vector<std::string> lines;
  util::set_log_sink([&lines](std::string_view line) {
    lines.emplace_back(line);
  });
  const auto prev_level = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  util::set_log_format(util::LogFormat::kJson);

  Config cfg;
  cfg.num_ranks = 2;
  cfg.send_buffer_bytes = 0;
  cfg.trace_sample_period = 1;
  Environment env(cfg);
  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[r] = env.comm(r).register_handler(
        "work", [r](int, serial::InArchive& ar) {
          (void)ar.read<std::uint32_t>();
          util::log_line(util::LogLevel::kInfo, r, "handled");
        });
  }
  env.execute_phase([&](int rank) {
    if (rank == 0) env.comm(0).async(1, h[0], std::uint32_t{1});
  });
  util::log_line(util::LogLevel::kInfo, 0,
                 "outside");  // no active span -> no trace field

  util::set_log_sink(nullptr);
  util::set_log_format(util::LogFormat::kText);
  util::set_log_level(prev_level);

  ASSERT_EQ(lines.size(), 2u);
  const auto inside = json::parse(lines[0]);
  EXPECT_EQ(inside.at("level").as_string(), "INFO");
  EXPECT_EQ(inside.at("rank").as_number(), 1.0);
  EXPECT_EQ(inside.at("msg").as_string(), "handled");
  ASSERT_TRUE(inside.contains("trace"));
  EXPECT_EQ(inside.at("trace").as_string().substr(0, 2), "0x");

  const auto outside = json::parse(lines[1]);
  EXPECT_FALSE(outside.contains("trace"));
  EXPECT_TRUE(outside.contains("ts_us"));

  // The logged trace id matches a trace that actually exists.
  std::ostringstream os;
  env.write_chrome_trace(os);
  std::set<std::string> trace_ids;
  const auto trace_doc = json::parse(os.str());
  for (const auto& e : trace_doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X" && e.contains("args") &&
        e.at("args").contains("trace")) {
      trace_ids.insert(e.at("args").at("trace").as_string());
    }
  }
  EXPECT_TRUE(trace_ids.contains(inside.at("trace").as_string()));
}

}  // namespace

// Tests for the graph query engine (§3.3): exactness on exact graphs,
// epsilon recall/cost tradeoff, batch search, and recall metrics.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "core/distance.hpp"
#include "core/knn_query.hpp"
#include "core/nn_descent.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT
using core::GraphSearcher;
using core::SearchParams;

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

struct Workload {
  core::FeatureStore<float> base;
  core::FeatureStore<float> queries;
  core::KnnGraph graph;  // optimized NN-Descent graph
  std::vector<std::vector<core::VertexId>> truth;
};

Workload make_workload(std::size_t n = 800, std::size_t nq = 30) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.seed = 31;
  // Overlapping clusters: real ANN corpora (DEEP1B & co.) yield connected
  // k-NN graphs; widely separated mixtures do not, and a greedy search
  // can never cross components regardless of epsilon.
  spec.center_range = 5.0f;
  spec.cluster_std = 1.5f;
  const data::GaussianMixture family(spec);
  Workload w{family.sample(n, 1), family.sample(nq, 2), {}, {}};
  core::NnDescentConfig cfg;
  cfg.k = 10;
  w.graph = core::build_nn_descent(w.base, L2Fn{}, cfg);
  w.graph.merge_reverse_edges(15);
  w.truth = baselines::brute_force_query_batch(w.base, w.queries, L2Fn{}, 10);
  return w;
}

const Workload& workload() {
  static const Workload w = make_workload();
  return w;
}

TEST(Query, FindsSelfWhenQueryingABasePoint) {
  const auto& w = workload();
  GraphSearcher searcher(w.graph, w.base, L2Fn{});
  SearchParams params;
  params.num_neighbors = 5;
  params.epsilon = 0.2;
  const auto result = searcher.search(w.base[17], params);
  ASSERT_FALSE(result.neighbors.empty());
  EXPECT_EQ(result.neighbors[0].id, 17u);
  EXPECT_FLOAT_EQ(result.neighbors[0].distance, 0.0f);
}

TEST(Query, ResultsAreSortedAndDistinct) {
  const auto& w = workload();
  GraphSearcher searcher(w.graph, w.base, L2Fn{});
  SearchParams params;
  params.num_neighbors = 10;
  for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
    const auto result = searcher.search(w.queries.row(qi), params);
    ASSERT_EQ(result.neighbors.size(), 10u);
    for (std::size_t i = 1; i < result.neighbors.size(); ++i) {
      EXPECT_GE(result.neighbors[i].distance,
                result.neighbors[i - 1].distance);
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_NE(result.neighbors[i].id, result.neighbors[j].id);
      }
    }
  }
}

TEST(Query, VisitsFarFewerPointsThanBruteForce) {
  const auto& w = workload();
  GraphSearcher searcher(w.graph, w.base, L2Fn{});
  SearchParams params;
  params.num_neighbors = 10;
  const auto result = searcher.search(w.queries.row(0), params);
  EXPECT_LT(result.visited, w.base.size() / 2)
      << "greedy search should terminate early";
  EXPECT_EQ(result.visited, result.distance_evals);
}

TEST(Query, EpsilonTradesWorkForRecall) {
  const auto& w = workload();
  GraphSearcher searcher(w.graph, w.base, L2Fn{});
  double prev_recall = -1.0;
  std::uint64_t prev_work = 0;
  for (const double epsilon : {0.0, 0.2, 0.4}) {
    SearchParams params;
    params.num_neighbors = 10;
    params.epsilon = epsilon;
    std::vector<std::vector<core::Neighbor>> computed;
    std::uint64_t work = 0;
    for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
      auto result = searcher.search(w.queries.row(qi), params);
      work += result.distance_evals;
      computed.push_back(std::move(result.neighbors));
    }
    const double recall = core::mean_query_recall(computed, w.truth, 10);
    EXPECT_GE(recall + 1e-9, prev_recall)
        << "recall should not degrade as epsilon grows";
    EXPECT_GT(work, prev_work) << "work should grow with epsilon";
    prev_recall = recall;
    prev_work = work;
  }
  EXPECT_GT(prev_recall, 0.85) << "epsilon=0.4 should reach high recall";
}

TEST(Query, HighEpsilonOnOptimizedGraphNearsExactness) {
  const auto& w = workload();
  GraphSearcher searcher(w.graph, w.base, L2Fn{});
  SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.8;
  params.num_entry_points = 32;  // RP-tree-substitute entry seeding
  std::vector<std::vector<core::Neighbor>> computed;
  for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
    computed.push_back(searcher.search(w.queries.row(qi), params).neighbors);
  }
  EXPECT_GT(core::mean_query_recall(computed, w.truth, 10), 0.9);
}

TEST(Query, BatchSearchMatchesSequentialSearch) {
  const auto& w = workload();
  GraphSearcher searcher(w.graph, w.base, L2Fn{});
  SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.2;
  const auto batch = searcher.batch_search(w.queries, params, 4);
  ASSERT_EQ(batch.size(), w.queries.size());
  for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
    SearchParams p = params;
    p.seed = dnnd::util::mix64(params.seed + qi);  // same per-query seed
    const auto solo = searcher.search(w.queries.row(qi), p);
    ASSERT_EQ(batch[qi].neighbors.size(), solo.neighbors.size());
    for (std::size_t i = 0; i < solo.neighbors.size(); ++i) {
      EXPECT_EQ(batch[qi].neighbors[i].id, solo.neighbors[i].id);
    }
  }
}

TEST(Query, MoreNeighborsThanKIsSupported) {
  // §3.3: "the number of nearest neighbors to search for can be larger
  // than k".
  const auto& w = workload();
  GraphSearcher searcher(w.graph, w.base, L2Fn{});
  SearchParams params;
  params.num_neighbors = 25;  // graph k is 10 (pruned to 15)
  params.epsilon = 0.3;
  const auto result = searcher.search(w.queries.row(0), params);
  EXPECT_EQ(result.neighbors.size(), 25u);
}

TEST(Query, EmptyGraphReturnsNothing) {
  core::KnnGraph empty;
  core::FeatureStore<float> no_points;
  GraphSearcher searcher(empty, no_points, L2Fn{});
  SearchParams params;
  const auto result = searcher.search(std::vector<float>{1.f, 2.f}, params);
  EXPECT_TRUE(result.neighbors.empty());
}

// -- recall metrics -------------------------------------------------------------

TEST(Recall, QueryRecallCountsIntersection) {
  const std::vector<core::Neighbor> computed = {
      {1, 0.1f, false}, {2, 0.2f, false}, {9, 0.3f, false}};
  const std::vector<core::VertexId> truth = {1, 2, 3};
  EXPECT_DOUBLE_EQ(core::query_recall(computed, truth, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(core::query_recall(computed, truth, 2), 1.0);
}

TEST(Recall, GraphRecallPerfectOnIdenticalGraphs) {
  core::KnnGraph g(2);
  g.set_neighbors(0, {{1, 1.0f, false}});
  g.set_neighbors(1, {{0, 1.0f, false}});
  EXPECT_DOUBLE_EQ(core::graph_recall(g, g, 1), 1.0);
}

TEST(Recall, GraphRecallZeroOnDisjointGraphs) {
  core::KnnGraph a(3), b(3);
  a.set_neighbors(0, {{1, 1.0f, false}});
  b.set_neighbors(0, {{2, 1.0f, false}});
  a.set_neighbors(1, {{0, 1.0f, false}});
  b.set_neighbors(1, {{2, 1.0f, false}});
  a.set_neighbors(2, {{0, 1.0f, false}});
  b.set_neighbors(2, {{1, 1.0f, false}});
  EXPECT_DOUBLE_EQ(core::graph_recall(a, b, 1), 0.0);
}

TEST(Recall, MismatchedSizesThrow) {
  core::KnnGraph a(2), b(3);
  EXPECT_THROW((void)core::graph_recall(a, b, 1), std::invalid_argument);
  EXPECT_THROW(
      (void)core::mean_query_recall({{}}, {}, 1),
      std::invalid_argument);
}

}  // namespace

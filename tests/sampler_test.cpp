// Time-series Sampler tests. All tests inject a fake clock, so snapshot
// timestamps — and therefore the emitted JSON — are fully deterministic:
// the golden-bytes test below is an exact string compare.
#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"
#include "util/json.hpp"

namespace {

using dnnd::telemetry::MetricsRegistry;
using dnnd::telemetry::Sampler;
namespace json = dnnd::util::json;

TEST(Sampler, SnapshotsCaptureCountersAndGaugesAtSampleTime) {
  MetricsRegistry reg;
  const auto c = reg.counter("work");
  const auto g = reg.gauge("depth");

  std::uint64_t now = 1000;
  Sampler sampler(0, [&now] { return now; });
  sampler.attach(0, &reg);

  reg.add(c, 5);
  reg.set(g, 3);
  sampler.sample("iteration");

  now = 2500;
  reg.add(c, 7);
  reg.set(g, 1);  // below the peak of 3
  sampler.sample("iteration");

  ASSERT_EQ(sampler.snapshots().size(), 2u);
  const auto& s0 = sampler.snapshots()[0];
  EXPECT_EQ(s0.t_us, 1000u);
  EXPECT_EQ(s0.seq, 1u);
  EXPECT_EQ(s0.label, "iteration");
  ASSERT_EQ(s0.ranks.size(), 1u);
  ASSERT_EQ(s0.ranks[0].counters.size(), 1u);
  EXPECT_EQ(s0.ranks[0].counters[0].first, "work");
  EXPECT_EQ(s0.ranks[0].counters[0].second, 5u);
  ASSERT_EQ(s0.ranks[0].gauges.size(), 1u);
  EXPECT_EQ(s0.ranks[0].gauges[0].second.first, 3);   // value
  EXPECT_EQ(s0.ranks[0].gauges[0].second.second, 3);  // peak

  const auto& s1 = sampler.snapshots()[1];
  EXPECT_EQ(s1.t_us, 2500u);
  EXPECT_EQ(s1.seq, 2u);
  EXPECT_EQ(s1.ranks[0].counters[0].second, 12u);      // cumulative
  EXPECT_EQ(s1.ranks[0].gauges[0].second.first, 1);    // dipped
  EXPECT_EQ(s1.ranks[0].gauges[0].second.second, 3);   // peak held
}

TEST(Sampler, MaybeSampleHonorsTickPeriodUnderFakeClock) {
  MetricsRegistry reg;
  std::uint64_t now = 0;
  Sampler sampler(100, [&now] { return now; });
  sampler.attach(0, &reg);

  EXPECT_TRUE(sampler.maybe_sample("tick"));    // first tick always samples
  now = 50;
  EXPECT_FALSE(sampler.maybe_sample("tick"));   // period not elapsed
  now = 100;
  EXPECT_TRUE(sampler.maybe_sample("tick"));
  now = 150;
  sampler.sample("iteration");                  // explicit resets the timer
  now = 199;
  EXPECT_FALSE(sampler.maybe_sample("tick"));
  now = 250;
  EXPECT_TRUE(sampler.maybe_sample("tick"));
  ASSERT_EQ(sampler.snapshots().size(), 4u);
}

TEST(Sampler, ZeroPeriodDisablesTheTickPathEntirely) {
  MetricsRegistry reg;
  std::uint64_t calls = 0;
  Sampler sampler(0, [&calls] { return ++calls; });
  sampler.attach(0, &reg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(sampler.maybe_sample("tick"));
  }
  EXPECT_TRUE(sampler.snapshots().empty());
  // Zero-cost contract: a disabled tick path never even reads the clock.
  EXPECT_EQ(calls, 0u);
}

TEST(Sampler, WriteJsonIsByteDeterministicAndOriginRelative) {
  const auto run = [] {
    MetricsRegistry r0, r1;
    const auto c0 = r0.counter("evals");
    const auto c1 = r1.counter("evals");
    std::uint64_t now = 5000;
    Sampler sampler(0, [&now] { return now; });
    sampler.attach(0, &r0);
    sampler.attach(1, &r1);
    r0.add(c0, 2);
    r1.add(c1, 9);
    sampler.sample("iteration");
    now = 6000;
    r0.add(c0, 1);
    sampler.sample("iteration");
    std::ostringstream os;
    sampler.write_json(os, true, 5000);  // origin = first sample time
    return os.str();
  };

  const std::string a = run();
  EXPECT_EQ(a, run());  // identical schedule -> identical bytes

  const std::string expected =
      "{\"schema\":\"dnnd.timeseries.v1\",\"enabled\":true,\"ranks\":2,"
      "\"tick_us\":0,\"snapshots\":["
      "{\"t_us\":0,\"seq\":1,\"label\":\"iteration\",\"per_rank\":["
      "{\"rank\":0,\"counters\":{\"evals\":2},\"gauges\":{}},"
      "{\"rank\":1,\"counters\":{\"evals\":9},\"gauges\":{}}]},"
      "{\"t_us\":1000,\"seq\":2,\"label\":\"iteration\",\"per_rank\":["
      "{\"rank\":0,\"counters\":{\"evals\":3},\"gauges\":{}},"
      "{\"rank\":1,\"counters\":{\"evals\":9},\"gauges\":{}}]}"
      "]}";
  EXPECT_EQ(a, expected);

  // And it parses back as valid JSON with the documented shape.
  const auto doc = json::parse(a);
  EXPECT_EQ(doc.at("schema").as_string(), "dnnd.timeseries.v1");
  ASSERT_EQ(doc.at("snapshots").as_array().size(), 2u);
}

TEST(Sampler, HistogramsStayOutOfTheSeries) {
  MetricsRegistry reg;
  const auto h = reg.histogram("latency_us");
  reg.record(h, 42);
  std::uint64_t now = 1;
  Sampler sampler(0, [&now] { return now; });
  sampler.attach(0, &reg);
  sampler.sample("iteration");
  EXPECT_TRUE(sampler.snapshots()[0].ranks[0].counters.empty());
  EXPECT_TRUE(sampler.snapshots()[0].ranks[0].gauges.empty());
}

}  // namespace

// Unit tests for the telemetry layer: LogHistogram bucket layout,
// MetricsRegistry counter/gauge/histogram semantics, cross-rank merge
// (associativity, by-name matching, kind-conflict strong guarantee), and
// the reset-keeps-registry contract mirrored from MessageStats.
//
// MetricsRegistry / LogHistogram / TraceBuffer are plain data structures
// compiled in both DNND_TELEMETRY configurations, so everything here runs
// unconditionally; only the facade test at the bottom branches on
// telemetry::kEnabled.
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using dnnd::telemetry::LogHistogram;
using dnnd::telemetry::MetricsRegistry;

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

std::string registry_json(const MetricsRegistry& reg) {
  std::ostringstream os;
  reg.write_json(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// LogHistogram bucket layout
// ---------------------------------------------------------------------------

TEST(LogHistogramUnit, BucketIndexIsBitWidth) {
  EXPECT_EQ(LogHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(255), 8u);
  EXPECT_EQ(LogHistogram::bucket_index(256), 9u);
  EXPECT_EQ(LogHistogram::bucket_index(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(LogHistogram::bucket_index(kU64Max), 64u);
}

TEST(LogHistogramUnit, BucketRangesTileTheDomain) {
  // Bucket 0 is exactly {0}; bucket i covers [2^(i-1), 2^i - 1]; the top
  // bucket's upper bound saturates at UINT64_MAX instead of wrapping.
  EXPECT_EQ(LogHistogram::bucket_lower(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_upper(0), 0u);
  for (std::size_t i = 1; i < LogHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LogHistogram::bucket_lower(i),
              LogHistogram::bucket_upper(i - 1) + 1)
        << "gap/overlap at bucket " << i;
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_lower(i)), i);
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_upper(i)), i);
  }
  EXPECT_EQ(LogHistogram::bucket_upper(64), kU64Max);
}

TEST(LogHistogramUnit, RecordTracksCountSumMinMax) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_GT(h.min(), h.max());  // the documented "empty" signature

  h.record(0);
  h.record(7);
  h.record(kU64Max);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), kU64Max);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);   // 7 has bit width 3
  EXPECT_EQ(h.bucket(64), 1u);  // max lands in the saturating top bucket
}

TEST(LogHistogramUnit, RecordClampedHandlesEdgeDoubles) {
  LogHistogram h;
  h.record_clamped(-3.5);  // negatives clamp to 0
  h.record_clamped(0.25);  // sub-1 values clamp to 0
  h.record_clamped(std::numeric_limits<double>::infinity());
  h.record_clamped(1e300);  // >= 2^64 saturates like +inf
  h.record_clamped(std::numeric_limits<double>::quiet_NaN());  // dropped
  h.record_clamped(6.9);  // truncates to 6

  EXPECT_EQ(h.count(), 5u);  // NaN is not counted
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(64), 2u);
  EXPECT_EQ(h.bucket(3), 1u);  // 6 has bit width 3
}

TEST(LogHistogramUnit, MergeIsBucketwiseSum) {
  LogHistogram a, b;
  a.record(1);
  a.record(100);
  b.record(100);
  b.record(kU64Max);

  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), kU64Max);
  EXPECT_EQ(a.bucket(LogHistogram::bucket_index(100)), 2u);

  // Merging an empty histogram must not disturb min/max.
  LogHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), kU64Max);
}

// ---------------------------------------------------------------------------
// MetricsRegistry semantics
// ---------------------------------------------------------------------------

TEST(MetricsRegistryUnit, CounterAddsAccumulate) {
  MetricsRegistry reg;
  const auto id = reg.counter("sends");
  reg.add(id);
  reg.add(id, 41);
  EXPECT_EQ(reg.counter_value("sends"), 42u);
}

TEST(MetricsRegistryUnit, GaugeTracksValueAndPeak) {
  MetricsRegistry reg;
  const auto id = reg.gauge("depth");
  reg.set(id, 3);
  reg.set(id, 10);
  reg.set(id, 2);
  EXPECT_EQ(reg.gauge_value("depth"), 2);
  EXPECT_EQ(reg.gauge_peak("depth"), 10);
}

TEST(MetricsRegistryUnit, RegisterIsIdempotentPerKind) {
  MetricsRegistry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("x");
  EXPECT_EQ(a, b);  // register-or-lookup
  EXPECT_EQ(reg.size(), 1u);
  // Same name, different kind: programming error.
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x"), std::invalid_argument);
  // Reading with the wrong kind throws too; unknown names are out_of_range.
  EXPECT_THROW((void)reg.gauge_value("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter_value("nope"), std::out_of_range);
}

TEST(MetricsRegistryUnit, HistogramRecordsThroughRegistry) {
  MetricsRegistry reg;
  const auto id = reg.histogram("lat");
  reg.record(id, 5);
  reg.record_clamped(id, 2.5);
  const auto& h = reg.histogram_of("lat");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(3), 1u);  // 5
  EXPECT_EQ(h.bucket(2), 1u);  // 2
}

TEST(MetricsRegistryUnit, MergeMatchesByNameAcrossOrders) {
  // Rank A registers (c, g); rank B registers (g, c) — positional merge
  // would corrupt both, name-based merge must not care.
  MetricsRegistry a, b;
  const auto ac = a.counter("c");
  const auto ag = a.gauge("g");
  const auto bg = b.gauge("g");
  const auto bc = b.counter("c");
  a.add(ac, 10);
  a.set(ag, 5);
  b.add(bc, 7);
  b.set(bg, 9);

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 17u);
  EXPECT_EQ(a.gauge_value("g"), 9);  // max across ranks
  EXPECT_EQ(a.gauge_peak("g"), 9);
}

TEST(MetricsRegistryUnit, MergeAdoptsUnknownNames) {
  MetricsRegistry a, b;
  a.add(a.counter("only_a"), 1);
  b.add(b.counter("only_b"), 2);
  a.merge(b);
  EXPECT_EQ(a.counter_value("only_a"), 1u);
  EXPECT_EQ(a.counter_value("only_b"), 2u);
}

TEST(MetricsRegistryUnit, MergeIsAssociative) {
  // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) for every kind at once, compared via the
  // canonical JSON form (registration order is a-then-b-then-c in both
  // groupings, so a byte compare is meaningful).
  const auto make = [](std::uint64_t c, std::int64_t g, std::uint64_t h) {
    MetricsRegistry r;
    r.add(r.counter("c"), c);
    r.set(r.gauge("g"), g);
    r.record(r.histogram("h"), h);
    return r;
  };
  const auto a = make(1, 10, 100);
  const auto b = make(2, 30, 100);
  const auto c = make(4, 20, 7);

  MetricsRegistry left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  MetricsRegistry bc = b;  // a + (b + c)
  bc.merge(c);
  MetricsRegistry right = a;
  right.merge(bc);

  EXPECT_EQ(registry_json(left), registry_json(right));
  EXPECT_EQ(left.counter_value("c"), 7u);
  EXPECT_EQ(left.gauge_value("g"), 30);
  EXPECT_EQ(left.histogram_of("h").count(), 3u);
}

TEST(MetricsRegistryUnit, MergeKindConflictThrowsWithoutMutating) {
  MetricsRegistry dst;
  dst.add(dst.counter("m"), 5);
  dst.add(dst.counter("n"), 1);

  // src agrees on "n" but registered "m" as a gauge. The merge must throw
  // AND leave dst byte-identical — in particular "n" must not have been
  // merged before the conflict on "m" was discovered.
  MetricsRegistry src;
  src.add(src.counter("n"), 100);
  src.set(src.gauge("m"), 9);

  const std::string before = registry_json(dst);
  EXPECT_THROW(dst.merge(src), std::invalid_argument);
  EXPECT_EQ(registry_json(dst), before);
  EXPECT_EQ(dst.counter_value("n"), 1u);
}

TEST(MetricsRegistryUnit, ResetKeepsRegistry) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  const auto h = reg.histogram("h");
  reg.add(c, 3);
  reg.set(g, 7);
  reg.record(h, 11);

  reg.reset();
  EXPECT_EQ(reg.size(), 3u);  // names and ids survive
  EXPECT_TRUE(reg.contains("c"));
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_EQ(reg.gauge_value("g"), 0);
  EXPECT_EQ(reg.histogram_of("h").count(), 0u);

  // The pre-reset ids still record into the same metrics.
  reg.add(c, 2);
  EXPECT_EQ(reg.counter_value("c"), 2u);
}

// ---------------------------------------------------------------------------
// Facade gate
// ---------------------------------------------------------------------------

TEST(TelemetryFacade, RecordsIffEnabled) {
  dnnd::telemetry::Telemetry t;
  const auto id = t.counter("facade.hits");
  t.add(id, 3);
  {
    const auto span = t.span("unit", "test");
  }
  if constexpr (dnnd::telemetry::kEnabled) {
    EXPECT_EQ(t.metrics().counter_value("facade.hits"), 3u);
    ASSERT_EQ(t.trace().size(), 1u);
    EXPECT_EQ(t.trace().events()[0].name, "unit");
  } else {
    // OFF facade: nothing is recorded anywhere.
    EXPECT_EQ(t.metrics().size(), 0u);
    EXPECT_EQ(t.trace().size(), 0u);
  }
}

}  // namespace

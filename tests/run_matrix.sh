#!/usr/bin/env bash
# Build-matrix driver: configures and builds the repo in every supported
# configuration and runs the tier-1 suite in each. Today's matrix:
#
#   default        DNND_TELEMETRY=ON  (the normal build)
#   telemetry-off  DNND_TELEMETRY=OFF (instrumentation compiled to no-ops;
#                  proves the facade keeps the same API surface and that
#                  no test silently depends on telemetry being recorded)
#   simd-off       DNND_SIMD=OFF (the AVX2 distance-kernel TU is not even
#                  compiled; the blocked scalar reference carries every
#                  build. The kernel determinism contract says this flavour
#                  produces bit-identical graphs AND identical metrics
#                  counters, so the same committed metrics baseline must
#                  gate it unchanged)
#
# Usage:
#   tests/run_matrix.sh            # whole matrix
#   tests/run_matrix.sh default    # one named configuration
#
# Each configuration builds into its own directory (build-matrix-<name>)
# so switching configurations never poisons an incremental build.
set -euo pipefail

cd "$(dirname "$0")/.."

declare -A configs=(
  [default]="-DDNND_TELEMETRY=ON"
  [telemetry-off]="-DDNND_TELEMETRY=OFF"
  [simd-off]="-DDNND_SIMD=OFF"
)

selected=("${!configs[@]}")
if [[ $# -gt 0 ]]; then
  for name in "$@"; do
    if [[ -z "${configs[$name]:-}" ]]; then
      echo "unknown configuration '$name' (have: ${!configs[*]})" >&2
      exit 2
    fi
  done
  selected=("$@")
fi

for name in "${selected[@]}"; do
  build_dir="build-matrix-${name}"
  echo "==== configuration ${name} (${configs[$name]}) ===="
  # shellcheck disable=SC2086 — the flags string is intentionally split
  cmake -B "$build_dir" -S . ${configs[$name]}
  cmake --build "$build_dir" -j
  (cd "$build_dir" && ctest -L tier1 --output-on-failure -j "$(nproc)")
  # Kill-and-resume recovery must hold in every flavour: checkpoint and
  # resume paths are instrumented, so a telemetry-off build exercising the
  # same matrix proves recovery does not depend on the counters existing.
  (cd "$build_dir" &&
   ctest -L recovery --no-tests=error --output-on-failure -j "$(nproc)")
  # Metrics regression gate in every flavour: the baseline is recorded
  # with tracing disabled, so handler byte counters must match even under
  # DNND_TELEMETRY=OFF — a mismatch there means telemetry leaked bytes
  # into the message envelope.
  tests/check_metrics_regression.sh "$build_dir"
done

echo "==== matrix passed: ${selected[*]} ===="

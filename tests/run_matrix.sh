#!/usr/bin/env bash
# Build-matrix driver: configures and builds the repo in every supported
# configuration and runs the tier-1 suite in each. Today's matrix:
#
#   default        DNND_TELEMETRY=ON  (the normal build)
#   telemetry-off  DNND_TELEMETRY=OFF (instrumentation compiled to no-ops;
#                  proves the facade keeps the same API surface and that
#                  no test silently depends on telemetry being recorded)
#   simd-off       DNND_SIMD=OFF (the AVX2 distance-kernel TU is not even
#                  compiled; the blocked scalar reference carries every
#                  build. The kernel determinism contract says this flavour
#                  produces bit-identical graphs AND identical metrics
#                  counters, so the same committed metrics baseline must
#                  gate it unchanged)
#   tsan           DNND_SANITIZE=thread, run with DNND_THREADS_PER_RANK=4:
#                  every auto-threaded pool (NN-Descent hot loops, engine
#                  phases, query handlers, the NeighborList striped-lock
#                  hammer) runs under ThreadSanitizer with real workers.
#                  The thread-count determinism contract says this leg's
#                  graphs and counters are bit-identical to serial runs,
#                  so the SAME committed metrics baseline gates it
#                  unchanged — with 4 threads on.
#
# Usage:
#   tests/run_matrix.sh            # whole matrix
#   tests/run_matrix.sh default    # one named configuration
#
# Each configuration builds into its own directory (build-matrix-<name>)
# so switching configurations never poisons an incremental build.
set -euo pipefail

cd "$(dirname "$0")/.."

declare -A configs=(
  [default]="-DDNND_TELEMETRY=ON"
  [telemetry-off]="-DDNND_TELEMETRY=OFF"
  [simd-off]="-DDNND_SIMD=OFF"
  [tsan]="-DDNND_SANITIZE=thread"
)

# Per-configuration run environment (prepended to every test/gate command).
# The tsan leg forces a 4-worker pool into every threads_per_rank=0 (auto)
# component so TSan watches real cross-thread traffic; determinism means
# nothing else about the run may change.
declare -A run_env=(
  [tsan]="DNND_THREADS_PER_RANK=4"
)

selected=("${!configs[@]}")
if [[ $# -gt 0 ]]; then
  for name in "$@"; do
    if [[ -z "${configs[$name]:-}" ]]; then
      echo "unknown configuration '$name' (have: ${!configs[*]})" >&2
      exit 2
    fi
  done
  selected=("$@")
fi

for name in "${selected[@]}"; do
  build_dir="build-matrix-${name}"
  echo "==== configuration ${name} (${configs[$name]}) ===="
  # shellcheck disable=SC2086 — the flags string is intentionally split
  cmake -B "$build_dir" -S . ${configs[$name]}
  cmake --build "$build_dir" -j
  # shellcheck disable=SC2086 — the env string is intentionally split
  (cd "$build_dir" &&
   env ${run_env[$name]:-} ctest -L tier1 --output-on-failure -j "$(nproc)")
  # Kill-and-resume recovery must hold in every flavour: checkpoint and
  # resume paths are instrumented, so a telemetry-off build exercising the
  # same matrix proves recovery does not depend on the counters existing.
  # shellcheck disable=SC2086
  (cd "$build_dir" &&
   env ${run_env[$name]:-} \
     ctest -L recovery --no-tests=error --output-on-failure -j "$(nproc)")
  # The concurrency property tests (striped NeighborList hammer, thread
  # parity matrix) must be present in every flavour — they are the TSan
  # leg's main payload, and --no-tests=error catches a label typo.
  # shellcheck disable=SC2086
  (cd "$build_dir" &&
   env ${run_env[$name]:-} \
     ctest -L concurrency --no-tests=error --output-on-failure -j "$(nproc)")
  # Metrics regression gate in every flavour: the baseline is recorded
  # with tracing disabled, so handler byte counters must match even under
  # DNND_TELEMETRY=OFF — a mismatch there means telemetry leaked bytes
  # into the message envelope. The tsan leg runs the gate with
  # DNND_THREADS_PER_RANK=4: threading may not move a single counter.
  # shellcheck disable=SC2086
  env ${run_env[$name]:-} tests/check_metrics_regression.sh "$build_dir"
done

echo "==== matrix passed: ${selected[*]} ===="

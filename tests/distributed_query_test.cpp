// Tests for the distributed query service: equivalence with the
// shared-memory searcher's quality, correctness of the message protocol,
// and behaviour across rank counts, drivers, and mutated indexes.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/distributed_query.hpp"
#include "core/dnnd_runner.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

struct Workload {
  core::FeatureStore<float> base;
  core::FeatureStore<float> queries;
  std::vector<std::vector<core::VertexId>> truth;
};

Workload make_workload(std::size_t n = 600, std::size_t nq = 30) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.center_range = 4.0f;
  spec.cluster_std = 1.5f;
  spec.seed = 91;
  const data::GaussianMixture family(spec);
  Workload w{family.sample(n, 1), family.sample(nq, 2), {}};
  w.truth = baselines::brute_force_query_batch(w.base, w.queries, L2Fn{}, 10);
  return w;
}

core::SearchParams default_params() {
  core::SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.25;
  params.num_entry_points = 24;
  return params;
}

class QueryRanks : public ::testing::TestWithParam<int> {};

TEST_P(QueryRanks, HighRecallWithoutGather) {
  const auto w = make_workload();
  comm::Environment env(comm::Config{.num_ranks = GetParam()});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(w.base);
  runner.build();
  runner.optimize();

  core::DistributedQueryService<float, L2Fn> service(env, runner, L2Fn{});
  const auto results = service.run(w.queries, default_params());
  ASSERT_EQ(results.size(), w.queries.size());
  std::vector<std::vector<core::Neighbor>> computed;
  for (const auto& r : results) {
    EXPECT_EQ(r.neighbors.size(), 10u);
    computed.push_back(r.neighbors);
  }
  EXPECT_GT(core::mean_query_recall(computed, w.truth, 10), 0.9)
      << "ranks=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Ranks, QueryRanks, ::testing::Values(1, 3, 8),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(DistributedQuery, ReportedDistancesAreExact) {
  const auto w = make_workload(300, 10);
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  cfg.k = 8;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(w.base);
  runner.build();
  core::DistributedQueryService<float, L2Fn> service(env, runner, L2Fn{});
  const auto results = service.run(w.queries, default_params());
  for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
    for (const auto& n : results[qi].neighbors) {
      EXPECT_FLOAT_EQ(n.distance, L2Fn{}(w.queries.row(qi), w.base[n.id]));
    }
    // Sorted ascending, distinct ids.
    for (std::size_t i = 1; i < results[qi].neighbors.size(); ++i) {
      EXPECT_GE(results[qi].neighbors[i].distance,
                results[qi].neighbors[i - 1].distance);
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_NE(results[qi].neighbors[i].id, results[qi].neighbors[j].id);
      }
    }
  }
}

TEST(DistributedQuery, MatchesSharedMemorySearcherQuality) {
  const auto w = make_workload();
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(w.base);
  runner.build();
  runner.optimize();

  // Shared-memory reference over the gathered graph.
  const auto graph = runner.gather();
  core::GraphSearcher searcher(graph, w.base, L2Fn{});
  std::vector<std::vector<core::Neighbor>> shared;
  for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
    shared.push_back(
        searcher.search(w.queries.row(qi), default_params()).neighbors);
  }
  const double shared_recall = core::mean_query_recall(shared, w.truth, 10);

  core::DistributedQueryService<float, L2Fn> service(env, runner, L2Fn{});
  const auto results = service.run(w.queries, default_params());
  std::vector<std::vector<core::Neighbor>> distributed;
  for (const auto& r : results) distributed.push_back(r.neighbors);
  const double distributed_recall =
      core::mean_query_recall(distributed, w.truth, 10);

  EXPECT_GT(distributed_recall, shared_recall - 0.08)
      << "distributed traversal should match the shared-memory searcher";
}

TEST(DistributedQuery, ThreadedDriverAgrees) {
  const auto w = make_workload(400, 16);
  comm::Environment env(
      comm::Config{.num_ranks = 4, .driver = comm::DriverKind::kThreaded});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(w.base);
  runner.build();
  core::DistributedQueryService<float, L2Fn> service(env, runner, L2Fn{});
  const auto results = service.run(w.queries, default_params());
  std::vector<std::vector<core::Neighbor>> computed;
  for (const auto& r : results) computed.push_back(r.neighbors);
  EXPECT_GT(core::mean_query_recall(computed, w.truth, 10), 0.85);
}

TEST(DistributedQuery, EpsilonTradesWorkForRecall) {
  const auto w = make_workload();
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(w.base);
  runner.build();
  runner.optimize();
  core::DistributedQueryService<float, L2Fn> service(env, runner, L2Fn{});

  std::uint64_t prev_evals = 0;
  double prev_recall = -1;
  for (const double epsilon : {0.0, 0.2, 0.4}) {
    auto params = default_params();
    params.epsilon = epsilon;
    const auto results = service.run(w.queries, params);
    std::uint64_t evals = 0;
    std::vector<std::vector<core::Neighbor>> computed;
    for (const auto& r : results) {
      evals += r.distance_evals;
      computed.push_back(r.neighbors);
    }
    const double recall = core::mean_query_recall(computed, w.truth, 10);
    EXPECT_GE(recall + 0.03, prev_recall);
    EXPECT_GT(evals, prev_evals);
    prev_evals = evals;
    prev_recall = recall;
  }
  EXPECT_GT(prev_recall, 0.93);
}

TEST(DistributedQuery, WorksAfterDynamicUpdates) {
  auto w = make_workload(400, 12);
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(w.base);
  runner.build();

  // Delete a slice, refine, re-attach a new service and query survivors.
  std::vector<core::VertexId> removed;
  for (core::VertexId v = 0; v < 400; v += 5) removed.push_back(v);
  runner.remove_points(removed);
  runner.refine();

  core::FeatureStore<float> survivors;
  for (core::VertexId v = 0; v < 400; ++v) {
    if (v % 5 != 0) survivors.add(v, w.base[v]);
  }
  const auto truth =
      baselines::brute_force_query_batch(survivors, w.queries, L2Fn{}, 10);

  core::DistributedQueryService<float, L2Fn> service(env, runner, L2Fn{});
  const auto results = service.run(w.queries, default_params());
  std::vector<std::vector<core::Neighbor>> computed;
  for (const auto& r : results) {
    for (const auto& n : r.neighbors) {
      EXPECT_NE(n.id % 5, 0u) << "deleted vertex returned by a query";
    }
    computed.push_back(r.neighbors);
  }
  EXPECT_GT(core::mean_query_recall(computed, truth, 10), 0.8);
}

TEST(DistributedQuery, EmptyQueryBatch) {
  const auto w = make_workload(100, 0);
  comm::Environment env(comm::Config{.num_ranks = 2});
  core::DnndConfig cfg;
  cfg.k = 6;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(w.base);
  runner.build();
  core::DistributedQueryService<float, L2Fn> service(env, runner, L2Fn{});
  EXPECT_TRUE(service.run(w.queries, default_params()).empty());
}

}  // namespace

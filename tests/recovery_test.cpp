// Kill-and-resume chaos harness for crash-stop fault tolerance.
//
// Each matrix case runs a full DNND build under a kill plan (crash rank r
// at injector tick n, possibly again on the retry attempt) supervised by
// core::run_build_with_recovery, and asserts the ISSUE invariants:
//
//   1. every scheduled crash is detected as a structured RankFailureError
//      (heartbeat timeout or post-barrier liveness check) — never a hang;
//   2. the supervisor resumes from the newest CRC-valid checkpoint
//      generation (or restarts from scratch when the crash predates every
//      checkpoint) and the final graph is *bit-identical* to the
//      fault-free build with the same engine seed;
//   3. recall@10 against brute force is therefore unchanged;
//   4. torn / truncated / bit-flipped newest generations are rolled back
//      to the last good one on open, not loaded.
//
// Bit-identity needs the same schedule-independent configuration as
// chaos_test.cpp: delta = 0, redundant_check_reduction = false,
// distribute() path. Checkpoints are iteration-boundary consistent cuts
// that include each engine's RNG stream, so a resumed build replays the
// exact remaining iterations.
//
// Replaying a failure: every assertion carries a SCOPED_TRACE line of the
// form `replay: DNND_CHAOS_SEED=<s> DNND_CHAOS_PLAN=<name>`; exporting
// those variables runs exactly (and only) the failing combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/brute_force.hpp"
#include "comm/communicator.hpp"
#include "comm/environment.hpp"
#include "core/checkpoint_store.hpp"
#include "core/distance.hpp"
#include "core/distance_kernels.hpp"
#include "core/dnnd_checkpoint.hpp"
#include "core/dnnd_runner.hpp"
#include "core/recall.hpp"
#include "core/recovery.hpp"
#include "data/synthetic.hpp"
#include "mpi/fault_injector.hpp"
#include "pmem/manager.hpp"

namespace {

using namespace dnnd;  // NOLINT
using comm::Config;
using comm::Environment;
using core::CheckpointStore;
using core::DnndConfig;
using core::DnndRunner;
using core::RecoveryOptions;
using mpi::CrashFault;
using mpi::FaultPlan;

namespace fs = std::filesystem;

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

constexpr std::size_t kN = 320;
constexpr std::size_t kK = 10;
constexpr int kRanks = 4;

const core::FeatureStore<float>& dataset() {
  static const core::FeatureStore<float> points = [] {
    data::MixtureSpec spec;
    spec.dim = 8;
    spec.num_clusters = 10;
    spec.seed = 29;
    return data::GaussianMixture(spec).sample(kN, 1);
  }();
  return points;
}

const core::KnnGraph& exact_graph() {
  static const core::KnnGraph g =
      baselines::brute_force_knn_graph(dataset(), L2Fn{}, kK);
  return g;
}

/// Schedule-independent engine configuration (see file comment).
/// `threads` sizes the intra-rank pool; the fault-free reference is
/// pinned to 1, and threads = 4 kill-and-resume cases must still match it
/// bit for bit (threads_per_rank is deliberately NOT checkpointed, so a
/// resume may run under a different thread count than the cut).
DnndConfig chaos_config(std::uint64_t engine_seed, std::size_t threads = 1) {
  DnndConfig cfg;
  cfg.k = kK;
  cfg.delta = 0.0;
  cfg.max_iterations = 10;
  cfg.batch_size = 4096;
  cfg.redundant_check_reduction = false;
  cfg.seed = engine_seed;
  cfg.threads_per_rank = threads;
  return cfg;
}

struct BuildResult {
  core::KnnGraph graph;
  double recall = 0.0;
};

/// Fault-free sequential reference for an engine seed, computed once.
const BuildResult& reference(std::uint64_t engine_seed) {
  static std::map<std::uint64_t, BuildResult> cache;
  auto it = cache.find(engine_seed);
  if (it == cache.end()) {
    Config cfg{.num_ranks = kRanks};
    Environment env(cfg);
    DnndRunner<float, L2Fn> runner(env, chaos_config(engine_seed), L2Fn{});
    runner.distribute(dataset());
    runner.build();
    BuildResult result;
    result.graph = runner.gather();
    result.recall = core::graph_recall(result.graph, exact_graph(), kK);
    it = cache.emplace(engine_seed, std::move(result)).first;
  }
  return it->second;
}

/// A kill schedule: crashes[a] is injected on build attempt `a` (recovery
/// attempts past the schedule run on a healthy transport).
struct KillPlan {
  const char* name;
  std::vector<std::vector<CrashFault>> crashes;
  std::size_t checkpoint_every = 1;
};

std::vector<KillPlan> kill_plans() {
  return {
      // A full build spans roughly 600-900 injector ticks per rank at
      // this scale, so the kill ticks below land in distinct thirds.
      // Rank 1 dies early — usually before much progress checkpoints.
      {.name = "kill_r1_early",
       .crashes = {{CrashFault{.rank = 1, .at_tick = 150}}},
       .checkpoint_every = 1},
      // Rank 0 (the gather root) dies mid-build.
      {.name = "kill_r0_mid",
       .crashes = {{CrashFault{.rank = 0, .at_tick = 350}}},
       .checkpoint_every = 2},
      // Rank 3 dies late, with sparser checkpoints.
      {.name = "kill_r3_late",
       .crashes = {{CrashFault{.rank = 3, .at_tick = 600}}},
       .checkpoint_every = 2},
      // The replacement environment fails too: a second, different rank
      // dies on the first recovery attempt (which resumes mid-build and
      // therefore runs fewer ticks — keep its kill early).
      {.name = "double_kill",
       .crashes = {{CrashFault{.rank = 1, .at_tick = 250}},
                   {CrashFault{.rank = 2, .at_tick = 150}}},
       .checkpoint_every = 1},
  };
}

std::vector<std::uint64_t> matrix_engine_seeds() { return {21, 22}; }

/// Fresh checkpoint directory under the gtest temp root.
std::string fresh_ckpt_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "dnnd_recovery_" + tag;
  fs::remove_all(dir);
  return dir;
}

struct RecoveryCase {
  std::uint64_t engine_seed;
  std::size_t plan_index;
  std::size_t threads = 1;  ///< intra-rank pool size during every attempt
};

std::string case_name(const ::testing::TestParamInfo<RecoveryCase>& info) {
  std::string name = std::string(kill_plans()[info.param.plan_index].name) +
                     "_s" + std::to_string(info.param.engine_seed);
  if (info.param.threads > 1) {
    name += "_t" + std::to_string(info.param.threads);
  }
  return name;
}

std::vector<RecoveryCase> make_cases() {
  std::vector<RecoveryCase> cases;
  const auto plans = kill_plans();
  for (const std::uint64_t seed : matrix_engine_seeds()) {
    for (std::size_t p = 0; p < plans.size(); ++p) {
      cases.push_back(RecoveryCase{seed, p});
    }
  }
  // ...plus intra-rank-threaded spot checks: crash-stop recovery with a
  // 4-thread pool on every attempt, still bit-identical to the
  // single-threaded fault-free reference.
  cases.push_back(RecoveryCase{21, 1, 4});  // kill_r0_mid
  cases.push_back(RecoveryCase{22, 3, 4});  // double_kill
  return cases;  // 2 seeds x 4 kill plans + 2 threaded = 10 combinations
}

RecoveryOptions recovery_options(const KillPlan& plan) {
  RecoveryOptions opts;
  opts.checkpoint_every = plan.checkpoint_every;
  opts.checkpoint_capacity_bytes = 16ull << 20;
  return opts;
}

/// Environment factory: attempt `a` gets kill schedule crashes[a] (healthy
/// once the schedule is exhausted).
auto make_env_factory(const KillPlan& plan) {
  return [&plan](std::size_t attempt) {
    Config cfg{.num_ranks = kRanks};
    if (attempt < plan.crashes.size()) {
      FaultPlan fault_plan;
      fault_plan.crashes = plan.crashes[attempt];
      cfg.fault_plan = fault_plan;
    }
    return std::make_unique<Environment>(cfg);
  };
}

// Guard against silent no-op replays (same contract as chaos_test.cpp).
TEST(Recovery, ReplayFilterMatchesAKnownCombination) {
  if (const char* plan = std::getenv("DNND_CHAOS_PLAN")) {
    std::string valid;
    bool known = false;
    for (const auto& p : kill_plans()) {
      known = known || std::string(plan) == p.name;
      valid += std::string(" ") + p.name;
    }
    // tests/run_chaos.sh drives this suite AND the chaos suite with the
    // same replay variable, so chaos fault plans (tests/chaos_test.cpp)
    // are valid-but-foreign here: they must not trip the typo guard.
    for (const char* p : {"protocol_only", "light_mix", "drop_heavy",
                          "delay_reorder", "stall_drop"}) {
      known = known || std::string(plan) == p;
      valid += std::string(" ") + p;
    }
    EXPECT_TRUE(known) << "DNND_CHAOS_PLAN='" << plan
                       << "' matches no kill plan; valid:" << valid;
  }
  if (const char* seed = std::getenv("DNND_CHAOS_SEED")) {
    auto seeds = matrix_engine_seeds();
    // The chaos matrix (tests/chaos_test.cpp) replays through the same
    // variable; its seeds are valid-but-foreign here.
    seeds.insert(seeds.end(), {11, 12, 13, 14});
    const std::uint64_t want = std::stoull(seed);
    const bool known =
        std::find(seeds.begin(), seeds.end(), want) != seeds.end();
    std::string valid;
    for (const auto s : seeds) valid += " " + std::to_string(s);
    EXPECT_TRUE(known) << "DNND_CHAOS_SEED=" << seed
                       << " is not in the matrix; valid:" << valid;
  }
}

class KillAndResume : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(KillAndResume, ResumedGraphIsBitIdentical) {
  const RecoveryCase& c = GetParam();
  const KillPlan plan = kill_plans()[c.plan_index];

  if (const char* want = std::getenv("DNND_CHAOS_SEED");
      want != nullptr && std::stoull(want) != c.engine_seed) {
    GTEST_SKIP() << "DNND_CHAOS_SEED filter";
  }
  if (const char* want = std::getenv("DNND_CHAOS_PLAN");
      want != nullptr && std::string(want) != plan.name) {
    GTEST_SKIP() << "DNND_CHAOS_PLAN filter";
  }
  SCOPED_TRACE("replay: DNND_CHAOS_SEED=" + std::to_string(c.engine_seed) +
               " DNND_CHAOS_PLAN=" + plan.name);

  CheckpointStore store(fresh_ckpt_dir(
      std::string(plan.name) + "_s" + std::to_string(c.engine_seed) + "_t" +
      std::to_string(c.threads)));
  const DnndConfig cfg = chaos_config(c.engine_seed, c.threads);
  auto result = core::run_build_with_recovery<float, L2Fn>(
      store, make_env_factory(plan),
      [&](Environment& env) {
        return std::make_unique<DnndRunner<float, L2Fn>>(env, cfg, L2Fn{});
      },
      [&](DnndRunner<float, L2Fn>& runner) { runner.distribute(dataset()); },
      recovery_options(plan));

  // Invariant 1: every scheduled crash was detected as a structured
  // failure, and the supervisor needed exactly one attempt per crash.
  EXPECT_EQ(result.report.failures_detected, plan.crashes.size());
  EXPECT_EQ(result.report.attempts, plan.crashes.size() + 1);
  ASSERT_EQ(result.report.failed_ranks.size(), plan.crashes.size());
  for (std::size_t a = 0; a < plan.crashes.size(); ++a) {
    EXPECT_EQ(result.report.failed_ranks[a], plan.crashes[a][0].rank);
  }

  // Invariants 2 + 3: bit-identical graph, unchanged recall.
  const auto graph = result.runner->gather();
  const BuildResult& ref = reference(c.engine_seed);
  EXPECT_TRUE(graph == ref.graph)
      << "resumed graph diverged from the fault-free reference";
  EXPECT_DOUBLE_EQ(core::graph_recall(graph, exact_graph(), kK), ref.recall);
  EXPECT_GT(ref.recall, 0.9);

  // The surviving (healthy) attempt reached true quiescence.
  EXPECT_TRUE(result.env->world().quiescent());

  // Checkpoint plumbing engaged: generations were written and the store's
  // newest generation is CRC-valid.
  EXPECT_GT(result.report.checkpoints_written, 0u);
  EXPECT_TRUE(store.open_latest().has_value());
}

INSTANTIATE_TEST_SUITE_P(Matrix, KillAndResume,
                         ::testing::ValuesIn(make_cases()), case_name);

// Dispatch cross-check: a kill-and-resume run under forced-scalar kernel
// dispatch must produce the same bits as the fault-free reference built
// under the default dispatch (AVX2 where available) — the checkpoint cut
// and the resumed iterations consume only canonical distance values
// (core/distance_kernels.hpp determinism contract).
TEST(Recovery, KillAndResumeUnderForcedScalarMatchesDefaultDispatch) {
  const std::uint64_t engine_seed = 21;
  // Computed (and cached) BEFORE the override, under default dispatch.
  const BuildResult& ref = reference(engine_seed);

  const KillPlan plan = kill_plans()[1];  // kill_r0_mid
  core::ScopedKernelDispatch scalar_only(core::KernelDispatch::kForceScalar);
  CheckpointStore store(fresh_ckpt_dir("forced_scalar_kill_r0_mid"));
  const DnndConfig cfg = chaos_config(engine_seed);
  auto result = core::run_build_with_recovery<float, L2Fn>(
      store, make_env_factory(plan),
      [&](Environment& env) {
        return std::make_unique<DnndRunner<float, L2Fn>>(env, cfg, L2Fn{});
      },
      [&](DnndRunner<float, L2Fn>& runner) { runner.distribute(dataset()); },
      recovery_options(plan));

  EXPECT_EQ(result.report.failures_detected, plan.crashes.size());
  EXPECT_TRUE(result.runner->gather() == ref.graph)
      << "forced-scalar resumed graph diverged from the default-dispatch "
         "fault-free reference";
}

// A crash before the first checkpoint degrades to a deterministic full
// restart — still structured, still bit-identical, resumed_from empty.
TEST(Recovery, CrashBeforeFirstCheckpointRestartsFromScratch) {
  const std::uint64_t engine_seed = 23;
  KillPlan plan{.name = "kill_before_ckpt",
                .crashes = {{CrashFault{.rank = 2, .at_tick = 40}}},
                .checkpoint_every = 4};
  CheckpointStore store(fresh_ckpt_dir("before_first_ckpt"));
  const DnndConfig cfg = chaos_config(engine_seed);
  auto result = core::run_build_with_recovery<float, L2Fn>(
      store, make_env_factory(plan),
      [&](Environment& env) {
        return std::make_unique<DnndRunner<float, L2Fn>>(env, cfg, L2Fn{});
      },
      [&](DnndRunner<float, L2Fn>& runner) { runner.distribute(dataset()); },
      recovery_options(plan));

  EXPECT_EQ(result.report.failures_detected, 1u);
  EXPECT_TRUE(result.report.resumed_from.empty())
      << "no checkpoint existed, so the retry must start from scratch";
  EXPECT_TRUE(result.runner->gather() == reference(engine_seed).graph);
}

// Corrupting the newest generation (the torn-write property) must roll the
// resume back to the previous CRC-valid generation — and the build resumed
// from that older cut is still bit-identical.
TEST(Recovery, TornNewestGenerationRollsBackToPreviousCut) {
  const std::uint64_t engine_seed = 24;
  CheckpointStore store(fresh_ckpt_dir("torn_generation"));
  const DnndConfig cfg = chaos_config(engine_seed);

  // Write checkpoints every iteration on a healthy, uninterrupted build.
  {
    Config env_cfg{.num_ranks = kRanks};
    Environment env(env_cfg);
    DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.set_checkpoint_hook(1, [&](std::size_t, bool) {
      core::write_checkpoint_generation(store, runner, 16ull << 20);
    });
    runner.distribute(dataset());
    runner.build();
  }
  const auto gens = store.generations();
  ASSERT_EQ(gens.size(), CheckpointStore::kKeepGenerations);
  const auto newest = gens.back();
  const auto previous = gens[gens.size() - 2];

  // Tear the newest generation mid-file: flip a byte at ~60% depth.
  {
    const std::string path = store.directory() + "/" + newest.file;
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(static_cast<std::streamoff>(newest.bytes * 6 / 10));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(static_cast<std::streamoff>(newest.bytes * 6 / 10));
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  ASSERT_FALSE(store.valid(newest));
  const auto opened = store.open_latest();
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->generation, previous.generation)
      << "open_latest must skip the corrupted newest generation";

  // Resume from the rolled-back cut and finish: identical final graph.
  Config env_cfg{.num_ranks = kRanks};
  Environment env(env_cfg);
  DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  const auto loaded = core::load_latest_generation(store, runner);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, previous.generation);
  EXPECT_EQ(runner.completed_iterations(), previous.iteration);
  runner.resume_build();
  EXPECT_TRUE(runner.gather() == reference(engine_seed).graph);
}

// Resuming a store whose newest generation captured the *converged* state
// finishes without running any further iterations.
TEST(Recovery, ResumeFromFinalCheckpointIsANoOp) {
  const std::uint64_t engine_seed = 25;
  CheckpointStore store(fresh_ckpt_dir("final_ckpt_noop"));
  const DnndConfig cfg = chaos_config(engine_seed);
  {
    Config env_cfg{.num_ranks = kRanks};
    Environment env(env_cfg);
    DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.set_checkpoint_hook(2, [&](std::size_t, bool) {
      core::write_checkpoint_generation(store, runner, 16ull << 20);
    });
    runner.distribute(dataset());
    runner.build();
  }
  Config env_cfg{.num_ranks = kRanks};
  Environment env(env_cfg);
  DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  ASSERT_TRUE(core::load_latest_generation(store, runner).has_value());
  const auto stats = runner.resume_build();
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_TRUE(runner.gather() == reference(engine_seed).graph);
}

// -- intra-rank threading x checkpointing ------------------------------------

/// Canonical byte rendering of every logical record load_checkpoint
/// consumes from a generation file: meta, per-iteration update counts,
/// and each rank's RNG stream + CSR rows (ids, offsets, and entries with
/// exact distance bits and new/old flags). The raw arena image is NOT
/// compared — pmem allocator bookkeeping makes it byte-unstable even
/// between two identical runs — but these records ARE the checkpoint.
std::string canonical_checkpoint_bytes(const std::string& path) {
  auto manager = pmem::Manager::open(path);
  std::ostringstream out;
  auto* head = manager.find<core::CheckpointHead>("ckpt/head");
  EXPECT_NE(head, nullptr) << path;
  if (head == nullptr) return {};
  const std::string sp = core::detail::slot_prefix("ckpt", head->active_slot);
  auto* meta = manager.find<core::CheckpointMeta>(sp + "/meta");
  EXPECT_NE(meta, nullptr) << path;
  if (meta == nullptr) return {};
  out << "meta " << meta->num_ranks << ' ' << meta->k << ' '
      << meta->global_count << ' ' << meta->id_bound << ' '
      << meta->completed_iterations << ' ' << meta->total_updates << ' '
      << meta->seed << ' ' << meta->converged << '\n';
  if (auto* updates = manager.find<core::CheckpointUpdates>(sp + "/updates")) {
    out << "updates";
    for (std::size_t i = 0; i < updates->counts.size(); ++i) {
      out << ' ' << updates->counts[i];
    }
    out << '\n';
  }
  for (std::uint32_t r = 0; r < meta->num_ranks; ++r) {
    const int rank = static_cast<int>(r);
    auto* rng = manager.find<core::CheckpointRngState>(
        core::detail::ckpt_name(sp, "rng", rank));
    EXPECT_NE(rng, nullptr) << path << " rank " << rank;
    if (rng == nullptr) return {};
    out << "rng " << rank << ' ' << rng->s[0] << ' ' << rng->s[1] << ' '
        << rng->s[2] << ' ' << rng->s[3] << '\n';
    auto* rows = manager.find<core::CheckpointRows>(
        core::detail::ckpt_name(sp, "rows", rank));
    EXPECT_NE(rows, nullptr) << path << " rank " << rank;
    if (rows == nullptr) return {};
    out << "rows " << rank << '\n';
    for (std::size_t i = 0; i < rows->ids.size(); ++i) {
      out << rows->ids[i] << ':';
      for (auto e = rows->row_offsets[i]; e < rows->row_offsets[i + 1]; ++e) {
        const core::Neighbor& n = rows->entries[e];
        out << ' ' << n.id << '/'
            << std::bit_cast<std::uint32_t>(n.distance) << '/' << n.is_new;
      }
      out << '\n';
    }
  }
  return out.str();
}

// The checkpoint cut is a pure function of the algorithm state, and the
// thread pool is invisible in every state bit — so two healthy builds
// that differ ONLY in threads_per_rank must write generations whose
// logical records are byte-equal. (threads_per_rank is deliberately not
// checkpointed; this test would catch it leaking into the state.)
TEST(Recovery, CheckpointGenerationsAreByteEqualAcrossThreadCounts) {
  const std::uint64_t engine_seed = 28;
  auto build_with_checkpoints = [&](std::size_t threads,
                                    const std::string& tag) {
    auto store = std::make_unique<CheckpointStore>(fresh_ckpt_dir(tag));
    Config env_cfg{.num_ranks = kRanks};
    Environment env(env_cfg);
    DnndRunner<float, L2Fn> runner(env, chaos_config(engine_seed, threads),
                                   L2Fn{});
    runner.set_checkpoint_hook(1, [&](std::size_t, bool) {
      core::write_checkpoint_generation(*store, runner, 16ull << 20);
    });
    runner.distribute(dataset());
    runner.build();
    return store;
  };
  const auto a = build_with_checkpoints(1, "bytes_t1");
  const auto b = build_with_checkpoints(4, "bytes_t4");

  const auto gens_a = a->generations();
  const auto gens_b = b->generations();
  ASSERT_EQ(gens_a.size(), gens_b.size());
  ASSERT_GT(gens_a.size(), 0u);
  for (std::size_t g = 0; g < gens_a.size(); ++g) {
    EXPECT_EQ(gens_a[g].generation, gens_b[g].generation);
    EXPECT_EQ(gens_a[g].iteration, gens_b[g].iteration);
    const auto bytes_a =
        canonical_checkpoint_bytes(a->directory() + "/" + gens_a[g].file);
    const auto bytes_b =
        canonical_checkpoint_bytes(b->directory() + "/" + gens_b[g].file);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_TRUE(bytes_a == bytes_b)
        << "generation " << gens_a[g].generation
        << " diverged between threads=1 and threads=4";
  }
}

// A cut written under a 4-thread pool resumes under ANY thread count to
// the same final bits — threads_per_rank is a runtime knob, not state.
TEST(Recovery, ResumeUnderDifferentThreadCountIsBitIdentical) {
  const std::uint64_t engine_seed = 29;
  CheckpointStore store(fresh_ckpt_dir("cross_thread_resume"));
  {
    Config env_cfg{.num_ranks = kRanks};
    Environment env(env_cfg);
    DnndRunner<float, L2Fn> runner(env, chaos_config(engine_seed, 4),
                                   L2Fn{});
    // Checkpoint only the first few iterations: the newest generation is
    // a genuine mid-build cut, so the resume below replays real work.
    runner.set_checkpoint_hook(1, [&](std::size_t iteration, bool) {
      if (iteration <= 4) {
        core::write_checkpoint_generation(store, runner, 16ull << 20);
      }
    });
    runner.distribute(dataset());
    runner.build();
  }
  const auto newest = store.open_latest();
  ASSERT_TRUE(newest.has_value());
  ASSERT_LE(newest->iteration, 4u);

  for (const std::size_t resume_threads : {std::size_t{1}, std::size_t{8}}) {
    Config env_cfg{.num_ranks = kRanks};
    Environment env(env_cfg);
    DnndRunner<float, L2Fn> runner(
        env, chaos_config(engine_seed, resume_threads), L2Fn{});
    ASSERT_TRUE(core::load_latest_generation(store, runner).has_value());
    EXPECT_EQ(runner.completed_iterations(), newest->iteration);
    runner.resume_build();
    EXPECT_TRUE(runner.gather() == reference(engine_seed).graph)
        << "resume_threads=" << resume_threads;
  }
}

// A resumed build must use the original engine seed — the checkpoint
// records it, and a mismatch is a hard error rather than a silent
// divergence.
TEST(Recovery, ResumeWithDifferentSeedIsRejected) {
  CheckpointStore store(fresh_ckpt_dir("seed_mismatch"));
  {
    Config env_cfg{.num_ranks = kRanks};
    Environment env(env_cfg);
    DnndRunner<float, L2Fn> runner(env, chaos_config(26), L2Fn{});
    runner.set_checkpoint_hook(1, [&](std::size_t, bool) {
      core::write_checkpoint_generation(store, runner, 16ull << 20);
    });
    runner.distribute(dataset());
    runner.build();
  }
  Config env_cfg{.num_ranks = kRanks};
  Environment env(env_cfg);
  DnndRunner<float, L2Fn> runner(env, chaos_config(27), L2Fn{});
  EXPECT_THROW(core::load_latest_generation(store, runner),
               std::runtime_error);
}

}  // namespace

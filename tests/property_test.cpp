// Property-based and model-based tests.
//
// Each test drives a component with long random operation sequences and
// checks it against either a trivially correct shadow model or an
// invariant that must hold at every step. Failures print the seed, so any
// counterexample is reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "core/neighbor_list.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"
#include "pmem/arena.hpp"
#include "pmem/vector.hpp"
#include "serial/archive.hpp"
#include "util/rng.hpp"

namespace {

using namespace dnnd;  // NOLINT

// ---------------------------------------------------------------------------
// NeighborList vs. a shadow model (sorted map of the k best distinct ids).
// ---------------------------------------------------------------------------

class NeighborListModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NeighborListModel, MatchesReferenceSemantics) {
  util::Xoshiro256 rng(GetParam());
  constexpr std::size_t kCap = 12;
  core::NeighborList list(kCap);
  // Model: id -> distance of the current best set.
  std::map<core::VertexId, core::Dist> model;

  auto model_furthest = [&]() {
    core::Dist worst = 0;
    for (const auto& [id, d] : model) worst = std::max(worst, d);
    return model.size() == kCap ? worst : core::kInfiniteDistance;
  };

  for (int step = 0; step < 3000; ++step) {
    const auto id = static_cast<core::VertexId>(rng.uniform_below(64));
    // Continuous distances: ties (where the evicted element among equals
    // is unspecified) have measure zero, so the model is exact.
    const auto d = static_cast<core::Dist>(rng.uniform_double());

    // Reference semantics of Algorithm 1's Update().
    int expect = 0;
    if (!model.contains(id) && d < model_furthest()) {
      if (model.size() == kCap) {
        // pop the farthest (ties broken arbitrarily — mirror the heap by
        // allowing either outcome only when a tie exists; distances here
        // are integers over a small range, so handle ties explicitly).
        auto worst = model.begin();
        for (auto it = model.begin(); it != model.end(); ++it) {
          if (it->second > worst->second) worst = it;
        }
        model.erase(worst);
      }
      model.emplace(id, d);
      expect = 1;
    }

    const int got = list.update(id, d, true);
    ASSERT_EQ(got, expect) << "step " << step << " seed " << GetParam();
    ASSERT_EQ(list.size(), model.size());
    // Same farthest distance (the heap root drives all accept decisions).
    if (list.full()) {
      ASSERT_FLOAT_EQ(list.furthest_distance(), model_furthest());
    }
    // Same id set.
    for (const auto& [id2, d2] : model) {
      ASSERT_TRUE(list.contains(id2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeighborListModel,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Arena allocator vs. shadow model: blocks never overlap, frees recycle,
// the live-byte counter matches.
// ---------------------------------------------------------------------------

class ArenaModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaModel, BlocksDisjointAndCountersExact) {
  util::Xoshiro256 rng(GetParam());
  std::vector<unsigned char> buffer(4 << 20);
  auto* header = reinterpret_cast<pmem::ArenaHeader*>(buffer.data());
  pmem::arena_format(header, buffer.size());

  struct Block {
    char* ptr;
    std::size_t request;
    std::size_t rounded;
  };
  std::vector<Block> live;
  std::uint64_t expected_live_bytes = 0;

  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.bernoulli(0.55)) {
      const std::size_t request = 1 + rng.uniform_below(2048);
      void* p = pmem::arena_allocate(header, request);
      if (p == nullptr) continue;  // exhausted: acceptable, not a failure
      const std::size_t rounded =
          pmem::size_class_bytes(pmem::size_class_of(request));
      // Alignment and containment.
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
      ASSERT_GE(static_cast<unsigned char*>(p), buffer.data());
      ASSERT_LE(static_cast<unsigned char*>(p) + rounded,
                buffer.data() + buffer.size());
      // Disjoint from every live block.
      for (const Block& b : live) {
        const bool before = static_cast<char*>(p) + rounded <= b.ptr;
        const bool after = b.ptr + b.rounded <= static_cast<char*>(p);
        ASSERT_TRUE(before || after) << "overlapping blocks at step " << step;
      }
      live.push_back(Block{static_cast<char*>(p), request, rounded});
      expected_live_bytes += rounded;
    } else {
      const std::size_t victim = rng.uniform_below(live.size());
      pmem::arena_deallocate(header, live[victim].ptr, live[victim].request);
      expected_live_bytes -= live[victim].rounded;
      live[victim] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(header->allocated, expected_live_bytes) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaModel, ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// pmem::vector vs. std::vector under a random operation sequence.
// ---------------------------------------------------------------------------

class PmemVectorModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PmemVectorModel, BehavesLikeStdVector) {
  util::Xoshiro256 rng(GetParam());
  std::vector<unsigned char> buffer(8 << 20);
  auto* header = reinterpret_cast<pmem::ArenaHeader*>(buffer.data());
  pmem::arena_format(header, buffer.size());

  pmem::vector<std::uint64_t> subject{pmem::allocator<std::uint64_t>(header)};
  std::vector<std::uint64_t> model;

  for (int step = 0; step < 4000; ++step) {
    switch (rng.uniform_below(6)) {
      case 0:
      case 1:
      case 2: {  // push_back biased: vectors mostly grow
        const std::uint64_t v = rng();
        subject.push_back(v);
        model.push_back(v);
        break;
      }
      case 3:
        if (!model.empty()) {
          subject.pop_back();
          model.pop_back();
        }
        break;
      case 4: {
        const std::size_t target = rng.uniform_below(model.size() + 20);
        subject.resize(target, 7);
        model.resize(target, 7);
        break;
      }
      case 5:
        subject.shrink_to_fit();
        break;
    }
    ASSERT_EQ(subject.size(), model.size()) << "step " << step;
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(subject[i], model[i]) << "index " << i << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmemVectorModel, ::testing::Values(21, 22));

// ---------------------------------------------------------------------------
// Serialization round-trip over randomized message sequences.
// ---------------------------------------------------------------------------

class ArchiveRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveRoundTrip, RandomMessageSequences) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    serial::OutArchive out;
    // Build a random sequence of typed fields; record for verification.
    std::vector<int> kinds;
    std::vector<std::uint64_t> u64s;
    std::vector<float> floats;
    std::vector<std::vector<std::uint8_t>> blobs;
    const int fields = 1 + static_cast<int>(rng.uniform_below(12));
    for (int f = 0; f < fields; ++f) {
      const int kind = static_cast<int>(rng.uniform_below(3));
      kinds.push_back(kind);
      if (kind == 0) {
        u64s.push_back(rng());
        out.write(u64s.back());
      } else if (kind == 1) {
        floats.push_back(rng.uniform_float(-1e6f, 1e6f));
        out.write(floats.back());
      } else {
        std::vector<std::uint8_t> blob(rng.uniform_below(64));
        for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
        blobs.push_back(blob);
        out.write_vector(blob);
      }
    }
    serial::InArchive in(out.bytes());
    std::size_t next_u64 = 0, next_float = 0, next_blob = 0;
    for (const int kind : kinds) {
      if (kind == 0) {
        ASSERT_EQ(in.read<std::uint64_t>(), u64s[next_u64++]);
      } else if (kind == 1) {
        ASSERT_EQ(in.read<float>(), floats[next_float++]);
      } else {
        ASSERT_EQ(in.read_vector<std::uint8_t>(), blobs[next_blob++]);
      }
    }
    ASSERT_TRUE(in.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveRoundTrip, ::testing::Values(31, 32));

TEST_P(ArchiveRoundTrip, WideTypeMixWithEmptyPayloads) {
  // Full codec surface in random interleavings, with empty vectors and
  // empty strings appearing often (they exercise the zero-length varint
  // path that fixed-size fields never touch).
  util::Xoshiro256 rng(GetParam() * 1000003);
  for (int trial = 0; trial < 200; ++trial) {
    serial::OutArchive out;
    std::vector<int> kinds;
    std::vector<std::uint8_t> u8s;
    std::vector<std::uint16_t> u16s;
    std::vector<std::int32_t> i32s;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    std::vector<std::vector<float>> fvecs;
    const int fields = static_cast<int>(rng.uniform_below(16));  // may be 0
    for (int f = 0; f < fields; ++f) {
      const int kind = static_cast<int>(rng.uniform_below(6));
      kinds.push_back(kind);
      switch (kind) {
        case 0:
          u8s.push_back(static_cast<std::uint8_t>(rng()));
          out.write(u8s.back());
          break;
        case 1:
          u16s.push_back(static_cast<std::uint16_t>(rng()));
          out.write(u16s.back());
          break;
        case 2:
          i32s.push_back(static_cast<std::int32_t>(rng()));
          out.write(i32s.back());
          break;
        case 3:
          doubles.push_back(rng.uniform_double());
          out.write(doubles.back());
          break;
        case 4: {  // string, often empty
          std::string s(rng.uniform_below(3) == 0 ? 0 : rng.uniform_below(40),
                        '\0');
          for (auto& ch : s) ch = static_cast<char>('a' + rng.uniform_below(26));
          strings.push_back(s);
          out.write_string(s);
          break;
        }
        case 5: {  // float vector, often empty
          std::vector<float> v(rng.uniform_below(3) == 0
                                   ? 0
                                   : rng.uniform_below(32));
          for (auto& x : v) x = rng.uniform_float(-1.0f, 1.0f);
          fvecs.push_back(v);
          out.write_vector(v);
          break;
        }
      }
    }
    serial::InArchive in(out.bytes());
    std::size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0, n4 = 0, n5 = 0;
    for (const int kind : kinds) {
      switch (kind) {
        case 0: ASSERT_EQ(in.read<std::uint8_t>(), u8s[n0++]); break;
        case 1: ASSERT_EQ(in.read<std::uint16_t>(), u16s[n1++]); break;
        case 2: ASSERT_EQ(in.read<std::int32_t>(), i32s[n2++]); break;
        case 3: ASSERT_EQ(in.read<double>(), doubles[n3++]); break;
        case 4: ASSERT_EQ(in.read_string(), strings[n4++]); break;
        case 5: ASSERT_EQ(in.read_vector<float>(), fvecs[n5++]); break;
      }
    }
    ASSERT_TRUE(in.empty()) << "trial " << trial << " seed " << GetParam();
  }
}

TEST_P(ArchiveRoundTrip, PackUnpackTupleMatches) {
  util::Xoshiro256 rng(GetParam() * 7919);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = rng();
    const auto b = rng.uniform_float(-1e3f, 1e3f);
    std::vector<std::uint32_t> c(rng.uniform_below(20));
    for (auto& x : c) x = static_cast<std::uint32_t>(rng());
    std::string d(rng.uniform_below(15), 'x');

    serial::OutArchive out;
    serial::pack(out, a, b, c, d);
    serial::InArchive in(out.bytes());
    const auto [ra, rb, rc, rd] =
        serial::unpack<std::uint64_t, float, std::vector<std::uint32_t>,
                       std::string>(in);
    ASSERT_EQ(ra, a);
    ASSERT_EQ(rb, b);
    ASSERT_EQ(rc, c);
    ASSERT_EQ(rd, d);
    ASSERT_TRUE(in.empty());
  }
}

TEST_P(ArchiveRoundTrip, PayloadsBeyondSendBufferSizeSurvive) {
  // Single messages larger than the communicator's 64 KiB flush threshold
  // must round-trip bit-exactly: the transport ships them as one datagram,
  // so the archive layer is the only place they could be split or clipped.
  util::Xoshiro256 rng(GetParam() * 104729);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = (64u << 10) + rng.uniform_below(192u << 10);
    std::vector<std::uint8_t> big(n);
    for (auto& x : big) x = static_cast<std::uint8_t>(rng());
    std::vector<float> feats(20000 + rng.uniform_below(20000));
    for (auto& x : feats) x = rng.uniform_float(-1e6f, 1e6f);

    serial::OutArchive out;
    out.write(std::uint32_t{0xfeedbeef});
    out.write_vector(big);
    out.write_vector(feats);
    out.write(std::uint8_t{42});
    ASSERT_GT(out.size(), 64u << 10);

    serial::InArchive in(out.bytes());
    ASSERT_EQ(in.read<std::uint32_t>(), 0xfeedbeefu);
    ASSERT_EQ(in.read_vector<std::uint8_t>(), big);
    ASSERT_EQ(in.read_vector<float>(), feats);
    ASSERT_EQ(in.read<std::uint8_t>(), 42u);
    ASSERT_TRUE(in.empty());
  }
}

TEST_P(ArchiveRoundTrip, TruncatedBuffersThrowNotCorrupt) {
  // Any prefix-truncation of a valid archive must surface ArchiveError
  // from some read — never a silent wrong value past the end.
  util::Xoshiro256 rng(GetParam() * 613);
  for (int trial = 0; trial < 50; ++trial) {
    serial::OutArchive out;
    std::vector<std::uint8_t> blob(1 + rng.uniform_below(300));
    for (auto& x : blob) x = static_cast<std::uint8_t>(rng());
    out.write(rng());
    out.write_vector(blob);
    out.write(rng());

    const auto bytes = out.bytes();
    const std::size_t cut = rng.uniform_below(bytes.size());  // strict prefix
    serial::InArchive in(bytes.subspan(0, cut));
    ASSERT_THROW(
        {
          in.read<std::uint64_t>();
          in.read_vector<std::uint8_t>();
          in.read<std::uint64_t>();
        },
        serial::ArchiveError)
        << "cut=" << cut << " seed " << GetParam();
  }
}

// ---------------------------------------------------------------------------
// DNND end-to-end invariants over a configuration grid.
// ---------------------------------------------------------------------------

struct GridCase {
  int ranks;
  std::size_t k;
  bool optimized_checks;
  std::uint64_t batch;
};

class DnndGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(DnndGrid, InvariantsAndQualityHold) {
  const auto param = GetParam();
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 8;
  spec.center_range = 4.0f;
  spec.cluster_std = 1.5f;
  spec.seed = 71;
  const auto points = data::GaussianMixture(spec).sample(250, 1);

  struct L2Fn {
    float operator()(std::span<const float> a, std::span<const float> b) const {
      return core::l2(a, b);
    }
  };

  comm::Environment env(comm::Config{.num_ranks = param.ranks});
  core::DnndConfig cfg;
  cfg.k = param.k;
  cfg.optimized_checks = param.optimized_checks;
  cfg.batch_size = param.batch;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(points);
  runner.build();
  const auto graph = runner.gather();

  // Invariants: full rows, sorted, distinct, no self loops, distances
  // exact, edges within id range.
  for (core::VertexId v = 0; v < 250; ++v) {
    const auto row = graph.neighbors(v);
    ASSERT_EQ(row.size(), param.k);
    for (std::size_t i = 0; i < row.size(); ++i) {
      ASSERT_NE(row[i].id, v);
      ASSERT_LT(row[i].id, 250u);
      ASSERT_FLOAT_EQ(row[i].distance, L2Fn{}(points[v], points[row[i].id]));
      if (i > 0) ASSERT_GE(row[i].distance, row[i - 1].distance);
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        ASSERT_NE(row[i].id, row[j].id);
      }
    }
  }
  const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, param.k);
  EXPECT_GT(core::graph_recall(graph, exact, param.k), 0.85);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DnndGrid,
    ::testing::Values(GridCase{1, 6, true, 1 << 20},
                      GridCase{2, 6, false, 1 << 20},
                      GridCase{4, 6, true, 256},
                      GridCase{4, 12, true, 1 << 20},
                      GridCase{8, 6, false, 256},
                      GridCase{8, 12, true, 4096}),
    [](const auto& info) {
      const auto& c = info.param;
      return "r" + std::to_string(c.ranks) + "_k" + std::to_string(c.k) +
             (c.optimized_checks ? "_opt" : "_unopt") + "_b" +
             std::to_string(c.batch);
    });

}  // namespace

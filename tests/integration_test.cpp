// End-to-end integration tests: the full paper pipeline
//
//   synthetic dataset → distributed build (DNND) → §4.5 optimization →
//   persist to a pmem datastore → reopen → shared-memory queries →
//   recall vs. brute-force ground truth
//
// plus the persistence round-trip across "executables" (two Manager
// sessions on the same file) that §5.1.3 relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/brute_force.hpp"
#include "core/distance.hpp"
#include "comm/environment.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/persistent_graph.hpp"
#include "core/recall.hpp"
#include "data/datasets.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};
struct CosFn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::cosine(a, b);
  }
};
struct JacFn {
  float operator()(std::span<const std::uint32_t> a,
                   std::span<const std::uint32_t> b) const {
    return core::jaccard_sorted(a, b);
  }
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Integration, FullPipelineWithPersistence) {
  const std::string store_path = temp_path("dnnd_integration.dat");
  std::remove(store_path.c_str());

  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.seed = 55;
  const data::GaussianMixture family(spec);
  const auto base = family.sample(500, 1);
  const auto queries = family.sample(25, 2);
  const auto truth =
      baselines::brute_force_query_batch(base, queries, L2Fn{}, 10);

  // --- "construction program": build, optimize, persist, close ---
  {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndConfig cfg;
    cfg.k = 10;
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(base);
    const auto stats = runner.build();
    EXPECT_GT(stats.iterations, 0u);
    runner.optimize();
    const auto graph = runner.gather();

    auto mgr = pmem::Manager::create(store_path, 64 << 20);
    core::store_graph(mgr, graph, "knng");
    core::store_features(mgr, base, "points");
  }  // datastore closed

  // --- "query program": reopen, load, search ---
  {
    auto mgr = pmem::Manager::open(store_path);
    const auto graph = core::load_graph(mgr, "knng");
    const auto points = core::load_features<float>(mgr, "points");
    ASSERT_EQ(graph.num_vertices(), 500u);
    ASSERT_EQ(points.size(), 500u);

    core::GraphSearcher searcher(graph, points, L2Fn{});
    core::SearchParams params;
    params.num_neighbors = 10;
    params.epsilon = 0.3;
    params.num_entry_points = 32;  // guard against cluster-local minima
    const auto results = searcher.batch_search(queries, params, 2);
    std::vector<std::vector<core::Neighbor>> computed;
    computed.reserve(results.size());
    for (const auto& r : results) computed.push_back(r.neighbors);
    EXPECT_GT(core::mean_query_recall(computed, truth, 10), 0.85);
  }
  std::remove(store_path.c_str());
}

TEST(Integration, GraphRoundTripsThroughDatastoreExactly) {
  const std::string store_path = temp_path("dnnd_graph_roundtrip.dat");
  std::remove(store_path.c_str());
  const auto base = data::GaussianMixture({.dim = 6, .seed = 3}).sample(120, 1);
  const auto graph = baselines::brute_force_knn_graph(base, L2Fn{}, 5);
  {
    auto mgr = pmem::Manager::create(store_path, 16 << 20);
    core::store_graph(mgr, graph, "g");
  }
  {
    auto mgr = pmem::Manager::open(store_path);
    EXPECT_EQ(core::load_graph(mgr, "g"), graph);
    EXPECT_THROW((void)core::load_graph(mgr, "nope"), std::runtime_error);
  }
  std::remove(store_path.c_str());
}

TEST(Integration, SparseFeaturesRoundTripThroughDatastore) {
  const std::string store_path = temp_path("dnnd_sparse_roundtrip.dat");
  std::remove(store_path.c_str());
  const auto base = data::SparseSetFamily(data::SparseSetSpec{}).sample(80, 1);
  {
    auto mgr = pmem::Manager::create(store_path, 16 << 20);
    core::store_features(mgr, base, "sets");
  }
  {
    auto mgr = pmem::Manager::open(store_path);
    const auto loaded = core::load_features<std::uint32_t>(mgr, "sets");
    ASSERT_EQ(loaded.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      const auto a = base.row(i), b = loaded.row(i);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
    }
  }
  std::remove(store_path.c_str());
}

// §5.2 methodology on the small Table-1 stand-ins: DNND's graph recall vs
// brute force must be high for each metric family.
TEST(Integration, Section52RecallAcrossMetrics) {
  // Cosine dataset (nytimes stand-in, scaled way down for test time).
  {
    const auto& spec = data::dataset_by_name("nytimes");
    auto ds = data::make_dense_float(spec, 0.08, 0);  // 400 points
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndConfig cfg;
    cfg.k = 8;
    core::DnndRunner<float, CosFn> runner(env, cfg, CosFn{});
    runner.distribute(ds.base);
    runner.build();
    const auto exact = baselines::brute_force_knn_graph(ds.base, CosFn{}, 8);
    EXPECT_GT(core::graph_recall(runner.gather(), exact, 8), 0.85)
        << "cosine (nytimes stand-in)";
  }
  // Jaccard dataset (kosarak stand-in).
  {
    const auto& spec = data::dataset_by_name("kosarak");
    auto ds = data::make_sparse(spec, 0.1, 0);  // 300 points
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndConfig cfg;
    cfg.k = 8;
    core::DnndRunner<std::uint32_t, JacFn> runner(env, cfg, JacFn{});
    runner.distribute(ds.base);
    runner.build();
    const auto exact = baselines::brute_force_knn_graph(ds.base, JacFn{}, 8);
    EXPECT_GT(core::graph_recall(runner.gather(), exact, 8), 0.6)
        << "jaccard (kosarak stand-in)";
  }
}

TEST(Integration, Uint8PipelineMatchesBigAnnSetup) {
  // BigANN uses uint8 features end to end (§5.3); verify the whole
  // pipeline is instantiable and accurate for T = uint8_t.
  struct L2U8 {
    float operator()(std::span<const std::uint8_t> a,
                     std::span<const std::uint8_t> b) const {
      return core::l2(a, b);
    }
  };
  const auto& spec = data::dataset_by_name("bigann");
  auto ds = data::make_dense_u8(spec, 0.02, 10);  // 400 points
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<std::uint8_t, L2U8> runner(env, cfg, L2U8{});
  runner.distribute(ds.base);
  runner.build();
  runner.optimize();
  const auto graph = runner.gather();

  const auto truth =
      baselines::brute_force_query_batch(ds.base, ds.queries, L2U8{}, 10);
  core::GraphSearcher searcher(graph, ds.base, L2U8{});
  core::SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.3;
  params.num_entry_points = 32;
  std::vector<std::vector<core::Neighbor>> computed;
  for (std::size_t qi = 0; qi < ds.queries.size(); ++qi) {
    computed.push_back(searcher.search(ds.queries.row(qi), params).neighbors);
  }
  EXPECT_GT(core::mean_query_recall(computed, truth, 10), 0.8);
}

TEST(Integration, DistributeViaExchangeMatchesDirectDistribute) {
  const auto base = data::GaussianMixture({.dim = 8, .seed = 13}).sample(300, 1);
  core::DnndConfig cfg;
  cfg.k = 8;
  auto build_with = [&](bool exchange) {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    if (exchange) {
      runner.distribute_via_exchange(base);
    } else {
      runner.distribute(base);
    }
    runner.build();
    return runner.gather();
  };
  // Identical placement + identical seeds => identical graphs under the
  // sequential driver.
  EXPECT_EQ(build_with(true), build_with(false));
}

TEST(Integration, ExchangeIngestionGoesThroughTheTransport) {
  const auto base = data::GaussianMixture({.dim = 8, .seed = 14}).sample(200, 1);
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  cfg.k = 6;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute_via_exchange(base);
  const auto ingest = env.aggregate_stats().by_label("ingest");
  EXPECT_EQ(ingest.total_messages(), 200u);
  EXPECT_GT(ingest.remote_messages, 100u);  // most points change ranks
}

TEST(Integration, IndexMetadataRoundTripAndValidation) {
  const std::string store_path = temp_path("dnnd_meta_roundtrip.dat");
  std::remove(store_path.c_str());
  {
    auto mgr = pmem::Manager::create(store_path, 4 << 20);
    core::IndexMetadata meta;
    meta.set_metric("Cosine");
    meta.k = 20;
    meta.dim = 96;
    meta.num_points = 12345;
    core::store_index_metadata(mgr, meta);
  }
  {
    auto mgr = pmem::Manager::open(store_path);
    const auto meta = core::load_index_metadata(mgr);
    EXPECT_EQ(meta.metric_name(), "Cosine");
    EXPECT_EQ(meta.k, 20u);
    EXPECT_EQ(meta.num_points, 12345u);
    // Matching expectations pass...
    core::validate_index_metadata(meta, "Cosine", 96);
    core::validate_index_metadata(meta, "Cosine", 0);  // dim 0 = don't care
    // ...mismatches are rejected with precise errors.
    EXPECT_THROW(core::validate_index_metadata(meta, "L2", 96),
                 std::runtime_error);
    EXPECT_THROW(core::validate_index_metadata(meta, "Cosine", 128),
                 std::runtime_error);
  }
  std::remove(store_path.c_str());
}

TEST(Integration, MissingIndexMetadataThrows) {
  const std::string store_path = temp_path("dnnd_meta_missing.dat");
  std::remove(store_path.c_str());
  auto mgr = pmem::Manager::create(store_path, 4 << 20);
  EXPECT_THROW((void)core::load_index_metadata(mgr), std::runtime_error);
  std::remove(store_path.c_str());
}

TEST(Integration, ZeroCopyViewMatchesLoadedFeatures) {
  const std::string store_path = temp_path("dnnd_view_match.dat");
  std::remove(store_path.c_str());
  const auto base = data::GaussianMixture({.dim = 6, .seed = 15}).sample(80, 1);
  auto mgr = pmem::Manager::create(store_path, 16 << 20);
  core::store_features(mgr, base, "pts");

  const core::PersistentFeatureView<float> view(mgr, "pts");
  ASSERT_EQ(view.size(), 80u);
  EXPECT_EQ(view.dim(), 6u);
  for (core::VertexId v = 0; v < 80; ++v) {
    ASSERT_TRUE(view.contains(v));
    const auto a = view[v];
    const auto b = base[v];
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); ++d) EXPECT_EQ(a[d], b[d]);
    // Zero-copy: the span must point inside the mapping, not a copy.
    const auto* base_ptr = reinterpret_cast<const char*>(mgr.header());
    EXPECT_GE(reinterpret_cast<const char*>(a.data()), base_ptr);
    EXPECT_LT(reinterpret_cast<const char*>(a.data()),
              base_ptr + mgr.capacity_bytes());
  }
  EXPECT_THROW((void)view[999], std::out_of_range);
  EXPECT_THROW((core::PersistentFeatureView<float>(mgr, "nope")),
               std::runtime_error);
  mgr.close();
  std::remove(store_path.c_str());
}

}  // namespace

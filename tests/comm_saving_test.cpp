// Regression guard for the §4.3 communication-saving techniques.
//
// bench_comm_saving reproduces Figure 4 and reports ~50% fewer neighbor-
// check messages and bytes with the optimized Type 2+/Type 3 pattern. This
// test promotes that claim into CI at reduced scale: the optimized build's
// total remote neighbor-check traffic (Type 1 + Type 2+ + Type 3) must
// stay at or below 60% of the unoptimized build's (Type 1 + Type 2) in
// both message count and bytes — i.e. a >= 40% reduction, with slack under
// the paper's ~50% so data-layout noise at test scale cannot flake. Type 1
// is part of the measurement, as in Figure 4: redundant-check reduction
// halves the introductions too, not just the check legs. A regression in
// the optimizations (broken redundant-check reduction, Type 3 misrouting,
// accidental feature shipping) trips this long before anyone re-runs the
// bench.
#include <cstdint>
#include <span>

#include <gtest/gtest.h>

#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

struct CheckTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Remote neighbor-check traffic of one build, summed over every check
/// message label: introductions ("type1" / "type1_unopt") plus the check
/// legs — Type 2+ and Type 3 in the optimized pattern, Type 2
/// ("type2_unopt") in the unoptimized one. Labels absent from a pattern
/// contribute zero, so the same sum works for both builds.
CheckTraffic run_build(const core::FeatureStore<float>& base, bool optimized) {
  comm::Environment env(comm::Config{.num_ranks = 8});
  core::DnndConfig cfg;
  cfg.k = 10;
  cfg.optimized_checks = optimized;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(base);
  runner.build();

  const auto stats = env.aggregate_stats();
  CheckTraffic t;
  for (const char* label :
       {"type1", "type1_unopt", "type2_unopt", "type2plus", "type3"}) {
    const auto c = stats.by_label(label);
    t.messages += c.remote_messages;
    t.bytes += c.remote_bytes;
  }
  return t;
}

TEST(CommSaving, OptimizedChecksCutRemoteTrafficAtLeast40Percent) {
  // Same recipe as bench_comm_saving's DEEP1B stand-in, shrunk to test
  // scale (8 ranks, 2000 points). Both builds see identical data.
  data::MixtureSpec spec;
  spec.dim = 32;
  spec.num_clusters = 16;
  spec.center_range = 2.0f;
  spec.cluster_std = 1.5f;
  spec.seed = 107;
  const auto base = data::GaussianMixture(spec).sample(2000, 1);

  const CheckTraffic unopt = run_build(base, false);
  const CheckTraffic opt = run_build(base, true);

  // Both patterns must actually have exchanged checks, or the ratio below
  // is vacuous (e.g. a label rename would zero one side).
  ASSERT_GT(unopt.messages, 0u);
  ASSERT_GT(unopt.bytes, 0u);
  ASSERT_GT(opt.messages, 0u);

  const double msg_ratio = static_cast<double>(opt.messages) /
                           static_cast<double>(unopt.messages);
  const double byte_ratio =
      static_cast<double>(opt.bytes) / static_cast<double>(unopt.bytes);
  EXPECT_LE(msg_ratio, 0.6) << "optimized sent " << opt.messages
                            << " remote check messages vs " << unopt.messages
                            << " unoptimized";
  EXPECT_LE(byte_ratio, 0.6) << "optimized sent " << opt.bytes
                             << " remote check bytes vs " << unopt.bytes
                             << " unoptimized";
}

}  // namespace

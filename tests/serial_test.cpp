// Unit tests for dnnd::serial — wire format, varints, pack/unpack, and
// failure modes (truncation, overflow).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "serial/archive.hpp"

namespace {

using dnnd::serial::ArchiveError;
using dnnd::serial::InArchive;
using dnnd::serial::OutArchive;

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 300,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : cases) {
    std::vector<std::byte> buf;
    dnnd::serial::write_varint(buf, v);
    const std::byte* cursor = buf.data();
    EXPECT_EQ(dnnd::serial::read_varint(cursor, buf.data() + buf.size()), v);
    EXPECT_EQ(cursor, buf.data() + buf.size());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<std::byte> buf;
  dnnd::serial::write_varint(buf, 42);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, TruncatedThrows) {
  std::vector<std::byte> buf;
  dnnd::serial::write_varint(buf, 1ULL << 40);
  buf.pop_back();
  const std::byte* cursor = buf.data();
  EXPECT_THROW(dnnd::serial::read_varint(cursor, buf.data() + buf.size()),
               ArchiveError);
}

TEST(Varint, OverlongEncodingThrows) {
  // 11 continuation bytes cannot be a valid 64-bit varint.
  std::vector<std::byte> buf(11, std::byte{0xff});
  const std::byte* cursor = buf.data();
  EXPECT_THROW(dnnd::serial::read_varint(cursor, buf.data() + buf.size()),
               ArchiveError);
}

TEST(Archive, PrimitivesRoundTrip) {
  OutArchive out;
  out.write(std::int32_t{-7});
  out.write(3.5f);
  out.write(std::uint8_t{255});
  out.write(std::uint64_t{1} << 60);

  InArchive in(out.bytes());
  EXPECT_EQ(in.read<std::int32_t>(), -7);
  EXPECT_FLOAT_EQ(in.read<float>(), 3.5f);
  EXPECT_EQ(in.read<std::uint8_t>(), 255);
  EXPECT_EQ(in.read<std::uint64_t>(), std::uint64_t{1} << 60);
  EXPECT_TRUE(in.empty());
}

TEST(Archive, VectorRoundTrip) {
  OutArchive out;
  const std::vector<float> v = {1.0f, -2.5f, 3.25f};
  out.write_vector(v);
  InArchive in(out.bytes());
  EXPECT_EQ(in.read_vector<float>(), v);
}

TEST(Archive, EmptyVectorRoundTrip) {
  OutArchive out;
  out.write_vector(std::vector<std::uint32_t>{});
  InArchive in(out.bytes());
  EXPECT_TRUE(in.read_vector<std::uint32_t>().empty());
  EXPECT_TRUE(in.empty());
}

TEST(Archive, ReadViewIsZeroCopy) {
  OutArchive out;
  const std::vector<std::uint8_t> v = {9, 8, 7};
  out.write_vector(v);
  InArchive in(out.bytes());
  const auto view = in.read_view<std::uint8_t>();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 9);
  // The view must alias the archive buffer, not a copy.
  EXPECT_GE(reinterpret_cast<const std::byte*>(view.data()),
            out.bytes().data());
  EXPECT_LT(reinterpret_cast<const std::byte*>(view.data()),
            out.bytes().data() + out.bytes().size());
}

TEST(Archive, StringRoundTrip) {
  OutArchive out;
  out.write_string("hello world");
  out.write_string("");
  InArchive in(out.bytes());
  EXPECT_EQ(in.read_string(), "hello world");
  EXPECT_EQ(in.read_string(), "");
}

TEST(Archive, UnderflowThrows) {
  OutArchive out;
  out.write(std::uint16_t{1});
  InArchive in(out.bytes());
  EXPECT_THROW(in.read<std::uint64_t>(), ArchiveError);
}

TEST(Archive, VectorUnderflowThrows) {
  OutArchive out;
  out.write_size(1000);  // promises 1000 elements, delivers none
  InArchive in(out.bytes());
  EXPECT_THROW(in.read_vector<std::uint32_t>(), ArchiveError);
}

TEST(Archive, SizeAccountsEveryByte) {
  OutArchive out;
  EXPECT_EQ(out.size(), 0u);
  out.write(std::uint32_t{1});
  EXPECT_EQ(out.size(), 4u);
  out.write_vector(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(out.size(), 4u + 1u + 3u);  // varint(3) is one byte
}

TEST(Archive, PackUnpackMixedArguments) {
  OutArchive out;
  dnnd::serial::pack(out, std::uint32_t{5}, std::string("abc"),
                     std::vector<float>{1.5f, 2.5f}, std::uint8_t{9});
  InArchive in(out.bytes());
  const auto [a, s, v, b] =
      dnnd::serial::unpack<std::uint32_t, std::string, std::vector<float>,
                           std::uint8_t>(in);
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(v, (std::vector<float>{1.5f, 2.5f}));
  EXPECT_EQ(b, 9);
  EXPECT_TRUE(in.empty());
}

TEST(Archive, SequentialMessagesShareBuffer) {
  // The communicator packs several messages back-to-back into one
  // datagram; reading must consume exactly one message at a time.
  OutArchive out;
  out.write_size(7);  // pretend handler id
  out.write(std::uint32_t{11});
  out.write_size(8);
  out.write(std::uint32_t{22});
  InArchive in(out.bytes());
  EXPECT_EQ(in.read_size(), 7u);
  EXPECT_EQ(in.read<std::uint32_t>(), 11u);
  EXPECT_EQ(in.read_size(), 8u);
  EXPECT_EQ(in.read<std::uint32_t>(), 22u);
  EXPECT_TRUE(in.empty());
}

TEST(Archive, ClearResetsBuffer) {
  OutArchive out;
  out.write(std::uint64_t{1});
  out.clear();
  EXPECT_EQ(out.size(), 0u);
}

TEST(Archive, ReleaseMovesBufferOut) {
  OutArchive out;
  out.write(std::uint32_t{0xdeadbeef});
  const auto buf = out.release();
  EXPECT_EQ(buf.size(), 4u);
}

}  // namespace

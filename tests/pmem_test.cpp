// Unit tests for the persistent memory layer: offset_ptr semantics, arena
// allocation, the STL allocator, pmem::vector, and Manager lifecycle
// including reopen-at-a-different-address behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "pmem/allocator.hpp"
#include "pmem/arena.hpp"
#include "pmem/manager.hpp"
#include "pmem/offset_ptr.hpp"
#include "pmem/vector.hpp"

namespace {

namespace pmem = dnnd::pmem;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TempFile {
 public:
  explicit TempFile(const std::string& name) : path_(temp_path(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// -- offset_ptr ---------------------------------------------------------------

TEST(OffsetPtr, NullByDefault) {
  pmem::offset_ptr<int> p;
  EXPECT_FALSE(p);
  EXPECT_EQ(p.get(), nullptr);
  EXPECT_TRUE(p == nullptr);
}

TEST(OffsetPtr, PointsAndDereferences) {
  int x = 42;
  pmem::offset_ptr<int> p(&x);
  EXPECT_TRUE(p);
  EXPECT_EQ(*p, 42);
  *p = 7;
  EXPECT_EQ(x, 7);
}

TEST(OffsetPtr, CopyPreservesTargetNotOffset) {
  // Two offset_ptrs at different addresses pointing at the same object
  // hold different raw offsets; copying must recompute.
  int x = 1;
  pmem::offset_ptr<int> a(&x);
  pmem::offset_ptr<int> b;
  b = a;
  EXPECT_EQ(a.get(), b.get());
}

TEST(OffsetPtr, SurvivesBlockRelocation) {
  // Simulate a remap: a struct containing an offset_ptr into itself is
  // memmoved to a new location; the self-relative pointer must follow.
  struct Node {
    int value;
    pmem::offset_ptr<int> self;
  };
  alignas(Node) unsigned char buf_a[sizeof(Node)];
  alignas(Node) unsigned char buf_b[sizeof(Node)];
  auto* node = new (buf_a) Node{11, nullptr};
  node->self = &node->value;
  std::memcpy(buf_b, buf_a, sizeof(Node));
  auto* moved = reinterpret_cast<Node*>(buf_b);
  EXPECT_EQ(moved->self.get(), &moved->value);
  EXPECT_EQ(*moved->self, 11);
}

TEST(OffsetPtr, ArithmeticWalksArrays) {
  int arr[4] = {0, 1, 2, 3};
  pmem::offset_ptr<int> p(&arr[0]);
  EXPECT_EQ(p[2], 2);
  p += 3;
  EXPECT_EQ(*p, 3);
  pmem::offset_ptr<int> q(&arr[1]);
  EXPECT_EQ(p - q, 2);
}

// -- arena --------------------------------------------------------------------

TEST(Arena, SizeClassesArePowersOfTwoFromSixteen) {
  EXPECT_EQ(pmem::size_class_of(1), 0u);
  EXPECT_EQ(pmem::size_class_of(16), 0u);
  EXPECT_EQ(pmem::size_class_of(17), 1u);
  EXPECT_EQ(pmem::size_class_of(32), 1u);
  EXPECT_EQ(pmem::size_class_of(33), 2u);
  EXPECT_EQ(pmem::size_class_bytes(0), 16u);
  EXPECT_EQ(pmem::size_class_bytes(3), 128u);
}

class ArenaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    buffer_.resize(1 << 20);
    header_ = reinterpret_cast<pmem::ArenaHeader*>(buffer_.data());
    pmem::arena_format(header_, buffer_.size());
  }
  std::vector<unsigned char> buffer_;
  pmem::ArenaHeader* header_ = nullptr;
};

TEST_F(ArenaFixture, FormatThenValidate) {
  EXPECT_TRUE(pmem::arena_validate(header_, buffer_.size()));
  pmem::ArenaHeader bogus{};
  EXPECT_FALSE(pmem::arena_validate(&bogus, sizeof(bogus)));
}

TEST_F(ArenaFixture, AllocationsAreDisjointAndAligned) {
  void* a = pmem::arena_allocate(header_, 100);
  void* b = pmem::arena_allocate(header_, 100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  // 100 B rounds to the 128 B class.
  EXPECT_GE(reinterpret_cast<char*>(b) - reinterpret_cast<char*>(a), 128);
}

TEST_F(ArenaFixture, FreedBlocksAreReused) {
  void* a = pmem::arena_allocate(header_, 64);
  pmem::arena_deallocate(header_, a, 64);
  void* b = pmem::arena_allocate(header_, 64);
  EXPECT_EQ(a, b);  // LIFO free list
}

TEST_F(ArenaFixture, AllocatedCounterTracksLiveBytes) {
  EXPECT_EQ(header_->allocated, 0u);
  void* a = pmem::arena_allocate(header_, 10);  // 16 B class
  EXPECT_EQ(header_->allocated, 16u);
  pmem::arena_deallocate(header_, a, 10);
  EXPECT_EQ(header_->allocated, 0u);
}

TEST_F(ArenaFixture, ExhaustionReturnsNull) {
  EXPECT_EQ(pmem::arena_allocate(header_, buffer_.size() * 2), nullptr);
  // Drain with large blocks until failure; must not crash or overrun.
  while (pmem::arena_allocate(header_, 1 << 16) != nullptr) {
  }
  EXPECT_EQ(pmem::arena_allocate(header_, 1 << 16), nullptr);
  EXPECT_NE(pmem::arena_allocate(header_, 8), nullptr);  // smaller still fits
}

// -- pmem::vector (over a transient arena) ------------------------------------

class PmemVectorFixture : public ArenaFixture {};

TEST_F(PmemVectorFixture, PushBackAndIndex) {
  pmem::vector<int> v{pmem::allocator<int>(header_)};
  for (int i = 0; i < 100; ++i) v.push_back(i * i);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * i);
}

TEST_F(PmemVectorFixture, ResizeGrowAndShrink) {
  pmem::vector<int> v{pmem::allocator<int>(header_)};
  v.resize(5, 9);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 9);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  v.resize(4);
  EXPECT_EQ(v[3], 0);
}

TEST_F(PmemVectorFixture, AtThrowsOutOfRange) {
  pmem::vector<int> v{pmem::allocator<int>(header_)};
  v.push_back(1);
  EXPECT_EQ(v.at(0), 1);
  EXPECT_THROW(v.at(1), std::out_of_range);
}

TEST_F(PmemVectorFixture, CopyAndMoveSemantics) {
  pmem::vector<int> v{pmem::allocator<int>(header_)};
  for (int i = 0; i < 10; ++i) v.push_back(i);
  pmem::vector<int> copy(v);
  EXPECT_EQ(copy, v);
  pmem::vector<int> moved(std::move(v));
  EXPECT_EQ(moved, copy);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST_F(PmemVectorFixture, ShrinkToFitReleasesMemory) {
  pmem::vector<int> v{pmem::allocator<int>(header_)};
  v.reserve(1024);
  v.push_back(1);
  const auto before = header_->allocated;
  v.shrink_to_fit();
  EXPECT_LT(header_->allocated, before);
  EXPECT_EQ(v[0], 1);
}

TEST_F(PmemVectorFixture, WorksWithNonTrivialElements) {
  // Elements with self-relative pointers must survive regrowth (the
  // element-wise move in regrow(); memcpy would corrupt them).
  struct Holder {
    int value = 0;
    pmem::offset_ptr<int> self;
    Holder() { self = &value; }
    explicit Holder(int v) : value(v) { self = &value; }
    Holder(const Holder& o) : value(o.value) { self = &value; }
    Holder& operator=(const Holder& o) {
      value = o.value;
      return *this;
    }
  };
  pmem::vector<Holder> v{pmem::allocator<Holder>(header_)};
  for (int i = 0; i < 50; ++i) v.push_back(Holder(i));  // forces regrowth
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*v[static_cast<std::size_t>(i)].self, i);
    EXPECT_EQ(v[static_cast<std::size_t>(i)].self.get(),
              &v[static_cast<std::size_t>(i)].value);
  }
}

// -- Manager -------------------------------------------------------------------

TEST(Manager, CreateFindConstructDestroy) {
  TempFile file("dnnd_pmem_basic.dat");
  auto mgr = pmem::Manager::create(file.path(), 1 << 20);
  EXPECT_TRUE(mgr.is_open());

  auto* x = mgr.find_or_construct<int>("answer", 42);
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(*x, 42);
  // Second call finds, does not reconstruct.
  EXPECT_EQ(mgr.find_or_construct<int>("answer", 7), x);
  EXPECT_EQ(*x, 42);
  EXPECT_TRUE(mgr.contains("answer"));

  EXPECT_TRUE(mgr.destroy<int>("answer"));
  EXPECT_FALSE(mgr.contains("answer"));
  EXPECT_FALSE(mgr.destroy<int>("answer"));
}

TEST(Manager, TypeMismatchThrows) {
  TempFile file("dnnd_pmem_type.dat");
  auto mgr = pmem::Manager::create(file.path(), 1 << 20);
  mgr.find_or_construct<int>("obj", 1);
  EXPECT_THROW(mgr.find<double>("obj"), std::runtime_error);
}

TEST(Manager, OpenMissingFileThrows) {
  EXPECT_THROW(pmem::Manager::open(temp_path("definitely_missing.dat")),
               std::system_error);
}

TEST(Manager, OpenNonDatastoreThrows) {
  TempFile file("dnnd_pmem_garbage.dat");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << std::string(8192, 'x');
  }
  EXPECT_THROW(pmem::Manager::open(file.path()), std::runtime_error);
}

TEST(Manager, DataSurvivesReopen) {
  TempFile file("dnnd_pmem_reopen.dat");
  {
    auto mgr = pmem::Manager::create(file.path(), 4 << 20);
    auto* v = mgr.find_or_construct<pmem::vector<std::uint64_t>>(
        "numbers", mgr.get_allocator<std::uint64_t>());
    ASSERT_NE(v, nullptr);
    for (std::uint64_t i = 0; i < 10000; ++i) v->push_back(i * 3);
  }  // close
  {
    auto mgr = pmem::Manager::open(file.path());
    auto* v = mgr.find<pmem::vector<std::uint64_t>>("numbers");
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->size(), 10000u);
    for (std::uint64_t i = 0; i < 10000; ++i) EXPECT_EQ((*v)[i], i * 3);
    // And the reopened structure is still mutable.
    v->push_back(999);
    EXPECT_EQ(v->back(), 999u);
  }
}

TEST(Manager, SnapshotIsIndependentCopy) {
  TempFile file("dnnd_pmem_snap_src.dat");
  TempFile snap("dnnd_pmem_snap_dst.dat");
  auto mgr = pmem::Manager::create(file.path(), 1 << 20);
  auto* x = mgr.find_or_construct<int>("x", 5);
  mgr.snapshot(snap.path());
  *x = 6;  // mutate the source after the snapshot
  mgr.flush();

  auto snap_mgr = pmem::Manager::open(snap.path());
  EXPECT_EQ(*snap_mgr.find<int>("x"), 5);
  auto reopened = pmem::Manager::open(file.path());
  EXPECT_EQ(*reopened.find<int>("x"), 6);
}

TEST(Manager, AllocatorThrowsWhenExhausted) {
  TempFile file("dnnd_pmem_exhaust.dat");
  auto mgr = pmem::Manager::create(file.path(), 1 << 20);
  auto alloc = mgr.get_allocator<char>();
  EXPECT_THROW((void)alloc.allocate(2 << 20), pmem::ArenaExhausted);
}

TEST(Manager, MoveTransfersOwnership) {
  TempFile file("dnnd_pmem_move.dat");
  auto mgr = pmem::Manager::create(file.path(), 1 << 20);
  mgr.find_or_construct<int>("k", 3);
  pmem::Manager moved(std::move(mgr));
  EXPECT_FALSE(mgr.is_open());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.is_open());
  EXPECT_EQ(*moved.find<int>("k"), 3);
}

// -- torn-write properties of the checkpoint generation store -----------------
//
// CheckpointStore's crash-consistency claim: whatever happens to the
// *newest* generation file after commit (truncation mid-write, bit flips,
// garbage appended), open_latest() never returns it — it rolls back to the
// last CRC-valid generation, or to "no checkpoint" when none survives.
// Exercised here as a randomized property over corruption kinds/offsets.

class TempDir {
 public:
  explicit TempDir(const std::string& name) : path_(temp_path(name)) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Commits one generation whose file holds `bytes` pseudo-random bytes
/// (commit() only CRCs the file; the store is format-agnostic).
dnnd::core::GenerationInfo commit_generation(dnnd::core::CheckpointStore& store,
                                             std::uint64_t iteration,
                                             std::size_t bytes,
                                             std::mt19937_64& rng) {
  const std::uint64_t gen = store.next_generation();
  std::ofstream out(store.generation_path(gen), std::ios::binary);
  for (std::size_t i = 0; i < bytes; ++i) {
    out.put(static_cast<char>(rng() & 0xFF));
  }
  out.close();
  return store.commit(gen, iteration, false);
}

TEST(CheckpointStoreTornWrites, RandomCorruptionAlwaysRollsBack) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    SCOPED_TRACE("property seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    TempDir dir("dnnd_store_torn_" + std::to_string(seed));
    dnnd::core::CheckpointStore store(dir.path());
    const auto good = commit_generation(store, 3, 8192, rng);
    const auto newest = commit_generation(store, 6, 8192, rng);
    ASSERT_EQ(store.open_latest()->generation, newest.generation);

    const std::string newest_path = dir.path() + "/" + newest.file;
    const auto kind = rng() % 3;
    if (kind == 0) {
      // Torn write: truncate at a random interior offset.
      const auto keep = rng() % newest.bytes;
      std::filesystem::resize_file(newest_path, keep);
    } else if (kind == 1) {
      // Bit flip at a random offset.
      std::fstream f(newest_path,
                     std::ios::in | std::ios::out | std::ios::binary);
      const auto at = static_cast<std::streamoff>(rng() % newest.bytes);
      f.seekg(at);
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ (1 << (rng() % 8)));
      f.seekp(at);
      f.write(&byte, 1);
    } else {
      // Trailing garbage (e.g. a crashed re-extend).
      std::ofstream f(newest_path, std::ios::binary | std::ios::app);
      f.put('x');
    }

    EXPECT_FALSE(store.valid(newest));
    const auto opened = store.open_latest();
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->generation, good.generation);
    EXPECT_EQ(opened->iteration, 3u);
  }
}

TEST(CheckpointStoreTornWrites, AllGenerationsCorruptMeansNoCheckpoint) {
  std::mt19937_64 rng(99);
  TempDir dir("dnnd_store_all_torn");
  dnnd::core::CheckpointStore store(dir.path());
  commit_generation(store, 1, 2048, rng);
  commit_generation(store, 2, 2048, rng);
  for (const auto& gen : store.generations()) {
    std::filesystem::resize_file(dir.path() + "/" + gen.file, 16);
  }
  EXPECT_FALSE(store.open_latest().has_value());
}

TEST(CheckpointStoreTornWrites, DeletedGenerationFileRollsBackToo) {
  std::mt19937_64 rng(7);
  TempDir dir("dnnd_store_deleted");
  dnnd::core::CheckpointStore store(dir.path());
  const auto good = commit_generation(store, 2, 1024, rng);
  const auto newest = commit_generation(store, 4, 1024, rng);
  std::filesystem::remove(dir.path() + "/" + newest.file);
  ASSERT_TRUE(store.open_latest().has_value());
  EXPECT_EQ(store.open_latest()->generation, good.generation);
}

TEST(CheckpointStoreTornWrites, MalformedManifestReadsAsEmptyStore) {
  std::mt19937_64 rng(13);
  TempDir dir("dnnd_store_bad_manifest");
  dnnd::core::CheckpointStore store(dir.path());
  commit_generation(store, 1, 512, rng);
  {
    std::ofstream out(dir.path() + "/MANIFEST.json",
                      std::ios::binary | std::ios::trunc);
    out << "{\"schema\":\"dnnd.checkpoint.v1\",\"generations\":[{\"gen";
  }
  EXPECT_TRUE(store.generations().empty());
  EXPECT_FALSE(store.open_latest().has_value());
}

TEST(CheckpointStore, PrunesToTheTwoNewestGenerations) {
  std::mt19937_64 rng(21);
  TempDir dir("dnnd_store_prune");
  dnnd::core::CheckpointStore store(dir.path());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    commit_generation(store, i, 1024, rng);
  }
  const auto gens = store.generations();
  ASSERT_EQ(gens.size(), dnnd::core::CheckpointStore::kKeepGenerations);
  EXPECT_EQ(gens.front().generation, 4u);
  EXPECT_EQ(gens.back().generation, 5u);
  // Pruned files are gone from disk; retained ones still validate.
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/gen-1.dat"));
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/gen-3.dat"));
  for (const auto& gen : gens) EXPECT_TRUE(store.valid(gen));
}

}  // namespace

// Kernel-parity suite for the blocked SIMD distance layer.
//
// The determinism contract (core/distance_kernels.hpp) says the scalar
// reference and the AVX2 variants return bit-identical Dist values for
// every input, that batch kernels match the single-pair kernels
// element-for-element, and that DenseBlockStore's zero padding never
// changes a distance. This suite proves each clause bit-for-bit (float
// compares are on the bit pattern, never EXPECT_FLOAT_EQ), then checks
// the consequence the rest of the repo relies on: serial, brute-force,
// searcher, and distributed builds come out byte-identical whichever
// dispatch path executed.
//
// Also hosts the feature-store satellite tests (CSR empty/dense-ctor
// edge cases, DenseBlockStore layout) and the dnnd.bench.v1 schema check
// for the shared bench writer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "baselines/brute_force.hpp"
#include "bench/common.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/distance_kernels.hpp"
#include "core/dnnd_runner.hpp"
#include "core/feature_store.hpp"
#include "core/knn_query.hpp"
#include "core/nn_descent.hpp"
#include "data/synthetic.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace dnnd;  // NOLINT

[[nodiscard]] std::uint32_t bits(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

[[nodiscard]] bool simd_available() {
  return core::simd_kernels_compiled() && core::simd_runtime_supported();
}

template <typename T>
std::vector<T> random_vec(util::Xoshiro256& rng, std::size_t dim) {
  std::vector<T> v(dim);
  for (auto& x : v) {
    if constexpr (std::is_same_v<T, float>) {
      x = rng.uniform_float(-2.0f, 2.0f);
    } else {
      x = static_cast<T>(rng.uniform_below(256));
    }
  }
  return v;
}

// The three dense metrics as (single-pair, batch) call pairs, so the
// sweeps below can iterate metrics uniformly.
template <typename T>
struct MetricOps {
  const char* name;
  core::Dist (*single)(const T*, const T*, std::size_t);
  void (*batch)(const T*, const T* const*, std::size_t, std::size_t,
                core::Dist*);
};

template <typename T>
const MetricOps<T> kMetrics[] = {
    {"squared_l2", &core::k_squared_l2<T>, &core::k_batch_squared_l2<T>},
    {"cosine", &core::k_cosine<T>, &core::k_batch_cosine<T>},
    {"inner_product", &core::k_inner_product<T>,
     &core::k_batch_inner_product<T>},
};

// ---- scalar vs SIMD bit parity -----------------------------------------

// Every metric × element type × dim 1..130 (crosses the 8-lane block
// boundary and the 64-byte pad boundary many times, plus the full-blocks
// + tail shapes) × batch {1, 3, 8, 33}.
template <typename T>
void parity_sweep() {
  if (!simd_available()) {
    GTEST_SKIP() << "AVX2 kernels not compiled or not supported on this CPU";
  }
  util::Xoshiro256 rng(0xD157);
  const std::size_t kBatches[] = {1, 3, 8, 33};
  for (std::size_t dim = 1; dim <= 130; ++dim) {
    for (const std::size_t count : kBatches) {
      const auto q = random_vec<T>(rng, dim);
      std::vector<std::vector<T>> rows;
      std::vector<const T*> ptrs;
      for (std::size_t i = 0; i < count; ++i) {
        rows.push_back(random_vec<T>(rng, dim));
        ptrs.push_back(rows.back().data());
      }
      for (const auto& m : kMetrics<T>) {
        std::vector<core::Dist> scalar_out(count), simd_out(count);
        core::Dist scalar_single, simd_single;
        {
          core::ScopedKernelDispatch d(core::KernelDispatch::kForceScalar);
          ASSERT_FALSE(core::simd_kernels_active());
          m.batch(q.data(), ptrs.data(), count, dim, scalar_out.data());
          scalar_single = m.single(q.data(), ptrs[0], dim);
        }
        {
          core::ScopedKernelDispatch d(core::KernelDispatch::kForceSimd);
          ASSERT_TRUE(core::simd_kernels_active());
          m.batch(q.data(), ptrs.data(), count, dim, simd_out.data());
          simd_single = m.single(q.data(), ptrs[0], dim);
        }
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(bits(scalar_out[i]), bits(simd_out[i]))
              << m.name << " dim=" << dim << " count=" << count
              << " row=" << i;
        }
        // Batch element 0 must also match the single-pair kernel on both
        // paths — the batch form is defined as "single, amortized".
        ASSERT_EQ(bits(scalar_single), bits(scalar_out[0]))
            << m.name << " scalar single-vs-batch dim=" << dim;
        ASSERT_EQ(bits(simd_single), bits(simd_out[0]))
            << m.name << " simd single-vs-batch dim=" << dim;
      }
    }
  }
}

TEST(KernelParity, ScalarVsSimdBitIdenticalF32) { parity_sweep<float>(); }
TEST(KernelParity, ScalarVsSimdBitIdenticalU8) {
  parity_sweep<std::uint8_t>();
}

// Zero padding is part of the contract: evaluating a row through its
// zero-padded length returns the identical bits as the logical length.
template <typename T>
void padding_sweep() {
  util::Xoshiro256 rng(0xBEEF);
  for (std::size_t dim = 1; dim <= 130; ++dim) {
    const auto a = random_vec<T>(rng, dim);
    const auto b = random_vec<T>(rng, dim);
    const std::size_t padded = core::DenseBlockStore<T>::padded(dim);
    std::vector<T> ap(a), bp(b);
    ap.resize(padded, T{});
    bp.resize(padded, T{});
    for (const bool simd : {false, true}) {
      if (simd && !simd_available()) continue;
      core::ScopedKernelDispatch d(simd ? core::KernelDispatch::kForceSimd
                                        : core::KernelDispatch::kForceScalar);
      for (const auto& m : kMetrics<T>) {
        ASSERT_EQ(bits(m.single(a.data(), b.data(), dim)),
                  bits(m.single(ap.data(), bp.data(), padded)))
            << m.name << (simd ? " simd" : " scalar") << " dim=" << dim;
      }
    }
  }
}

TEST(KernelParity, PaddingLanesContributeZeroF32) { padding_sweep<float>(); }
TEST(KernelParity, PaddingLanesContributeZeroU8) {
  padding_sweep<std::uint8_t>();
}

// Rows stored padded in a DenseBlockStore evaluate identically via
// (row_ptr, padded_dim) and via the logical (row, dim) view.
TEST(KernelParity, DenseBlockStoreRowsEvaluateIdenticallyPadded) {
  util::Xoshiro256 rng(0xAB);
  const std::size_t dim = 37;  // forces 27 floats of padding
  core::DenseBlockStore<float> store;
  std::vector<std::vector<float>> raw;
  for (std::size_t i = 0; i < 8; ++i) {
    raw.push_back(random_vec<float>(rng, dim));
    store.add(static_cast<core::VertexId>(i), raw.back());
  }
  auto q = random_vec<float>(rng, dim);
  std::vector<float> q_padded(q);
  q_padded.resize(store.padded_dim(), 0.0f);
  for (std::size_t i = 0; i < store.size(); ++i) {
    const float logical = core::k_squared_l2(q.data(), raw[i].data(), dim);
    const float via_pad = core::k_squared_l2(q_padded.data(),
                                             store.row_ptr(i),
                                             store.padded_dim());
    EXPECT_EQ(bits(logical), bits(via_pad)) << "row " << i;
  }
}

TEST(KernelParity, CosineZeroNormVectorIsMaximallyDistant) {
  const std::vector<float> zero(16, 0.0f);
  const std::vector<float> one(16, 1.0f);
  for (const bool simd : {false, true}) {
    if (simd && !simd_available()) continue;
    core::ScopedKernelDispatch d(simd ? core::KernelDispatch::kForceSimd
                                      : core::KernelDispatch::kForceScalar);
    EXPECT_EQ(core::k_cosine(zero.data(), one.data(), 16), 1.0f);
    EXPECT_EQ(core::k_cosine(one.data(), zero.data(), 16), 1.0f);
    EXPECT_EQ(core::k_cosine(zero.data(), zero.data(), 16), 1.0f);
  }
}

TEST(KernelParity, EmptyAndZeroCountInputsAreSafe) {
  const float* nothing = nullptr;
  EXPECT_EQ(core::k_squared_l2(nothing, nothing, 0), 0.0f);
  EXPECT_EQ(core::k_inner_product(nothing, nothing, 0), -0.0f);
  EXPECT_EQ(core::k_cosine(nothing, nothing, 0), 1.0f);  // zero norms
  core::k_batch_squared_l2<float>(nothing, nullptr, 0, 0, nullptr);  // no-op
}

// core/distance.hpp routes the dense metrics through the kernels, so the
// span API must agree with the kernel API bit-for-bit.
TEST(KernelParity, DistanceHppRoutesThroughKernels) {
  util::Xoshiro256 rng(0x5EED);
  const auto a = random_vec<float>(rng, 71);
  const auto b = random_vec<float>(rng, 71);
  const std::span<const float> sa(a), sb(b);
  EXPECT_EQ(bits(core::squared_l2(sa, sb)),
            bits(core::k_squared_l2(a.data(), b.data(), a.size())));
  EXPECT_EQ(bits(core::cosine(sa, sb)),
            bits(core::k_cosine(a.data(), b.data(), a.size())));
  EXPECT_EQ(bits(core::neg_inner_product(sa, sb)),
            bits(core::k_inner_product(a.data(), b.data(), a.size())));
  EXPECT_EQ(bits(core::l2(sa, sb)),
            bits(std::sqrt(core::k_squared_l2(a.data(), b.data(), a.size()))));
}

// ---- dispatch machinery ------------------------------------------------

TEST(KernelDispatch, ScopedOverrideRestoresPreviousMode) {
  ASSERT_EQ(core::kernel_dispatch(), core::KernelDispatch::kAuto);
  {
    core::ScopedKernelDispatch d(core::KernelDispatch::kForceScalar);
    EXPECT_EQ(core::kernel_dispatch(), core::KernelDispatch::kForceScalar);
    EXPECT_FALSE(core::simd_kernels_active());
  }
  EXPECT_EQ(core::kernel_dispatch(), core::KernelDispatch::kAuto);
}

TEST(KernelDispatch, ForceSimdThrowsWhenUnavailable) {
  if (simd_available()) {
    core::ScopedKernelDispatch d(core::KernelDispatch::kForceSimd);
    EXPECT_TRUE(core::simd_kernels_active());
  } else {
    core::ScopedKernelDispatch d(core::KernelDispatch::kForceSimd);
    EXPECT_THROW((void)core::simd_kernels_active(), std::runtime_error);
  }
}

TEST(KernelDispatch, ForceScalarEnvPinsScalarUnderAuto) {
  ASSERT_EQ(::setenv("DNND_FORCE_SCALAR", "1", 1), 0);
  core::set_kernel_dispatch(core::KernelDispatch::kAuto);  // drop cache
  EXPECT_FALSE(core::simd_kernels_active());
  ASSERT_EQ(::setenv("DNND_FORCE_SCALAR", "0", 1), 0);
  core::set_kernel_dispatch(core::KernelDispatch::kAuto);
  EXPECT_EQ(core::simd_kernels_active(), simd_available());
  ASSERT_EQ(::unsetenv("DNND_FORCE_SCALAR"), 0);
  core::set_kernel_dispatch(core::KernelDispatch::kAuto);
  EXPECT_EQ(core::simd_kernels_active(), simd_available());
}

// ---- whole-build bit-identity across dispatch modes --------------------

core::FeatureStore<float> small_dataset(std::size_t n, std::uint64_t seed) {
  data::MixtureSpec spec;
  spec.dim = 24;
  spec.num_clusters = 8;
  spec.seed = seed;
  return data::GaussianMixture(spec).sample(n, 1);
}

TEST(BuildBitIdentity, SerialNnDescentGraphsMatchAcrossDispatch) {
  if (!simd_available()) GTEST_SKIP() << "AVX2 kernels unavailable";
  const auto points = small_dataset(300, 41);
  core::NnDescentConfig cfg;
  cfg.k = 8;
  cfg.seed = 7;
  core::NnDescentStats scalar_stats, simd_stats;
  core::KnnGraph scalar_graph, simd_graph;
  {
    core::ScopedKernelDispatch d(core::KernelDispatch::kForceScalar);
    scalar_graph = core::build_nn_descent(points, core::L2Kernel<float>{},
                                          cfg, &scalar_stats);
  }
  {
    core::ScopedKernelDispatch d(core::KernelDispatch::kForceSimd);
    simd_graph = core::build_nn_descent(points, core::L2Kernel<float>{}, cfg,
                                        &simd_stats);
  }
  EXPECT_EQ(scalar_graph, simd_graph);
  EXPECT_EQ(scalar_stats.distance_evals, simd_stats.distance_evals);
  EXPECT_EQ(scalar_stats.updates_per_iteration,
            simd_stats.updates_per_iteration);
}

TEST(BuildBitIdentity, BruteForceGraphMatchesAcrossDispatchAndBatching) {
  const auto points = small_dataset(120, 13);
  // Plain per-pair functor (no batch member): the concept must not
  // detect it, and — because values are canonical — the graph it builds
  // must equal the batched kernel functor's graph exactly.
  struct PairwiseSq {
    float operator()(std::span<const float> a,
                     std::span<const float> b) const {
      return core::squared_l2(a, b);
    }
  };
  static_assert(!core::BatchDistance<PairwiseSq, float>);
  static_assert(core::BatchDistance<core::SquaredL2Kernel<float>, float>);
  const auto pairwise = baselines::brute_force_knn_graph(points, PairwiseSq{}, 6);
  const auto batched = baselines::brute_force_knn_graph(
      points, core::SquaredL2Kernel<float>{}, 6);
  EXPECT_EQ(pairwise, batched);
  if (simd_available()) {
    core::ScopedKernelDispatch d(core::KernelDispatch::kForceScalar);
    const auto scalar = baselines::brute_force_knn_graph(
        points, core::SquaredL2Kernel<float>{}, 6);
    EXPECT_EQ(scalar, batched);
  }
}

TEST(BuildBitIdentity, BruteForceWorksOnDenseBlockStore) {
  const auto csr = small_dataset(80, 99);
  const auto blocked = core::DenseBlockStore<float>::from(csr);
  const auto from_csr =
      baselines::brute_force_knn_graph(csr, core::SquaredL2Kernel<float>{}, 5);
  const auto from_blocked = baselines::brute_force_knn_graph(
      blocked, core::SquaredL2Kernel<float>{}, 5);
  EXPECT_EQ(from_csr, from_blocked);
}

TEST(BuildBitIdentity, GraphSearcherResultsMatchAcrossDispatch) {
  if (!simd_available()) GTEST_SKIP() << "AVX2 kernels unavailable";
  const auto points = small_dataset(250, 77);
  const auto queries = small_dataset(10, 78);
  const auto graph =
      baselines::brute_force_knn_graph(points, core::L2Kernel<float>{}, 8);
  core::SearchParams params;
  params.num_neighbors = 8;
  params.epsilon = 0.2;
  auto run = [&](core::KernelDispatch mode) {
    core::ScopedKernelDispatch d(mode);
    core::GraphSearcher searcher(graph, points, core::L2Kernel<float>{});
    return searcher.batch_search(queries, params, 1);
  };
  const auto scalar = run(core::KernelDispatch::kForceScalar);
  const auto simd = run(core::KernelDispatch::kForceSimd);
  ASSERT_EQ(scalar.size(), simd.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].distance_evals, simd[i].distance_evals);
    EXPECT_EQ(scalar[i].visited, simd[i].visited);
    ASSERT_EQ(scalar[i].neighbors.size(), simd[i].neighbors.size());
    for (std::size_t j = 0; j < scalar[i].neighbors.size(); ++j) {
      EXPECT_EQ(scalar[i].neighbors[j].id, simd[i].neighbors[j].id);
      EXPECT_EQ(bits(scalar[i].neighbors[j].distance),
                bits(simd[i].neighbors[j].distance));
    }
  }
}

// The distributed engine: same seeded 4-rank build under both dispatch
// modes must produce byte-identical adjacency AND identical
// engine.distance_evals in the exported metrics — the §4.3 message
// savings must not depend on which kernel variant computed the values.
TEST(BuildBitIdentity, DistributedBuildAndMetricsMatchAcrossDispatch) {
  if (!simd_available()) GTEST_SKIP() << "AVX2 kernels unavailable";
  const auto points = small_dataset(300, 5);
  auto run = [&](core::KernelDispatch mode, core::KnnGraph& graph_out) {
    core::ScopedKernelDispatch d(mode);
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndConfig cfg;
    cfg.k = 8;
    core::DnndRunner<float, core::L2Kernel<float>> runner(
        env, cfg, core::L2Kernel<float>{});
    runner.distribute(points);
    (void)runner.build();
    graph_out = runner.gather();
    std::ostringstream os;
    env.write_metrics_json(os);
    return util::json::parse(os.str());
  };
  core::KnnGraph scalar_graph, simd_graph;
  const auto scalar_doc = run(core::KernelDispatch::kForceScalar, scalar_graph);
  const auto simd_doc = run(core::KernelDispatch::kForceSimd, simd_graph);
  EXPECT_EQ(scalar_graph, simd_graph);
  if constexpr (telemetry::kEnabled) {
    const auto evals = [](const util::json::Value& doc) {
      return doc.at("metrics").at("counters").at("engine.distance_evals")
          .as_number();
    };
    EXPECT_GT(evals(scalar_doc), 0.0);
    EXPECT_EQ(evals(scalar_doc), evals(simd_doc));
  }
}

// ---- FeatureStore satellite fixes --------------------------------------

TEST(FeatureStoreDense, ZeroRowConstructorYieldsWorkingEmptyStore) {
  core::FeatureStore<float> store(0, 8, {});
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dim(), 0u);
  // add() must keep working on a dense-constructed empty store.
  const std::vector<float> row{1, 2, 3};
  store.add(7, row);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.dim(), 3u);
  EXPECT_TRUE(std::equal(row.begin(), row.end(), store[7].begin()));
}

TEST(FeatureStoreDense, SingleRowStore) {
  core::FeatureStore<float> store(1, 4, {1, 2, 3, 4});
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.dim(), 4u);
  EXPECT_EQ(store.id_at(0), 0u);
  EXPECT_EQ(store.row(0).size(), 4u);
  EXPECT_EQ(store.row_ptr(0)[3], 4.0f);
}

TEST(FeatureStoreDense, AddAfterDenseConstructAppends) {
  core::FeatureStore<float> store(2, 2, {1, 2, 3, 4});
  const std::vector<float> extra{5, 6};
  store.add(10, extra);
  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store[10][1], 6.0f);
  EXPECT_EQ(store.id_at(2), 10u);
}

TEST(FeatureStoreDense, RowPtrIsBoundsChecked) {
  core::FeatureStore<float> store(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(store.row_ptr(1)[0], 3.0f);
  EXPECT_THROW((void)store.row_ptr(2), std::out_of_range);
  core::FeatureStore<float> empty;
  EXPECT_THROW((void)empty.row_ptr(0), std::out_of_range);
}

// ---- DenseBlockStore layout --------------------------------------------

TEST(DenseBlockStore, RowsAreAlignedPaddedAndZeroFilled) {
  core::DenseBlockStore<float> store;
  EXPECT_EQ(core::DenseBlockStore<float>::padded(1), 16u);
  EXPECT_EQ(core::DenseBlockStore<float>::padded(16), 16u);
  EXPECT_EQ(core::DenseBlockStore<float>::padded(17), 32u);
  EXPECT_EQ(core::DenseBlockStore<std::uint8_t>::padded(65), 128u);
  util::Xoshiro256 rng(3);
  const std::size_t dim = 19;
  for (std::size_t i = 0; i < 20; ++i) {
    store.add(static_cast<core::VertexId>(i), random_vec<float>(rng, dim));
  }
  EXPECT_EQ(store.dim(), dim);
  EXPECT_EQ(store.padded_dim(), 32u);
  for (std::size_t i = 0; i < store.size(); ++i) {
    const float* p = store.row_ptr(i);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  core::DenseBlockStore<float>::kRowAlignBytes,
              0u)
        << "row " << i;
    for (std::size_t j = dim; j < store.padded_dim(); ++j) {
      EXPECT_EQ(p[j], 0.0f) << "row " << i << " pad " << j;
    }
  }
}

TEST(DenseBlockStore, FromCsrPreservesIdsAndValues) {
  core::FeatureStore<float> csr;
  csr.add(5, std::vector<float>{1, 2, 3});
  csr.add(9, std::vector<float>{4, 5, 6});
  const auto blocked = core::DenseBlockStore<float>::from(csr);
  ASSERT_EQ(blocked.size(), 2u);
  EXPECT_EQ(blocked.ids(), csr.ids());
  EXPECT_TRUE(blocked.contains(9));
  EXPECT_EQ(blocked[9][2], 6.0f);
  EXPECT_EQ(blocked.row(0).size(), 3u);
}

TEST(DenseBlockStore, DenseConstructorAndAddAfter) {
  core::DenseBlockStore<float> store(2, 3, std::vector<float>{1, 2, 3, 4, 5, 6});
  ASSERT_EQ(store.size(), 2u);
  store.add(17, std::vector<float>{7, 8, 9});
  EXPECT_EQ(store[17][0], 7.0f);
  // Dimension was fixed by the constructor even for n == 0.
  core::DenseBlockStore<float> empty(0, 4, {});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.dim(), 4u);
  EXPECT_THROW(empty.add(0, std::vector<float>{1}), std::invalid_argument);
}

TEST(DenseBlockStore, RejectsDuplicatesWrongLengthsAndBadIndices) {
  core::DenseBlockStore<float> store;
  store.add(1, std::vector<float>{1, 2});
  EXPECT_THROW(store.add(1, std::vector<float>{3, 4}), std::invalid_argument);
  EXPECT_THROW(store.add(2, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)store.row_ptr(1), std::out_of_range);
  EXPECT_THROW((void)store[42], std::out_of_range);
}

TEST(DenseBlockStore, ReserveBeforeFirstAddIsDeferredSafely) {
  core::DenseBlockStore<float> store;
  store.reserve(100);  // dim unknown: must not allocate a zero-stride block
  store.add(0, std::vector<float>{1, 2, 3});
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.row(0)[2], 3.0f);
  for (core::VertexId id = 1; id < 100; ++id) {
    store.add(id, std::vector<float>{float(id), 0, 0});
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store[99][0], 99.0f);
}

// ---- bench writer schema ------------------------------------------------

TEST(BenchReport, WritesValidDnndBenchV1Json) {
  const auto path =
      (std::filesystem::temp_directory_path() / "dnnd_bench_schema.json")
          .string();
  bench::BenchReport report("bench_schema_test");
  auto& row = report.add_row("kernel/squared_l2/f32/dim128/batch8");
  row.params["metric"] = "squared_l2";
  row.params["dispatch"] = "simd";
  row.metrics["evals_per_sec"] = 1.25e8;
  row.metrics["gbps"] = 12.5;
  auto& row2 = report.add_row("needs\"escaping\\row");
  row2.params["note"] = "tab\there";
  report.write(path);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = util::json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "dnnd.bench.v1");
  EXPECT_EQ(doc.at("bench").as_string(), "bench_schema_test");
  const auto& rows = doc.at("rows").as_array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("name").as_string(),
            "kernel/squared_l2/f32/dim128/batch8");
  EXPECT_EQ(rows[0].at("params").at("metric").as_string(), "squared_l2");
  EXPECT_EQ(rows[0].at("metrics").at("evals_per_sec").as_number(), 1.25e8);
  EXPECT_EQ(rows[0].at("metrics").at("gbps").as_number(), 12.5);
  EXPECT_EQ(rows[1].at("name").as_string(), "needs\"escaping\\row");
  EXPECT_EQ(rows[1].at("params").at("note").as_string(), "tab\there");
  std::filesystem::remove(path);
}

}  // namespace

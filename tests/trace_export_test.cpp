// Exporter tests: a golden-file check of the Chrome-trace (catapult)
// writer over hand-stamped events, structural checks that real TraceSpans
// nest correctly, and a schema check of Environment::write_metrics_json.
//
// The golden compare uses manual timestamps (TraceBuffer::add_complete),
// so it is byte-exact and independent of the wall clock; the span tests
// assert containment rather than exact times. Everything parses back
// through util::json so "valid JSON" is checked by an actual parser, not
// by eye.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/environment.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"

namespace {

using dnnd::comm::Config;
using dnnd::comm::Environment;
using dnnd::comm::HandlerId;
using dnnd::telemetry::RankTrace;
using dnnd::telemetry::TraceBuffer;
using dnnd::telemetry::TraceSpan;
using dnnd::telemetry::write_chrome_trace;
namespace json = dnnd::util::json;

std::string render(std::span<const RankTrace> ranks) {
  std::ostringstream os;
  write_chrome_trace(os, ranks);
  return os.str();
}

// ---------------------------------------------------------------------------
// Golden file: exact bytes for a deterministic two-rank trace
// ---------------------------------------------------------------------------

TEST(ChromeTraceExport, GoldenTwoRankTrace) {
  TraceBuffer r0, r1;
  r0.add_complete("build", "phase", 100, 500, 0);
  r0.add_complete("sample", "phase", 150, 100, 0);
  r1.add_complete("drain \"q\"", "comm", 200, 50, 2);  // exercises escaping

  const std::vector<RankTrace> ranks = {{0, &r0}, {1, &r1}};
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"rank 0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"driver\"}},"
      "{\"name\":\"build\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":100,"
      "\"dur\":500,\"pid\":0,\"tid\":0},"
      "{\"name\":\"sample\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":150,"
      "\"dur\":100,\"pid\":0,\"tid\":0},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"rank 1\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"aux 2\"}},"
      "{\"name\":\"drain \\\"q\\\"\",\"cat\":\"comm\",\"ph\":\"X\","
      "\"ts\":200,\"dur\":50,\"pid\":1,\"tid\":2}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(render(ranks), expected);
}

TEST(ChromeTraceExport, GoldenFlowEventsAndArgs) {
  // A traced send on rank 0 stitched to a handler span on rank 1 —
  // exactly the event shapes the communicator emits, hand-stamped so the
  // compare is byte-exact.
  TraceBuffer r0, r1;
  r0.add_flow('s', "type2", 100, 0xabc);
  dnnd::telemetry::TraceEvent recv;
  recv.name = "recv.type2";
  recv.category = "handler";
  recv.ts_us = 140;
  recv.dur_us = 25;
  recv.args = "{\"trace\":\"0x1\",\"span\":\"0xabc\",\"hop\":1,\"src\":0,"
              "\"queue_us\":40}";
  r1.add_flow('f', "type2", 140, 0xabc);
  r1.add(std::move(recv));

  const std::vector<RankTrace> ranks = {{0, &r0}, {1, &r1}};
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"rank 0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"driver\"}},"
      "{\"name\":\"type2\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":100,"
      "\"pid\":0,\"tid\":0,\"id\":\"0xabc\"},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"rank 1\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"driver\"}},"
      "{\"name\":\"type2\",\"cat\":\"flow\",\"ph\":\"f\",\"ts\":140,"
      "\"pid\":1,\"tid\":0,\"id\":\"0xabc\",\"bp\":\"e\"},"
      "{\"name\":\"recv.type2\",\"cat\":\"handler\",\"ph\":\"X\","
      "\"ts\":140,\"dur\":25,\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace\":\"0x1\",\"span\":\"0xabc\",\"hop\":1,\"src\":0,"
      "\"queue_us\":40}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(render(ranks), expected);

  // The flow pair survives a JSON parser round-trip with matching ids.
  const auto doc = json::parse(render(ranks));
  std::string s_id, f_id;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "s") s_id = e.at("id").as_string();
    if (e.at("ph").as_string() == "f") f_id = e.at("id").as_string();
  }
  EXPECT_EQ(s_id, "0xabc");
  EXPECT_EQ(s_id, f_id);
}

TEST(ChromeTraceExport, OriginShiftsTimestampsToRunRelativeZero) {
  TraceBuffer buf;
  buf.add_complete("a", "phase", 5000, 10, 0);
  buf.add_flow('s', "m", 5100, 0x1);
  const std::vector<RankTrace> ranks = {{0, &buf}};
  std::ostringstream os;
  write_chrome_trace(os, ranks, 5000);
  const auto doc = json::parse(os.str());
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X") {
      EXPECT_EQ(e.at("ts").as_number(), 0.0);
      EXPECT_EQ(e.at("dur").as_number(), 10.0);  // durations never shift
    }
    if (e.at("ph").as_string() == "s") {
      EXPECT_EQ(e.at("ts").as_number(), 100.0);
    }
  }
  // Events stamped before the origin clamp to zero instead of wrapping.
  TraceBuffer early;
  early.add_complete("b", "phase", 10, 5, 0);
  std::ostringstream os2;
  const std::vector<RankTrace> ranks2 = {{0, &early}};
  write_chrome_trace(os2, ranks2, 5000);
  EXPECT_EQ(json::parse(os2.str())
                .at("traceEvents")
                .as_array()
                .back()
                .at("ts")
                .as_number(),
            0.0);
}

TEST(ChromeTraceExport, OutputParsesAndMapsPidTidToRankThread) {
  TraceBuffer r0, r1;
  r0.add_complete("a", "phase", 0, 10, 0);
  r1.add_complete("b", "phase", 5, 10, 3);
  const std::vector<RankTrace> ranks = {{0, &r0}, {1, &r1}};

  const auto doc = json::parse(render(ranks));
  const auto& events = doc.at("traceEvents").as_array();
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  // Every "X" event's pid must be its rank; metadata must name each pid
  // "rank N" and tid 0 "driver".
  int x_events = 0;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      ++x_events;
      const int pid = static_cast<int>(e.at("pid").as_number());
      const int tid = static_cast<int>(e.at("tid").as_number());
      if (e.at("name").as_string() == "a") {
        EXPECT_EQ(pid, 0);
        EXPECT_EQ(tid, 0);
      } else {
        EXPECT_EQ(pid, 1);
        EXPECT_EQ(tid, 3);
      }
      continue;
    }
    ASSERT_EQ(ph, "M");
    const auto& meta_name = e.at("args").at("name").as_string();
    if (e.at("name").as_string() == "process_name") {
      EXPECT_EQ(meta_name,
                "rank " + std::to_string(
                              static_cast<int>(e.at("pid").as_number())));
    } else if (static_cast<int>(e.at("tid").as_number()) == 0) {
      EXPECT_EQ(meta_name, "driver");
    }
  }
  EXPECT_EQ(x_events, 2);
}

TEST(ChromeTraceExport, EmptyAndNullBuffersStillProduceValidJson) {
  TraceBuffer empty;
  const std::vector<RankTrace> ranks = {{0, &empty}, {1, nullptr}};
  const auto doc = json::parse(render(ranks));
  // Only the two process_name records — no threads, no events.
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 2u);
}

// ---------------------------------------------------------------------------
// Span nesting (real clock; assert containment, not exact values)
// ---------------------------------------------------------------------------

TEST(TraceSpanUnit, NestedSpansAreContainedInTheirParent) {
  TraceBuffer buf;
  {
    const TraceSpan outer(&buf, "outer", "test");
    {
      const TraceSpan inner(&buf, "inner", "test");
    }
  }
  // Spans close inner-first, so the buffer order is inner, outer.
  ASSERT_EQ(buf.size(), 2u);
  const auto& inner = buf.events()[0];
  const auto& outer = buf.events()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST(TraceSpanUnit, MovedFromSpanDoesNotDoubleRecord) {
  TraceBuffer buf;
  {
    TraceSpan a(&buf, "once", "test");
    const TraceSpan b = std::move(a);
  }  // both destructors run; only b may record
  EXPECT_EQ(buf.size(), 1u);
}

TEST(TraceSpanUnit, NullBufferSpanIsANoOp) {
  const TraceSpan span(nullptr, "ghost", "test");
  // Nothing to assert beyond "does not crash": this is the OFF-mode shape.
}

// ---------------------------------------------------------------------------
// metrics.json schema from a real (tiny) Environment run
// ---------------------------------------------------------------------------

TEST(MetricsJsonExport, SchemaAndHandlerRowsFromLiveEnvironment) {
  Environment env(Config{.num_ranks = 2});
  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[r] = env.comm(r).register_handler(
        "ping", [](int, dnnd::serial::InArchive& ar) {
          (void)ar.read<std::uint32_t>();
        });
  }
  env.execute_phase([&](int rank) {
    env.comm(rank).async(1 - rank, h[0], std::uint32_t{1});
  });

  std::ostringstream os;
  env.write_metrics_json(os);
  const auto doc = json::parse(os.str());

  EXPECT_EQ(doc.at("schema").as_string(), "dnnd.metrics.v1");
  EXPECT_EQ(doc.at("enabled").as_bool(), dnnd::telemetry::kEnabled);
  EXPECT_EQ(doc.at("ranks").as_number(), 2.0);

  // Handler rows carry the Fig. 4 send-side accounting regardless of the
  // telemetry configuration (MessageStats is always on).
  const auto& handlers = doc.at("handlers").as_array();
  ASSERT_EQ(handlers.size(), 1u);
  EXPECT_EQ(handlers[0].at("label").as_string(), "ping");
  EXPECT_EQ(handlers[0].at("remote_messages").as_number(), 2.0);
  EXPECT_GT(handlers[0].at("remote_bytes").as_number(), 0.0);

  const auto& transport = doc.at("transport");
  EXPECT_EQ(transport.at("retransmits").as_number(), 0.0);
  EXPECT_EQ(transport.at("duplicates_suppressed").as_number(), 0.0);

  // The merged registry always has the three sections; their content
  // depends on the build configuration.
  const auto& metrics = doc.at("metrics");
  ASSERT_TRUE(metrics.at("counters").is_object());
  ASSERT_TRUE(metrics.at("gauges").is_object());
  ASSERT_TRUE(metrics.at("histograms").is_object());
  if constexpr (dnnd::telemetry::kEnabled) {
    // Each delivered message bumps the per-handler recv counter; two ranks
    // each received one "ping".
    EXPECT_EQ(metrics.at("counters").at("comm.recv.ping").as_number(), 2.0);
    EXPECT_TRUE(metrics.at("gauges").contains("comm.inbox_depth"));
    EXPECT_TRUE(metrics.at("histograms").contains("comm.barrier_wait_us"));
  } else {
    EXPECT_EQ(metrics.at("counters").as_object().size(), 0u);
  }
}

TEST(MetricsJsonExport, AggregateMetricsMergesAcrossRanks) {
  Environment env(Config{.num_ranks = 3});
  if constexpr (dnnd::telemetry::kEnabled) {
    for (int r = 0; r < 3; ++r) {
      auto& t = env.telemetry(r);
      t.add(t.counter("test.work"), static_cast<std::uint64_t>(r + 1));
    }
    const auto merged = env.aggregate_metrics();
    EXPECT_EQ(merged.counter_value("test.work"), 6u);  // 1 + 2 + 3
  } else {
    EXPECT_EQ(env.aggregate_metrics().size(), 0u);
  }
}

}  // namespace

// Tests for distributed NN-Descent: correctness across rank counts and
// drivers, the §4.3 communication-saving techniques (including the
// losslessness of pruning), §4.4 batching, and §4.5 graph optimization.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "core/distance.hpp"
#include "comm/environment.hpp"
#include "core/dnnd_runner.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT
using comm::Config;
using comm::DriverKind;
using comm::Environment;
using core::DnndConfig;
using core::DnndRunner;

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

core::FeatureStore<float> clustered(std::size_t n, std::uint64_t seed = 21) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.seed = seed;
  return data::GaussianMixture(spec).sample(n, 1);
}

DnndConfig base_config(std::size_t k = 8) {
  DnndConfig cfg;
  cfg.k = k;
  cfg.batch_size = 4096;  // small batches: exercises §4.4 repeatedly
  return cfg;
}

// -- correctness across rank counts ------------------------------------------

class RankCounts : public ::testing::TestWithParam<int> {};

TEST_P(RankCounts, MatchesBruteForceRecall) {
  const auto points = clustered(400);
  const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, 8);

  Environment env(Config{.num_ranks = GetParam()});
  DnndRunner<float, L2Fn> runner(env, base_config(), L2Fn{});
  runner.distribute(points);
  const auto stats = runner.build();
  const auto graph = runner.gather();

  EXPECT_GT(core::graph_recall(graph, exact, 8), 0.9)
      << "ranks=" << GetParam();
  EXPECT_GE(stats.iterations, 1u);
  EXPECT_GT(stats.distance_evals, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCounts, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(Dnnd, EveryRowIsFullSortedAndSelfLoopFree) {
  const auto points = clustered(300);
  Environment env(Config{.num_ranks = 4});
  DnndRunner<float, L2Fn> runner(env, base_config(), L2Fn{});
  runner.distribute(points);
  runner.build();
  const auto graph = runner.gather();
  for (core::VertexId v = 0; v < 300; ++v) {
    const auto row = graph.neighbors(v);
    EXPECT_EQ(row.size(), 8u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_NE(row[i].id, v);
      EXPECT_FLOAT_EQ(row[i].distance, L2Fn{}(points[v], points[row[i].id]));
      if (i > 0) { EXPECT_GE(row[i].distance, row[i - 1].distance); }
    }
  }
}

TEST(Dnnd, ThreadedDriverReachesSameQuality) {
  const auto points = clustered(300);
  const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, 8);
  Environment env(Config{.num_ranks = 4, .driver = DriverKind::kThreaded});
  DnndRunner<float, L2Fn> runner(env, base_config(), L2Fn{});
  runner.distribute(points);
  runner.build();
  EXPECT_GT(core::graph_recall(runner.gather(), exact, 8), 0.9);
}

TEST(Dnnd, DeterministicUnderSequentialDriver) {
  const auto points = clustered(200);
  auto run_once = [&]() {
    Environment env(Config{.num_ranks = 4});
    DnndRunner<float, L2Fn> runner(env, base_config(), L2Fn{});
    runner.distribute(points);
    runner.build();
    return runner.gather();
  };
  EXPECT_EQ(run_once(), run_once());
}

// -- §4.3 communication saving -------------------------------------------------

TEST(Dnnd, OptimizedAndUnoptimizedReachSimilarRecall) {
  const auto points = clustered(400);
  const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, 8);
  for (const bool optimized : {true, false}) {
    Environment env(Config{.num_ranks = 4});
    auto cfg = base_config();
    cfg.optimized_checks = optimized;
    DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    EXPECT_GT(core::graph_recall(runner.gather(), exact, 8), 0.9)
        << "optimized=" << optimized;
  }
}

TEST(Dnnd, OptimizedChecksCutMessageVolumeRoughlyInHalf) {
  // The Figure-4 claim at test scale: neighbor-check traffic (messages
  // and bytes) drops by ~50% with the §4.3 techniques enabled.
  const auto points = clustered(500);
  auto run = [&](bool optimized) {
    Environment env(Config{.num_ranks = 8});
    auto cfg = base_config();
    cfg.optimized_checks = optimized;
    DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    const auto stats = env.aggregate_stats();
    std::uint64_t messages = 0, bytes = 0;
    for (const char* label : {"type1", "type2plus", "type3", "type1_unopt",
                              "type2_unopt"}) {
      const auto c = stats.by_label(label);
      messages += c.remote_messages;
      bytes += c.remote_bytes;
    }
    return std::pair{messages, bytes};
  };
  const auto [opt_msgs, opt_bytes] = run(true);
  const auto [unopt_msgs, unopt_bytes] = run(false);
  EXPECT_LT(static_cast<double>(opt_msgs),
            0.75 * static_cast<double>(unopt_msgs));
  EXPECT_LT(static_cast<double>(opt_bytes),
            0.70 * static_cast<double>(unopt_bytes));
}

TEST(Dnnd, DistancePruningIsLossless) {
  // §4.3.3 suppresses Type-3 replies whose distance cannot improve u1's
  // list. Disabling it must not change achievable quality (same seed ⇒
  // same sampling ⇒ comparable graphs), only the message count.
  const auto points = clustered(300);
  const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, 8);
  std::uint64_t type3_with = 0, type3_without = 0;
  for (const bool pruning : {true, false}) {
    Environment env(Config{.num_ranks = 4});
    auto cfg = base_config();
    cfg.distance_pruning = pruning;
    DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    EXPECT_GT(core::graph_recall(runner.gather(), exact, 8), 0.9);
    const auto t3 = env.aggregate_stats().by_label("type3").total_messages();
    (pruning ? type3_with : type3_without) = t3;
  }
  EXPECT_LT(type3_with, type3_without);
}

TEST(Dnnd, RedundantCheckReductionCutsType2Messages) {
  const auto points = clustered(300);
  auto type2_count = [&](bool reduction) {
    Environment env(Config{.num_ranks = 4});
    auto cfg = base_config();
    cfg.redundant_check_reduction = reduction;
    DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    return env.aggregate_stats().by_label("type2plus").total_messages();
  };
  EXPECT_LT(type2_count(true), type2_count(false));
}

// -- §4.4 batching ----------------------------------------------------------------

TEST(Dnnd, BatchSizeDoesNotChangeResults) {
  const auto points = clustered(250);
  auto build_with_batch = [&](std::uint64_t batch) {
    Environment env(Config{.num_ranks = 4});
    auto cfg = base_config();
    cfg.batch_size = batch;
    DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
    runner.distribute(points);
    runner.build();
    return runner.gather();
  };
  // Batching only changes *when* barriers happen; with the sequential
  // driver the message delivery interleaving changes, so graphs need not
  // be identical — but quality must hold for tiny and huge batches alike.
  const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, 8);
  EXPECT_GT(core::graph_recall(build_with_batch(64), exact, 8), 0.9);
  EXPECT_GT(core::graph_recall(build_with_batch(1 << 30), exact, 8), 0.9);
}

// -- §4.5 graph optimization ---------------------------------------------------

TEST(Dnnd, OptimizeAddsReverseEdgesAndBoundsDegree) {
  const auto points = clustered(300);
  Environment env(Config{.num_ranks = 4});
  auto cfg = base_config();
  cfg.prune_factor_m = 1.5;
  DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(points);
  runner.build();
  const auto before = runner.gather();
  runner.optimize();
  const auto after = runner.gather();

  EXPECT_GT(after.num_edges(), before.num_edges());
  const auto max_degree =
      static_cast<std::size_t>(static_cast<double>(cfg.k) * cfg.prune_factor_m);
  EXPECT_LE(after.max_degree(), max_degree);
  // No duplicate ids or self loops in optimized rows.
  for (core::VertexId v = 0; v < after.num_vertices(); ++v) {
    const auto row = after.neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_NE(row[i].id, v);
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        EXPECT_NE(row[i].id, row[j].id);
      }
    }
  }
}

TEST(Dnnd, SimulatedParallelTimeShrinksWithMoreRanks) {
  // The Figure-3 scaling property in miniature: max-per-rank work at 8
  // ranks is well below the 1-rank total. Use paper-like dimensionality
  // (DEEP1B is 96-d) so distance evaluation dominates the cost model as it
  // does in the real system; at toy dims the per-byte network charge
  // swamps compute and scaling flattens (which is itself the paper's
  // 16→32-node behaviour).
  data::MixtureSpec spec;
  spec.dim = 48;
  spec.num_clusters = 10;
  spec.seed = 21;
  const auto points = data::GaussianMixture(spec).sample(600, 1);
  auto sim_units = [&](int ranks) {
    Environment env(Config{.num_ranks = ranks});
    DnndRunner<float, L2Fn> runner(env, base_config(), L2Fn{});
    runner.distribute(points);
    return runner.build().simulated_parallel_units;
  };
  const double t1 = sim_units(1);
  const double t8 = sim_units(8);
  EXPECT_LT(t8, t1 / 2.5) << "expected ≥2.5x simulated speedup at 8 ranks";
}

TEST(Dnnd, BuildBeforeDistributeThrows) {
  Environment env(Config{.num_ranks = 2});
  DnndRunner<float, L2Fn> runner(env, base_config(), L2Fn{});
  EXPECT_THROW(runner.build(), std::logic_error);
}

TEST(Dnnd, SingleRankMatchesSerialSemantics) {
  // One rank sends every message to itself; the algorithm must still be
  // plain NN-Descent and reach reference quality.
  const auto points = clustered(300);
  const auto exact = baselines::brute_force_knn_graph(points, L2Fn{}, 8);
  Environment env(Config{.num_ranks = 1});
  DnndRunner<float, L2Fn> runner(env, base_config(), L2Fn{});
  runner.distribute(points);
  runner.build();
  EXPECT_GT(core::graph_recall(runner.gather(), exact, 8), 0.9);
  // Nothing went "off node".
  EXPECT_EQ(env.aggregate_stats().total_remote_messages(), 0u);
}

}  // namespace

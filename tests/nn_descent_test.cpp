// Tests for the serial NN-Descent reference: convergence, recall against
// brute force (the §5.2 methodology at unit-test scale), and behaviour of
// the algorithm parameters.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"

#include "core/distance.hpp"
#include "core/nn_descent.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT
using core::NnDescentConfig;
using core::NnDescentStats;

float l2f(std::span<const float> a, std::span<const float> b) {
  return core::l2(a, b);
}

core::FeatureStore<float> clustered(std::size_t n, std::size_t dim = 8,
                                    std::uint64_t seed = 11) {
  data::MixtureSpec spec;
  spec.dim = dim;
  spec.num_clusters = 12;
  spec.seed = seed;
  return data::GaussianMixture(spec).sample(n, 1);
}

TEST(NnDescent, ProducesFullRowsOfDistinctNeighbors) {
  const auto points = clustered(300);
  NnDescentConfig cfg;
  cfg.k = 8;
  const auto graph = core::build_nn_descent(points, l2f, cfg);
  ASSERT_EQ(graph.num_vertices(), 300u);
  for (core::VertexId v = 0; v < 300; ++v) {
    const auto row = graph.neighbors(v);
    EXPECT_EQ(row.size(), 8u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_NE(row[i].id, v) << "self-loop at " << v;
      if (i > 0) { EXPECT_GE(row[i].distance, row[i - 1].distance); }
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        EXPECT_NE(row[i].id, row[j].id) << "duplicate neighbor at " << v;
      }
    }
  }
}

TEST(NnDescent, HighRecallOnClusteredData) {
  const auto points = clustered(600);
  NnDescentConfig cfg;
  cfg.k = 10;
  const auto approx = core::build_nn_descent(points, l2f, cfg);
  const auto exact = baselines::brute_force_knn_graph(points, l2f, 10);
  EXPECT_GT(core::graph_recall(approx, exact, 10), 0.95);
}

TEST(NnDescent, DistanceEvalsGrowSubQuadratically) {
  // The paper quotes an empirical cost around O(n^1.14) vs O(n^2) brute
  // force. At small n the constants hide that, so assert on growth: 4x the
  // points must cost far less than 16x the evaluations (n^1.5 ⇒ 8x).
  auto evals_at = [&](std::size_t n) {
    const auto points = clustered(n);
    NnDescentConfig cfg;
    cfg.k = 10;
    NnDescentStats stats;
    (void)core::build_nn_descent(points, l2f, cfg, &stats);
    return stats.distance_evals;
  };
  const auto small = evals_at(500);
  const auto large = evals_at(2000);
  EXPECT_LT(static_cast<double>(large),
            8.0 * static_cast<double>(small))
      << "growth should be sub-quadratic (got " << large << " vs " << small
      << ")";
}

TEST(NnDescent, UpdatesDecayAcrossIterations) {
  const auto points = clustered(500);
  NnDescentConfig cfg;
  cfg.k = 10;
  NnDescentStats stats;
  (void)core::build_nn_descent(points, l2f, cfg, &stats);
  ASSERT_GE(stats.iterations, 2u);
  // Convergence: the last iteration does far less work than the first.
  EXPECT_LT(stats.updates_per_iteration.back(),
            stats.updates_per_iteration.front() / 4);
}

TEST(NnDescent, LargerDeltaStopsEarlier) {
  const auto points = clustered(500);
  NnDescentConfig strict, loose;
  strict.k = loose.k = 10;
  strict.delta = 0.0001;
  loose.delta = 0.05;
  NnDescentStats s_strict, s_loose;
  (void)core::build_nn_descent(points, l2f, strict, &s_strict);
  (void)core::build_nn_descent(points, l2f, loose, &s_loose);
  EXPECT_LE(s_loose.iterations, s_strict.iterations);
  EXPECT_LE(s_loose.distance_evals, s_strict.distance_evals);
}

TEST(NnDescent, DeterministicForFixedSeed) {
  const auto points = clustered(200);
  NnDescentConfig cfg;
  cfg.k = 6;
  cfg.seed = 123;
  const auto g1 = core::build_nn_descent(points, l2f, cfg);
  const auto g2 = core::build_nn_descent(points, l2f, cfg);
  EXPECT_EQ(g1, g2);
}

TEST(NnDescent, DifferentSeedsStillConvergeToSimilarQuality) {
  const auto points = clustered(400);
  const auto exact = baselines::brute_force_knn_graph(points, l2f, 8);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    NnDescentConfig cfg;
    cfg.k = 8;
    cfg.seed = seed;
    const auto graph = core::build_nn_descent(points, l2f, cfg);
    EXPECT_GT(core::graph_recall(graph, exact, 8), 0.9)
        << "seed " << seed;
  }
}

TEST(NnDescent, WorksWithCosineMetric) {
  const auto points = clustered(300, 16);
  const auto cosf = [](std::span<const float> a, std::span<const float> b) {
    return core::cosine(a, b);
  };
  NnDescentConfig cfg;
  cfg.k = 8;
  const auto approx = core::build_nn_descent(points, cosf, cfg);
  const auto exact = baselines::brute_force_knn_graph(points, cosf, 8);
  EXPECT_GT(core::graph_recall(approx, exact, 8), 0.9);
}

TEST(NnDescent, WorksWithJaccardSparseSets) {
  data::SparseSetSpec spec;
  spec.num_topics = 16;
  const data::SparseSetFamily family(spec);
  const auto points = family.sample(300, 1);
  const auto jac = [](std::span<const std::uint32_t> a,
                      std::span<const std::uint32_t> b) {
    return core::jaccard_sorted(a, b);
  };
  NnDescentConfig cfg;
  cfg.k = 8;
  const auto approx = core::build_nn_descent(points, jac, cfg);
  const auto exact = baselines::brute_force_knn_graph(points, jac, 8);
  // Jaccard on sets has many ties, which caps achievable recall.
  EXPECT_GT(core::graph_recall(approx, exact, 8), 0.7);
}

TEST(NnDescent, TinyDatasetSmallerThanK) {
  // N <= K: every vertex should link to everything else it can.
  const auto points = clustered(5);
  NnDescentConfig cfg;
  cfg.k = 10;
  const auto graph = core::build_nn_descent(points, l2f, cfg);
  for (core::VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(graph.neighbors(v).size(), 4u);
  }
}

TEST(BruteForce, ExactGraphIsSymmetricallyConsistent) {
  const auto points = clustered(100);
  const auto graph = baselines::brute_force_knn_graph(points, l2f, 5);
  for (core::VertexId v = 0; v < 100; ++v) {
    const auto row = graph.neighbors(v);
    ASSERT_EQ(row.size(), 5u);
    // Each listed distance matches a direct evaluation.
    for (const auto& n : row) {
      EXPECT_FLOAT_EQ(n.distance, l2f(points[v], points[n.id]));
    }
  }
}

TEST(BruteForce, QueryMatchesGraphRow) {
  const auto points = clustered(150);
  const auto graph = baselines::brute_force_knn_graph(points, l2f, 5);
  // Querying with point v's own vector returns v first, then v's row.
  const auto ids = baselines::brute_force_query(points, points[7], l2f, 6);
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(ids[0], 7u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ids[i + 1], graph.neighbors(7)[i].id);
  }
}

}  // namespace

// Unit tests for dnnd::util — RNG determinism and statistics, hashing and
// partitioning, streaming stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using dnnd::util::RunningStats;
using dnnd::util::Xoshiro256;

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Xoshiro256 parent(7);
  const Xoshiro256 forked_early = parent.fork(3);
  (void)parent();
  (void)parent();
  Xoshiro256 parent2(7);
  const Xoshiro256 forked_late = parent2.fork(3);
  Xoshiro256 a = forked_early, b = forked_late;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForksWithDifferentIdsDiffer) {
  Xoshiro256 parent(7);
  Xoshiro256 a = parent.fork(0), b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBelowStaysInRange) {
  Xoshiro256 rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(Rng, UniformBelowOneAlwaysZero) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Xoshiro256 rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBound, 0.1 * kDraws / kBound);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Xoshiro256 rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  Xoshiro256 rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  dnnd::util::shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, BernoulliExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Hash, OwnerRankInRangeAndStable) {
  for (int ranks : {1, 2, 7, 16, 128}) {
    for (std::uint64_t id = 0; id < 1000; ++id) {
      const int r = dnnd::util::owner_rank(id, ranks);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, ranks);
      EXPECT_EQ(r, dnnd::util::owner_rank(id, ranks));
    }
  }
}

TEST(Hash, OwnerRankBalancesLoad) {
  constexpr int kRanks = 8;
  constexpr int kIds = 80000;
  std::vector<int> counts(kRanks, 0);
  for (std::uint64_t id = 0; id < kIds; ++id) {
    ++counts[dnnd::util::owner_rank(id, kRanks)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kIds / kRanks, 0.05 * kIds / kRanks);
  }
}

TEST(Hash, Mix64ChangesOnSingleBitFlips) {
  // Weak avalanche check: flipping one input bit flips a sizeable number
  // of output bits.
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = dnnd::util::mix64(0x123456789abcdefULL);
    const std::uint64_t b =
        dnnd::util::mix64(0x123456789abcdefULL ^ (1ULL << bit));
    EXPECT_GE(std::popcount(a ^ b), 10);
  }
}

TEST(Hash, Fnv1aDistinguishesStrings) {
  EXPECT_NE(dnnd::util::fnv1a("abc"), dnnd::util::fnv1a("abd"));
  EXPECT_NE(dnnd::util::fnv1a(""), dnnd::util::fnv1a("a"));
  EXPECT_EQ(dnnd::util::fnv1a("type1"), dnnd::util::fnv1a("type1"));
}

TEST(Stats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 7.5, 1e-12);  // sample variance of 1..9
}

TEST(Stats, MergeEqualsSingleAccumulator) {
  RunningStats whole, left, right;
  dnnd::util::Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3 + 1;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(Stats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(dnnd::util::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(dnnd::util::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(dnnd::util::percentile(xs, 50), 25.0);
}

TEST(Stats, EmptyPercentileIsNaN) {
  EXPECT_TRUE(std::isnan(dnnd::util::percentile({}, 50)));
}

TEST(Logging, LevelRoundTripsAndFilters) {
  const auto saved = dnnd::util::log_level();
  dnnd::util::set_log_level(dnnd::util::LogLevel::kError);
  EXPECT_EQ(dnnd::util::log_level(), dnnd::util::LogLevel::kError);
  // Filtered-out and emitted lines must both be safe to produce.
  DNND_LOG_DEBUG() << "suppressed " << 42;
  dnnd::util::set_log_level(dnnd::util::LogLevel::kDebug);
  DNND_LOG_DEBUG() << "emitted " << 43;
  dnnd::util::log_line(dnnd::util::LogLevel::kInfo, 3, "rank-tagged line");
  dnnd::util::set_log_level(saved);
}

}  // namespace

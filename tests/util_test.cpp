// Unit tests for dnnd::util — RNG determinism and statistics, hashing and
// partitioning, streaming stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"
#include "util/clock.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using dnnd::util::RunningStats;
using dnnd::util::Xoshiro256;

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Xoshiro256 parent(7);
  const Xoshiro256 forked_early = parent.fork(3);
  (void)parent();
  (void)parent();
  Xoshiro256 parent2(7);
  const Xoshiro256 forked_late = parent2.fork(3);
  Xoshiro256 a = forked_early, b = forked_late;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForksWithDifferentIdsDiffer) {
  Xoshiro256 parent(7);
  Xoshiro256 a = parent.fork(0), b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBelowStaysInRange) {
  Xoshiro256 rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(Rng, UniformBelowOneAlwaysZero) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Xoshiro256 rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBound, 0.1 * kDraws / kBound);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalHasExpectedMoments) {
  Xoshiro256 rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  Xoshiro256 rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  dnnd::util::shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, BernoulliExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Hash, OwnerRankInRangeAndStable) {
  for (int ranks : {1, 2, 7, 16, 128}) {
    for (std::uint64_t id = 0; id < 1000; ++id) {
      const int r = dnnd::util::owner_rank(id, ranks);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, ranks);
      EXPECT_EQ(r, dnnd::util::owner_rank(id, ranks));
    }
  }
}

TEST(Hash, OwnerRankBalancesLoad) {
  constexpr int kRanks = 8;
  constexpr int kIds = 80000;
  std::vector<int> counts(kRanks, 0);
  for (std::uint64_t id = 0; id < kIds; ++id) {
    ++counts[dnnd::util::owner_rank(id, kRanks)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kIds / kRanks, 0.05 * kIds / kRanks);
  }
}

TEST(Hash, Mix64ChangesOnSingleBitFlips) {
  // Weak avalanche check: flipping one input bit flips a sizeable number
  // of output bits.
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = dnnd::util::mix64(0x123456789abcdefULL);
    const std::uint64_t b =
        dnnd::util::mix64(0x123456789abcdefULL ^ (1ULL << bit));
    EXPECT_GE(std::popcount(a ^ b), 10);
  }
}

TEST(Hash, Fnv1aDistinguishesStrings) {
  EXPECT_NE(dnnd::util::fnv1a("abc"), dnnd::util::fnv1a("abd"));
  EXPECT_NE(dnnd::util::fnv1a(""), dnnd::util::fnv1a("a"));
  EXPECT_EQ(dnnd::util::fnv1a("type1"), dnnd::util::fnv1a("type1"));
}

TEST(Stats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 7.5, 1e-12);  // sample variance of 1..9
}

TEST(Stats, MergeEqualsSingleAccumulator) {
  RunningStats whole, left, right;
  dnnd::util::Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3 + 1;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(Stats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(dnnd::util::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(dnnd::util::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(dnnd::util::percentile(xs, 50), 25.0);
}

TEST(Stats, EmptyPercentileIsNaN) {
  EXPECT_TRUE(std::isnan(dnnd::util::percentile({}, 50)));
}

TEST(Logging, LevelRoundTripsAndFilters) {
  const auto saved = dnnd::util::log_level();
  dnnd::util::set_log_level(dnnd::util::LogLevel::kError);
  EXPECT_EQ(dnnd::util::log_level(), dnnd::util::LogLevel::kError);
  // Filtered-out and emitted lines must both be safe to produce.
  DNND_LOG_DEBUG() << "suppressed " << 42;
  dnnd::util::set_log_level(dnnd::util::LogLevel::kDebug);
  DNND_LOG_DEBUG() << "emitted " << 43;
  dnnd::util::log_line(dnnd::util::LogLevel::kInfo, 3, "rank-tagged line");
  dnnd::util::set_log_level(saved);
}


TEST(Logging, JsonFormatEmitsOneParsableObjectPerLine) {
  using namespace dnnd::util;
  const auto saved_level = log_level();
  const auto saved_format = log_format();
  std::vector<std::string> lines;
  set_log_sink([&lines](std::string_view line) { lines.emplace_back(line); });
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kJson);

  log_line(LogLevel::kInfo, 3, "neighbors \"updated\"\n");
  log_line(LogLevel::kWarn, -1, "no rank");

  set_log_sink(nullptr);
  set_log_format(saved_format);
  set_log_level(saved_level);

  ASSERT_EQ(lines.size(), 2u);
  const auto first = dnnd::util::json::parse(lines[0]);
  EXPECT_EQ(first.at("level").as_string(), "INFO");
  EXPECT_EQ(first.at("rank").as_number(), 3.0);
  // Quotes and the newline survive the escaping round-trip.
  EXPECT_EQ(first.at("msg").as_string(), "neighbors \"updated\"\n");
  EXPECT_GE(first.at("ts_us").as_number(), 0.0);
  EXPECT_FALSE(first.contains("trace"));  // no active trace on this thread

  const auto second = dnnd::util::json::parse(lines[1]);
  EXPECT_EQ(second.at("level").as_string(), "WARN");
  EXPECT_FALSE(second.contains("rank"));  // rank < 0 is unattributed
}

TEST(Logging, JsonLinesCarryTheThreadActiveTraceId) {
  using namespace dnnd::util;
  const auto saved_level = log_level();
  const auto saved_format = log_format();
  std::vector<std::string> lines;
  set_log_sink([&lines](std::string_view line) { lines.emplace_back(line); });
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kJson);

  set_active_trace(0xabcdef);
  EXPECT_EQ(active_trace(), 0xabcdefu);
  log_line(LogLevel::kInfo, 0, "inside");
  set_active_trace(0);
  log_line(LogLevel::kInfo, 0, "outside");

  set_log_sink(nullptr);
  set_log_format(saved_format);
  set_log_level(saved_level);

  ASSERT_EQ(lines.size(), 2u);
  // Same hex spelling trace.json uses, so grep joins logs to traces.
  EXPECT_EQ(dnnd::util::json::parse(lines[0]).at("trace").as_string(),
            "0xabcdef");
  EXPECT_FALSE(dnnd::util::json::parse(lines[1]).contains("trace"));
}

TEST(Logging, TextFormatAlsoHonorsTheSink) {
  using namespace dnnd::util;
  const auto saved_level = log_level();
  std::vector<std::string> lines;
  set_log_sink([&lines](std::string_view line) { lines.emplace_back(line); });
  set_log_level(LogLevel::kInfo);
  log_line(LogLevel::kInfo, 2, "plain");
  set_log_sink(nullptr);
  set_log_level(saved_level);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[dnnd INFO r2] plain");
}

TEST(Clock, MonotonicMicrosecondsNeverGoBackwards) {
  const auto a = dnnd::util::monotonic_us();
  const auto b = dnnd::util::monotonic_us();
  EXPECT_GE(b, a);
}

// -- CRC-32 (checkpoint generation validation) --------------------------------

TEST(Crc32, MatchesTheIeeeCheckVector) {
  // The canonical CRC-32/ISO-HDLC check value: crc("123456789").
  EXPECT_EQ(dnnd::util::crc32(std::string_view("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) {
  EXPECT_EQ(dnnd::util::crc32(std::string_view("")), 0u);
}

TEST(Crc32, StreamingMatchesOneShotAcrossSplitPoints) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const auto expected = dnnd::util::crc32(std::string_view(data));
  for (std::size_t split = 0; split <= data.size(); ++split) {
    dnnd::util::Crc32 crc;
    crc.update(data.data(), split);
    crc.update(data.data() + split, data.size() - split);
    EXPECT_EQ(crc.value(), expected) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 7);
  }
  const auto clean = dnnd::util::crc32(std::string_view(data));
  for (const std::size_t at : {std::size_t{0}, data.size() / 2,
                               data.size() - 1}) {
    std::string torn = data;
    torn[at] = static_cast<char>(torn[at] ^ 0x10);
    EXPECT_NE(dnnd::util::crc32(std::string_view(torn)), clean)
        << "bit flip at " << at << " went undetected";
  }
}

// -- RNG state capture (checkpointed so resumed builds replay exactly) --------

TEST(Rng, StateRoundTripResumesTheExactStream) {
  Xoshiro256 original(42);
  for (int i = 0; i < 37; ++i) (void)original();  // advance mid-stream

  const auto state = original.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(original());

  Xoshiro256 resumed(999);  // different seed; state() overrides it fully
  resumed.set_state(state);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(resumed(), expected[i]);
}

}  // namespace

#!/usr/bin/env bash
# Metrics regression gate: replays the deterministic reference build and
# diffs its metrics.json against the committed baseline at 0% tolerance
# via `dnnd_cli stats --diff` (exit 3 on drift).
#
# The reference run pins every source of nondeterminism:
#   - synthetic fashion-mnist stand-in (seeded generator, fixed n)
#   - sequential phase driver (the Environment default)
#   - DNND_TRACE_SAMPLE_PERIOD=0, so no traced envelope bytes — trace
#     varints encode wall-clock timestamps and would make remote_bytes
#     vary run to run. With tracing off, an ON build's envelopes are
#     byte-identical to an OFF build's, so the SAME baseline gates both
#     matrix flavours: if a DNND_TELEMETRY=OFF binary ever produced
#     different handler byte counts, telemetry would be leaking wire
#     bytes and this gate would fail.
#
# Usage:
#   tests/check_metrics_regression.sh <build-dir>            # gate
#   tests/check_metrics_regression.sh <build-dir> --regen    # refresh
#
# --regen rewrites tests/baselines/metrics.json from the current binary;
# commit the result when an intentional algorithm change shifts counters.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:?usage: tests/check_metrics_regression.sh <build-dir> [--regen]}
regen=${2:-}
cli="$build_dir/examples/dnnd_cli"
baseline="tests/baselines/metrics.json"

if [[ ! -x "$cli" ]]; then
  echo "check_metrics_regression: $cli not built" >&2
  exit 1
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

export DNND_TRACE_SAMPLE_PERIOD=0
"$cli" gen fashion-mnist "$work/ds" 400 20 >/dev/null
"$cli" build "$work/ds.base.fvecs" "$work/run" 8 4 >/dev/null

if [[ "$regen" == "--regen" ]]; then
  mkdir -p "$(dirname "$baseline")"
  cp "$work/run.metrics.json" "$baseline"
  echo "check_metrics_regression: baseline rewritten at $baseline"
  exit 0
fi

if [[ ! -f "$baseline" ]]; then
  echo "check_metrics_regression: no baseline at $baseline (run with --regen)" >&2
  exit 1
fi

echo "== metrics regression gate ($build_dir) =="
"$cli" stats --diff "$baseline" "$work/run.metrics.json" --tolerance 0

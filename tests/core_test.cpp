// Unit tests for core building blocks: distance metrics (including metric
// properties as parameterized sweeps), the feature store, the bounded
// neighbor list, and the k-NN graph container.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/distance.hpp"
#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/neighbor_list.hpp"
#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace {

using namespace dnnd;  // NOLINT
using core::Dist;
using core::FeatureStore;
using core::KnnGraph;
using core::Neighbor;
using core::NeighborList;
using core::VertexId;

std::span<const float> sp(const std::vector<float>& v) { return v; }
std::span<const std::uint32_t> spu(const std::vector<std::uint32_t>& v) {
  return v;
}

// -- distances ----------------------------------------------------------------

TEST(Distance, L2KnownValues) {
  const std::vector<float> a = {0, 0, 0}, b = {1, 2, 2};
  EXPECT_FLOAT_EQ(core::squared_l2(sp(a), sp(b)), 9.0f);
  EXPECT_FLOAT_EQ(core::l2(sp(a), sp(b)), 3.0f);
  EXPECT_FLOAT_EQ(core::l2(sp(a), sp(a)), 0.0f);
}

TEST(Distance, CosineKnownValues) {
  const std::vector<float> x = {1, 0}, y = {0, 1}, z = {2, 0}, w = {-1, 0};
  EXPECT_NEAR(core::cosine(sp(x), sp(y)), 1.0f, 1e-6);   // orthogonal
  EXPECT_NEAR(core::cosine(sp(x), sp(z)), 0.0f, 1e-6);   // parallel
  EXPECT_NEAR(core::cosine(sp(x), sp(w)), 2.0f, 1e-6);   // opposite
}

TEST(Distance, CosineZeroNormIsMaximallyFar) {
  const std::vector<float> zero = {0, 0}, x = {1, 1};
  EXPECT_FLOAT_EQ(core::cosine(sp(zero), sp(x)), 1.0f);
}

TEST(Distance, JaccardKnownValues) {
  const std::vector<std::uint32_t> a = {1, 2, 3, 4}, b = {3, 4, 5, 6};
  EXPECT_NEAR(core::jaccard_sorted(spu(a), spu(b)), 1.0f - 2.0f / 6.0f, 1e-6);
  EXPECT_FLOAT_EQ(core::jaccard_sorted(spu(a), spu(a)), 0.0f);
  const std::vector<std::uint32_t> c = {7, 8};
  EXPECT_FLOAT_EQ(core::jaccard_sorted(spu(a), spu(c)), 1.0f);
  EXPECT_FLOAT_EQ(core::jaccard_sorted(spu({}), spu({})), 0.0f);
}

TEST(Distance, InnerProductOrdersBySimilarity) {
  const std::vector<float> q = {1, 1}, close = {5, 5}, far = {1, 0};
  EXPECT_LT(core::neg_inner_product(sp(q), sp(close)),
            core::neg_inner_product(sp(q), sp(far)));
}

TEST(Distance, MetricFnDispatchMatchesDirectCalls) {
  const std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_FLOAT_EQ((core::MetricFn<float>{core::Metric::kL2}(sp(a), sp(b))),
                  core::l2(sp(a), sp(b)));
  EXPECT_FLOAT_EQ(
      (core::MetricFn<float>{core::Metric::kSquaredL2}(sp(a), sp(b))),
      core::squared_l2(sp(a), sp(b)));
  EXPECT_FLOAT_EQ((core::MetricFn<float>{core::Metric::kCosine}(sp(a), sp(b))),
                  core::cosine(sp(a), sp(b)));
}

TEST(Distance, L1AndChebyshevKnownValues) {
  const std::vector<float> a = {0, 0, 0}, b = {1, -2, 3};
  EXPECT_FLOAT_EQ(core::l1(sp(a), sp(b)), 6.0f);
  EXPECT_FLOAT_EQ(core::chebyshev(sp(a), sp(b)), 3.0f);
  EXPECT_FLOAT_EQ(core::l1(sp(a), sp(a)), 0.0f);
  EXPECT_FLOAT_EQ(core::chebyshev(sp(b), sp(b)), 0.0f);
  // Norm ordering: L_inf <= L2 <= L1.
  EXPECT_LE(core::chebyshev(sp(a), sp(b)), core::l2(sp(a), sp(b)));
  EXPECT_LE(core::l2(sp(a), sp(b)), core::l1(sp(a), sp(b)));
}

TEST(Distance, HammingCountsDifferingPositions) {
  const std::vector<std::uint32_t> a = {1, 2, 3, 4}, b = {1, 9, 3, 7};
  EXPECT_FLOAT_EQ(core::hamming(spu(a), spu(b)), 2.0f);
  EXPECT_FLOAT_EQ(core::hamming(spu(a), spu(a)), 0.0f);
  const std::vector<std::uint8_t> x = {0, 1, 1}, y = {1, 1, 0};
  EXPECT_FLOAT_EQ(
      core::hamming(std::span<const std::uint8_t>(x),
                    std::span<const std::uint8_t>(y)),
      2.0f);
}

TEST(Distance, MetricNames) {
  EXPECT_EQ(core::metric_name(core::Metric::kL2), "L2");
  EXPECT_EQ(core::metric_name(core::Metric::kJaccard), "Jaccard");
}

/// Property sweep: symmetry, identity, non-negativity on random data for
/// each proper metric (inner product is excluded: it is not a metric and
/// NN-Descent does not require it to be one).
class MetricProperties : public ::testing::TestWithParam<core::Metric> {};

TEST_P(MetricProperties, SymmetryIdentityNonNegativity) {
  const auto metric = GetParam();
  util::Xoshiro256 rng(2024);
  const core::MetricFn<float> fn{metric};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> a(8), b(8);
    for (auto& v : a) v = rng.uniform_float(-5, 5);
    for (auto& v : b) v = rng.uniform_float(-5, 5);
    const Dist ab = fn(sp(a), sp(b));
    const Dist ba = fn(sp(b), sp(a));
    EXPECT_FLOAT_EQ(ab, ba) << "asymmetric at trial " << trial;
    EXPECT_GE(ab, 0.0f);
    EXPECT_NEAR(fn(sp(a), sp(a)), 0.0f, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(ProperMetrics, MetricProperties,
                         ::testing::Values(core::Metric::kL2,
                                           core::Metric::kSquaredL2,
                                           core::Metric::kCosine,
                                           core::Metric::kL1,
                                           core::Metric::kChebyshev),
                         [](const auto& info) {
                           return std::string(core::metric_name(info.param));
                         });

TEST(Distance, JaccardPropertiesOnRandomSets) {
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint32_t> a, b;
    for (std::uint32_t i = 0; i < 40; ++i) {
      if (rng.bernoulli(0.3)) a.push_back(i);
      if (rng.bernoulli(0.3)) b.push_back(i);
    }
    const Dist ab = core::jaccard_sorted(spu(a), spu(b));
    EXPECT_FLOAT_EQ(ab, core::jaccard_sorted(spu(b), spu(a)));
    EXPECT_GE(ab, 0.0f);
    EXPECT_LE(ab, 1.0f);
    EXPECT_FLOAT_EQ(core::jaccard_sorted(spu(a), spu(a)), 0.0f);
  }
}

// -- FeatureStore --------------------------------------------------------------

TEST(FeatureStore, DenseConstruction) {
  FeatureStore<float> store(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.dim(), 2u);
  EXPECT_EQ(store[1][0], 3.0f);
  EXPECT_EQ(store[2][1], 6.0f);
  EXPECT_TRUE(store.contains(0));
  EXPECT_FALSE(store.contains(3));
}

TEST(FeatureStore, DenseSizeMismatchThrows) {
  EXPECT_THROW(FeatureStore<float>(3, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(FeatureStore, SparseAddWithArbitraryIds) {
  FeatureStore<std::uint32_t> store;
  store.add(100, std::vector<std::uint32_t>{1, 2});
  store.add(7, std::vector<std::uint32_t>{9});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store[100].size(), 2u);
  EXPECT_EQ(store[7][0], 9u);
  EXPECT_EQ(store.id_at(0), 100u);
}

TEST(FeatureStore, DuplicateIdThrows) {
  FeatureStore<float> store;
  store.add(1, std::vector<float>{1.f});
  EXPECT_THROW(store.add(1, std::vector<float>{2.f}), std::invalid_argument);
}

TEST(FeatureStore, UnknownIdThrows) {
  FeatureStore<float> store;
  EXPECT_THROW((void)store[5], std::out_of_range);
}

// -- NeighborList ---------------------------------------------------------------

TEST(NeighborList, FillsThenReplacesFarthest) {
  NeighborList list(3);
  EXPECT_EQ(list.furthest_distance(), core::kInfiniteDistance);
  EXPECT_EQ(list.update(1, 5.0f, true), 1);
  EXPECT_EQ(list.update(2, 3.0f, true), 1);
  EXPECT_EQ(list.update(3, 4.0f, true), 1);
  EXPECT_TRUE(list.full());
  EXPECT_FLOAT_EQ(list.furthest_distance(), 5.0f);

  // Better candidate evicts the farthest.
  EXPECT_EQ(list.update(4, 1.0f, true), 1);
  EXPECT_FLOAT_EQ(list.furthest_distance(), 4.0f);
  EXPECT_FALSE(list.contains(1));

  // Worse candidate is rejected.
  EXPECT_EQ(list.update(5, 10.0f, true), 0);
  EXPECT_FALSE(list.contains(5));
}

TEST(NeighborList, RejectsDuplicates) {
  NeighborList list(3);
  EXPECT_EQ(list.update(1, 2.0f, true), 1);
  EXPECT_EQ(list.update(1, 1.0f, true), 0);  // already present
  EXPECT_EQ(list.size(), 1u);
}

TEST(NeighborList, SortedOutputAscending) {
  NeighborList list(4);
  list.update(1, 3.0f, true);
  list.update(2, 1.0f, true);
  list.update(3, 2.0f, false);
  const auto sorted = list.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 2u);
  EXPECT_EQ(sorted[1].id, 3u);
  EXPECT_EQ(sorted[2].id, 1u);
  EXPECT_FALSE(sorted[1].is_new);
}

TEST(NeighborList, HeapInvariantUnderChurn) {
  util::Xoshiro256 rng(5);
  NeighborList list(16);
  for (int i = 0; i < 2000; ++i) {
    list.update(static_cast<VertexId>(rng.uniform_below(500)),
                static_cast<Dist>(rng.uniform_double() * 100), true);
    // The root must always be the maximum.
    Dist max_d = 0;
    for (const auto& n : list.entries()) max_d = std::max(max_d, n.distance);
    if (list.full()) { EXPECT_FLOAT_EQ(list.furthest_distance(), max_d); }
  }
  // No duplicates survived.
  const auto sorted = list.sorted();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_NE(sorted[i - 1].id, sorted[i].id);
  }
}

// -- KnnGraph --------------------------------------------------------------------

TEST(KnnGraph, SetAndReadRows) {
  KnnGraph graph(3);
  graph.set_neighbors(0, {{1, 1.0f, false}, {2, 2.0f, false}});
  EXPECT_EQ(graph.num_vertices(), 3u);
  EXPECT_EQ(graph.num_edges(), 2u);
  EXPECT_EQ(graph.neighbors(0)[1].id, 2u);
  EXPECT_TRUE(graph.neighbors(1).empty());
}

TEST(KnnGraph, RejectsUnsortedRows) {
  KnnGraph graph(2);
  EXPECT_THROW(graph.set_neighbors(0, {{1, 2.0f, false}, {0, 1.0f, false}}),
               std::invalid_argument);
}

TEST(KnnGraph, MergeReverseEdgesAddsBackLinksAndDedups) {
  KnnGraph graph(3);
  graph.set_neighbors(0, {{1, 1.0f, false}});
  graph.set_neighbors(1, {{0, 1.0f, false}});  // mutual edge: dedup needed
  graph.set_neighbors(2, {{0, 5.0f, false}});
  graph.merge_reverse_edges(10);
  // 0 gains the reverse of 2→0.
  ASSERT_EQ(graph.neighbors(0).size(), 2u);
  EXPECT_EQ(graph.neighbors(0)[0].id, 1u);
  EXPECT_EQ(graph.neighbors(0)[1].id, 2u);
  // The mutual 0↔1 edge stays single per side.
  EXPECT_EQ(graph.neighbors(1).size(), 1u);
  // 2 keeps its edge (no one points at it... 0 now does via reverse of 2→0?
  // No: reverse edges of 2→0 belong to 0. 2 gets nothing new.)
  EXPECT_EQ(graph.neighbors(2).size(), 1u);
}

TEST(KnnGraph, MergeReverseEdgesPrunesToMaxDegree) {
  // Star: everyone points at 0, so 0's reverse degree explodes.
  constexpr std::size_t kN = 20;
  KnnGraph graph(kN);
  for (VertexId v = 1; v < kN; ++v) {
    graph.set_neighbors(v, {{0, static_cast<Dist>(v), false}});
  }
  graph.merge_reverse_edges(5);
  EXPECT_EQ(graph.neighbors(0).size(), 5u);
  // The survivors are the *closest* reverse edges (ids 1..5).
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(graph.neighbors(0)[i].id, static_cast<VertexId>(i + 1));
  }
  EXPECT_EQ(graph.max_degree(), 5u);
}

}  // namespace

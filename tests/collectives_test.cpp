// Tests for message-based collectives (allreduce-sum, allgather) under
// both drivers, including epoch handling across repeated operations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/environment.hpp"

namespace {

using dnnd::comm::Collectives;
using dnnd::comm::Config;
using dnnd::comm::DriverKind;
using dnnd::comm::Environment;

class CollectivesDrivers : public ::testing::TestWithParam<DriverKind> {
 protected:
  void make(int ranks) {
    env_ = std::make_unique<Environment>(
        Config{.num_ranks = ranks, .driver = GetParam()});
    for (int r = 0; r < ranks; ++r) {
      coll_.push_back(std::make_unique<Collectives>(env_->comm(r)));
    }
  }
  std::unique_ptr<Environment> env_;
  std::vector<std::unique_ptr<Collectives>> coll_;
};

TEST_P(CollectivesDrivers, SumIsGlobalAndIdenticalOnAllRanks) {
  make(4);
  env_->execute_phase([&](int r) {
    coll_[static_cast<std::size_t>(r)]->contribute_sum(
        static_cast<std::uint64_t>(10 * (r + 1)));
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(coll_[static_cast<std::size_t>(r)]->sum(), 100u);
  }
}

TEST_P(CollectivesDrivers, GatherIndexesByRank) {
  make(3);
  env_->execute_phase([&](int r) {
    coll_[static_cast<std::size_t>(r)]->contribute_gather(
        static_cast<std::uint64_t>(r * r + 1));
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(coll_[static_cast<std::size_t>(r)]->gathered(),
              (std::vector<std::uint64_t>{1, 2, 5}));
  }
}

TEST_P(CollectivesDrivers, RepeatedCollectivesUseFreshEpochs) {
  make(2);
  for (std::uint64_t round = 1; round <= 5; ++round) {
    env_->execute_phase([&](int r) {
      coll_[static_cast<std::size_t>(r)]->contribute_sum(round + r);
    });
    EXPECT_EQ(coll_[0]->sum(), 2 * round + 1);
  }
}

TEST_P(CollectivesDrivers, SumAndGatherInterleave) {
  make(2);
  env_->execute_phase([&](int r) {
    auto& c = *coll_[static_cast<std::size_t>(r)];
    c.contribute_sum(static_cast<std::uint64_t>(r + 1));
    c.contribute_gather(static_cast<std::uint64_t>(r + 7));
  });
  EXPECT_EQ(coll_[1]->sum(), 3u);
  EXPECT_EQ(coll_[0]->gathered(), (std::vector<std::uint64_t>{7, 8}));
}

INSTANTIATE_TEST_SUITE_P(Drivers, CollectivesDrivers,
                         ::testing::Values(DriverKind::kSequential,
                                           DriverKind::kThreaded),
                         [](const auto& info) {
                           return info.param == DriverKind::kSequential
                                      ? "Sequential"
                                      : "Threaded";
                         });

TEST(Collectives, IncompleteCollectiveThrows) {
  Environment env(Config{.num_ranks = 2});
  Collectives a(env.comm(0));
  Collectives b(env.comm(1));
  // No operation yet: reading is a logic error.
  EXPECT_THROW((void)a.sum(), std::logic_error);
  // Only one rank contributed (no barrier run): still incomplete.
  a.contribute_sum(1);
  EXPECT_THROW((void)a.sum(), std::logic_error);
}

TEST(Collectives, SingleRankDegenerateCase) {
  Environment env(Config{.num_ranks = 1});
  Collectives c(env.comm(0));
  env.execute_phase([&](int) { c.contribute_sum(42); });
  EXPECT_EQ(c.sum(), 42u);
  env.execute_phase([&](int) { c.contribute_gather(9); });
  EXPECT_EQ(c.gathered(), (std::vector<std::uint64_t>{9}));
}

TEST(Collectives, GarbageCollectKeepsCurrentEpoch) {
  Environment env(Config{.num_ranks = 2});
  Collectives a(env.comm(0));
  Collectives b(env.comm(1));
  for (int round = 0; round < 3; ++round) {
    env.execute_phase([&](int r) {
      (r == 0 ? a : b).contribute_sum(static_cast<std::uint64_t>(round));
    });
  }
  a.garbage_collect();
  EXPECT_EQ(a.sum(), 4u);  // last round: 2 + 2
}

}  // namespace

// Tests for vertex partitioning: hash and range schemes, the RP-tree
// locality reordering, and the end-to-end property that locality-aware
// placement preserves quality while cutting off-node traffic.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "core/partition.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT
using core::Partition;
using core::VertexId;

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

TEST(Partition, HashMatchesPaperScheme) {
  const auto p = Partition::hash(16);
  EXPECT_TRUE(p.is_hash());
  EXPECT_EQ(p.num_ranks(), 16);
  for (VertexId id = 0; id < 500; ++id) {
    EXPECT_EQ(p.owner(id), util::owner_rank(id, 16));
  }
}

TEST(Partition, RangeOwnership) {
  // rank 0: [0, 10), rank 1: [10, 25), rank 2: [25, ...)
  const auto p = Partition::range({10, 25, 40});
  EXPECT_FALSE(p.is_hash());
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(9), 0);
  EXPECT_EQ(p.owner(10), 1);
  EXPECT_EQ(p.owner(24), 1);
  EXPECT_EQ(p.owner(25), 2);
  EXPECT_EQ(p.owner(39), 2);
  // Beyond the last bound: clamps to the last rank.
  EXPECT_EQ(p.owner(1000), 2);
}

TEST(Partition, EvenRangesBalance) {
  const auto p = Partition::even_ranges(1000, 7);
  std::vector<int> counts(7, 0);
  for (VertexId id = 0; id < 1000; ++id) ++counts[p.owner(id)];
  for (const int c : counts) {
    EXPECT_GE(c, 1000 / 7);
    EXPECT_LE(c, 1000 / 7 + 1);
  }
}

TEST(Partition, InvalidArgumentsRejected) {
  EXPECT_THROW(Partition::hash(0), std::invalid_argument);
  EXPECT_THROW(Partition::range({}), std::invalid_argument);
  EXPECT_THROW(Partition::range({5, 3}), std::invalid_argument);
}

TEST(Partition, RpTreeOrderIsAPermutation) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.seed = 3;
  const auto points = data::GaussianMixture(spec).sample(300, 1);
  const auto order = core::rp_tree_order(points);
  ASSERT_EQ(order.size(), 300u);
  std::set<VertexId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 300u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 299u);
}

TEST(Partition, RpOrderGroupsSpatialNeighbors) {
  // Adjacent positions in the leaf order should be far closer on average
  // than random pairs.
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.center_range = 10.0f;
  spec.seed = 5;
  const auto points = data::GaussianMixture(spec).sample(400, 1);
  const auto order = core::rp_tree_order(points);
  util::Xoshiro256 rng(17);
  double adjacent = 0, random = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    adjacent += core::l2(points[order[i]], points[order[i + 1]]);
    random += core::l2(points[static_cast<VertexId>(rng.uniform_below(400))],
                       points[static_cast<VertexId>(rng.uniform_below(400))]);
  }
  EXPECT_LT(adjacent, 0.6 * random);
}

TEST(Partition, ReorderDenseRoundTrips) {
  data::MixtureSpec spec;
  spec.dim = 4;
  spec.seed = 9;
  const auto points = data::GaussianMixture(spec).sample(50, 1);
  std::vector<VertexId> order(50);
  std::iota(order.rbegin(), order.rend(), 0);  // reverse order
  const auto [reordered, original] = core::reorder_dense(points, order);
  ASSERT_EQ(reordered.size(), 50u);
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_EQ(original[v], 49u - v);
    const auto a = reordered[v];
    const auto b = points[49 - v];
    for (std::size_t d = 0; d < 4; ++d) EXPECT_EQ(a[d], b[d]);
  }
}

TEST(Partition, RunnerRejectsMismatchedRankCount) {
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  EXPECT_THROW(
      (core::DnndRunner<float, L2Fn>(env, cfg, L2Fn{}, {},
                                     Partition::hash(8))),
      std::invalid_argument);
}

TEST(Partition, LocalityPartitionKeepsQualityAndCutsTraffic) {
  data::MixtureSpec spec;
  spec.dim = 16;
  spec.num_clusters = 16;
  spec.center_range = 6.0f;
  spec.cluster_std = 1.0f;
  spec.seed = 23;
  const auto points = data::GaussianMixture(spec).sample(600, 1);
  core::DnndConfig cfg;
  cfg.k = 8;

  auto run = [&](const core::FeatureStore<float>& base,
                 std::optional<Partition> partition) {
    comm::Environment env(comm::Config{.num_ranks = 8});
    core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{}, {},
                                         std::move(partition));
    runner.distribute(base);
    runner.build();
    const auto exact = baselines::brute_force_knn_graph(base, L2Fn{}, 8);
    const double recall = core::graph_recall(runner.gather(), exact, 8);
    return std::pair{recall, env.aggregate_stats().total_remote_bytes()};
  };

  const auto [hash_recall, hash_bytes] = run(points, std::nullopt);

  const auto order = core::rp_tree_order(points);
  const auto [reordered, original] = core::reorder_dense(points, order);
  const auto [loc_recall, loc_bytes] =
      run(reordered, Partition::even_ranges(reordered.size(), 8));

  EXPECT_GT(hash_recall, 0.9);
  EXPECT_GT(loc_recall, 0.9);
  EXPECT_LT(static_cast<double>(loc_bytes),
            0.9 * static_cast<double>(hash_bytes))
      << "locality placement should keep more neighbor checks on-node";
}

}  // namespace

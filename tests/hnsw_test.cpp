// Tests for the from-scratch HNSW baseline: structural invariants, recall
// against brute force, and the ef / ef_construction quality knobs the
// paper's Table 2 sweeps.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "baselines/hnsw.hpp"
#include "core/distance.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT
using baselines::HnswIndex;
using baselines::HnswParams;

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

core::FeatureStore<float> clustered(std::size_t n, std::uint64_t seed = 41) {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.center_range = 5.0f;
  spec.cluster_std = 1.5f;
  spec.seed = seed;
  return data::GaussianMixture(spec).sample(n, 1);
}

TEST(Hnsw, RejectsDegenerateM) {
  const auto points = clustered(10);
  EXPECT_THROW(
      (HnswIndex<float, L2Fn>(points, L2Fn{}, HnswParams{.M = 1})),
      std::invalid_argument);
}

TEST(Hnsw, StructuralInvariantsHold) {
  const auto points = clustered(400);
  HnswIndex<float, L2Fn> index(points, L2Fn{}, HnswParams{.M = 8});
  index.build();
  ASSERT_EQ(index.size(), 400u);
  EXPECT_GE(index.max_level(), 0);
  for (core::VertexId v = 0; v < 400; ++v) {
    const auto layer0 = index.neighbors(v, 0);
    EXPECT_LE(layer0.size(), 16u);  // Mmax0 = 2M
    for (std::size_t i = 0; i < layer0.size(); ++i) {
      EXPECT_NE(layer0[i], v) << "self-link";
      EXPECT_LT(layer0[i], 400u);
      for (std::size_t j = i + 1; j < layer0.size(); ++j) {
        EXPECT_NE(layer0[i], layer0[j]) << "duplicate link";
      }
    }
  }
}

TEST(Hnsw, ExactOnTinyDataset) {
  const auto points = clustered(30);
  HnswIndex<float, L2Fn> index(points, L2Fn{}, HnswParams{});
  index.build();
  // ef = n degenerates to exhaustive search: results must be exact.
  for (core::VertexId q = 0; q < 30; ++q) {
    const auto got = index.search(points[q], 5, 30);
    const auto want = baselines::brute_force_query(points, points[q], L2Fn{}, 5);
    ASSERT_EQ(got.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(got[i].id, want[i]);
  }
}

TEST(Hnsw, HighRecallAtGenerousEf) {
  const auto points = clustered(800);
  const auto queries = clustered(50, 42);
  const auto truth =
      baselines::brute_force_query_batch(points, queries, L2Fn{}, 10);
  HnswIndex<float, L2Fn> index(points, L2Fn{},
                               HnswParams{.M = 12, .ef_construction = 120});
  index.build();
  std::vector<std::vector<core::Neighbor>> computed;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    computed.push_back(index.search(queries.row(qi), 10, 200));
  }
  EXPECT_GT(core::mean_query_recall(computed, truth, 10), 0.95);
}

TEST(Hnsw, EfTradesWorkForRecall) {
  const auto points = clustered(800);
  const auto queries = clustered(40, 43);
  const auto truth =
      baselines::brute_force_query_batch(points, queries, L2Fn{}, 10);
  HnswIndex<float, L2Fn> index(points, L2Fn{}, HnswParams{.M = 8});
  index.build();

  double prev_recall = -1.0;
  std::uint64_t prev_evals = 0;
  for (const std::size_t ef : {10UL, 40UL, 160UL}) {
    std::vector<std::vector<core::Neighbor>> computed;
    std::uint64_t evals = 0;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      computed.push_back(index.search(queries.row(qi), 10, ef, &evals));
    }
    const double recall = core::mean_query_recall(computed, truth, 10);
    EXPECT_GE(recall + 0.02, prev_recall) << "ef=" << ef;
    EXPECT_GT(evals, prev_evals) << "ef=" << ef;
    prev_recall = recall;
    prev_evals = evals;
  }
  EXPECT_GT(prev_recall, 0.9);
}

TEST(Hnsw, LargerEfcBuildsBetterGraphsForMoreWork) {
  // The Table-2 phenomenon: Hnsw A (efc=50) is cheap but weaker, Hnsw B
  // (efc=200) costs more and answers better at the same query ef.
  const auto points = clustered(700);
  const auto queries = clustered(40, 44);
  const auto truth =
      baselines::brute_force_query_batch(points, queries, L2Fn{}, 10);

  auto run = [&](std::size_t efc) {
    HnswIndex<float, L2Fn> index(points, L2Fn{},
                                 HnswParams{.M = 6, .ef_construction = efc});
    index.build();
    std::vector<std::vector<core::Neighbor>> computed;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      computed.push_back(index.search(queries.row(qi), 10, 20));
    }
    return std::pair{core::mean_query_recall(computed, truth, 10),
                     index.stats().build_distance_evals};
  };
  const auto [recall_small, work_small] = run(8);
  const auto [recall_large, work_large] = run(200);
  EXPECT_GT(work_large, work_small * 2);
  EXPECT_GT(recall_large + 0.02, recall_small);
}

TEST(Hnsw, SearchResultsSortedAndDistinct) {
  const auto points = clustered(300);
  HnswIndex<float, L2Fn> index(points, L2Fn{}, HnswParams{});
  index.build();
  const auto queries = clustered(10, 45);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto result = index.search(queries.row(qi), 8, 50);
    ASSERT_EQ(result.size(), 8u);
    for (std::size_t i = 1; i < result.size(); ++i) {
      EXPECT_GE(result[i].distance, result[i - 1].distance);
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_NE(result[i].id, result[j].id);
      }
    }
  }
}

TEST(Hnsw, EmptyAndSingletonIndexes) {
  core::FeatureStore<float> empty;
  HnswIndex<float, L2Fn> none(empty, L2Fn{}, HnswParams{});
  none.build();
  EXPECT_TRUE(none.search(std::vector<float>{1.f}, 3, 10).empty());

  core::FeatureStore<float> one(1, 2, {0.5f, 0.5f});
  HnswIndex<float, L2Fn> single(one, L2Fn{}, HnswParams{});
  single.build();
  const auto result = single.search(std::vector<float>{0.f, 0.f}, 3, 10);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
}

TEST(Hnsw, DeterministicForFixedSeed) {
  const auto points = clustered(200);
  auto build_and_query = [&]() {
    HnswIndex<float, L2Fn> index(points, L2Fn{}, HnswParams{.seed = 9});
    index.build();
    return index.search(points[3], 5, 40);
  };
  const auto a = build_and_query();
  const auto b = build_and_query();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(Hnsw, WorksWithUint8Features) {
  data::MixtureSpec spec;
  spec.dim = 16;
  spec.seed = 46;
  const auto points = data::GaussianMixture(spec).sample_u8(300, 1);
  struct L2U8 {
    float operator()(std::span<const std::uint8_t> a,
                     std::span<const std::uint8_t> b) const {
      return core::l2(a, b);
    }
  };
  HnswIndex<std::uint8_t, L2U8> index(points, L2U8{}, HnswParams{});
  index.build();
  const auto result = index.search(points[5], 5, 60);
  ASSERT_EQ(result.size(), 5u);
  EXPECT_EQ(result[0].id, 5u);
}

}  // namespace

// Tests for dynamic graph updates (paper §7 future work: points are added
// or deleted, followed by a short NN-Descent refinement phase) and for the
// RP-forest query entry selection.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/recall.hpp"
#include "core/rp_tree.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace dnnd;  // NOLINT

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

data::GaussianMixture family() {
  data::MixtureSpec spec;
  spec.dim = 8;
  spec.num_clusters = 10;
  spec.center_range = 5.0f;
  spec.cluster_std = 1.5f;
  spec.seed = 61;
  return data::GaussianMixture(spec);
}

core::DnndConfig config() {
  core::DnndConfig cfg;
  cfg.k = 8;
  return cfg;
}

// -- FeatureStore::remove_batch ------------------------------------------------

TEST(FeatureStoreRemove, CompactsAndPreservesSurvivors) {
  core::FeatureStore<float> store(5, 2, {0, 0, 1, 1, 2, 2, 3, 3, 4, 4});
  const std::vector<core::VertexId> removed = {1, 3};
  store.remove_batch(removed);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_FALSE(store.contains(1));
  EXPECT_FALSE(store.contains(3));
  EXPECT_EQ(store[0][0], 0.0f);
  EXPECT_EQ(store[2][1], 2.0f);
  EXPECT_EQ(store[4][0], 4.0f);
}

TEST(FeatureStoreRemove, IgnoresUnknownIdsAndEmptyBatches) {
  core::FeatureStore<float> store(2, 1, {7, 8});
  store.remove_batch(std::vector<core::VertexId>{});
  EXPECT_EQ(store.size(), 2u);
  store.remove_batch(std::vector<core::VertexId>{99});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store[1][0], 8.0f);
}

// -- dynamic inserts --------------------------------------------------------------

TEST(DnndUpdate, InsertedPointsReachBuildQualityAfterRefine) {
  const auto fam = family();
  const auto initial = fam.sample(400, 1);
  // The eventual full dataset: initial points plus 100 more from the same
  // distribution, with ids continuing after the initial range.
  const auto extra_raw = fam.sample(100, 3);
  core::FeatureStore<float> extra;
  for (std::size_t i = 0; i < extra_raw.size(); ++i) {
    extra.add(static_cast<core::VertexId>(400 + i), extra_raw.row(i));
  }
  core::FeatureStore<float> full;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    full.add(initial.id_at(i), initial.row(i));
  }
  for (std::size_t i = 0; i < extra.size(); ++i) {
    full.add(extra.id_at(i), extra.row(i));
  }

  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndRunner<float, L2Fn> runner(env, config(), L2Fn{});
  runner.distribute(initial);
  runner.build();

  runner.add_points(extra);
  const auto stats = runner.refine();
  EXPECT_GE(stats.iterations, 1u);

  const auto graph = runner.gather();
  ASSERT_EQ(graph.num_vertices(), 500u);
  const auto exact = baselines::brute_force_knn_graph(full, L2Fn{}, 8);
  EXPECT_GT(core::graph_recall(graph, exact, 8), 0.85);
  // New vertices specifically must have good rows, not just the average.
  double new_recall = 0;
  for (core::VertexId v = 400; v < 500; ++v) {
    const auto got = graph.neighbors(v);
    const auto want = exact.neighbors(v);
    std::size_t hits = 0;
    for (const auto& g : got) {
      for (const auto& w : want) {
        if (g.id == w.id) {
          ++hits;
          break;
        }
      }
    }
    new_recall += static_cast<double>(hits) / 8.0;
  }
  EXPECT_GT(new_recall / 100.0, 0.8) << "inserted vertices under-connected";
}

TEST(DnndUpdate, RefineIsCheaperThanRebuild) {
  const auto fam = family();
  const auto initial = fam.sample(600, 1);
  const auto extra_raw = fam.sample(30, 3);
  core::FeatureStore<float> extra;
  for (std::size_t i = 0; i < extra_raw.size(); ++i) {
    extra.add(static_cast<core::VertexId>(600 + i), extra_raw.row(i));
  }

  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndRunner<float, L2Fn> runner(env, config(), L2Fn{});
  runner.distribute(initial);
  const auto build_stats = runner.build();

  runner.add_points(extra);
  const auto refine_stats = runner.refine();
  // A 5% insert should cost a small fraction of the original build: the
  // convergence counter only pays for new-flagged entries.
  EXPECT_LT(refine_stats.total_updates, build_stats.total_updates / 2);
}

// -- dynamic deletes --------------------------------------------------------------

TEST(DnndUpdate, DeletedVerticesDisappearEverywhere) {
  const auto initial = family().sample(300, 1);
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndRunner<float, L2Fn> runner(env, config(), L2Fn{});
  runner.distribute(initial);
  runner.build();

  const std::vector<core::VertexId> removed = {5, 17, 100, 299};
  runner.remove_points(removed);
  runner.refine();
  const auto graph = runner.gather();

  for (const auto victim : removed) {
    EXPECT_TRUE(graph.neighbors(victim).empty());
  }
  for (core::VertexId v = 0; v < 300; ++v) {
    for (const auto& n : graph.neighbors(v)) {
      for (const auto victim : removed) {
        EXPECT_NE(n.id, victim) << "dangling edge " << v << "->" << victim;
      }
    }
  }
}

TEST(DnndUpdate, QualityHoldsAfterDeleteAndRefine) {
  const auto initial = family().sample(400, 1);
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndRunner<float, L2Fn> runner(env, config(), L2Fn{});
  runner.distribute(initial);
  runner.build();

  // Remove every 8th point.
  std::vector<core::VertexId> removed;
  for (core::VertexId v = 0; v < 400; v += 8) removed.push_back(v);
  runner.remove_points(removed);
  runner.refine();

  // Ground truth over survivors only (ids stay global).
  core::FeatureStore<float> survivors;
  for (core::VertexId v = 0; v < 400; ++v) {
    if (v % 8 != 0) survivors.add(v, initial[v]);
  }
  const auto graph = runner.gather();
  // Per-vertex recall over survivors.
  double sum = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const auto v = survivors.id_at(i);
    const auto want =
        baselines::brute_force_query(survivors, survivors[v], L2Fn{}, 9);
    // want[0] == v itself.
    const auto got = graph.neighbors(v);
    std::size_t hits = 0;
    for (const auto& g : got) {
      for (std::size_t j = 1; j < want.size(); ++j) {
        if (g.id == want[j]) {
          ++hits;
          break;
        }
      }
    }
    sum += static_cast<double>(hits) / 8.0;
    ++counted;
  }
  EXPECT_GT(sum / static_cast<double>(counted), 0.8);
}

TEST(DnndUpdate, InsertThenDeleteRoundTrip) {
  const auto fam = family();
  const auto initial = fam.sample(300, 1);
  const auto extra_raw = fam.sample(50, 3);
  core::FeatureStore<float> extra;
  std::vector<core::VertexId> extra_ids;
  for (std::size_t i = 0; i < extra_raw.size(); ++i) {
    const auto id = static_cast<core::VertexId>(300 + i);
    extra.add(id, extra_raw.row(i));
    extra_ids.push_back(id);
  }
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndRunner<float, L2Fn> runner(env, config(), L2Fn{});
  runner.distribute(initial);
  runner.build();
  runner.add_points(extra);
  runner.refine();
  runner.remove_points(extra_ids);
  runner.refine();

  const auto graph = runner.gather();
  const auto exact = baselines::brute_force_knn_graph(initial, L2Fn{}, 8);
  // Compare only original vertices (removed ids have empty rows).
  double sum = 0;
  for (core::VertexId v = 0; v < 300; ++v) {
    const auto got = graph.neighbors(v);
    const auto want = exact.neighbors(v);
    std::size_t hits = 0;
    for (const auto& g : got) {
      EXPECT_LT(g.id, 300u) << "edge to deleted vertex survived";
      for (const auto& w : want) {
        if (g.id == w.id) {
          ++hits;
          break;
        }
      }
    }
    sum += static_cast<double>(hits) / 8.0;
  }
  EXPECT_GT(sum / 300.0, 0.8);
}

// -- RP-forest entry selection ------------------------------------------------------

TEST(RpForest, CandidatesComeFromTheQueryNeighborhood) {
  const auto points = family().sample(500, 1);
  core::RpTreeParams params;
  params.leaf_size = 25;
  params.num_trees = 2;
  const core::RpForest<float> forest(points, params);

  // Candidates for a base point should usually contain points much closer
  // than random draws would be.
  util::Xoshiro256 rng(9);
  double candidate_best = 0, random_best = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = static_cast<core::VertexId>(rng.uniform_below(500));
    const auto candidates = forest.entry_candidates(points[q]);
    ASSERT_FALSE(candidates.empty());
    float best_c = 1e9f, best_r = 1e9f;
    for (const auto v : candidates) {
      if (v != q) best_c = std::min(best_c, core::l2(points[q], points[v]));
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto v = static_cast<core::VertexId>(rng.uniform_below(500));
      if (v != q) best_r = std::min(best_r, core::l2(points[q], points[v]));
    }
    candidate_best += best_c;
    random_best += best_r;
  }
  EXPECT_LT(candidate_best, random_best);
}

TEST(RpForest, LeavesRespectSizeBound) {
  const auto points = family().sample(400, 1);
  core::RpTreeParams params;
  params.leaf_size = 20;
  params.num_trees = 3;
  const core::RpForest<float> forest(points, params);
  for (int trial = 0; trial < 10; ++trial) {
    const auto candidates =
        forest.entry_candidates(points[static_cast<core::VertexId>(trial)]);
    // Union over 3 trees, each leaf <= 20 (degenerate splits can pad a
    // little via the balanced-cut fallback).
    EXPECT_LE(candidates.size(), 3u * 20u + 10u);
    EXPECT_FALSE(candidates.empty());
  }
}

TEST(RpForest, ImprovesSearchOnSeparatedClusters) {
  // Widely separated clusters: random entries frequently miss the query's
  // cluster; RP-tree routing should not.
  data::MixtureSpec spec;
  spec.dim = 16;
  spec.num_clusters = 20;
  spec.center_range = 20.0f;
  spec.cluster_std = 0.5f;
  spec.seed = 62;
  const data::GaussianMixture fam(spec);
  const auto base = fam.sample(800, 1);
  const auto queries = fam.sample(40, 2);
  const auto truth =
      baselines::brute_force_query_batch(base, queries, L2Fn{}, 10);

  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig cfg;
  cfg.k = 10;
  core::DnndRunner<float, L2Fn> runner(env, cfg, L2Fn{});
  runner.distribute(base);
  runner.build();
  runner.optimize();
  const auto graph = runner.gather();

  core::GraphSearcher searcher(graph, base, L2Fn{});
  core::SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.2;

  auto run_queries = [&]() {
    std::vector<std::vector<core::Neighbor>> computed;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      computed.push_back(searcher.search(queries.row(qi), params).neighbors);
    }
    return core::mean_query_recall(computed, truth, 10);
  };

  const double without = run_queries();
  const core::RpForest<float> forest(base, core::RpTreeParams{});
  searcher.set_entry_forest(&forest);
  const double with = run_queries();
  EXPECT_GT(with, without + 0.1)
      << "RP-forest should rescue disconnected-cluster queries";
  EXPECT_GT(with, 0.9);
}

TEST(RpForest, HandlesTinyAndEmptyStores) {
  core::FeatureStore<float> empty;
  const core::RpForest<float> forest0(empty, core::RpTreeParams{});
  EXPECT_FALSE(forest0.empty());  // trees exist, leaves are empty
  EXPECT_TRUE(forest0.entry_candidates(std::vector<float>{1.f}).empty());

  core::FeatureStore<float> one(1, 2, {1.f, 2.f});
  const core::RpForest<float> forest1(one, core::RpTreeParams{});
  const auto c = forest1.entry_candidates(std::vector<float>{0.f, 0.f});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 0u);
}

}  // namespace

// Unit tests for the fault-injection transport layer and the retry/dedup
// protocol: exactly-once delivery to handlers under drops, duplicates,
// delays, reordering, and rank stalls; zero overhead when disabled;
// deterministic schedules by seed; and graceful TransportError surfacing
// when the retry budget is exhausted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "data/synthetic.hpp"
#include "mpi/fault_injector.hpp"
#include "mpi/world.hpp"

namespace {

using namespace dnnd;  // NOLINT
using comm::Config;
using comm::DriverKind;
using comm::Environment;
using comm::HandlerId;
using comm::TransportError;
using mpi::EdgeOverride;
using mpi::EdgePolicy;
using mpi::FaultPlan;

// ---------------------------------------------------------------------------
// FaultPlan basics
// ---------------------------------------------------------------------------

TEST(FaultPlan, EmptyDetection) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());

  plan.defaults.drop = 0.1;
  EXPECT_FALSE(plan.empty());

  plan = FaultPlan{};
  plan.stall = 0.01;
  EXPECT_FALSE(plan.empty());

  plan = FaultPlan{};
  plan.force_protocol = true;
  EXPECT_FALSE(plan.empty());

  plan = FaultPlan{};
  plan.overrides.push_back(EdgeOverride{0, 1, EdgePolicy{.duplicate = 0.5}});
  EXPECT_FALSE(plan.empty());

  plan.overrides.front().policy = EdgePolicy{};  // inert override
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, EmptyPlanKeepsFastPath) {
  Environment env(Config{.num_ranks = 2});
  EXPECT_FALSE(env.world().faulty());
  EXPECT_FALSE(env.comm(0).reliable());

  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[r] = env.comm(r).register_handler(
        "m", [](int, serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  env.execute_phase([&](int rank) {
    env.comm(rank).async(1 - rank, h[0], std::uint32_t{1});
  });
  const auto counters = env.aggregate_transport_counters();
  EXPECT_EQ(counters.acks_sent, 0u);
  EXPECT_EQ(counters.retransmits, 0u);
  EXPECT_EQ(counters.duplicates_suppressed, 0u);
  EXPECT_EQ(env.fault_stats().posted, 0u);
}

TEST(World, InjectorInstallAfterTrafficThrows) {
  mpi::World world(2);
  world.note_messages_submitted(1);
  world.post(1, mpi::Datagram{.source = 0, .message_count = 1});
  EXPECT_THROW(
      world.install_fault_injector(
          std::make_unique<mpi::FaultInjector>(FaultPlan{}, 2)),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// Exactly-once delivery under every fault class, both drivers.
// ---------------------------------------------------------------------------

struct ExactlyOnceResult {
  std::uint64_t sum = 0;
  std::uint64_t handled = 0;
  mpi::FaultStats faults;
  comm::TransportCounters transport;
  std::uint64_t datagrams = 0;
};

/// All-to-all workload with payload checksums: every rank sends kPerPair
/// distinct values to every other rank; handlers accumulate. Exactly-once
/// delivery <=> the global sum and count both match exactly (drops would
/// deflate them, duplicate dispatches inflate them).
ExactlyOnceResult run_exactly_once(FaultPlan plan, DriverKind driver,
                                   int ranks = 4, int per_pair = 64,
                                   comm::RetryConfig retry = {}) {
  Config cfg{.num_ranks = ranks, .driver = driver};
  cfg.send_buffer_bytes = 96;  // several datagrams per pair
  cfg.fault_plan = std::move(plan);
  cfg.retry = retry;
  Environment env(cfg);

  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> handled{0};
  std::vector<HandlerId> h(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "acc", [&](int, serial::InArchive& ar) {
          sum.fetch_add(ar.read<std::uint32_t>(), std::memory_order_relaxed);
          handled.fetch_add(1, std::memory_order_relaxed);
        });
  }
  env.execute_phase([&](int rank) {
    for (int dest = 0; dest < ranks; ++dest) {
      if (dest == rank) continue;
      for (int i = 1; i <= per_pair; ++i) {
        env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)],
                             static_cast<std::uint32_t>(i));
      }
    }
  });
  EXPECT_TRUE(env.world().quiescent());
  EXPECT_EQ(env.world().submitted(), env.world().processed());
  return ExactlyOnceResult{sum.load(), handled.load(), env.fault_stats(),
                           env.aggregate_transport_counters(),
                           env.world().datagrams_posted()};
}

std::uint64_t expected_sum(int ranks, int per_pair) {
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(ranks) * static_cast<std::uint64_t>(ranks - 1);
  return pairs * static_cast<std::uint64_t>(per_pair) *
         static_cast<std::uint64_t>(per_pair + 1) / 2;
}

class FaultMatrix : public ::testing::TestWithParam<DriverKind> {};

TEST_P(FaultMatrix, ProtocolOnlyNoFaultsIsExact) {
  FaultPlan plan;
  plan.force_protocol = true;
  const auto r = run_exactly_once(plan, GetParam());
  EXPECT_EQ(r.sum, expected_sum(4, 64));
  EXPECT_EQ(r.handled, 4u * 3u * 64u);
  EXPECT_GT(r.transport.acks_sent, 0u);
  EXPECT_EQ(r.faults.dropped, 0u);
  if (GetParam() == DriverKind::kSequential) {
    // Under the threaded driver a retransmit may legitimately race the ack
    // (the copy is then suppressed); sequentially acks always win.
    EXPECT_EQ(r.transport.retransmits, 0u);
    EXPECT_EQ(r.transport.duplicates_suppressed, 0u);
  }
}

TEST_P(FaultMatrix, DropsAreRetransmitted) {
  FaultPlan plan;
  plan.seed = 0xd20f;
  plan.defaults.drop = 0.2;
  const auto r = run_exactly_once(plan, GetParam());
  EXPECT_EQ(r.sum, expected_sum(4, 64));
  EXPECT_GT(r.faults.dropped, 0u);
  EXPECT_GT(r.transport.retransmits, 0u);
}

TEST_P(FaultMatrix, DuplicatesAreSuppressed) {
  FaultPlan plan;
  plan.seed = 0xd0b1e;
  plan.defaults.duplicate = 0.5;
  const auto r = run_exactly_once(plan, GetParam());
  EXPECT_EQ(r.sum, expected_sum(4, 64));
  EXPECT_GT(r.faults.duplicated, 0u);
  EXPECT_GT(r.transport.duplicates_suppressed, 0u);
  // Every injector-duplicated *data* datagram yields one extra copy that is
  // either suppressed on arrival or still parked in a delay queue when the
  // run ends (delayed - released). Ack duplicates are never counted: acks
  // are unsequenced and idempotent.
  EXPECT_GE(r.transport.duplicates_suppressed +
                (r.faults.delayed - r.faults.released),
            r.faults.duplicated_data);
}

TEST_P(FaultMatrix, DelayAndReorderStayExact) {
  FaultPlan plan;
  plan.seed = 0xde1a7;
  plan.defaults.delay = 0.4;
  plan.defaults.max_delay_ticks = 12;
  plan.defaults.reorder = 0.4;
  const auto r = run_exactly_once(plan, GetParam());
  EXPECT_EQ(r.sum, expected_sum(4, 64));
  EXPECT_GT(r.faults.delayed, 0u);
  EXPECT_GT(r.faults.reordered, 0u);
  EXPECT_GT(r.faults.released, 0u);
  // A delayed retransmit/duplicate copy may stay parked once quiescence is
  // reached (its original was already processed), so released <= delayed.
  EXPECT_LE(r.faults.released, r.faults.delayed);
}

TEST_P(FaultMatrix, RankStallsDoNotBreakTermination) {
  FaultPlan plan;
  plan.seed = 0x57a11;
  plan.stall = 0.05;
  plan.max_stall_ticks = 8;
  plan.defaults.drop = 0.1;
  const auto r = run_exactly_once(plan, GetParam());
  EXPECT_EQ(r.sum, expected_sum(4, 64));
  EXPECT_GT(r.faults.stalls_entered, 0u);
}

TEST_P(FaultMatrix, EverythingAtOnceStaysExact) {
  FaultPlan plan;
  plan.seed = 0xa11;
  plan.defaults = EdgePolicy{.drop = 0.1,
                             .duplicate = 0.15,
                             .delay = 0.25,
                             .reorder = 0.25,
                             .max_delay_ticks = 10};
  plan.stall = 0.02;
  plan.max_stall_ticks = 12;
  const auto r = run_exactly_once(plan, GetParam());
  EXPECT_EQ(r.sum, expected_sum(4, 64));
  EXPECT_EQ(r.handled, 4u * 3u * 64u);
}

INSTANTIATE_TEST_SUITE_P(Drivers, FaultMatrix,
                         ::testing::Values(DriverKind::kSequential,
                                           DriverKind::kThreaded),
                         [](const auto& info) {
                           return info.param == DriverKind::kSequential
                                      ? "Sequential"
                                      : "Threaded";
                         });

// ---------------------------------------------------------------------------
// Determinism: a fault schedule is a pure function of the plan seed under
// the sequential driver.
// ---------------------------------------------------------------------------

TEST(FaultInjection, SequentialScheduleIsDeterministicBySeed) {
  FaultPlan plan;
  plan.seed = 0x5eed;
  plan.defaults = EdgePolicy{.drop = 0.15,
                             .duplicate = 0.1,
                             .delay = 0.3,
                             .reorder = 0.2,
                             .max_delay_ticks = 6};
  plan.stall = 0.01;
  const auto a = run_exactly_once(plan, DriverKind::kSequential);
  const auto b = run_exactly_once(plan, DriverKind::kSequential);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.datagrams, b.datagrams);
  EXPECT_EQ(a.faults.posted, b.faults.posted);
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.faults.delayed, b.faults.delayed);
  EXPECT_EQ(a.faults.reordered, b.faults.reordered);
  EXPECT_EQ(a.transport.retransmits, b.transport.retransmits);
  EXPECT_EQ(a.transport.duplicates_suppressed,
            b.transport.duplicates_suppressed);
}

TEST(FaultInjection, SelfEdgesAreCleanByDefault) {
  // Local (self) messages never cross the simulated network; even a
  // drop-everything default policy must not touch them.
  FaultPlan plan;
  plan.defaults.drop = 1.0;
  Config cfg{.num_ranks = 1};
  cfg.fault_plan = plan;
  Environment env(cfg);
  int calls = 0;
  const HandlerId h = env.comm(0).register_handler(
      "self", [&](int, serial::InArchive& ar) {
        ar.read<std::uint8_t>();
        ++calls;
      });
  env.execute_phase([&](int) { env.comm(0).async(0, h, std::uint8_t{1}); });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(env.fault_stats().dropped, 0u);
}

// ---------------------------------------------------------------------------
// Retry exhaustion: bounded budget surfaces TransportError, no livelock.
// ---------------------------------------------------------------------------

TEST(FaultInjection, RetryBudgetExhaustionThrowsTransportError) {
  FaultPlan plan;
  plan.overrides.push_back(EdgeOverride{0, 1, EdgePolicy{.drop = 1.0}});
  Config cfg{.num_ranks = 2};
  cfg.fault_plan = plan;
  cfg.retry = comm::RetryConfig{.max_retries = 4,
                                .initial_backoff_ticks = 1,
                                .max_backoff_ticks = 4};
  Environment env(cfg);
  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "x", [](int, serial::InArchive& ar) { ar.read<std::uint8_t>(); });
  }
  try {
    env.execute_phase([&](int rank) {
      if (rank == 0) env.comm(0).async(1, h[0], std::uint8_t{1});
    });
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.source(), 0);
    EXPECT_EQ(e.dest(), 1);
    EXPECT_GE(e.attempts(), 4u);
  }
}

TEST(FaultInjection, RetryExhaustionPropagatesFromThreadedDriver) {
  FaultPlan plan;
  plan.overrides.push_back(EdgeOverride{0, 1, EdgePolicy{.drop = 1.0}});
  Config cfg{.num_ranks = 3, .driver = DriverKind::kThreaded};
  cfg.fault_plan = plan;
  cfg.retry = comm::RetryConfig{.max_retries = 3,
                                .initial_backoff_ticks = 1,
                                .max_backoff_ticks = 2};
  Environment env(cfg);
  std::vector<HandlerId> h(3);
  for (int r = 0; r < 3; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "x", [](int, serial::InArchive& ar) { ar.read<std::uint8_t>(); });
  }
  EXPECT_THROW(env.execute_phase([&](int rank) {
    if (rank == 0) env.comm(0).async(1, h[0], std::uint8_t{1});
  }),
               TransportError);
}

// ---------------------------------------------------------------------------
// Engine-visible path: a failed channel aborts the DNND build with the
// phase name attached instead of spinning in the barrier.
// ---------------------------------------------------------------------------

struct L2Fn {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};

// ---------------------------------------------------------------------------
// Crash-stop faults: scheduling, World liveness, heartbeat detection.
// ---------------------------------------------------------------------------

TEST(CrashFault, PlanWithCrashesIsNotEmpty) {
  FaultPlan plan;
  plan.crashes.push_back(mpi::CrashFault{.rank = 1, .at_tick = 10});
  EXPECT_FALSE(plan.empty());
}

TEST(CrashFault, OutOfRangeRankRejected) {
  FaultPlan plan;
  plan.crashes.push_back(mpi::CrashFault{.rank = 7, .at_tick = 10});
  EXPECT_THROW(mpi::FaultInjector(plan, 4), std::invalid_argument);
  plan.crashes.front().rank = -1;
  EXPECT_THROW(mpi::FaultInjector(plan, 4), std::invalid_argument);
}

TEST(World, KillRankBlackholesBothDirections) {
  mpi::World world(3);
  EXPECT_TRUE(world.alive(1));
  EXPECT_EQ(world.first_dead(), -1);

  world.kill_rank(1);
  EXPECT_FALSE(world.alive(1));
  EXPECT_TRUE(world.alive(0));
  EXPECT_EQ(world.first_dead(), 1);

  // To a dead rank: swallowed (its mailbox stays empty).
  world.post(1, mpi::Datagram{.source = 0, .message_count = 1});
  mpi::Datagram out;
  EXPECT_FALSE(world.try_collect(1, out));
  // From a dead rank: swallowed before it reaches a live mailbox.
  world.post(0, mpi::Datagram{.source = 1, .message_count = 1});
  EXPECT_FALSE(world.try_collect(0, out));
  // Live pairs keep flowing.
  world.post(2, mpi::Datagram{.source = 0, .message_count = 1});
  EXPECT_TRUE(world.try_collect(2, out));
  EXPECT_EQ(out.source, 0);
}

TEST(World, KillRankDiscardsItsQueuedMail) {
  mpi::World world(2);
  world.post(1, mpi::Datagram{.source = 0, .message_count = 1});
  world.kill_rank(1);
  mpi::Datagram out;
  EXPECT_FALSE(world.try_collect(1, out));
}

// RankFailureError is deliberately NOT a TransportError: retry wrappers
// that absorb transport faults must never absorb a rank death.
static_assert(
    !std::is_base_of_v<comm::TransportError, comm::RankFailureError>);
static_assert(std::is_base_of_v<std::runtime_error, comm::RankFailureError>);

TEST(CrashFault, ScheduledCrashRaisesStructuredRankFailure) {
  FaultPlan plan;
  // Crash tick 2: rank 1 dies after collecting two datagrams, with the
  // rest of its inbound stream stranded (the small send buffer forces
  // several datagrams per pair, so the stream is still in flight).
  plan.crashes.push_back(mpi::CrashFault{.rank = 1, .at_tick = 2});
  Config cfg{.num_ranks = 3};
  cfg.send_buffer_bytes = 64;
  cfg.fault_plan = plan;
  Environment env(cfg);
  ASSERT_TRUE(env.comm(0).detecting_failures());

  std::vector<HandlerId> h(3);
  for (int r = 0; r < 3; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "x", [](int, serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  try {
    env.execute_phase([&](int rank) {
      for (int dest = 0; dest < 3; ++dest) {
        if (dest == rank) continue;
        for (std::uint32_t i = 0; i < 32; ++i) {
          env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)], i);
        }
      }
    });
    FAIL() << "expected RankFailureError";
  } catch (const comm::RankFailureError& e) {
    EXPECT_EQ(e.failed_rank(), 1);
    EXPECT_NE(e.detected_by(), 1) << "a dead rank cannot accuse anyone";
    EXPECT_GE(e.epoch(), 1u);
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(env.fault_stats().crashes_triggered, 1u);
  EXPECT_FALSE(env.world().alive(1));
}

TEST(CrashFault, NeverFiringCrashKeepsDeliveryExactDespiteHeartbeats) {
  // A crash scheduled far beyond the run enables the heartbeat detector
  // without ever firing: the workload must stay exactly-once and quiesce.
  FaultPlan plan;
  plan.crashes.push_back(
      mpi::CrashFault{.rank = 1, .at_tick = 50'000'000});
  Config cfg{.num_ranks = 4};
  cfg.send_buffer_bytes = 96;
  cfg.fault_plan = plan;
  // The heartbeat clock advances once per process_available round and a
  // small all-to-all can drain in a single round — period 1 guarantees a
  // beat flows on every round, including the only one.
  cfg.heartbeat_period_ticks = 1;
  Environment env(cfg);
  ASSERT_TRUE(env.comm(0).detecting_failures());

  std::atomic<std::uint64_t> sum{0};
  std::vector<HandlerId> h(4);
  for (int r = 0; r < 4; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "acc", [&](int, serial::InArchive& ar) {
          sum.fetch_add(ar.read<std::uint32_t>(), std::memory_order_relaxed);
        });
  }
  env.execute_phase([&](int rank) {
    for (int dest = 0; dest < 4; ++dest) {
      if (dest == rank) continue;
      for (std::uint32_t i = 1; i <= 64; ++i) {
        env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)], i);
      }
    }
  });
  EXPECT_TRUE(env.world().quiescent());
  const auto transport = env.aggregate_transport_counters();
  EXPECT_EQ(sum.load(), expected_sum(4, 64));
  EXPECT_GT(transport.heartbeats_sent, 0u);
  EXPECT_EQ(transport.heartbeats_missed, 0u);
  EXPECT_EQ(env.fault_stats().crashes_triggered, 0u);
}

TEST(CrashFault, StalledRankIsNotAccusedOfDeath) {
  // Stalls blank a rank's mailbox but the rank keeps heartbeating once it
  // wakes; with generous stall lengths below the failure timeout, no
  // failure may be reported.
  FaultPlan plan;
  plan.seed = 0x57a11;
  plan.stall = 0.05;
  plan.max_stall_ticks = 12;
  plan.crashes.push_back(
      mpi::CrashFault{.rank = 2, .at_tick = 50'000'000});
  const auto r = run_exactly_once(plan, DriverKind::kSequential);
  EXPECT_EQ(r.sum, expected_sum(4, 64));
  EXPECT_GT(r.faults.stalls_entered, 0u);
  EXPECT_EQ(r.faults.crashes_triggered, 0u);
}

TEST(CrashFault, ThreadedDriverPropagatesRankFailure) {
  FaultPlan plan;
  plan.crashes.push_back(mpi::CrashFault{.rank = 2, .at_tick = 5});
  Config cfg{.num_ranks = 3, .driver = DriverKind::kThreaded};
  cfg.fault_plan = plan;
  Environment env(cfg);
  std::vector<HandlerId> h(3);
  for (int r = 0; r < 3; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "x", [](int, serial::InArchive& ar) { ar.read<std::uint32_t>(); });
  }
  EXPECT_THROW(env.execute_phase([&](int rank) {
    for (int dest = 0; dest < 3; ++dest) {
      if (dest == rank) continue;
      for (std::uint32_t i = 0; i < 32; ++i) {
        env.comm(rank).async(dest, h[static_cast<std::size_t>(rank)], i);
      }
    }
  }),
               comm::RankFailureError);
  EXPECT_FALSE(env.world().alive(2));
}

TEST(CrashFault, DetectionOffFallsBackToRetryExhaustion) {
  // Forcing detection off (kFailureDetectionOff) restores the PR 1
  // behaviour: a dead peer eventually surfaces as retry exhaustion.
  FaultPlan plan;
  plan.crashes.push_back(mpi::CrashFault{.rank = 1, .at_tick = 1});
  Config cfg{.num_ranks = 2};
  cfg.fault_plan = plan;
  cfg.failure_timeout_ticks = comm::kFailureDetectionOff;
  cfg.retry = comm::RetryConfig{.max_retries = 4,
                                .initial_backoff_ticks = 1,
                                .max_backoff_ticks = 4};
  Environment env(cfg);
  EXPECT_FALSE(env.comm(0).detecting_failures());
  std::vector<HandlerId> h(2);
  for (int r = 0; r < 2; ++r) {
    h[static_cast<std::size_t>(r)] = env.comm(r).register_handler(
        "x", [](int, serial::InArchive& ar) { ar.read<std::uint8_t>(); });
  }
  EXPECT_THROW(env.execute_phase([&](int rank) {
    if (rank == 0) env.comm(0).async(1, h[0], std::uint8_t{1});
  }),
               TransportError);
}

TEST(FaultInjection, DnndBuildSurfacesTransportErrorWithPhase) {
  data::MixtureSpec spec;
  spec.dim = 4;
  spec.num_clusters = 4;
  spec.seed = 3;
  const auto points = data::GaussianMixture(spec).sample(64, 1);

  FaultPlan plan;
  plan.overrides.push_back(EdgeOverride{0, 1, EdgePolicy{.drop = 1.0}});
  Config cfg{.num_ranks = 2};
  cfg.fault_plan = plan;
  cfg.retry = comm::RetryConfig{.max_retries = 3,
                                .initial_backoff_ticks = 1,
                                .max_backoff_ticks = 2};
  Environment env(cfg);
  core::DnndConfig dcfg;
  dcfg.k = 4;
  core::DnndRunner<float, L2Fn> runner(env, dcfg, L2Fn{});
  runner.distribute(points);
  try {
    runner.build();
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("DNND phase"), std::string::npos)
        << e.what();
    EXPECT_EQ(e.source(), 0);
    EXPECT_EQ(e.dest(), 1);
  }
}

}  // namespace

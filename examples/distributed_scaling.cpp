// Distributed-scaling example: how rank count, driver, and the §4.3/§4.4
// communication knobs interact — a tour of the runtime's observability
// APIs (per-handler message statistics, simulated parallel time).
//
// Usage: distributed_scaling [num-points]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "data/synthetic.hpp"

namespace {

struct L2 {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return dnnd::core::l2(a, b);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dnnd;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 3000;

  data::MixtureSpec spec;
  spec.dim = 48;
  spec.num_clusters = 24;
  spec.center_range = 3.0f;
  const auto points = data::GaussianMixture(spec).sample(n, 1);

  std::printf("%zu points, dim %zu\n\n", points.size(), points.dim());
  std::printf("%6s %10s %14s %12s %14s\n", "ranks", "driver", "sim-units",
              "remote msgs", "remote bytes");

  for (const int ranks : {1, 2, 4, 8, 16}) {
    for (const auto driver :
         {comm::DriverKind::kSequential, comm::DriverKind::kThreaded}) {
      // The threaded driver exists to validate thread-safety of engine
      // code; on a single-core host it adds no speed. Run it only once.
      if (driver == comm::DriverKind::kThreaded && ranks != 8) continue;

      comm::Environment env(comm::Config{.num_ranks = ranks, .driver = driver});
      core::DnndConfig config;
      config.k = 10;
      config.batch_size = std::uint64_t{1} << 18;  // §4.4 batching
      core::DnndRunner<float, L2> runner(env, config, L2{});
      runner.distribute(points);
      const auto stats = runner.build();

      const auto comm_stats = env.aggregate_stats();
      std::printf("%6d %10s %14.3e %12" PRIu64 " %14" PRIu64 "\n", ranks,
                  driver == comm::DriverKind::kSequential ? "seq" : "thread",
                  stats.simulated_parallel_units,
                  comm_stats.total_remote_messages(),
                  comm_stats.total_remote_bytes());
    }
  }

  // Per-message-type breakdown for one configuration (the Figure-4 view).
  std::printf("\nper-handler traffic at 8 ranks (optimized checks):\n");
  comm::Environment env(comm::Config{.num_ranks = 8});
  core::DnndConfig config;
  config.k = 10;
  core::DnndRunner<float, L2> runner(env, config, L2{});
  runner.distribute(points);
  runner.build();
  const auto aggregated = env.aggregate_stats();
  for (const auto& h : aggregated.handlers()) {
    if (h.total_messages() == 0) continue;
    std::printf("  %-12s %10" PRIu64 " msgs %14" PRIu64 " bytes\n",
                h.label.c_str(), h.remote_messages, h.remote_bytes);
  }
  return 0;
}

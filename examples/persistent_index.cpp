// Persistent index workflow — the paper's two-executable pattern (§5.1.3)
// in one binary with two subcommands:
//
//   persistent_index build <datastore> [n]   construct a k-NNG with DNND,
//                                            optimize it, and persist graph
//                                            + dataset into the datastore
//   persistent_index query <datastore> [nq]  reopen the datastore (as the
//                                            separate query program would)
//                                            and run ANN searches
//
// The datastore is a single mmap-backed file managed by dnnd::pmem (the
// Metall substitution); reopening performs no deserialization.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/persistent_graph.hpp"
#include "data/synthetic.hpp"
#include "util/timer.hpp"

namespace {

struct L2 {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return dnnd::core::l2(a, b);
  }
};

dnnd::data::GaussianMixture family() {
  dnnd::data::MixtureSpec spec;
  spec.dim = 32;
  spec.num_clusters = 16;
  spec.center_range = 3.0f;
  spec.seed = 71;
  return dnnd::data::GaussianMixture(spec);
}

int build(const std::string& path, std::size_t n) {
  using namespace dnnd;
  const auto points = family().sample(n, 1);
  std::printf("building k-NNG over %zu points on 8 simulated ranks...\n", n);

  comm::Environment env(comm::Config{.num_ranks = 8});
  core::DnndConfig config;
  config.k = 12;
  core::DnndRunner<float, L2> runner(env, config, L2{});
  runner.distribute(points);
  util::Timer timer;
  const auto stats = runner.build();
  runner.optimize();
  std::printf("construction: %.2fs, %zu iterations\n", timer.elapsed_s(),
              stats.iterations);

  // Size the datastore generously; the arena grows inside the mapping.
  auto manager = pmem::Manager::create(path, 256 << 20);
  core::store_graph(manager, runner.gather(), "knng");
  core::store_features(manager, points, "points");
  manager.flush();
  std::printf("persisted graph + dataset to %s (%zu bytes allocated)\n",
              path.c_str(), manager.allocated_bytes());
  return 0;
}

int query(const std::string& path, std::size_t num_queries) {
  using namespace dnnd;
  // A separate process run: only the datastore path is shared state.
  auto manager = pmem::Manager::open(path);
  const auto graph = core::load_graph(manager, "knng");
  const auto points = core::load_features<float>(manager, "points");
  std::printf("reopened datastore: %zu vertices, %zu edges\n",
              graph.num_vertices(), graph.num_edges());

  const auto queries = family().sample(num_queries, 2);
  core::GraphSearcher searcher(graph, points, L2{});
  core::SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = 0.2;
  params.num_entry_points = 24;

  util::Timer timer;
  const auto results = searcher.batch_search(queries, params, 2);
  const double seconds = timer.elapsed_s();
  std::uint64_t evals = 0;
  for (const auto& r : results) evals += r.distance_evals;
  std::printf("%zu queries in %.3fs (%.0f qps, %.0f distance evals/query)\n",
              num_queries, seconds,
              static_cast<double>(num_queries) / seconds,
              static_cast<double>(evals) / static_cast<double>(num_queries));
  std::printf("first query's neighbors:");
  for (const auto& n : results.front().neighbors) {
    std::printf(" (%u, %.3f)", n.id, n.distance);
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s build <datastore-path> [num-points]\n"
                 "       %s query <datastore-path> [num-queries]\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string path = argv[2];
  try {
    if (mode == "build") {
      const std::size_t n =
          argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 3000;
      return build(path, n);
    }
    if (mode == "query") {
      const std::size_t nq =
          argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 100;
      return query(path, nq);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}

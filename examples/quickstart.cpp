// Quickstart: build a distributed k-NN graph and query it — the whole
// public API surface in ~60 lines.
//
//   1. generate (or load) a dataset of feature vectors;
//   2. create a simulated distributed environment;
//   3. run DNND to build the k-NN graph;
//   4. apply the reverse-edge/prune optimization;
//   5. search the gathered graph.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <span>

#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "data/synthetic.hpp"

// Distance functors are ordinary callables: anything that maps two feature
// spans to a float works (NN-Descent supports arbitrary metrics).
struct L2 {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return dnnd::core::l2(a, b);
  }
};

int main() {
  using namespace dnnd;

  // 1. A clustered synthetic dataset: 2000 points, 32 dimensions.
  data::MixtureSpec spec;
  spec.dim = 32;
  spec.num_clusters = 16;
  spec.center_range = 3.0f;
  const data::GaussianMixture family(spec);
  const auto points = family.sample(2000, /*seed=*/1);
  const auto queries = family.sample(5, /*seed=*/2);

  // 2. Eight simulated ranks (deterministic sequential driver).
  comm::Environment env(comm::Config{.num_ranks = 8});

  // 3. Distributed NN-Descent with k = 10.
  core::DnndConfig config;
  config.k = 10;
  core::DnndRunner<float, L2> runner(env, config, L2{});
  runner.distribute(points);
  const auto stats = runner.build();
  std::printf("built k-NNG in %zu iterations, %llu distance evaluations\n",
              stats.iterations,
              static_cast<unsigned long long>(stats.distance_evals));

  // 4. Graph optimization (§4.5 of the paper): reverse edges + prune.
  runner.optimize();
  const core::KnnGraph graph = runner.gather();
  std::printf("graph: %zu vertices, %zu edges, max degree %zu\n",
              graph.num_vertices(), graph.num_edges(), graph.max_degree());

  // 5. Query with the greedy graph search (§3.3).
  core::GraphSearcher searcher(graph, points, L2{});
  core::SearchParams params;
  params.num_neighbors = 5;
  params.epsilon = 0.2;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto result = searcher.search(queries.row(qi), params);
    std::printf("query %zu:", qi);
    for (const auto& n : result.neighbors) {
      std::printf(" (%u, %.3f)", n.id, n.distance);
    }
    std::printf("  [visited %zu points]\n", result.visited);
  }
  return 0;
}

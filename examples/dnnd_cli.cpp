// dnnd_cli — file-based end-to-end tool, the shape of the paper's actual
// executables (§5.1.3): dataset files in ANN-benchmark formats, a
// persistent datastore between steps, and a query step that reads
// features zero-copy out of the datastore.
//
//   dnnd_cli gen   <dataset> <prefix> [n] [nq]
//       synthesize a Table-1 stand-in: <prefix>.base.fvecs|u8bin,
//       <prefix>.query.*, <prefix>.gt.ivecs (exact ground truth)
//   dnnd_cli build <base-file> <datastore> [k] [ranks]
//       DNND build + §4.5 optimize + persist graph and features
//   dnnd_cli query <datastore> <query-file> [gt.ivecs] [epsilon]
//       reopen, batch-search, report QPS (and recall when gt given)
//   dnnd_cli info  <datastore>
//   dnnd_cli stats <run-prefix> [--straggler-factor F]
//       offline analysis of a run's telemetry artifacts (<prefix>.metrics
//       .json / .trace.json / .timeseries.json): per-rank load skew,
//       straggler flags, barrier share, queue-latency percentiles
//   dnnd_cli stats --diff <baseline.metrics.json> <current.metrics.json>
//                  [--tolerance PCT]
//       regression gate: exits 3 when any deterministic counter drifts
//       beyond the tolerance
//
// File type is inferred from the extension: .fvecs/.fbin = float32,
// .bvecs/.u8bin = uint8. Metric is L2 (the billion-scale datasets').
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/analysis.hpp"

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/checkpoint_store.hpp"
#include "core/distance.hpp"
#include "core/dnnd_checkpoint.hpp"
#include "core/dnnd_runner.hpp"
#include "core/recovery.hpp"
#include "core/knn_query.hpp"
#include "core/persistent_graph.hpp"
#include "core/recall.hpp"
#include "data/datasets.hpp"
#include "data/io.hpp"
#include "util/timer.hpp"

namespace {

using namespace dnnd;

struct L2F {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return core::l2(a, b);
  }
};
struct L2U8 {
  float operator()(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b) const {
    return core::l2(a, b);
  }
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_u8_file(const std::string& path) {
  return ends_with(path, ".bvecs") || ends_with(path, ".u8bin");
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s gen   <dataset> <prefix> [n] [nq]\n"
               "       %s build <base-file> <datastore> [k] [ranks]\n"
               "               [--checkpoint-every N] [--checkpoint-dir D] "
               "[--resume] [--threads N]\n"
               "       %s query <datastore> <query-file> [gt.ivecs] [eps]\n"
               "       %s info  <datastore>\n"
               "       %s stats <run-prefix> [--straggler-factor F]\n"
               "       %s stats --diff <baseline> <current> "
               "[--tolerance PCT]\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// build's crash-tolerance knobs: --checkpoint-every N persists a
/// CRC-validated checkpoint generation every N NN-Descent iterations
/// (default dir: <datastore>.ckpt); --resume continues an interrupted
/// build from the newest valid generation instead of starting over.
/// --threads N runs each simulated rank's hot loops on an N-thread pool
/// (bit-identical output for any N; 0 = auto via DNND_THREADS_PER_RANK).
struct BuildOptions {
  std::size_t checkpoint_every = 0;
  std::string checkpoint_dir;
  bool resume = false;
  std::size_t threads = 0;
};

int cmd_gen(int argc, char** argv) {
  const std::string name = argv[2];
  const std::string prefix = argv[3];
  const std::size_t n =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 0;
  const std::size_t nq =
      argc > 5 ? static_cast<std::size_t>(std::atoll(argv[5])) : 100;
  const auto& spec = data::dataset_by_name(name);
  const double scale =
      n > 0 ? static_cast<double>(n) / static_cast<double>(spec.scaled_entries)
            : 1.0;

  if (spec.element == data::ElementKind::kUint8) {
    const auto ds = data::make_dense_u8(spec, scale, nq);
    data::write_u8bin(prefix + ".base.u8bin", ds.base);
    data::write_u8bin(prefix + ".query.u8bin", ds.queries);
    const auto gt =
        baselines::brute_force_query_batch(ds.base, ds.queries, L2U8{}, 10);
    data::write_ivecs(prefix + ".gt.ivecs", gt);
    std::printf("wrote %zu base + %zu query points (uint8) + ground truth\n",
                ds.base.size(), ds.queries.size());
  } else if (spec.element == data::ElementKind::kFloat32) {
    const auto ds = data::make_dense_float(spec, scale, nq);
    data::write_fvecs(prefix + ".base.fvecs", ds.base);
    data::write_fvecs(prefix + ".query.fvecs", ds.queries);
    const auto gt =
        baselines::brute_force_query_batch(ds.base, ds.queries, L2F{}, 10);
    data::write_ivecs(prefix + ".gt.ivecs", gt);
    std::printf("wrote %zu base + %zu query points (float32) + ground truth\n",
                ds.base.size(), ds.queries.size());
  } else {
    std::fprintf(stderr, "gen: sparse datasets have no file format here\n");
    return 1;
  }
  return 0;
}

template <typename T, typename Fn>
int build_typed(const core::FeatureStore<T>& base, const std::string& store,
                std::size_t k, int ranks, const BuildOptions& opts) {
  // Causal tracing on by default for CLI builds: every 64th root message
  // starts a traced chain, cheap enough to leave on and dense enough that
  // a multi-iteration build yields cross-rank flow arrows. No-op (and
  // zero envelope bytes) when the library is built with DNND_TELEMETRY=OFF.
  // DNND_TRACE_SAMPLE_PERIOD overrides the period; 0 disables tracing,
  // which also makes handler byte counters byte-deterministic (traced
  // envelopes carry wall-clock varints) — the regression gate relies on
  // this (tests/check_metrics_regression.sh).
  std::uint64_t trace_period = 64;
  if (const char* env_period = std::getenv("DNND_TRACE_SAMPLE_PERIOD")) {
    trace_period = static_cast<std::uint64_t>(std::atoll(env_period));
  }
  comm::Config env_cfg;
  env_cfg.num_ranks = ranks;
  env_cfg.trace_sample_period = trace_period;
  core::DnndConfig cfg;
  cfg.k = k;
  cfg.threads_per_rank = opts.threads;

  std::unique_ptr<comm::Environment> env;
  std::unique_ptr<core::DnndRunner<T, Fn>> runner;
  util::Timer timer;
  core::DnndBuildStats stats;
  if (opts.checkpoint_every != 0 || opts.resume) {
    // Supervised path: checkpoint generations every N iterations and/or
    // resume from an earlier process's last valid generation. A rank
    // failure mid-build (real or injected) is absorbed by re-running from
    // the newest checkpoint in a fresh environment.
    core::CheckpointStore ckpt(
        opts.checkpoint_dir.empty() ? store + ".ckpt" : opts.checkpoint_dir);
    core::RecoveryOptions ropts;
    ropts.checkpoint_every = opts.checkpoint_every;
    ropts.resume = opts.resume;
    auto result = core::run_build_with_recovery<T, Fn>(
        ckpt,
        [&](std::size_t) { return std::make_unique<comm::Environment>(env_cfg); },
        [&](comm::Environment& e) {
          return std::make_unique<core::DnndRunner<T, Fn>>(e, cfg, Fn{});
        },
        [&](core::DnndRunner<T, Fn>& r) { r.distribute(base); }, ropts);
    stats = result.report.stats;
    env = std::move(result.env);
    runner = std::move(result.runner);
    if (!result.report.resumed_from.empty()) {
      std::printf("resumed from iteration %llu (checkpoint dir %s)\n",
                  static_cast<unsigned long long>(
                      result.report.resumed_from.back()),
                  ckpt.directory().c_str());
    }
    if (result.report.checkpoints_written != 0) {
      std::printf("checkpoints: %llu written, %llu bytes, %.3fs wall\n",
                  static_cast<unsigned long long>(
                      result.report.checkpoints_written),
                  static_cast<unsigned long long>(
                      result.report.checkpoint_bytes),
                  result.report.checkpoint_seconds);
    }
  } else {
    env = std::make_unique<comm::Environment>(env_cfg);
    runner = std::make_unique<core::DnndRunner<T, Fn>>(*env, cfg, Fn{});
    runner->distribute(base);
    stats = runner->build();
  }
  runner->optimize();
  std::printf("built k=%zu graph over %zu points on %d ranks: %zu iters, "
              "%.2fs wall, %.3e sim-units\n",
              k, base.size(), ranks, stats.iterations, timer.elapsed_s(),
              runner->last_build_stats().simulated_parallel_units);

  // Size the store from the data: features + graph + slack.
  const std::size_t bytes =
      (base.size() * (base.dim() * sizeof(T) + 64) +
       base.size() * static_cast<std::size_t>(static_cast<double>(k) * 1.5) *
           sizeof(core::Neighbor)) *
          4 +
      (64 << 20);
  // Telemetry artifacts ride along with the datastore: merged + per-rank
  // metrics, a Chrome trace of the build's phase timeline with causal
  // message flows (load in chrome://tracing), and the per-iteration
  // counter time series. With DNND_TELEMETRY=OFF all three files are
  // still written as valid-but-empty documents. Inspect with
  // `dnnd_cli stats <datastore>`.
  env->export_telemetry(store + ".metrics.json", store + ".trace.json",
                        store + ".timeseries.json");
  std::printf("telemetry: %s.{metrics,trace,timeseries}.json\n",
              store.c_str());

  auto mgr = pmem::Manager::create(store, bytes);
  core::store_graph(mgr, runner->gather(), "knng");
  core::store_features(mgr, base, "points");
  core::IndexMetadata meta;
  meta.set_metric("L2");
  meta.k = static_cast<std::uint32_t>(k);
  meta.dim = static_cast<std::uint32_t>(base.dim());
  meta.num_points = base.size();
  meta.build_seed = cfg.seed;
  core::store_index_metadata(mgr, meta);
  mgr.flush();
  std::printf("datastore %s: %zu / %zu bytes allocated\n", store.c_str(),
              mgr.allocated_bytes(), mgr.capacity_bytes());
  return 0;
}

int cmd_build(int argc, char** argv) {
  // Positional args first ([base store k ranks]), then --flag [value].
  std::vector<std::string> positional;
  BuildOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--checkpoint-every" && i + 1 < argc) {
      opts.checkpoint_every = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      opts.checkpoint_dir = argv[++i];
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "build: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    std::fprintf(stderr, "build needs <base-file> <datastore>\n");
    return 2;
  }
  const std::string& base_file = positional[0];
  const std::string& store = positional[1];
  const std::size_t k =
      positional.size() > 2
          ? static_cast<std::size_t>(std::atoll(positional[2].c_str()))
          : 10;
  const int ranks =
      positional.size() > 3 ? std::atoi(positional[3].c_str()) : 8;

  if (is_u8_file(base_file)) {
    const auto base = ends_with(base_file, ".bvecs")
                          ? data::read_bvecs(base_file)
                          : data::read_u8bin(base_file);
    return build_typed<std::uint8_t, L2U8>(base, store, k, ranks, opts);
  }
  const auto base = ends_with(base_file, ".fvecs")
                        ? data::read_fvecs(base_file)
                        : data::read_fbin(base_file);
  return build_typed<float, L2F>(base, store, k, ranks, opts);
}

template <typename T, typename Fn>
int query_typed(pmem::Manager& mgr, const core::FeatureStore<T>& queries,
                const std::string& gt_file, double epsilon) {
  // Refuse to search with the wrong metric or dimensionality.
  const auto meta = core::load_index_metadata(mgr);
  core::validate_index_metadata(meta, "L2", queries.dim());
  const auto graph = core::load_graph(mgr, "knng");
  // Zero-copy feature access straight out of the mapping.
  const core::PersistentFeatureView<T> view(mgr, "points");
  core::GraphSearcher searcher(graph, view, Fn{});
  core::SearchParams params;
  params.num_neighbors = 10;
  params.epsilon = epsilon;
  params.num_entry_points = 24;

  util::Timer timer;
  const auto results = searcher.batch_search(queries, params, 2);
  const double seconds = timer.elapsed_s();
  std::uint64_t evals = 0;
  for (const auto& r : results) evals += r.distance_evals;
  std::printf("%zu queries, epsilon %.3f: %.0f qps, %.0f evals/query\n",
              queries.size(), epsilon,
              static_cast<double>(queries.size()) / seconds,
              static_cast<double>(evals) / static_cast<double>(queries.size()));

  if (!gt_file.empty()) {
    const auto truth = data::read_ivecs(gt_file);
    std::vector<std::vector<core::Neighbor>> computed;
    computed.reserve(results.size());
    for (const auto& r : results) computed.push_back(r.neighbors);
    std::printf("recall@10: %.4f\n",
                core::mean_query_recall(computed, truth, 10));
  }
  return 0;
}

int cmd_query(int argc, char** argv) {
  const std::string store = argv[2];
  const std::string query_file = argv[3];
  const std::string gt_file = argc > 4 ? argv[4] : "";
  const double epsilon = argc > 5 ? std::atof(argv[5]) : 0.2;
  auto mgr = pmem::Manager::open(store);
  if (is_u8_file(query_file)) {
    const auto queries = ends_with(query_file, ".bvecs")
                             ? data::read_bvecs(query_file)
                             : data::read_u8bin(query_file);
    return query_typed<std::uint8_t, L2U8>(mgr, queries, gt_file, epsilon);
  }
  const auto queries = ends_with(query_file, ".fvecs")
                           ? data::read_fvecs(query_file)
                           : data::read_fbin(query_file);
  return query_typed<float, L2F>(mgr, queries, gt_file, epsilon);
}

int cmd_info(int, char** argv) {
  auto mgr = pmem::Manager::open(argv[2]);
  std::printf("datastore %s\n", argv[2]);
  std::printf("  capacity  %zu bytes\n", mgr.capacity_bytes());
  std::printf("  allocated %zu bytes\n", mgr.allocated_bytes());
  std::printf("  has graph    : %s\n", mgr.contains("knng") ? "yes" : "no");
  std::printf("  has features : %s\n", mgr.contains("points") ? "yes" : "no");
  if (mgr.contains("index_meta")) {
    const auto meta = core::load_index_metadata(mgr);
    std::printf("  metric %s, k %u, dim %u, %llu points, seed %llu\n",
                std::string(meta.metric_name()).c_str(), meta.k, meta.dim,
                static_cast<unsigned long long>(meta.num_points),
                static_cast<unsigned long long>(meta.build_seed));
  }
  if (mgr.contains("knng")) {
    const auto graph = core::load_graph(mgr, "knng");
    std::printf("  graph: %zu vertices, %zu edges, max degree %zu\n",
                graph.num_vertices(), graph.num_edges(), graph.max_degree());
  }
  return 0;
}

// Exit code for `stats --diff` when a counter drifts out of tolerance —
// distinct from 1 (operational error) so CI can tell "regression" from
// "the tool broke".
constexpr int kExitOutOfTolerance = 3;

int cmd_stats(int argc, char** argv) {
  // Flag parsing: positional args first, then --flag value pairs.
  std::vector<std::string> positional;
  double straggler_factor = 1.25;
  double tolerance_pct = 0.0;
  bool diff = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg == "--straggler-factor" && i + 1 < argc) {
      straggler_factor = std::atof(argv[++i]);
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance_pct = std::atof(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "stats: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (diff) {
    if (positional.size() != 2) {
      std::fprintf(stderr,
                   "stats --diff needs <baseline.metrics.json> "
                   "<current.metrics.json>\n");
      return 2;
    }
    const auto baseline = telemetry::load_json_file(positional[0]);
    const auto current = telemetry::load_json_file(positional[1]);
    if (!baseline || !current) {
      std::fprintf(stderr, "stats: cannot read %s\n",
                   (!baseline ? positional[0] : positional[1]).c_str());
      return 1;
    }
    const auto report =
        telemetry::diff_metrics(*baseline, *current, tolerance_pct);
    telemetry::print_diff_report(std::cout, report, tolerance_pct);
    return report.within_tolerance() ? 0 : kExitOutOfTolerance;
  }

  if (positional.size() != 1) {
    std::fprintf(stderr, "stats needs one <run-prefix>\n");
    return 2;
  }
  // Accept either the datastore prefix (`run.store`) or a directory-style
  // prefix — artifacts are <prefix>.metrics.json etc., exactly as `build`
  // writes them.
  const std::string& prefix = positional[0];
  const auto metrics = telemetry::load_json_file(prefix + ".metrics.json");
  const auto trace = telemetry::load_json_file(prefix + ".trace.json");
  const auto timeseries =
      telemetry::load_json_file(prefix + ".timeseries.json");
  if (!metrics && !trace && !timeseries) {
    std::fprintf(stderr, "stats: no telemetry artifacts found at %s.*\n",
                 prefix.c_str());
    return 1;
  }
  if (metrics) {
    std::printf("run: %d ranks, telemetry %s\n",
                static_cast<int>(metrics->at("ranks").as_number()),
                metrics->at("enabled").as_bool() ? "on" : "off");
    // Checkpoint/recovery overhead, when the run wrote any (build
    // --checkpoint-every). Counters live in the merged metrics object.
    if (metrics->contains("metrics") &&
        metrics->at("metrics").contains("counters")) {
      const auto& counters = metrics->at("metrics").at("counters");
      const auto counter = [&](const char* name) -> double {
        return counters.contains(name) ? counters.at(name).as_number() : 0.0;
      };
      const double written = counter("ckpt.checkpoints_written");
      if (written > 0) {
        std::printf(
            "checkpointing: %.0f checkpoints, %.1f KiB, %.3fs wall "
            "(%.1f ms each)\n",
            written, counter("ckpt.bytes_written") / 1024.0,
            counter("ckpt.write_us") / 1e6,
            counter("ckpt.write_us") / 1e3 / written);
      }
      const double recoveries = counter("recovery.events");
      const double resumes = counter("recovery.resumes");
      // A manual `--resume` has resumes > 0 with no failure event in THIS
      // process (the crash happened in the interrupted one), so either
      // counter alone warrants the line.
      if (recoveries > 0 || resumes > 0) {
        std::printf("recovery: %.0f rank failure(s) absorbed, "
                    "%.0f resume(s) from checkpoint\n",
                    recoveries, resumes);
      }
    }
  }
  if (trace) {
    const auto report = telemetry::analyze_load(*trace, straggler_factor);
    telemetry::print_load_report(std::cout, report, straggler_factor);
  } else {
    std::printf("no trace.json — skipping load analysis\n");
  }
  if (timeseries) {
    telemetry::print_timeseries_summary(
        std::cout, telemetry::summarize_timeseries(*timeseries));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string mode = argv[1];
  try {
    if (mode == "gen" && argc >= 4) return cmd_gen(argc, argv);
    if (mode == "build" && argc >= 4) return cmd_build(argc, argv);
    if (mode == "query" && argc >= 4) return cmd_query(argc, argv);
    if (mode == "info" && argc >= 3) return cmd_info(argc, argv);
    if (mode == "stats" && argc >= 3) return cmd_stats(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}

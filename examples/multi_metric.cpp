// Multi-metric example: NN-Descent's defining feature is that it only ever
// calls θ(u, v), so one engine serves L2 embeddings, cosine text vectors,
// and Jaccard market-basket sets alike (the Table-1 metric families).
//
// Builds a small k-NNG for each metric family and reports graph recall
// against brute force — the §5.2 methodology as an API walkthrough,
// including a custom user-defined metric (weighted L1) to show the
// extension point.
#include <cmath>
#include <cstdio>
#include <span>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_runner.hpp"
#include "core/recall.hpp"
#include "data/datasets.hpp"
#include "data/synthetic.hpp"

namespace {

template <typename T, typename Fn>
void report(const char* label, const dnnd::core::FeatureStore<T>& base,
            Fn fn) {
  using namespace dnnd;
  constexpr std::size_t kNeighbors = 8;
  comm::Environment env(comm::Config{.num_ranks = 4});
  core::DnndConfig config;
  config.k = kNeighbors;
  core::DnndRunner<T, Fn> runner(env, config, fn);
  runner.distribute(base);
  runner.build();
  const auto exact = baselines::brute_force_knn_graph(base, fn, kNeighbors);
  std::printf("%-28s %6zu points, graph recall %.4f\n", label, base.size(),
              core::graph_recall(runner.gather(), exact, kNeighbors));
}

}  // namespace

int main() {
  using namespace dnnd;

  // L2 on dense float vectors (fashion-mnist stand-in).
  {
    const auto ds =
        data::make_dense_float(data::dataset_by_name("fashion-mnist"), 0.1, 0);
    report("L2 / fashion-mnist", ds.base,
           [](std::span<const float> a, std::span<const float> b) {
             return core::l2(a, b);
           });
  }
  // Cosine on dense float vectors (glove-25 stand-in).
  {
    const auto ds =
        data::make_dense_float(data::dataset_by_name("glove-25"), 0.1, 0);
    report("Cosine / glove-25", ds.base,
           [](std::span<const float> a, std::span<const float> b) {
             return core::cosine(a, b);
           });
  }
  // Jaccard on sparse id sets (kosarak stand-in).
  {
    const auto ds =
        data::make_sparse(data::dataset_by_name("kosarak"), 0.15, 0);
    report("Jaccard / kosarak", ds.base,
           [](std::span<const std::uint32_t> a,
              std::span<const std::uint32_t> b) {
             return core::jaccard_sorted(a, b);
           });
  }
  // A custom metric: weighted L1. Any callable over two spans works — this
  // is the "supports arbitrary distance functions" property in action.
  {
    data::MixtureSpec spec;
    spec.dim = 16;
    spec.seed = 7;
    const auto base = data::GaussianMixture(spec).sample(400, 1);
    report("custom weighted-L1", base,
           [](std::span<const float> a, std::span<const float> b) {
             float sum = 0;
             for (std::size_t i = 0; i < a.size(); ++i) {
               const float w = 1.0f / (1.0f + static_cast<float>(i));
               sum += w * std::fabs(a[i] - b[i]);
             }
             return sum;
           });
  }
  return 0;
}

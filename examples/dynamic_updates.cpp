// Dynamic updates example — the paper's §7 vision end to end:
//
//   build an index → persist it → reopen later → insert a batch of new
//   points → short refinement → delete stale points → refine again →
//   query the maintained graph.
//
// Demonstrates: DnndRunner::add_points / remove_points / refine, the
// checkpoint module, and that queries keep working across mutations.
#include <cstdio>
#include <filesystem>
#include <span>

#include "baselines/brute_force.hpp"
#include "comm/environment.hpp"
#include "core/distance.hpp"
#include "core/dnnd_checkpoint.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/recall.hpp"
#include "data/synthetic.hpp"

namespace {

struct L2 {
  float operator()(std::span<const float> a, std::span<const float> b) const {
    return dnnd::core::l2(a, b);
  }
};

}  // namespace

int main() {
  using namespace dnnd;
  const std::string store =
      (std::filesystem::temp_directory_path() / "dnnd_dynamic_example.dat")
          .string();
  std::remove(store.c_str());

  data::MixtureSpec spec;
  spec.dim = 16;
  spec.num_clusters = 12;
  spec.center_range = 4.0f;
  spec.cluster_std = 1.5f;
  const data::GaussianMixture family(spec);

  core::DnndConfig cfg;
  cfg.k = 10;

  // Day 0: build over the initial corpus and checkpoint.
  const auto initial = family.sample(2000, 1);
  {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndRunner<float, L2> runner(env, cfg, L2{});
    runner.distribute(initial);
    const auto stats = runner.build();
    std::printf("day 0: built over %zu points in %zu iterations\n",
                initial.size(), stats.iterations);
    auto mgr = pmem::Manager::create(store, 128 << 20);
    core::save_checkpoint(mgr, runner, "index");
  }

  // Day 1: a different process restores the index and applies updates.
  {
    comm::Environment env(comm::Config{.num_ranks = 4});
    core::DnndRunner<float, L2> runner(env, cfg, L2{});
    auto mgr = pmem::Manager::open(store);
    core::load_checkpoint(mgr, runner, "index");
    std::printf("day 1: restored index with %zu live points\n",
                runner.global_count());

    // 200 new points arrive...
    const auto fresh = family.sample(200, 7);
    core::FeatureStore<float> additions;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      additions.add(static_cast<core::VertexId>(2000 + i), fresh.row(i));
    }
    runner.add_points(additions);
    // ...and 100 old ones are retired.
    std::vector<core::VertexId> retired;
    for (core::VertexId v = 0; v < 2000; v += 20) retired.push_back(v);
    runner.remove_points(retired);

    const auto refine_stats = runner.refine();
    std::printf(
        "day 1: +200/-100 points, refined in %zu iterations "
        "(%llu updates; a full build needed %s)\n",
        refine_stats.iterations,
        static_cast<unsigned long long>(refine_stats.total_updates),
        "orders of magnitude more");

    core::save_checkpoint(mgr, runner, "index");

    // Query the maintained graph and validate against brute force.
    runner.optimize();
    const auto graph = runner.gather();
    core::FeatureStore<float> live;
    for (int r = 0; r < env.num_ranks(); ++r) {
      const auto& pts = runner.engine(r).local_points();
      for (std::size_t i = 0; i < pts.size(); ++i) {
        live.add(pts.id_at(i), pts.row(i));
      }
    }
    const auto queries = family.sample(30, 9);
    const auto truth =
        baselines::brute_force_query_batch(live, queries, L2{}, 10);
    core::GraphSearcher searcher(graph, live, L2{});
    core::SearchParams params;
    params.num_neighbors = 10;
    params.epsilon = 0.25;
    params.num_entry_points = 24;
    std::vector<std::vector<core::Neighbor>> computed;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      computed.push_back(searcher.search(queries.row(qi), params).neighbors);
    }
    std::printf("day 1: query recall@10 over the mutated index: %.3f\n",
                core::mean_query_recall(computed, truth, 10));
  }

  std::remove(store.c_str());
  return 0;
}

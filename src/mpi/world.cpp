#include "mpi/world.hpp"

#include <cassert>
#include <stdexcept>

#include "mpi/fault_injector.hpp"

namespace dnnd::mpi {

World::World(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw std::invalid_argument("World: num_ranks < 1");
  dead_ = std::vector<std::atomic<bool>>(static_cast<std::size_t>(num_ranks));
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

World::~World() = default;

void World::install_fault_injector(std::unique_ptr<FaultInjector> injector) {
  if (datagrams_.load(std::memory_order_relaxed) != 0) {
    throw std::logic_error(
        "World: fault injector must be installed before any traffic");
  }
  injector_ = std::move(injector);
}

void World::enqueue(int dest, Datagram&& datagram, bool front) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  if (front) {
    box.queue.push_front(std::move(datagram));
  } else {
    box.queue.push_back(std::move(datagram));
  }
}

void World::kill_rank(int rank) {
  assert(rank >= 0 && rank < num_ranks_);
  dead_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
  // Discard anything already queued for the dead rank: a crashed process's
  // receive queue evaporates with it. The submitted counters for those
  // messages are NOT rolled back — the stranded debt is what keeps the
  // world non-quiescent and forces the failure detector to end the phase.
  auto& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  box.queue.clear();
}

void World::post(int dest, Datagram&& datagram) {
  assert(dest >= 0 && dest < num_ranks_);
  datagrams_.fetch_add(1, std::memory_order_relaxed);
  // Blackhole both directions of a dead rank: nothing reaches its mailbox,
  // and anything it posted post-mortem (a racing thread mid-flush) is lost.
  if (!alive(dest) ||
      (datagram.source >= 0 && datagram.source < num_ranks_ &&
       !alive(datagram.source))) {
    return;
  }
  if (injector_ == nullptr) {
    enqueue(dest, std::move(datagram), /*front=*/false);
    return;
  }
  injector_->route(dest, std::move(datagram),
                   [this](int to, Datagram&& d, bool front) {
                     enqueue(to, std::move(d), front);
                   });
}

bool World::try_collect(int rank, Datagram& out) {
  assert(rank >= 0 && rank < num_ranks_);
  if (!alive(rank)) return false;
  if (injector_ != nullptr) {
    const FaultInjector::CollectAction action =
        injector_->on_collect(rank, [this](int to, Datagram&& d, bool front) {
          enqueue(to, std::move(d), front);
        });
    if (action.crashed) {
      kill_rank(rank);
      return false;
    }
    if (action.stalled) return false;
  }
  auto& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  if (box.queue.empty()) return false;
  out = std::move(box.queue.front());
  box.queue.pop_front();
  return true;
}

bool World::mailbox_empty(int rank) const {
  assert(rank >= 0 && rank < num_ranks_);
  const auto& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  return box.queue.empty();
}

std::size_t World::mailbox_depth(int rank) const {
  assert(rank >= 0 && rank < num_ranks_);
  const auto& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  return box.queue.size();
}

}  // namespace dnnd::mpi

#include "mpi/world.hpp"

#include <cassert>
#include <stdexcept>

namespace dnnd::mpi {

World::World(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw std::invalid_argument("World: num_ranks < 1");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::post(int dest, Datagram&& datagram) {
  assert(dest >= 0 && dest < num_ranks_);
  auto& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    const std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(datagram));
  }
  datagrams_.fetch_add(1, std::memory_order_relaxed);
}

bool World::try_collect(int rank, Datagram& out) {
  assert(rank >= 0 && rank < num_ranks_);
  auto& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  if (box.queue.empty()) return false;
  out = std::move(box.queue.front());
  box.queue.pop_front();
  return true;
}

bool World::mailbox_empty(int rank) const {
  assert(rank >= 0 && rank < num_ranks_);
  const auto& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  return box.queue.empty();
}

}  // namespace dnnd::mpi

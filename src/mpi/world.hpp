// Simulated message-passing transport.
//
// The paper runs on MPI (MVAPICH2) across a 50-node cluster. This module is
// the substitution documented in DESIGN.md §2: an in-process transport with
// one mailbox per simulated rank. It carries exactly the bytes a real MPI
// transport would carry (serialized payloads produced by dnnd::serial), so
// message-count and message-volume experiments are faithful; only absolute
// wall-clock time differs from real hardware.
//
// The World is pure transport: it moves byte buffers and maintains the
// global sent/processed counters needed for termination detection. Handler
// dispatch lives one layer up in dnnd::comm (the YGM-equivalent).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace dnnd::mpi {

class FaultInjector;

/// Wire-level datagram type: payload-carrying data vs. protocol
/// acknowledgements and liveness heartbeats (the latter two only flow when
/// the retry/dedup protocol is active). Acks and heartbeats are
/// unsequenced and never counted toward the termination-detection
/// counters — they are transport bookkeeping, not application messages.
enum class DatagramKind : std::uint8_t { kData = 0, kAck = 1, kHeartbeat = 2 };

/// One transport-level datagram. A datagram may carry several application
/// messages packed back-to-back by the communicator's send buffering.
struct Datagram {
  int source = -1;
  DatagramKind kind = DatagramKind::kData;
  /// Reliable-channel sequence number, per (source → dest) channel and
  /// starting at 1. 0 means unsequenced (protocol off, or an ack).
  std::uint64_t seq = 0;
  /// Number of application-level messages packed in `payload`; the World
  /// tracks these for termination detection.
  std::uint32_t message_count = 0;
  /// Telemetry stamp set at post() time by the sending communicator
  /// (telemetry builds only; 0 otherwise). Transport *metadata*, like an
  /// MPI envelope's internal bookkeeping — never serialized payload
  /// bytes, so it does not count toward the Fig. 4 byte accounting.
  std::uint64_t post_ts_us = 0;
  std::vector<std::byte> payload;
};

/// In-process stand-in for an MPI communicator's transport layer.
///
/// Thread safety: `post`, `try_collect`, and the counter methods are safe to
/// call concurrently (the threaded driver runs one thread per rank). The
/// sequential driver calls them from a single thread.
class World {
 public:
  explicit World(int num_ranks);
  ~World();  // out-of-line: FaultInjector is incomplete here

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const noexcept { return num_ranks_; }

  /// Enqueues a datagram into `dest`'s mailbox.
  /// Pre: 0 <= dest < size(), datagram.message_count messages were
  /// previously announced via note_messages_submitted().
  /// With a fault injector installed the datagram may instead be dropped,
  /// duplicated, delayed, or queue-jumped — the communicator's retry/dedup
  /// protocol is what restores exactly-once semantics on top.
  void post(int dest, Datagram&& datagram);

  /// Pops one datagram from `rank`'s mailbox. Returns false if empty.
  /// With a fault injector installed this also advances `rank`'s tick
  /// clock (releasing matured delayed datagrams) and honors rank stalls.
  bool try_collect(int rank, Datagram& out);

  /// Installs a fault injector. Must be called before any traffic flows;
  /// communicators built on this World check faulty() at construction to
  /// decide whether to run the retry/dedup protocol.
  void install_fault_injector(std::unique_ptr<FaultInjector> injector);

  /// Null when the transport is perfectly reliable (the default).
  [[nodiscard]] FaultInjector* fault_injector() noexcept {
    return injector_.get();
  }
  [[nodiscard]] bool faulty() const noexcept { return injector_ != nullptr; }

  // -- crash-stop liveness -----------------------------------------------
  //
  // A dead rank models a crashed MPI process: its mailbox blackholes
  // (pending datagrams are discarded, new ones never enqueue), it never
  // collects again, and datagrams it posts post-mortem are dropped. The
  // submitted/processed counters are deliberately left untouched, so a
  // crash that strands in-flight messages keeps the world permanently
  // non-quiescent — the failure detector, not the barrier, must end the
  // phase.

  /// Marks `rank` dead (idempotent). Called by try_collect when a
  /// scheduled CrashFault fires, or directly by tests/harnesses.
  void kill_rank(int rank);

  [[nodiscard]] bool alive(int rank) const noexcept {
    return !dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  /// Lowest dead rank, or -1 when every rank is alive.
  [[nodiscard]] int first_dead() const noexcept {
    for (int r = 0; r < num_ranks_; ++r) {
      if (!alive(r)) return r;
    }
    return -1;
  }

  [[nodiscard]] bool mailbox_empty(int rank) const;

  /// Current queued datagram count in `rank`'s mailbox (takes the mailbox
  /// mutex — a telemetry probe, not a hot-path primitive).
  [[nodiscard]] std::size_t mailbox_depth(int rank) const;

  // -- Termination-detection counters -----------------------------------
  //
  // A message is "submitted" the moment the application hands it to the
  // communicator (it may sit in a send buffer before post()), and
  // "processed" after its handler ran. Global quiescence ==
  // submitted == processed. Counting at submission rather than at post()
  // closes the window where a message is buffered but not yet visible.

  void note_messages_submitted(std::uint64_t n) noexcept {
    submitted_.fetch_add(n, std::memory_order_seq_cst);
  }
  void note_messages_processed(std::uint64_t n) noexcept {
    processed_.fetch_add(n, std::memory_order_seq_cst);
  }
  [[nodiscard]] std::uint64_t submitted() const noexcept {
    return submitted_.load(std::memory_order_seq_cst);
  }
  [[nodiscard]] std::uint64_t processed() const noexcept {
    return processed_.load(std::memory_order_seq_cst);
  }
  /// True when every submitted message has been processed.
  [[nodiscard]] bool quiescent() const noexcept {
    return submitted() == processed();
  }

  /// Total datagrams ever posted (transport-level, for diagnostics).
  [[nodiscard]] std::uint64_t datagrams_posted() const noexcept {
    return datagrams_.load(std::memory_order_relaxed);
  }

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::deque<Datagram> queue;
  };

  void enqueue(int dest, Datagram&& datagram, bool front);

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  /// Per-rank dead flags (crash-stop). Atomic: the threaded driver reads
  /// liveness from every rank's thread.
  std::vector<std::atomic<bool>> dead_;
  std::unique_ptr<FaultInjector> injector_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> datagrams_{0};
};

}  // namespace dnnd::mpi

#include "mpi/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mpi/world.hpp"

namespace dnnd::mpi {

FaultInjector::FaultInjector(FaultPlan plan, int num_ranks)
    : plan_(std::move(plan)), num_ranks_(num_ranks), rng_(plan_.seed) {
  if (num_ranks < 1) {
    throw std::invalid_argument("FaultInjector: num_ranks < 1");
  }
  const auto n = static_cast<std::size_t>(num_ranks);
  edge_policies_.assign(n * n, plan_.defaults);
  for (const auto& o : plan_.overrides) {
    for (int s = 0; s < num_ranks; ++s) {
      if (o.source != -1 && o.source != s) continue;
      for (int d = 0; d < num_ranks; ++d) {
        if (o.dest != -1 && o.dest != d) continue;
        edge_policies_[static_cast<std::size_t>(s) * n +
                       static_cast<std::size_t>(d)] = o.policy;
      }
    }
  }
  rank_states_.resize(n);
  for (const CrashFault& crash : plan_.crashes) {
    if (crash.rank < 0 || crash.rank >= num_ranks) {
      throw std::invalid_argument("FaultInjector: crash rank out of range");
    }
    auto& state = rank_states_[static_cast<std::size_t>(crash.rank)];
    state.crash_at = std::min(state.crash_at, crash.at_tick);
  }
}

const EdgePolicy& FaultInjector::policy_for(int source, int dest) const {
  static const EdgePolicy kClean{};
  if (source < 0 || source >= num_ranks_) return kClean;  // raw test traffic
  if (source == dest && !plan_.fault_self_edges) return kClean;
  return edge_policies_[static_cast<std::size_t>(source) *
                            static_cast<std::size_t>(num_ranks_) +
                        static_cast<std::size_t>(dest)];
}

void FaultInjector::route(int dest, Datagram&& datagram,
                          const DeliverFn& deliver) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.posted;
  const EdgePolicy& policy = policy_for(datagram.source, dest);

  if (policy.drop > 0.0 && rng_.bernoulli(policy.drop)) {
    ++stats_.dropped;
    return;
  }
  int copies = 1;
  if (policy.duplicate > 0.0 && rng_.bernoulli(policy.duplicate)) {
    copies = 2;
    ++stats_.duplicated;
    if (datagram.kind == DatagramKind::kData) ++stats_.duplicated_data;
  }
  auto& state = rank_states_[static_cast<std::size_t>(dest)];
  for (int c = 0; c < copies; ++c) {
    const bool front = policy.reorder > 0.0 && rng_.bernoulli(policy.reorder);
    if (front) ++stats_.reordered;
    std::uint32_t delay_ticks = 0;
    if (policy.delay > 0.0 && rng_.bernoulli(policy.delay)) {
      delay_ticks = 1 + static_cast<std::uint32_t>(rng_.uniform_below(
                            std::max<std::uint32_t>(1, policy.max_delay_ticks)));
      ++stats_.delayed;
    }
    Datagram copy = (c + 1 < copies) ? datagram : std::move(datagram);
    if (delay_ticks == 0) {
      deliver(dest, std::move(copy), front);
    } else {
      state.delayed.push_back(Delayed{state.tick + delay_ticks, front,
                                      std::make_unique<Datagram>(std::move(copy))});
    }
  }
}

FaultInjector::CollectAction FaultInjector::on_collect(
    int rank, const DeliverFn& deliver) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& state = rank_states_[static_cast<std::size_t>(rank)];
  ++state.tick;

  // Crash-stop beats every other fault: once the tick clock reaches the
  // scheduled kill, the rank is dead and never collects again (the World
  // stops calling on_collect for it after marking it dead).
  if (state.tick >= state.crash_at) {
    state.crash_at = ~std::uint64_t{0};
    ++stats_.crashes_triggered;
    return CollectAction{.stalled = false, .crashed = true};
  }

  if (state.tick < state.stalled_until) {
    ++stats_.stall_ticks;
    return CollectAction{.stalled = true};
  }
  if (plan_.stall > 0.0 && rng_.bernoulli(plan_.stall)) {
    state.stalled_until =
        state.tick + 1 +
        rng_.uniform_below(std::max<std::uint32_t>(1, plan_.max_stall_ticks));
    ++stats_.stalls_entered;
    ++stats_.stall_ticks;
    return CollectAction{.stalled = true};
  }
  // Release matured datagrams in insertion order (deterministic under the
  // sequential driver); the rest shift down and keep their order.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < state.delayed.size(); ++i) {
    if (state.delayed[i].release_tick <= state.tick) {
      ++stats_.released;
      deliver(rank, std::move(*state.delayed[i].datagram),
              state.delayed[i].front);
    } else {
      if (kept != i) state.delayed[kept] = std::move(state.delayed[i]);
      ++kept;
    }
  }
  state.delayed.resize(kept);
  return CollectAction{};
}

FaultStats FaultInjector::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dnnd::mpi

// Deterministic fault injection for the simulated transport.
//
// The World is normally a perfectly reliable, in-order network, so the
// YGM-style quiescence protocol was never exercised under the conditions a
// real MVAPICH2/Omni-Path deployment produces: delayed, reordered,
// duplicated, and lost datagrams, and ranks that stop making progress for
// a while. The FaultInjector interposes on World::post / World::try_collect
// and perturbs the datagram stream according to a FaultPlan.
//
// Every decision is drawn from one seeded xoshiro256** stream
// (util::Xoshiro256), so under the sequential driver a fault schedule is a
// pure function of (plan.seed, workload) and any failing run is replayable
// from its printed seed alone. Under the threaded driver the schedule also
// depends on thread interleaving; the protocol invariants (exactly-once
// delivery to handlers, true quiescence fixpoint) still hold and are what
// the chaos tests assert there.
//
// Time is counted in *ticks*: one tick per try_collect call on a rank,
// i.e. per polling step of that rank's drain loop. Delay and stall
// durations are expressed in the destination rank's ticks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/rng.hpp"

namespace dnnd::mpi {

struct Datagram;

/// Per-edge fault probabilities. All independent Bernoulli draws per
/// datagram; `delay`/`reorder` apply to each delivered copy.
struct EdgePolicy {
  double drop = 0.0;       ///< P(datagram is lost entirely)
  double duplicate = 0.0;  ///< P(datagram is delivered twice)
  double delay = 0.0;      ///< P(a delivered copy is held back)
  double reorder = 0.0;    ///< P(a delivered copy jumps the mailbox queue)
  std::uint32_t max_delay_ticks = 8;  ///< delays drawn uniform in [1, max]

  [[nodiscard]] bool active() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || reorder > 0.0;
  }
};

/// Overrides the default policy for matching edges; -1 matches any rank.
struct EdgeOverride {
  int source = -1;
  int dest = -1;
  EdgePolicy policy;
};

/// Crash-stop fault: rank `rank` dies permanently when its tick clock
/// reaches `at_tick` (ticks = try_collect calls on that rank, the same
/// clock delays and stalls use). A dead rank's mailbox blackholes, it
/// never collects again, and anything it posts afterwards is discarded —
/// the World surfaces the liveness change via World::alive().
struct CrashFault {
  int rank = -1;
  std::uint64_t at_tick = 0;
};

/// A complete, replayable fault schedule description.
struct FaultPlan {
  std::uint64_t seed = 1;
  EdgePolicy defaults;
  std::vector<EdgeOverride> overrides;

  /// Crash-stop schedule (process death, not message faults). Unlike the
  /// probabilistic faults above, crashes are deterministic (rank, tick)
  /// pairs so a kill-and-resume test can place them precisely.
  std::vector<CrashFault> crashes;

  /// P(a rank enters a stall at any tick); stalled ranks observe an empty
  /// mailbox and hold back matured delayed datagrams until the stall ends.
  double stall = 0.0;
  std::uint32_t max_stall_ticks = 16;  ///< stall lengths uniform in [1, max]

  /// Faults on self-edges (source == dest) are off by default: local
  /// messages never cross the simulated network.
  bool fault_self_edges = false;

  /// Installs the injector (and thereby enables the communicator's
  /// retry/dedup protocol) even when every probability is zero — used to
  /// measure protocol overhead in isolation.
  bool force_protocol = false;

  /// True when installing this plan would be a no-op; Environment skips
  /// injector creation entirely so the fault-free path stays zero-overhead.
  [[nodiscard]] bool empty() const noexcept {
    if (force_protocol || stall > 0.0) return false;
    if (!crashes.empty()) return false;
    if (defaults.active()) return false;
    for (const auto& o : overrides) {
      if (o.policy.active()) return false;
    }
    return true;
  }
};

/// Event counters, all cumulative since construction. `data_posted` counts
/// post() calls seen by the injector (including protocol acks and
/// retransmissions, which go through the same faulty pipe).
struct FaultStats {
  std::uint64_t posted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  /// Subset of `duplicated` that hit kData datagrams. Acks are unsequenced
  /// (idempotent, never deduped), so this is the count the communicator's
  /// duplicates_suppressed counter can be checked against.
  std::uint64_t duplicated_data = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t stalls_entered = 0;
  std::uint64_t stall_ticks = 0;
  std::uint64_t released = 0;  ///< delayed datagrams handed back to mailboxes
  std::uint64_t crashes_triggered = 0;  ///< scheduled crash-stops that fired
};

class FaultInjector {
 public:
  /// `deliver(dest, datagram, front)` enqueues into a mailbox, at the back
  /// or (front=true) ahead of everything already queued.
  using DeliverFn = std::function<void(int, Datagram&&, bool front)>;

  FaultInjector(FaultPlan plan, int num_ranks);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// World::post hook: decides this datagram's fate and delivers the
  /// immediate copies via `deliver`; delayed copies are parked internally.
  void route(int dest, Datagram&& datagram, const DeliverFn& deliver);

  /// Outcome of one tick of a rank's collect clock.
  struct CollectAction {
    bool stalled = false;  ///< mailbox must appear empty this tick
    bool crashed = false;  ///< a scheduled crash-stop fired this tick
  };

  /// World::try_collect hook: advances `rank`'s tick clock, releases
  /// matured delayed datagrams via `deliver`, and reports whether the rank
  /// is stalled this tick or just crashed (the World then marks it dead).
  CollectAction on_collect(int rank, const DeliverFn& deliver);

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct Delayed {
    std::uint64_t release_tick;
    bool front;
    // Stored indirectly so the struct stays movable without including the
    // full Datagram definition here.
    std::unique_ptr<Datagram> datagram;
  };
  struct RankState {
    std::uint64_t tick = 0;
    std::uint64_t stalled_until = 0;  ///< stalled while tick < stalled_until
    std::vector<Delayed> delayed;     ///< unsorted; scanned on release
    /// Earliest scheduled crash tick, or UINT64_MAX when none remains.
    std::uint64_t crash_at = ~std::uint64_t{0};
  };

  [[nodiscard]] const EdgePolicy& policy_for(int source, int dest) const;

  FaultPlan plan_;
  int num_ranks_;
  /// Resolved per-edge policies, row-major [source * num_ranks + dest].
  std::vector<EdgePolicy> edge_policies_;

  mutable std::mutex mutex_;
  util::Xoshiro256 rng_;
  std::vector<RankState> rank_states_;
  FaultStats stats_;
};

}  // namespace dnnd::mpi

// Threaded phase driver with counting-based termination detection.
//
// One std::thread per simulated rank. After every thread finishes the phase
// body and flushes its send buffers, the threads cooperatively drain
// messages until the World's submitted/processed counters agree — the same
// quiescence condition a YGM barrier establishes with distributed
// counting. Separated from Environment so it can be unit-tested directly
// against adversarial handler patterns (handlers that send chains of
// follow-up messages, self-sends, etc.).
#pragma once

#include <cstddef>
#include <functional>

#include "mpi/world.hpp"

namespace dnnd::mpi {

/// Runs `phase(rank)` on a dedicated thread per rank, then drains messages
/// to global quiescence.
///
/// `flush(rank)` must push that rank's buffered sends to the transport;
/// `process(rank)` must deliver a bounded batch of inbound messages and
/// return how many were handled. Both are invoked only from rank `rank`'s
/// thread.
///
/// `drain_done(rank, seconds)`, when non-null, is called from rank
/// `rank`'s thread after that rank leaves the drain loop cleanly, with
/// the wall time the rank spent between finishing its phase body and
/// observing global quiescence — the per-rank barrier-wait cost the
/// telemetry layer reports. Not called when the phase fails.
void run_threaded_phase(World& world, int num_ranks,
                        const std::function<void(int)>& phase,
                        const std::function<void(int)>& flush,
                        const std::function<std::size_t(int)>& process,
                        const std::function<void(int, double)>& drain_done = {});

}  // namespace dnnd::mpi

#include "mpi/threaded_driver.hpp"

#include <barrier>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dnnd::mpi {

void run_threaded_phase(World& world, int num_ranks,
                        const std::function<void(int)>& phase,
                        const std::function<void(int)>& flush,
                        const std::function<std::size_t(int)>& process,
                        const std::function<void(int, double)>& drain_done) {
  std::barrier sync(num_ranks);
  // First handler exception wins; the rest of the ranks still need to
  // terminate, so the drain loop keeps a "failed" flag instead of
  // propagating immediately.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker = [&](int rank) {
    try {
      phase(rank);
      flush(rank);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      failed.store(true);
    }
    // All ranks must complete the phase body before quiescence checks are
    // meaningful: until then a rank that has not called async() yet could
    // still create work.
    sync.arrive_and_wait();
    const auto drain_start = std::chrono::steady_clock::now();
    bool clean = false;
    while (!failed.load(std::memory_order_relaxed)) {
      try {
        flush(rank);
        const std::size_t handled = process(rank);
        if (handled == 0) {
          // Nothing delivered locally; if the whole world is quiescent the
          // barrier is complete. The counters are seq_cst, and once
          // submitted == processed no handler is running anywhere, so no
          // new messages can appear and the condition is stable.
          if (world.quiescent()) {
            clean = true;
            break;
          }
          std::this_thread::yield();
        }
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true);
      }
    }
    if (clean && drain_done) {
      drain_done(rank, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - drain_start)
                           .count());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(worker, r);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dnnd::mpi

#include "serial/archive.hpp"

namespace dnnd::serial {

void write_varint(std::vector<std::byte>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::uint64_t read_varint(const std::byte*& cursor, const std::byte* end) {
  std::uint64_t value = 0;
  int shift = 0;
  while (cursor != end) {
    const auto byte = static_cast<std::uint8_t>(*cursor++);
    if (shift == 63 && byte > 1) throw ArchiveError("varint overflow");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) throw ArchiveError("varint too long");
  }
  throw ArchiveError("varint truncated");
}

}  // namespace dnnd::serial

// Binary serialization for inter-rank messages.
//
// Every remote call in the communicator serializes its arguments into a
// flat byte buffer. This is what a real MPI transport would put on the
// wire, and it is what makes the paper's Figure-4 byte counts meaningful:
// message volume is measured as serialized bytes, not as sizeof() of
// in-memory structs.
//
// Wire format: little-endian fixed-width primitives; sequence lengths as
// LEB128 varints (so a k=10 neighbor list doesn't pay 8 bytes per count).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace dnnd::serial {

/// Thrown when an InArchive runs out of bytes or a varint is malformed.
class ArchiveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends an unsigned LEB128 varint to `out`.
void write_varint(std::vector<std::byte>& out, std::uint64_t value);

/// Reads an unsigned LEB128 varint from [cursor, end); advances cursor.
std::uint64_t read_varint(const std::byte*& cursor, const std::byte* end);

class OutArchive;
class InArchive;

/// A type is wire-trivial if its object representation can be memcpy'd.
/// Pointers are deliberately excluded: they never survive rank boundaries.
template <typename T>
concept WireTrivial = std::is_trivially_copyable_v<T> &&
                      !std::is_pointer_v<std::remove_cvref_t<T>>;

/// Growable output buffer with typed append operations.
class OutArchive {
 public:
  OutArchive() = default;

  /// Reserve to avoid regrowth when the caller knows the payload size.
  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

  template <WireTrivial T>
  void write(const T& value) {
    const auto* src = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), src, src + sizeof(T));
  }

  void write_bytes(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  void write_size(std::uint64_t n) { write_varint(buffer_, n); }

  template <WireTrivial T>
  void write_span(std::span<const T> values) {
    write_size(values.size());
    write_bytes(std::as_bytes(values));
  }

  template <WireTrivial T>
  void write_vector(const std::vector<T>& values) {
    write_span(std::span<const T>(values));
  }

  void write_string(std::string_view s) {
    write_size(s.size());
    const auto* src = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), src, src + s.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::byte> release() noexcept {
    return std::move(buffer_);
  }
  void clear() noexcept { buffer_.clear(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Non-owning reader over a serialized buffer.
class InArchive {
 public:
  explicit InArchive(std::span<const std::byte> bytes)
      : cursor_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  template <WireTrivial T>
  T read() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  std::uint64_t read_size() { return read_varint(cursor_, end_); }

  template <WireTrivial T>
  std::vector<T> read_vector() {
    const std::uint64_t n = read_size();
    require(n * sizeof(T));
    std::vector<T> values(n);
    std::memcpy(values.data(), cursor_, n * sizeof(T));
    cursor_ += n * sizeof(T);
    return values;
  }

  /// Zero-copy view of a serialized span; valid while the buffer lives.
  /// Only safe when the element alignment is 1 (e.g. uint8 features) or
  /// the caller guarantees the buffer offset is aligned — messages are
  /// packed back to back, so multi-byte elements generally are NOT.
  /// Prefer read_into() for float/int payloads.
  template <WireTrivial T>
  std::span<const T> read_view() {
    const std::uint64_t n = read_size();
    require(n * sizeof(T));
    const auto* data = reinterpret_cast<const T*>(cursor_);
    cursor_ += n * sizeof(T);
    return {data, static_cast<std::size_t>(n)};
  }

  /// Reads a serialized span into `scratch` (resized to fit, capacity
  /// reused across calls — the allocation-free hot path for handlers that
  /// deserialize one feature vector per message).
  template <WireTrivial T>
  void read_into(std::vector<T>& scratch) {
    const std::uint64_t n = read_size();
    require(n * sizeof(T));
    scratch.resize(n);
    std::memcpy(scratch.data(), cursor_, n * sizeof(T));
    cursor_ += n * sizeof(T);
  }

  std::string read_string() {
    const std::uint64_t n = read_size();
    require(n);
    std::string s(reinterpret_cast<const char*>(cursor_), n);
    cursor_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - cursor_);
  }
  [[nodiscard]] bool empty() const noexcept { return cursor_ == end_; }

 private:
  void require(std::uint64_t bytes) const {
    if (bytes > static_cast<std::uint64_t>(end_ - cursor_)) {
      throw ArchiveError("archive underflow");
    }
  }

  const std::byte* cursor_;
  const std::byte* end_;
};

// ---- Generic pack/unpack over argument lists -------------------------------
//
// The communicator serializes handler arguments with pack(); handlers get
// them back with unpack<Args...>(). Supported argument types: WireTrivial
// values, std::vector<WireTrivial>, and std::string.

namespace detail {

template <typename T>
struct Codec;

template <WireTrivial T>
struct Codec<T> {
  static void encode(OutArchive& ar, const T& v) { ar.write(v); }
  static T decode(InArchive& ar) { return ar.template read<T>(); }
};

template <WireTrivial T>
struct Codec<std::vector<T>> {
  static void encode(OutArchive& ar, const std::vector<T>& v) {
    ar.write_vector(v);
  }
  static std::vector<T> decode(InArchive& ar) {
    return ar.template read_vector<T>();
  }
};

template <>
struct Codec<std::string> {
  static void encode(OutArchive& ar, const std::string& v) {
    ar.write_string(v);
  }
  static std::string decode(InArchive& ar) { return ar.read_string(); }
};

}  // namespace detail

template <typename... Args>
void pack(OutArchive& ar, const Args&... args) {
  (detail::Codec<std::remove_cvref_t<Args>>::encode(ar, args), ...);
}

template <typename... Args>
std::tuple<Args...> unpack(InArchive& ar) {
  // Braced init-list guarantees left-to-right evaluation of the decodes.
  return std::tuple<Args...>{
      detail::Codec<std::remove_cvref_t<Args>>::decode(ar)...};
}

}  // namespace dnnd::serial

// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace dnnd::util {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  clock::time_point start_;
};

}  // namespace dnnd::util

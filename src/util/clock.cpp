#include "util/clock.hpp"

#include <chrono>

namespace dnnd::util {

std::uint64_t monotonic_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            epoch)
          .count());
}

}  // namespace dnnd::util

// Deterministic, fast pseudo-random number generation.
//
// Distributed runs must be reproducible regardless of the driver used
// (cooperative scheduler vs. threads), so every rank derives its own
// independent stream from a global seed + rank id rather than sharing one
// generator. We use xoshiro256** (public-domain, Blackman & Vigna) seeded
// through splitmix64, the combination recommended by its authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dnnd::util {

/// splitmix64 step: used for seeding and as a cheap stateless mix function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
/// can drive <random> distributions, but the member helpers below avoid the
/// libstdc++ distribution objects for cross-platform determinism.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eedcafef00dULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent stream, e.g. `Xoshiro256(seed).fork(rank)`.
  [[nodiscard]] constexpr Xoshiro256 fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    Xoshiro256 child(splitmix64(sm));
    return child;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t uniform_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  constexpr float uniform_float(float lo, float hi) noexcept {
    return lo + static_cast<float>(uniform_double()) * (hi - lo);
  }

  /// Standard normal via Marsaglia polar method (no <cmath> constexpr needs).
  double normal() noexcept;

  /// Bernoulli trial with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform_double() < p; }

  // -- checkpointable state ------------------------------------------------
  //
  // The generator's full state is its four 64-bit words; exposing them lets
  // a checkpoint resume the exact stream (crash-stop fault tolerance needs
  // the resumed build to draw the same values it would have drawn).

  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// In-place Fisher-Yates shuffle driven by an Xoshiro256 stream.
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Xoshiro256& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const auto j = rng.uniform_below(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace dnnd::util

#include <cmath>

namespace dnnd::util {

inline double Xoshiro256::normal() noexcept {
  // Marsaglia polar method; discards the second variate for simplicity.
  double u, v, s;
  do {
    u = 2.0 * uniform_double() - 1.0;
    v = 2.0 * uniform_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace dnnd::util

// Streaming summary statistics for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace dnnd::util {

/// Welford online mean/variance plus min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a retained sample (sorts a copy; fine for bench
/// result sets, not for per-message hot paths).
[[nodiscard]] inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const double idx =
      p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace dnnd::util

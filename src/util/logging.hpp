// Minimal leveled logger with an optional structured-JSON line format.
//
// Distributed algorithms produce per-rank diagnostics; the logger prefixes
// the rank (when set) so interleaved output stays attributable. Output goes
// to stderr by default; the level is process-global and settable from
// DNND_LOG_LEVEL.
//
// Telemetry correlation: set DNND_LOG_FORMAT=json (or set_log_format) and
// every line becomes one JSON object with a timestamp on the same
// monotonic clock as trace.json / timeseries.json, plus the calling
// thread's active trace id when a sampled message is being handled (the
// comm layer maintains it around traced handler dispatch). Grepping a
// trace id from trace.json across the log then yields exactly the lines
// that ran on behalf of that message chain.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dnnd::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };
enum class LogFormat : int { kText = 0, kJson = 1 };

/// Returns the process-wide log level (initialized once from the
/// DNND_LOG_LEVEL environment variable: error|warn|info|debug).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Process-wide line format (initialized once from DNND_LOG_FORMAT:
/// text|json; default text).
LogFormat log_format();
void set_log_format(LogFormat format);

/// Redirects formatted lines (without trailing newline) away from stderr —
/// for tests and embedders. Pass nullptr to restore stderr. Not
/// thread-safe against concurrent log_line calls; install before logging.
void set_log_sink(std::function<void(std::string_view)> sink);

/// The calling thread's active trace id (0 = none). The communicator sets
/// it while a traced message's handler runs so log lines emitted from
/// handler code carry the id that trace.json's flow events use.
void set_active_trace(std::uint64_t trace_id) noexcept;
[[nodiscard]] std::uint64_t active_trace() noexcept;

/// Writes one formatted line if `level` is enabled.
/// `rank` < 0 means "not rank-attributed" (single-process context).
void log_line(LogLevel level, int rank, const std::string& message);

/// Stream-style single-line logger: LogStream(LogLevel::kInfo, rank) << ...;
/// flushes on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, int rank = -1) : level_(level), rank_(rank) {}
  ~LogStream() { log_line(level_, rank_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  int rank_;
  std::ostringstream stream_;
};

}  // namespace dnnd::util

#define DNND_LOG_INFO() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kInfo)
#define DNND_LOG_WARN() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kWarn)
#define DNND_LOG_ERROR() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kError)
#define DNND_LOG_DEBUG() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kDebug)

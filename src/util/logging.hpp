// Minimal leveled logger.
//
// Distributed algorithms produce per-rank diagnostics; the logger prefixes
// the rank (when set) so interleaved output stays attributable. Output goes
// to stderr; the level is process-global and settable from DNND_LOG_LEVEL.
#pragma once

#include <sstream>
#include <string>

namespace dnnd::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Returns the process-wide log level (initialized once from the
/// DNND_LOG_LEVEL environment variable: error|warn|info|debug).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Writes one formatted line to stderr if `level` is enabled.
/// `rank` < 0 means "not rank-attributed" (single-process context).
void log_line(LogLevel level, int rank, const std::string& message);

/// Stream-style single-line logger: LogStream(LogLevel::kInfo, rank) << ...;
/// flushes on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, int rank = -1) : level_(level), rank_(rank) {}
  ~LogStream() { log_line(level_, rank_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  int rank_;
  std::ostringstream stream_;
};

}  // namespace dnnd::util

#define DNND_LOG_INFO() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kInfo)
#define DNND_LOG_WARN() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kWarn)
#define DNND_LOG_ERROR() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kError)
#define DNND_LOG_DEBUG() ::dnnd::util::LogStream(::dnnd::util::LogLevel::kDebug)

// Hash utilities used for data partitioning across ranks.
//
// DNND distributes points and their neighbor lists by hashing the vertex id
// (paper §4: "based on the hash values of the vertex IDs"). The partition
// hash must be stable across processes and independent of
// std::hash (whose value is unspecified), so we fix a concrete mixer.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace dnnd::util {

/// Stateless 64-bit mix (Stafford variant 13 of the murmur3 finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string; used for type names in the pmem directory.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combines two hashes (boost::hash_combine style, 64-bit constant).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

namespace detail {
/// Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320) lookup table.
inline constexpr std::array<std::uint32_t, 256> crc32_table = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}();
}  // namespace detail

/// Streaming CRC-32: feed chunks via update(), read value(). Used by the
/// checkpoint store to validate generation files (a torn or bit-flipped
/// write must be detected, never loaded).
class Crc32 {
 public:
  void update(const void* data, std::size_t bytes) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      state_ = detail::crc32_table[(state_ ^ p[i]) & 0xFFu] ^ (state_ >> 8);
    }
  }
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte span ("123456789" -> 0xCBF43926).
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> bytes) noexcept {
  Crc32 crc;
  crc.update(bytes.data(), bytes.size());
  return crc.value();
}

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) noexcept {
  Crc32 crc;
  crc.update(bytes.data(), bytes.size());
  return crc.value();
}

/// Owner rank of a vertex id. All modules must agree on this mapping.
[[nodiscard]] constexpr int owner_rank(std::uint64_t vertex_id, int num_ranks) noexcept {
  return static_cast<int>(mix64(vertex_id) % static_cast<std::uint64_t>(num_ranks));
}

}  // namespace dnnd::util

// Hash utilities used for data partitioning across ranks.
//
// DNND distributes points and their neighbor lists by hashing the vertex id
// (paper §4: "based on the hash values of the vertex IDs"). The partition
// hash must be stable across processes and independent of
// std::hash (whose value is unspecified), so we fix a concrete mixer.
#pragma once

#include <cstdint>
#include <string_view>

namespace dnnd::util {

/// Stateless 64-bit mix (Stafford variant 13 of the murmur3 finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string; used for type names in the pmem directory.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combines two hashes (boost::hash_combine style, 64-bit constant).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Owner rank of a vertex id. All modules must agree on this mapping.
[[nodiscard]] constexpr int owner_rank(std::uint64_t vertex_id, int num_ranks) noexcept {
  return static_cast<int>(mix64(vertex_id) % static_cast<std::uint64_t>(num_ranks));
}

}  // namespace dnnd::util

// Minimal JSON support: an escaping string writer for the telemetry
// exporters and a validating recursive-descent parser used by tests (and
// any tool that wants to read metrics.json / trace.json back).
//
// The parser builds a full document tree; it is meant for small
// machine-readable artifacts, not for streaming gigabyte traces. Numbers
// are stored as double, which is exact for the integer counters we emit
// up to 2^53 — far beyond anything the simulator produces.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dnnd::util::json {

/// Writes `s` as a JSON string literal (quotes + escapes).
inline void write_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

class Value;
using Array = std::vector<Value>;
/// std::map keeps member iteration deterministic for test assertions.
using Object = std::map<std::string, Value, std::less<>>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : storage_(nullptr) {}
  Value(Storage storage) : storage_(std::move(storage)) {}

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_number() const { return holds<double>(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<Array>(); }
  [[nodiscard]] bool is_object() const { return holds<Object>(); }

  [[nodiscard]] bool as_bool() const { return get<bool>(); }
  [[nodiscard]] double as_number() const { return get<double>(); }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>();
  }
  [[nodiscard]] const Array& as_array() const { return get<Array>(); }
  [[nodiscard]] const Object& as_object() const { return get<Object>(); }

  /// Object member access; throws on missing key or non-object.
  [[nodiscard]] const Value& at(std::string_view key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) {
      throw std::out_of_range("json: missing key '" + std::string(key) + "'");
    }
    return it->second;
  }
  [[nodiscard]] bool contains(std::string_view key) const {
    return is_object() && as_object().find(key) != as_object().end();
  }

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(storage_);
  }
  template <typename T>
  [[nodiscard]] const T& get() const {
    if (!holds<T>()) throw std::runtime_error("json: wrong value type");
    return std::get<T>(storage_);
  }

  Storage storage_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return Value(parse_number());
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // ASCII-only emitter; non-ASCII escapes round-trip as '?'.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits");
    }
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; throws std::runtime_error on malformed
/// input (including trailing garbage).
[[nodiscard]] inline Value parse(std::string_view text) {
  return detail::Parser(text).parse_document();
}

}  // namespace dnnd::util::json

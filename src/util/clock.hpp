// Process-global monotonic clock, microsecond resolution.
//
// Every timestamped artifact a run produces — trace spans, flow events,
// time-series snapshots, structured log lines — must share one origin or
// they cannot be correlated offline. This is that origin: the first call
// in the process pins the epoch, and every later call (from any thread /
// simulated rank) reports microseconds since it. Exporters additionally
// subtract a *per-run* origin so artifacts from consecutive runs in one
// process both start near zero (telemetry/trace.hpp).
#pragma once

#include <cstdint>

namespace dnnd::util {

/// Microseconds since the process-global monotonic epoch (pinned by the
/// first call in the process). Monotonic and thread-safe.
[[nodiscard]] std::uint64_t monotonic_us();

}  // namespace dnnd::util

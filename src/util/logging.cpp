#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "util/clock.hpp"
#include "util/json.hpp"

namespace dnnd::util {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("DNND_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

LogFormat format_from_env() {
  const char* env = std::getenv("DNND_LOG_FORMAT");
  if (env != nullptr && std::strcmp(env, "json") == 0) return LogFormat::kJson;
  return LogFormat::kText;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

std::atomic<int>& format_storage() {
  static std::atomic<int> format{static_cast<int>(format_from_env())};
  return format;
}

std::function<void(std::string_view)>& sink_storage() {
  static std::function<void(std::string_view)> sink;
  return sink;
}

thread_local std::uint64_t t_active_trace = 0;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

LogFormat log_format() {
  return static_cast<LogFormat>(format_storage().load());
}

void set_log_format(LogFormat format) {
  format_storage().store(static_cast<int>(format));
}

void set_log_sink(std::function<void(std::string_view)> sink) {
  sink_storage() = std::move(sink);
}

void set_active_trace(std::uint64_t trace_id) noexcept {
  t_active_trace = trace_id;
}

std::uint64_t active_trace() noexcept { return t_active_trace; }

void log_line(LogLevel level, int rank, const std::string& message) {
  if (static_cast<int>(level) > level_storage().load()) return;
  // One mutex-protected write per line keeps lines whole under the
  // threaded driver without any per-message allocation on the fast path.
  static std::mutex io_mutex;
  const std::lock_guard<std::mutex> lock(io_mutex);
  if (log_format() == LogFormat::kJson) {
    // Same monotonic clock as trace.json/timeseries.json; same hex id
    // spelling as the flow events — the line joins the trace by string
    // equality, no offline clock alignment needed.
    std::ostringstream os;
    os << "{\"ts_us\":" << monotonic_us() << ",\"level\":\""
       << level_name(level) << '"';
    if (rank >= 0) os << ",\"rank\":" << rank;
    if (t_active_trace != 0) {
      char buf[19];
      std::snprintf(buf, sizeof buf, "0x%llx",
                    static_cast<unsigned long long>(t_active_trace));
      os << ",\"trace\":\"" << buf << '"';
    }
    os << ",\"msg\":";
    json::write_string(os, message);
    os << '}';
    const std::string line = os.str();
    if (sink_storage()) {
      sink_storage()(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
    return;
  }
  if (sink_storage()) {
    std::string line = "[dnnd ";
    line += level_name(level);
    if (rank >= 0) line += " r" + std::to_string(rank);
    line += "] " + message;
    sink_storage()(line);
    return;
  }
  if (rank >= 0) {
    std::fprintf(stderr, "[dnnd %s r%d] %s\n", level_name(level), rank,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[dnnd %s] %s\n", level_name(level), message.c_str());
  }
}

}  // namespace dnnd::util

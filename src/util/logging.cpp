#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dnnd::util {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("DNND_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

void log_line(LogLevel level, int rank, const std::string& message) {
  if (static_cast<int>(level) > level_storage().load()) return;
  // One mutex-protected fwrite per line keeps lines whole under the
  // threaded driver without any per-message allocation on the fast path.
  static std::mutex io_mutex;
  const std::lock_guard<std::mutex> lock(io_mutex);
  if (rank >= 0) {
    std::fprintf(stderr, "[dnnd %s r%d] %s\n", level_name(level), rank,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[dnnd %s] %s\n", level_name(level), message.c_str());
  }
}

}  // namespace dnnd::util

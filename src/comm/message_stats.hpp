// Per-handler message accounting.
//
// Figure 4 of the paper reports the *number* and *total size* of messages
// sent during neighbor checks, broken down by message type (Type 1, Type 2,
// Type 2+, Type 3). Each message type is a registered handler here, so the
// accounting falls out of the comm layer rather than being sprinkled
// through the algorithm. "Remote" means destination rank != source rank
// (the paper counts messages sent off-node; in the simulation each rank
// models one node).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnnd::comm {

using HandlerId = std::uint32_t;

struct HandlerCounters {
  std::string label;
  std::uint64_t remote_messages = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t local_bytes = 0;

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return remote_messages + local_messages;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return remote_bytes + local_bytes;
  }
};

/// Accumulates send-side counters per registered handler. One instance per
/// Communicator (i.e. per rank); only that rank's thread writes to it.
class MessageStats {
 public:
  /// Called by Communicator::register_handler.
  void add_handler(const std::string& label);

  void on_send(HandlerId handler, bool remote, std::size_t bytes) noexcept;

  [[nodiscard]] const HandlerCounters& handler(HandlerId id) const {
    return per_handler_.at(id);
  }
  [[nodiscard]] const std::vector<HandlerCounters>& handlers() const noexcept {
    return per_handler_;
  }

  /// Sums a counter set over all handlers whose label matches `label`.
  [[nodiscard]] HandlerCounters by_label(const std::string& label) const;

  [[nodiscard]] std::uint64_t total_remote_messages() const noexcept;
  [[nodiscard]] std::uint64_t total_remote_bytes() const noexcept;

  /// Element-wise merge; handler lists must have been registered in the
  /// same order on both sides (true for SPMD engines). A registry size or
  /// label mismatch throws std::invalid_argument *before* any counter is
  /// touched, so a failed merge never leaves *this partially updated.
  void merge(const MessageStats& other);

  /// Zeroes all counters but keeps the handler registry.
  void reset() noexcept;

 private:
  std::vector<HandlerCounters> per_handler_;
};

}  // namespace dnnd::comm

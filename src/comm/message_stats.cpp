#include "comm/message_stats.hpp"

#include <stdexcept>
#include <string>

namespace dnnd::comm {

void MessageStats::add_handler(const std::string& label) {
  HandlerCounters counters;
  counters.label = label;
  per_handler_.push_back(std::move(counters));
}

void MessageStats::on_send(HandlerId handler, bool remote,
                           std::size_t bytes) noexcept {
  auto& c = per_handler_[handler];
  if (remote) {
    ++c.remote_messages;
    c.remote_bytes += bytes;
  } else {
    ++c.local_messages;
    c.local_bytes += bytes;
  }
}

HandlerCounters MessageStats::by_label(const std::string& label) const {
  HandlerCounters sum;
  sum.label = label;
  for (const auto& c : per_handler_) {
    if (c.label != label) continue;
    sum.remote_messages += c.remote_messages;
    sum.remote_bytes += c.remote_bytes;
    sum.local_messages += c.local_messages;
    sum.local_bytes += c.local_bytes;
  }
  return sum;
}

std::uint64_t MessageStats::total_remote_messages() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : per_handler_) n += c.remote_messages;
  return n;
}

std::uint64_t MessageStats::total_remote_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : per_handler_) n += c.remote_bytes;
  return n;
}

void MessageStats::merge(const MessageStats& other) {
  if (per_handler_.empty()) {
    per_handler_ = other.per_handler_;
    return;
  }
  if (other.per_handler_.empty()) return;
  if (other.per_handler_.size() != per_handler_.size()) {
    throw std::invalid_argument("MessageStats::merge: handler registries differ");
  }
  // Validate every label before mutating anything: a mismatch discovered
  // mid-loop must not leave earlier counters already merged (strong
  // exception guarantee, so callers can catch and keep using *this).
  for (std::size_t i = 0; i < per_handler_.size(); ++i) {
    if (per_handler_[i].label != other.per_handler_[i].label) {
      throw std::invalid_argument(
          "MessageStats::merge: handler label mismatch at id " +
          std::to_string(i) + " ('" + per_handler_[i].label + "' vs '" +
          other.per_handler_[i].label +
          "'); registries must be registered in the same order");
    }
  }
  for (std::size_t i = 0; i < per_handler_.size(); ++i) {
    auto& dst = per_handler_[i];
    const auto& src = other.per_handler_[i];
    dst.remote_messages += src.remote_messages;
    dst.remote_bytes += src.remote_bytes;
    dst.local_messages += src.local_messages;
    dst.local_bytes += src.local_bytes;
  }
}

void MessageStats::reset() noexcept {
  for (auto& c : per_handler_) {
    c.remote_messages = c.remote_bytes = 0;
    c.local_messages = c.local_bytes = 0;
  }
}

}  // namespace dnnd::comm

// Environment: owns the simulated world, one Communicator per rank, and a
// phase driver.
//
// SPMD programs built on this runtime are structured as *phases*: a phase
// runs a function once per rank (issuing async calls), then the driver
// processes messages until global quiescence — the equivalent of
// ygm::comm::barrier(). Two drivers are provided:
//
//   * kSequential — ranks execute in order on the calling thread and
//     inbound messages are delivered round-robin. Fully deterministic for
//     a fixed seed; the default for tests and benches.
//   * kThreaded — one std::thread per rank with a counting-based
//     termination-detecting barrier; validates that engine code has no
//     hidden shared-memory dependencies between ranks.
//
// Collectives (reductions) are driver-level: execute_phase returns the
// per-rank values produced by the phase function and the caller reduces
// them, which keeps engine code free of blocking calls.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include <iosfwd>
#include <string>

#include "comm/communicator.hpp"
#include "mpi/fault_injector.hpp"
#include "mpi/world.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"

namespace dnnd::comm {

enum class DriverKind { kSequential, kThreaded };

/// Default failure-detector timeout when Config::failure_timeout_ticks is
/// auto (0) and the plan schedules crashes. Far above any honest silence
/// the protocol produces (max retransmit backoff is 128 ticks) and far
/// below retry exhaustion (~3700 ticks), so detection is both
/// false-positive-free and much faster than the TransportError backstop.
inline constexpr std::uint64_t kAutoFailureTimeoutTicks = 256;

/// Sentinel for Config::failure_timeout_ticks: never detect.
inline constexpr std::uint64_t kFailureDetectionOff = ~std::uint64_t{0};

struct Config {
  int num_ranks = 1;
  DriverKind driver = DriverKind::kSequential;
  /// Per-destination send-buffer threshold in bytes (YGM-style internal
  /// buffering). 0 = unbuffered.
  std::size_t send_buffer_bytes = 64 * 1024;
  /// Base seed; engines derive per-rank streams from it.
  std::uint64_t seed = 42;
  /// Fault schedule for the transport. The default (empty) plan installs
  /// nothing: the transport stays perfectly reliable and the communicators
  /// skip the retry/dedup protocol entirely.
  mpi::FaultPlan fault_plan;
  /// Retry/dedup protocol knobs; only consulted when fault_plan is active.
  RetryConfig retry;
  /// Crash-detection timeout in ticks. 0 = auto: detection turns on (at
  /// kAutoFailureTimeoutTicks) iff the fault plan schedules crash-stop
  /// faults. Auto keeps crash-free plans bit-identical to PR 1 — heartbeat
  /// traffic consumes injector randomness, so enabling detection changes a
  /// plan's fault schedule. Set to kFailureDetectionOff to force detection
  /// off even with crashes scheduled (retransmit exhaustion then surfaces
  /// the failure as TransportError instead).
  std::uint64_t failure_timeout_ticks = 0;
  /// Heartbeat period in ticks while detection is on.
  std::uint32_t heartbeat_period_ticks = 8;
  /// Causal-tracing sample period: every Nth root message starts a traced
  /// chain (flow events + handler child spans in trace.json). 0 disables
  /// tracing — zero trace bytes on the wire. Ignored when the library is
  /// built with DNND_TELEMETRY=OFF.
  std::uint64_t trace_sample_period = 0;
  /// Time-series tick: when non-zero, the driver snapshots every
  /// registered counter/gauge at most once per this many microseconds (at
  /// phase boundaries). Explicit snapshots (e.g. the runner's
  /// per-iteration hook) are independent of the tick. 0 disables the tick
  /// path at the cost of a single integer compare per barrier.
  std::uint64_t timeseries_tick_us = 0;
};

class Environment {
 public:
  explicit Environment(Config config);
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  [[nodiscard]] int num_ranks() const noexcept { return config_.num_ranks; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] mpi::World& world() noexcept { return *world_; }
  [[nodiscard]] Communicator& comm(int rank) {
    return *comms_.at(static_cast<std::size_t>(rank));
  }

  /// Runs `fn(rank)` on every rank, then processes messages to global
  /// quiescence (the barrier).
  void execute_phase(const std::function<void(int)>& fn);

  /// Like execute_phase but collects one value per rank.
  template <typename T>
  std::vector<T> execute_phase_collect(const std::function<T(int)>& fn) {
    std::vector<T> results(static_cast<std::size_t>(num_ranks()));
    execute_phase([&](int rank) {
      results[static_cast<std::size_t>(rank)] = fn(rank);
    });
    return results;
  }

  /// Convenience sum-reduction over execute_phase_collect.
  std::uint64_t execute_phase_sum(const std::function<std::uint64_t(int)>& fn) {
    const auto values = execute_phase_collect<std::uint64_t>(fn);
    return std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  }

  /// Processes outstanding messages to quiescence without a phase body.
  void quiesce();

  /// Send-side message statistics merged over all ranks.
  [[nodiscard]] MessageStats aggregate_stats() const;

  /// Retry/dedup protocol counters merged over all ranks (all zero when
  /// the fault plan is empty).
  [[nodiscard]] TransportCounters aggregate_transport_counters() const;

  /// Injector event counts; zeros when no fault plan is installed.
  [[nodiscard]] mpi::FaultStats fault_stats() const;

  /// Per-rank telemetry sink (shorthand for comm(rank).telemetry()).
  [[nodiscard]] telemetry::Telemetry& telemetry(int rank) {
    return comm(rank).telemetry();
  }

  /// Metrics registries of all ranks merged by name (counters sum,
  /// gauges max, histograms bucket-wise sum). Empty when the library is
  /// built with DNND_TELEMETRY=OFF.
  [[nodiscard]] telemetry::MetricsRegistry aggregate_metrics() const;

  /// Time-series sampler attached to every rank's registry. Callers (the
  /// NN-Descent runner) take explicit snapshots via sample_timeseries();
  /// the driver additionally ticks it at phase boundaries when
  /// Config::timeseries_tick_us is non-zero.
  [[nodiscard]] telemetry::Sampler& sampler() noexcept { return sampler_; }

  /// Takes one labelled snapshot of every rank's counters/gauges now.
  /// Compiles to nothing under DNND_TELEMETRY=OFF — the document is then
  /// emitted with zero snapshots (schema stays valid; tooling sees no
  /// data, not a parse error).
  void sample_timeseries(const std::string& label) {
    if constexpr (telemetry::kEnabled) sampler_.sample(label);
  }

  /// Writes the captured snapshots as a dnnd.timeseries.v1 document,
  /// timestamps relative to this run's epoch.
  void write_timeseries_json(std::ostream& os) const;

  /// Writes the merged machine-readable metrics document:
  ///   {"schema":"dnnd.metrics.v1","enabled":...,"ranks":N,
  ///    "handlers":[per-label send counters],"transport":{...},
  ///    "metrics":{merged registry}}
  /// With DNND_TELEMETRY=OFF the document is still valid JSON (enabled
  /// false, empty metrics) so downstream tooling never special-cases.
  void write_metrics_json(std::ostream& os) const;

  /// Writes all ranks' trace buffers as one Chrome trace (catapult JSON;
  /// load in chrome://tracing or Perfetto). pid = rank, tid = driver
  /// thread within the rank. Timestamps are relative to this run's epoch
  /// (the Environment's construction time on the shared monotonic clock),
  /// so t=0 is run start on every rank.
  void write_chrome_trace(std::ostream& os) const;

  /// Convenience file form of the exporters above. An empty
  /// timeseries_path skips the time-series document.
  void export_telemetry(const std::string& metrics_path,
                        const std::string& trace_path,
                        const std::string& timeseries_path = {}) const;

  /// Resets every rank's message counters (between experiment sections).
  void reset_stats();

  /// Phase counter since construction (the "epoch" stamped onto transport
  /// and rank-failure errors): how many execute_phase barriers completed.
  [[nodiscard]] std::uint64_t phase_epoch() const noexcept {
    return phase_epoch_;
  }

 private:
  void run_sequential(const std::function<void(int)>& fn);
  void run_threaded(const std::function<void(int)>& fn);

  /// Ground-truth liveness check after a barrier: quiescence with a dead
  /// rank means the crash stranded no messages (nothing was owed to it),
  /// which the timeout detector alone cannot distinguish from a clean
  /// finish. Without this check such a phase would silently complete with
  /// the dead rank's work missing.
  void ensure_all_alive() const;

  /// Records one barrier drain into rank `r`'s telemetry (histogram +
  /// trace event). No-op under DNND_TELEMETRY=OFF.
  void record_barrier_wait(int rank, double seconds);

  Config config_;
  std::unique_ptr<mpi::World> world_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  std::uint64_t phase_epoch_ = 0;
  std::vector<telemetry::MetricId> h_barrier_wait_;  ///< per-rank histogram id
  telemetry::Sampler sampler_;
  /// Run epoch on the shared monotonic clock; exporters subtract it so all
  /// artifacts (trace, timeseries) start at t=0 for this run.
  std::uint64_t epoch_us_ = 0;
};

}  // namespace dnnd::comm

// Asynchronous remote-call layer (the YGM substitution, DESIGN.md §2).
//
// YGM's programming model is fire-and-forget RPC: a sender provides a
// handler and arguments for execution on a destination rank; the handler
// runs "at an unspecified time in the future"; a collective barrier waits
// for global quiescence. This class reproduces that model on top of the
// simulated transport:
//
//   * handlers are registered once per rank (same order on every rank,
//     as in SPMD code) and addressed by dense HandlerId;
//   * async() serializes the arguments into a per-destination send buffer
//     (YGM's internal buffering, §4.1) and flushes the buffer to the
//     transport when it exceeds `send_buffer_bytes`;
//   * process_available() delivers inbound messages by invoking handlers;
//     the drivers in Environment run it to quiescence, which is the
//     equivalent of ygm::comm::barrier().
//
// Thread safety: a Communicator belongs to one rank and is only touched by
// that rank's thread (handlers for rank r run on rank r's thread). The
// underlying World does the cross-thread synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/message_stats.hpp"
#include "mpi/world.hpp"
#include "serial/archive.hpp"

namespace dnnd::comm {

/// A handler receives the source rank and an archive positioned at its
/// serialized arguments; it must consume exactly those arguments.
using HandlerFn = std::function<void(int source, serial::InArchive&)>;

class Communicator {
 public:
  /// `send_buffer_bytes`: per-destination buffering threshold; 0 means
  /// send every message immediately (useful for tests).
  Communicator(mpi::World& world, int rank, std::size_t send_buffer_bytes);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size(); }

  /// Registers a handler; every rank must register the same handlers in
  /// the same order so ids agree across ranks.
  HandlerId register_handler(std::string label, HandlerFn fn);

  /// Fire-and-forget remote call: runs `handler` on `dest` with `args`.
  /// Arguments are serialized immediately, so they may refer to
  /// stack-local data. Self-sends take the same serialized path (and are
  /// accounted as local messages).
  template <typename... Args>
  void async(int dest, HandlerId handler, const Args&... args) {
    auto& buffer = send_buffers_[static_cast<std::size_t>(dest)];
    const std::size_t before = buffer.archive.size();
    buffer.archive.write_size(handler);
    serial::pack(buffer.archive, args...);
    const std::size_t message_bytes = buffer.archive.size() - before;
    ++buffer.message_count;
    world_->note_messages_submitted(1);
    stats_.on_send(handler, dest != rank_, message_bytes);
    ++async_count_;
    if (send_buffer_bytes_ == 0 || buffer.archive.size() >= send_buffer_bytes_) {
      flush_to(dest);
    }
  }

  /// Pushes all buffered messages to the transport.
  void flush();

  /// Delivers up to `max_datagrams` inbound datagrams by running their
  /// handlers. Returns the number of application messages processed.
  std::size_t process_available(
      std::size_t max_datagrams = static_cast<std::size_t>(-1));

  /// Total async() calls issued by this rank (drives the §4.4 batching
  /// policy in the engines).
  [[nodiscard]] std::uint64_t async_count() const noexcept {
    return async_count_;
  }

  [[nodiscard]] MessageStats& stats() noexcept { return stats_; }
  [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }

  [[nodiscard]] mpi::World& world() noexcept { return *world_; }

 private:
  struct SendBuffer {
    serial::OutArchive archive;
    std::uint32_t message_count = 0;
  };

  void flush_to(int dest);
  void dispatch(const mpi::Datagram& datagram);

  mpi::World* world_;
  int rank_;
  std::size_t send_buffer_bytes_;
  std::vector<SendBuffer> send_buffers_;
  struct Handler {
    std::string label;
    HandlerFn fn;
  };
  std::vector<Handler> handlers_;
  MessageStats stats_;
  std::uint64_t async_count_ = 0;
};

}  // namespace dnnd::comm

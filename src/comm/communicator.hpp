// Asynchronous remote-call layer (the YGM substitution, DESIGN.md §2).
//
// YGM's programming model is fire-and-forget RPC: a sender provides a
// handler and arguments for execution on a destination rank; the handler
// runs "at an unspecified time in the future"; a collective barrier waits
// for global quiescence. This class reproduces that model on top of the
// simulated transport:
//
//   * handlers are registered once per rank (same order on every rank,
//     as in SPMD code) and addressed by dense HandlerId;
//   * async() serializes the arguments into a per-destination send buffer
//     (YGM's internal buffering, §4.1) and flushes the buffer to the
//     transport when it exceeds `send_buffer_bytes`. A full buffer is
//     flushed *before* the next message is packed, never mid-pack, so a
//     multi-argument message can never be split across two datagrams;
//   * process_available() delivers inbound messages by invoking handlers;
//     the drivers in Environment run it to quiescence, which is the
//     equivalent of ygm::comm::barrier().
//
// Reliability (DESIGN.md §2 failure model): when the World has a
// FaultInjector installed, every outbound data datagram is stamped with a
// per-(source → dest) sequence number and kept until acknowledged.
// Receivers suppress duplicate sequence numbers (so each application
// message reaches its handler exactly once and the submitted/processed
// counters stay exact — quiescent() remains a true fixpoint under any
// fault schedule) and acknowledge with a cumulative + selective ack.
// Unacknowledged datagrams are retransmitted with capped exponential
// backoff; exhausting the retry budget throws TransportError rather than
// livelocking. When no injector is installed none of this state exists and
// the fast path is identical to the unreliable transport.
//
// Causal tracing (telemetry builds): a sampled message carries a
// TraceContext — trace id, the send-side span id (which doubles as the
// Chrome-trace flow id), hop count, and the submission timestamp — inside
// its envelope. The traced/untraced distinction rides the low bit of the
// handler-id varint, so an *untraced* message costs zero extra wire
// bytes; with DNND_TELEMETRY=OFF the envelope is the plain handler id and
// no trace code exists at all. Handler dispatch of a traced message opens
// a child span (queue latency = handler start − submission; duration =
// handler time), emits the flow-finish event that stitches it to the
// sender, and makes the context current so messages the handler sends
// propagate the trace — Type-1 → Type-2+ → Type-3 chains stay connected
// across any number of ranks.
//
// Thread safety: a Communicator belongs to one rank and is only touched by
// that rank's thread (handlers for rank r run on rank r's thread). The
// underlying World does the cross-thread synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/message_stats.hpp"
#include "mpi/world.hpp"
#include "serial/archive.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace dnnd::comm {

/// A handler receives the source rank and an archive positioned at its
/// serialized arguments; it must consume exactly those arguments.
using HandlerFn = std::function<void(int source, serial::InArchive&)>;

/// Propagation stops past this depth: a runaway handler loop cannot grow
/// envelopes without bound. Far above the engine's reply chains (depth 3)
/// and the distributed query's bounded hop walks.
inline constexpr std::uint32_t kMaxTraceHops = 32;

/// Causal trace context as carried in a traced message's envelope.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = not traced
  std::uint64_t span_id = 0;   ///< the message's own span id == flow id
  std::uint32_t hop = 0;       ///< 1 for a root message, +1 per handler
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// Retry/dedup protocol knobs. Ticks are retransmission-clock steps: one
/// tick per process_available() call on the owning rank.
struct RetryConfig {
  std::uint32_t max_retries = 32;           ///< then TransportError
  /// First retransmit delay. Acks ride the receiver's normal processing
  /// loop, so under backlog they take many ticks to come back; too small a
  /// value floods the wire with spurious (deduped but wasted) retransmits.
  std::uint32_t initial_backoff_ticks = 8;
  std::uint32_t max_backoff_ticks = 128;  ///< exponential backoff cap
};

/// Thrown when a datagram exhausts its retry budget: the channel is
/// considered failed and the error surfaces to the engine instead of the
/// barrier spinning forever. Carries full channel context — source, dest,
/// sequence number, attempt count, and the engine epoch (build phase
/// counter) active when the channel died — so a supervisor can log exactly
/// where a build was interrupted.
class TransportError : public std::runtime_error {
 public:
  TransportError(const std::string& what, int source, int dest,
                 std::uint64_t seq, std::uint32_t attempts,
                 std::uint64_t epoch = 0)
      : std::runtime_error(what),
        source_(source),
        dest_(dest),
        seq_(seq),
        attempts_(attempts),
        epoch_(epoch) {}

  [[nodiscard]] int source() const noexcept { return source_; }
  [[nodiscard]] int dest() const noexcept { return dest_; }
  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }
  [[nodiscard]] std::uint32_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  int source_;
  int dest_;
  std::uint64_t seq_;
  std::uint32_t attempts_;
  std::uint64_t epoch_;
};

/// Thrown by the failure detector when a peer rank has been silent past the
/// configured timeout: the rank is presumed crashed (crash-stop model) and
/// the current phase cannot complete. Deliberately NOT derived from
/// TransportError — phase timing code catches and re-wraps TransportError,
/// while a RankFailureError must propagate intact to the recovery driver.
class RankFailureError : public std::runtime_error {
 public:
  RankFailureError(const std::string& what, int failed_rank, int detected_by,
                   std::uint64_t epoch, std::uint64_t last_heard_tick,
                   std::uint64_t silent_ticks)
      : std::runtime_error(what),
        failed_rank_(failed_rank),
        detected_by_(detected_by),
        epoch_(epoch),
        last_heard_tick_(last_heard_tick),
        silent_ticks_(silent_ticks) {}

  [[nodiscard]] int failed_rank() const noexcept { return failed_rank_; }
  [[nodiscard]] int detected_by() const noexcept { return detected_by_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t last_heard_tick() const noexcept {
    return last_heard_tick_;
  }
  [[nodiscard]] std::uint64_t silent_ticks() const noexcept {
    return silent_ticks_;
  }

 private:
  int failed_rank_;
  int detected_by_;
  std::uint64_t epoch_;
  std::uint64_t last_heard_tick_;
  std::uint64_t silent_ticks_;
};

/// Heartbeat-based crash detection knobs. Only consulted when the
/// retry/dedup protocol is active (a fault injector is installed);
/// `failure_timeout_ticks == 0` disables detection entirely, leaving
/// retransmit exhaustion (TransportError) as the only failure backstop.
struct FailureDetectorConfig {
  /// Every rank posts an empty kHeartbeat datagram to every peer each time
  /// its retransmission clock passes a multiple of this period.
  std::uint32_t heartbeat_period_ticks = 8;
  /// A peer silent (no datagram of any kind collected from it) for more
  /// than this many local ticks is declared failed. 0 = detection off.
  std::uint64_t failure_timeout_ticks = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return failure_timeout_ticks != 0;
  }
};

/// Send/receive-side protocol counters (all zero when the protocol is off).
struct TransportCounters {
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t heartbeats_sent = 0;
  /// Heartbeat periods a declared-failed rank was silent for (recorded at
  /// detection time, so nonzero iff a RankFailureError was raised).
  std::uint64_t heartbeats_missed = 0;

  void merge(const TransportCounters& other) noexcept {
    retransmits += other.retransmits;
    duplicates_suppressed += other.duplicates_suppressed;
    acks_sent += other.acks_sent;
    acks_received += other.acks_received;
    heartbeats_sent += other.heartbeats_sent;
    heartbeats_missed += other.heartbeats_missed;
  }
};

class Communicator {
 public:
  /// `send_buffer_bytes`: per-destination buffering threshold; 0 means
  /// send every message immediately (useful for tests). The retry/dedup
  /// protocol switches on iff `world.faulty()` at construction time.
  /// `trace_sample_period`: every Nth root message (one with no inbound
  /// context to propagate) starts a new sampled trace; 0 disables tracing
  /// entirely — no trace bytes on the wire, no clock reads. Ignored under
  /// DNND_TELEMETRY=OFF.
  Communicator(mpi::World& world, int rank, std::size_t send_buffer_bytes,
               RetryConfig retry = {}, std::uint64_t trace_sample_period = 0,
               FailureDetectorConfig detector = {});

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size(); }

  /// Registers a handler; every rank must register the same handlers in
  /// the same order so ids agree across ranks.
  HandlerId register_handler(std::string label, HandlerFn fn);

  /// Fire-and-forget remote call: runs `handler` on `dest` with `args`.
  /// Arguments are serialized immediately, so they may refer to
  /// stack-local data. Self-sends take the same serialized path (and are
  /// accounted as local messages).
  template <typename... Args>
  void async(int dest, HandlerId handler, const Args&... args) {
    auto& buffer = send_buffers_[static_cast<std::size_t>(dest)];
    // Flush a full buffer *before* packing the next message. Checking
    // after the fact would tempt a mid-pack flush once a multi-arg
    // serial::pack pushes the buffer over the threshold, splitting a
    // partially packed message across two datagrams.
    if (send_buffer_bytes_ != 0 && buffer.message_count > 0 &&
        buffer.archive.size() >= send_buffer_bytes_) {
      flush_to(dest);
    }
    const std::size_t before = buffer.archive.size();
    if constexpr (telemetry::kEnabled) {
      // Envelope: handler id shifted left one bit, low bit = traced flag.
      // Untraced messages therefore serialize exactly one varint, the
      // same byte count the plain handler id costs (ids stay < 64).
      const TraceContext ctx = outbound_context();
      if (ctx.active()) {
        buffer.archive.write_size((static_cast<std::uint64_t>(handler) << 1) |
                                  1u);
        const std::uint64_t send_ts = telemetry::now_us();
        buffer.archive.write_size(ctx.trace_id);
        buffer.archive.write_size(ctx.span_id);
        buffer.archive.write_size(ctx.hop);
        buffer.archive.write_size(send_ts);
        // Flow start anchors to whatever span is open on this rank at
        // submission time (a phase span or the handler span that is
        // sending a follow-up).
        telemetry_.add_trace_event(make_flow_event(
            's', handlers_[handler].label, send_ts, ctx.span_id));
        telemetry_.add(c_traced_sends_);
      } else {
        buffer.archive.write_size(static_cast<std::uint64_t>(handler) << 1);
      }
    } else {
      buffer.archive.write_size(handler);
    }
    serial::pack(buffer.archive, args...);
    const std::size_t message_bytes = buffer.archive.size() - before;
    ++buffer.message_count;
    world_->note_messages_submitted(1);
    stats_.on_send(handler, dest != rank_, message_bytes);
    ++async_count_;
    if (send_buffer_bytes_ == 0) flush_to(dest);
  }

  /// Pushes all buffered messages to the transport.
  void flush();

  /// Delivers up to `max_datagrams` inbound datagrams by running their
  /// handlers. Returns the number of application messages processed.
  /// In reliable mode this call is also the protocol's clock: it sends
  /// pending acks and retransmits timed-out datagrams, so drain loops that
  /// poll it make progress even when nothing is arriving.
  std::size_t process_available(
      std::size_t max_datagrams = static_cast<std::size_t>(-1));

  /// Total async() calls issued by this rank (drives the §4.4 batching
  /// policy in the engines).
  [[nodiscard]] std::uint64_t async_count() const noexcept {
    return async_count_;
  }

  /// True when the retry/dedup protocol is active for this rank.
  [[nodiscard]] bool reliable() const noexcept { return reliable_; }

  // -- failure detection -------------------------------------------------

  /// True when heartbeat-based crash detection is running on this rank.
  [[nodiscard]] bool detecting_failures() const noexcept {
    return detect_failures_;
  }

  /// Sets the engine epoch (phase counter) attached to transport and
  /// rank-failure errors raised from this rank. Called by the Environment
  /// at each phase boundary.
  void set_epoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Raises RankFailureError if any peer has been silent past
  /// `failure_timeout_ticks`. No-op when detection is off, when this rank
  /// itself is dead (its frozen clocks must never accuse live peers), or
  /// before any tick has elapsed. The Environment's drain loops call this
  /// each polling round so a crash surfaces as a structured error instead
  /// of a barrier that never completes.
  void check_failures();

  [[nodiscard]] const TransportCounters& transport_counters() const noexcept {
    return transport_;
  }

  [[nodiscard]] MessageStats& stats() noexcept { return stats_; }
  [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }

  /// Per-rank telemetry sink (metrics + trace). Engines and services
  /// built on this communicator register their metrics here so one merge
  /// per rank collects the whole stack. All methods are no-ops when the
  /// library is built with DNND_TELEMETRY=OFF.
  [[nodiscard]] telemetry::Telemetry& telemetry() noexcept {
    return telemetry_;
  }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const noexcept {
    return telemetry_;
  }

  /// The trace context of the message whose handler is currently running
  /// on this rank (inactive outside traced dispatch). Exposed for tests
  /// and for services that want to tag their own artifacts.
  [[nodiscard]] const TraceContext& active_trace_context() const noexcept {
    return active_ctx_;
  }

  [[nodiscard]] mpi::World& world() noexcept { return *world_; }

 private:
  struct SendBuffer {
    serial::OutArchive archive;
    std::uint32_t message_count = 0;
  };

  /// Sender-side reliable channel state, one per destination.
  struct Pending {
    std::vector<std::byte> payload;
    std::uint32_t message_count = 0;
    std::uint64_t retry_at = 0;
    std::uint32_t backoff = 0;
    std::uint32_t attempts = 0;  ///< retransmissions so far
  };
  struct SendChannel {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Pending> pending;  ///< seq → awaiting ack
  };

  /// Receiver-side dedup state, one per source. A sequence number is
  /// "seen" iff seq <= cumulative or seq ∈ out_of_order.
  struct RecvChannel {
    std::uint64_t cumulative = 0;
    std::set<std::uint64_t> out_of_order;
    bool ack_due = false;
  };

  void flush_to(int dest);
  void dispatch(const mpi::Datagram& datagram);
  /// Runs one traced message's handler inside a child span: records queue
  /// latency, emits the flow-finish stitch, and makes `ctx` current so
  /// the handler's own sends propagate the trace.
  void dispatch_traced(int source, HandlerId handler_id,
                       const TraceContext& ctx, std::uint64_t send_ts,
                       serial::InArchive& archive);

  /// Context for the next outbound message: propagate the active inbound
  /// context (hop+1, fresh span id), or start a new sampled root trace,
  /// or inactive (the common case).
  [[nodiscard]] TraceContext outbound_context() {
    if (active_ctx_.active()) {
      if (active_ctx_.hop >= kMaxTraceHops) return {};
      return TraceContext{active_ctx_.trace_id, mint_id(),
                          active_ctx_.hop + 1};
    }
    if (trace_sample_period_ != 0 && ++root_countdown_ >= trace_sample_period_) {
      root_countdown_ = 0;
      return TraceContext{mint_id(), mint_id(), 1};
    }
    return {};
  }

  /// Ids unique across ranks: rank in the top bits, a counter below.
  [[nodiscard]] std::uint64_t mint_id() noexcept {
    return (static_cast<std::uint64_t>(rank_ + 1) << 40) | ++trace_seq_;
  }

  [[nodiscard]] telemetry::TraceEvent make_flow_event(char ph,
                                                      const std::string& name,
                                                      std::uint64_t ts_us,
                                                      std::uint64_t flow_id) {
    telemetry::TraceEvent e;
    e.name = name;
    e.category = "flow";
    e.ts_us = ts_us;
    e.ph = ph;
    e.flow_id = flow_id;
    return e;
  }

  /// Returns true when the datagram should be dispatched (fresh data);
  /// acks and duplicates are consumed here.
  bool reliable_receive(const mpi::Datagram& datagram);
  void send_pending_acks();
  void drive_retransmits();
  void maybe_send_heartbeats();

  mpi::World* world_;
  int rank_;
  std::size_t send_buffer_bytes_;
  std::vector<SendBuffer> send_buffers_;
  struct Handler {
    std::string label;
    HandlerFn fn;
  };
  std::vector<Handler> handlers_;
  MessageStats stats_;
  std::uint64_t async_count_ = 0;

  // -- telemetry (all recording no-ops under DNND_TELEMETRY=OFF) ---------
  telemetry::Telemetry telemetry_;
  std::vector<telemetry::MetricId> recv_counters_;  ///< per handler id
  telemetry::MetricId g_inbox_depth_ = 0;
  telemetry::MetricId c_retransmits_ = 0;
  telemetry::MetricId c_duplicates_ = 0;
  telemetry::MetricId c_acks_sent_ = 0;
  telemetry::MetricId c_acks_received_ = 0;

  // -- causal tracing state (only exercised when kEnabled) ---------------
  std::uint64_t trace_sample_period_ = 0;
  std::uint64_t root_countdown_ = 0;
  std::uint64_t trace_seq_ = 0;
  TraceContext active_ctx_;
  telemetry::MetricId c_traced_sends_ = 0;
  telemetry::MetricId h_queue_latency_ = 0;   ///< submit → handler start
  telemetry::MetricId h_handler_time_ = 0;    ///< traced handler duration
  telemetry::MetricId h_dgram_queue_ = 0;     ///< post → collect, all dgrams

  // -- retry/dedup protocol state (empty unless reliable_) ---------------
  bool reliable_ = false;
  RetryConfig retry_;
  std::uint64_t tick_ = 0;
  std::vector<SendChannel> send_channels_;
  std::vector<RecvChannel> recv_channels_;
  TransportCounters transport_;

  // -- failure-detector state (inert unless detect_failures_) ------------
  FailureDetectorConfig detector_;
  bool detect_failures_ = false;
  std::uint64_t epoch_ = 0;
  /// Local tick at which a datagram (of any kind) was last collected from
  /// each peer. Self-entry unused.
  std::vector<std::uint64_t> last_heard_;
  telemetry::MetricId c_heartbeats_sent_ = 0;
  telemetry::MetricId c_heartbeats_missed_ = 0;
};

}  // namespace dnnd::comm

#include "comm/environment.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "mpi/threaded_driver.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace dnnd::comm {

Environment::Environment(Config config)
    : config_(config),
      sampler_(config.timeseries_tick_us),
      epoch_us_(telemetry::now_us()) {
  if (config_.num_ranks < 1) {
    throw std::invalid_argument("Environment: num_ranks < 1");
  }
  world_ = std::make_unique<mpi::World>(config_.num_ranks);
  if (!config_.fault_plan.empty()) {
    world_->install_fault_injector(std::make_unique<mpi::FaultInjector>(
        config_.fault_plan, config_.num_ranks));
  }
  FailureDetectorConfig detector;
  detector.heartbeat_period_ticks =
      std::max<std::uint32_t>(1, config_.heartbeat_period_ticks);
  std::uint64_t timeout = config_.failure_timeout_ticks;
  if (timeout == 0) {
    timeout =
        config_.fault_plan.crashes.empty() ? 0 : kAutoFailureTimeoutTicks;
  }
  if (timeout == kFailureDetectionOff) timeout = 0;
  detector.failure_timeout_ticks = timeout;
  comms_.reserve(static_cast<std::size_t>(config_.num_ranks));
  h_barrier_wait_.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (int r = 0; r < config_.num_ranks; ++r) {
    comms_.push_back(std::make_unique<Communicator>(
        *world_, r, config_.send_buffer_bytes, config_.retry,
        config_.trace_sample_period, detector));
    h_barrier_wait_.push_back(
        comms_.back()->telemetry().histogram("comm.barrier_wait_us"));
    sampler_.attach(r, &comms_.back()->telemetry().metrics());
  }
}

Environment::~Environment() = default;

void Environment::execute_phase(const std::function<void(int)>& fn) {
  ++phase_epoch_;
  for (auto& comm : comms_) comm->set_epoch(phase_epoch_);
  if (config_.driver == DriverKind::kSequential) {
    run_sequential(fn);
  } else {
    run_threaded(fn);
  }
  ensure_all_alive();
  // Tick-driven snapshots happen at phase boundaries (quiescent state), so
  // a snapshot never observes a rank mid-handler. maybe_sample is a single
  // compare when the tick period is 0 or not yet elapsed.
  if constexpr (telemetry::kEnabled) sampler_.maybe_sample("tick");
}

void Environment::quiesce() {
  execute_phase([](int) {});
}

void Environment::run_sequential(const std::function<void(int)>& fn) {
  // A crashed rank stops executing phase bodies — its thread of control
  // died with it. Crashes mid-phase (during the drain below) are modelled
  // by the injector's tick clock instead.
  for (int r = 0; r < config_.num_ranks; ++r) {
    if (world_->alive(r)) fn(r);
  }
  // Round-robin delivery: bounded datagram bursts per rank per turn keep
  // the schedule fair (and deterministic), mimicking ranks making
  // interleaved progress.
  constexpr std::size_t kBurst = 16;
  util::Timer drain_timer;
  while (!world_->quiescent()) {
    for (auto& comm : comms_) {
      if (world_->alive(comm->rank())) comm->flush();
    }
    for (auto& comm : comms_) comm->process_available(kBurst);
    // Surviving ranks watch for silent peers each round; a crash that
    // strands messages keeps this loop alive until a detector fires.
    for (auto& comm : comms_) comm->check_failures();
  }
  if constexpr (telemetry::kEnabled) {
    // The sequential driver drains all ranks on one thread, so each rank
    // is attributed the shared drain time (the cooperative-schedule
    // equivalent of every rank sitting in the barrier together).
    const double seconds = drain_timer.elapsed_s();
    for (int r = 0; r < config_.num_ranks; ++r) {
      record_barrier_wait(r, seconds);
    }
  }
}

void Environment::run_threaded(const std::function<void(int)>& fn) {
  mpi::run_threaded_phase(
      *world_, static_cast<int>(comms_.size()),
      [&](int rank) {
        if (world_->alive(rank)) fn(rank);
      },
      [&](int rank) {
        if (world_->alive(rank)) {
          comms_[static_cast<std::size_t>(rank)]->flush();
        }
      },
      [&](int rank) {
        auto& comm = *comms_[static_cast<std::size_t>(rank)];
        const std::size_t handled = comm.process_available(16);
        // Throwing here trips the driver's failed flag, so every thread
        // (including a would-be-hung one) leaves its drain loop and the
        // RankFailureError is rethrown on the calling thread.
        comm.check_failures();
        return handled;
      },
      [&](int rank, double seconds) { record_barrier_wait(rank, seconds); });
}

void Environment::ensure_all_alive() const {
  const int dead = world_->first_dead();
  if (dead < 0) return;
  throw RankFailureError(
      "Environment: rank " + std::to_string(dead) +
          " crashed (phase barrier completed over a dead rank, epoch " +
          std::to_string(phase_epoch_) + ')',
      dead, /*detected_by=*/-1, phase_epoch_,
      /*last_heard_tick=*/0, /*silent_ticks=*/0);
}

void Environment::record_barrier_wait(int rank, double seconds) {
  if constexpr (!telemetry::kEnabled) {
    (void)rank;
    (void)seconds;
    return;
  } else {
    const auto r = static_cast<std::size_t>(rank);
    const double us = seconds * 1e6;
    comms_[r]->telemetry().record_clamped(h_barrier_wait_[r], us);
    const std::uint64_t end = telemetry::now_us();
    const auto dur = static_cast<std::uint64_t>(us);
    telemetry::TraceEvent e;
    e.name = "barrier_wait";
    e.category = "comm";
    e.ts_us = end > dur ? end - dur : 0;
    e.dur_us = dur;
    comms_[r]->telemetry().add_trace_event(std::move(e));
  }
}

MessageStats Environment::aggregate_stats() const {
  MessageStats merged;
  for (const auto& comm : comms_) merged.merge(comm->stats());
  return merged;
}

void Environment::reset_stats() {
  for (auto& comm : comms_) comm->stats().reset();
}

TransportCounters Environment::aggregate_transport_counters() const {
  TransportCounters merged;
  for (const auto& comm : comms_) merged.merge(comm->transport_counters());
  return merged;
}

mpi::FaultStats Environment::fault_stats() const {
  const auto* injector = world_->fault_injector();
  return injector != nullptr ? injector->stats() : mpi::FaultStats{};
}

telemetry::MetricsRegistry Environment::aggregate_metrics() const {
  telemetry::MetricsRegistry merged;
  for (const auto& comm : comms_) {
    merged.merge(comm->telemetry().metrics());
  }
  return merged;
}

void Environment::write_metrics_json(std::ostream& os) const {
  const MessageStats stats = aggregate_stats();
  const TransportCounters transport = aggregate_transport_counters();
  os << "{\"schema\":\"dnnd.metrics.v1\",\"enabled\":"
     << (telemetry::kEnabled ? "true" : "false")
     << ",\"ranks\":" << config_.num_ranks << ",\"handlers\":[";
  bool first = true;
  for (const auto& h : stats.handlers()) {
    if (!first) os << ',';
    first = false;
    os << "{\"label\":";
    util::json::write_string(os, h.label);
    os << ",\"remote_messages\":" << h.remote_messages
       << ",\"remote_bytes\":" << h.remote_bytes
       << ",\"local_messages\":" << h.local_messages
       << ",\"local_bytes\":" << h.local_bytes << '}';
  }
  os << "],\"transport\":{\"retransmits\":" << transport.retransmits
     << ",\"duplicates_suppressed\":" << transport.duplicates_suppressed
     << ",\"acks_sent\":" << transport.acks_sent
     << ",\"acks_received\":" << transport.acks_received
     << ",\"heartbeats_sent\":" << transport.heartbeats_sent
     << ",\"heartbeats_missed\":" << transport.heartbeats_missed << '}'
     << ",\"metrics\":";
  aggregate_metrics().write_json(os);
  // Per-rank registries drive the load-skew analysis (`dnnd_cli stats`):
  // the merged view above cannot distinguish a balanced run from one
  // straggler doing all the work.
  os << ",\"per_rank\":[";
  for (int r = 0; r < config_.num_ranks; ++r) {
    if (r != 0) os << ',';
    os << "{\"rank\":" << r << ",\"metrics\":";
    comms_[static_cast<std::size_t>(r)]->telemetry().metrics().write_json(os);
    os << '}';
  }
  os << "]}";
}

void Environment::write_chrome_trace(std::ostream& os) const {
  std::vector<telemetry::RankTrace> ranks;
  ranks.reserve(comms_.size());
  for (int r = 0; r < config_.num_ranks; ++r) {
    ranks.push_back(telemetry::RankTrace{
        r, &comms_[static_cast<std::size_t>(r)]->telemetry().trace()});
  }
  telemetry::write_chrome_trace(os, ranks, epoch_us_);
}

void Environment::write_timeseries_json(std::ostream& os) const {
  sampler_.write_json(os, telemetry::kEnabled, epoch_us_);
}

void Environment::export_telemetry(const std::string& metrics_path,
                                   const std::string& trace_path,
                                   const std::string& timeseries_path) const {
  std::ofstream metrics(metrics_path);
  if (!metrics) {
    throw std::runtime_error("Environment: cannot open " + metrics_path);
  }
  write_metrics_json(metrics);
  metrics << '\n';
  std::ofstream trace(trace_path);
  if (!trace) {
    throw std::runtime_error("Environment: cannot open " + trace_path);
  }
  write_chrome_trace(trace);
  trace << '\n';
  if (!timeseries_path.empty()) {
    std::ofstream timeseries(timeseries_path);
    if (!timeseries) {
      throw std::runtime_error("Environment: cannot open " + timeseries_path);
    }
    write_timeseries_json(timeseries);
    timeseries << '\n';
  }
}

}  // namespace dnnd::comm

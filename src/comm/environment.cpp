#include "comm/environment.hpp"

#include <stdexcept>

#include "mpi/threaded_driver.hpp"

namespace dnnd::comm {

Environment::Environment(Config config) : config_(config) {
  if (config_.num_ranks < 1) {
    throw std::invalid_argument("Environment: num_ranks < 1");
  }
  world_ = std::make_unique<mpi::World>(config_.num_ranks);
  if (!config_.fault_plan.empty()) {
    world_->install_fault_injector(std::make_unique<mpi::FaultInjector>(
        config_.fault_plan, config_.num_ranks));
  }
  comms_.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (int r = 0; r < config_.num_ranks; ++r) {
    comms_.push_back(std::make_unique<Communicator>(
        *world_, r, config_.send_buffer_bytes, config_.retry));
  }
}

Environment::~Environment() = default;

void Environment::execute_phase(const std::function<void(int)>& fn) {
  if (config_.driver == DriverKind::kSequential) {
    run_sequential(fn);
  } else {
    run_threaded(fn);
  }
}

void Environment::quiesce() {
  execute_phase([](int) {});
}

void Environment::run_sequential(const std::function<void(int)>& fn) {
  for (int r = 0; r < config_.num_ranks; ++r) fn(r);
  // Round-robin delivery: bounded datagram bursts per rank per turn keep
  // the schedule fair (and deterministic), mimicking ranks making
  // interleaved progress.
  constexpr std::size_t kBurst = 16;
  while (!world_->quiescent()) {
    for (auto& comm : comms_) comm->flush();
    for (auto& comm : comms_) comm->process_available(kBurst);
  }
}

void Environment::run_threaded(const std::function<void(int)>& fn) {
  mpi::run_threaded_phase(
      *world_, static_cast<int>(comms_.size()),
      [&](int rank) { fn(rank); },
      [&](int rank) { comms_[static_cast<std::size_t>(rank)]->flush(); },
      [&](int rank) {
        return comms_[static_cast<std::size_t>(rank)]->process_available(16);
      });
}

MessageStats Environment::aggregate_stats() const {
  MessageStats merged;
  for (const auto& comm : comms_) merged.merge(comm->stats());
  return merged;
}

void Environment::reset_stats() {
  for (auto& comm : comms_) comm->stats().reset();
}

TransportCounters Environment::aggregate_transport_counters() const {
  TransportCounters merged;
  for (const auto& comm : comms_) merged.merge(comm->transport_counters());
  return merged;
}

mpi::FaultStats Environment::fault_stats() const {
  const auto* injector = world_->fault_injector();
  return injector != nullptr ? injector->stats() : mpi::FaultStats{};
}

}  // namespace dnnd::comm

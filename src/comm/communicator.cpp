#include "comm/communicator.hpp"

#include <stdexcept>
#include <utility>

namespace dnnd::comm {

Communicator::Communicator(mpi::World& world, int rank,
                           std::size_t send_buffer_bytes)
    : world_(&world), rank_(rank), send_buffer_bytes_(send_buffer_bytes) {
  if (rank < 0 || rank >= world.size()) {
    throw std::invalid_argument("Communicator: rank out of range");
  }
  send_buffers_.resize(static_cast<std::size_t>(world.size()));
}

HandlerId Communicator::register_handler(std::string label, HandlerFn fn) {
  const auto id = static_cast<HandlerId>(handlers_.size());
  stats_.add_handler(label);
  handlers_.push_back(Handler{std::move(label), std::move(fn)});
  return id;
}

void Communicator::flush() {
  for (int dest = 0; dest < size(); ++dest) {
    flush_to(dest);
  }
}

void Communicator::flush_to(int dest) {
  auto& buffer = send_buffers_[static_cast<std::size_t>(dest)];
  if (buffer.message_count == 0) return;
  mpi::Datagram datagram;
  datagram.source = rank_;
  datagram.message_count = buffer.message_count;
  datagram.payload = buffer.archive.release();
  buffer.archive.clear();
  buffer.message_count = 0;
  world_->post(dest, std::move(datagram));
}

std::size_t Communicator::process_available(std::size_t max_datagrams) {
  std::size_t messages = 0;
  mpi::Datagram datagram;
  for (std::size_t i = 0; i < max_datagrams; ++i) {
    if (!world_->try_collect(rank_, datagram)) break;
    dispatch(datagram);
    messages += datagram.message_count;
  }
  return messages;
}

void Communicator::dispatch(const mpi::Datagram& datagram) {
  serial::InArchive archive(datagram.payload);
  std::uint32_t handled = 0;
  while (!archive.empty()) {
    const auto handler_id = static_cast<HandlerId>(archive.read_size());
    if (handler_id >= handlers_.size()) {
      throw std::runtime_error("Communicator: unknown handler id");
    }
    handlers_[handler_id].fn(datagram.source, archive);
    // Count each message as processed only after its handler returned, so
    // the quiescence test cannot pass while a handler (which may itself
    // send) is still running.
    world_->note_messages_processed(1);
    ++handled;
  }
  if (handled != datagram.message_count) {
    throw std::runtime_error(
        "Communicator: datagram message count mismatch (handler read too "
        "few/many bytes?)");
  }
}

}  // namespace dnnd::comm

#include "comm/communicator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dnnd::comm {

Communicator::Communicator(mpi::World& world, int rank,
                           std::size_t send_buffer_bytes, RetryConfig retry,
                           std::uint64_t trace_sample_period,
                           FailureDetectorConfig detector)
    : world_(&world),
      rank_(rank),
      send_buffer_bytes_(send_buffer_bytes),
      trace_sample_period_(trace_sample_period),
      retry_(retry),
      detector_(detector) {
  if (rank < 0 || rank >= world.size()) {
    throw std::invalid_argument("Communicator: rank out of range");
  }
  send_buffers_.resize(static_cast<std::size_t>(world.size()));
  reliable_ = world.faulty();
  if (reliable_) {
    send_channels_.resize(static_cast<std::size_t>(world.size()));
    recv_channels_.resize(static_cast<std::size_t>(world.size()));
  }
  // Heartbeats need the reliable protocol's tick clock; detection without
  // an injector would be dead code (the perfect transport cannot crash).
  detect_failures_ = reliable_ && detector_.enabled();
  if (detect_failures_) {
    last_heard_.assign(static_cast<std::size_t>(world.size()), 0);
  }
  g_inbox_depth_ = telemetry_.gauge("comm.inbox_depth");
  c_retransmits_ = telemetry_.counter("comm.retransmits");
  c_duplicates_ = telemetry_.counter("comm.duplicates_suppressed");
  c_acks_sent_ = telemetry_.counter("comm.acks_sent");
  c_acks_received_ = telemetry_.counter("comm.acks_received");
  c_heartbeats_sent_ = telemetry_.counter("comm.heartbeats_sent");
  c_heartbeats_missed_ = telemetry_.counter("comm.heartbeats_missed");
  c_traced_sends_ = telemetry_.counter("comm.traced_sends");
  h_queue_latency_ = telemetry_.histogram("comm.queue_latency_us");
  h_handler_time_ = telemetry_.histogram("comm.handler_time_us");
  h_dgram_queue_ = telemetry_.histogram("comm.dgram_queue_us");
}

HandlerId Communicator::register_handler(std::string label, HandlerFn fn) {
  const auto id = static_cast<HandlerId>(handlers_.size());
  stats_.add_handler(label);
  recv_counters_.push_back(telemetry_.counter("comm.recv." + label));
  handlers_.push_back(Handler{std::move(label), std::move(fn)});
  return id;
}

void Communicator::flush() {
  for (int dest = 0; dest < size(); ++dest) {
    flush_to(dest);
  }
}

void Communicator::flush_to(int dest) {
  auto& buffer = send_buffers_[static_cast<std::size_t>(dest)];
  if (buffer.message_count == 0) return;
  mpi::Datagram datagram;
  datagram.source = rank_;
  datagram.message_count = buffer.message_count;
  if constexpr (telemetry::kEnabled) {
    datagram.post_ts_us = telemetry::now_us();
  }
  datagram.payload = buffer.archive.release();
  buffer.archive.clear();
  buffer.message_count = 0;
  if (reliable_) {
    auto& channel = send_channels_[static_cast<std::size_t>(dest)];
    datagram.seq = channel.next_seq++;
    Pending pending;
    pending.payload = datagram.payload;  // retransmission copy
    pending.message_count = datagram.message_count;
    pending.backoff = retry_.initial_backoff_ticks;
    pending.retry_at = tick_ + pending.backoff;
    channel.pending.emplace(datagram.seq, std::move(pending));
  }
  world_->post(dest, std::move(datagram));
}

std::size_t Communicator::process_available(std::size_t max_datagrams) {
  // A dead rank does nothing: no collects, no acks, no retransmits, no
  // heartbeats. Its silence is exactly what the peers' detectors observe.
  if (!world_->alive(rank_)) return 0;
  if constexpr (telemetry::kEnabled) {
    // Inbox-depth probe takes the mailbox mutex; keep it out of
    // DNND_TELEMETRY=OFF builds entirely.
    telemetry_.set(g_inbox_depth_,
                   static_cast<std::int64_t>(world_->mailbox_depth(rank_)));
  }
  std::size_t messages = 0;
  mpi::Datagram datagram;
  for (std::size_t i = 0; i < max_datagrams; ++i) {
    if (!world_->try_collect(rank_, datagram)) break;
    if (reliable_ && !reliable_receive(datagram)) continue;
    if constexpr (telemetry::kEnabled) {
      if (datagram.post_ts_us != 0) {
        const std::uint64_t now = telemetry::now_us();
        telemetry_.record(h_dgram_queue_, now >= datagram.post_ts_us
                                              ? now - datagram.post_ts_us
                                              : 0);
      }
    }
    dispatch(datagram);
    messages += datagram.message_count;
  }
  // Re-check liveness: a scheduled crash may have fired inside the collect
  // loop above, and a freshly dead rank must not ack or retransmit.
  if (reliable_ && world_->alive(rank_)) {
    send_pending_acks();
    drive_retransmits();
    if (detect_failures_) maybe_send_heartbeats();
  }
  return messages;
}

void Communicator::maybe_send_heartbeats() {
  if (tick_ % detector_.heartbeat_period_ticks != 0) return;
  for (int dest = 0; dest < size(); ++dest) {
    if (dest == rank_) continue;
    mpi::Datagram beat;
    beat.source = rank_;
    beat.kind = mpi::DatagramKind::kHeartbeat;
    // Unsequenced and message_count = 0: heartbeats are transport
    // bookkeeping, invisible to dedup and to the termination counters.
    world_->post(dest, std::move(beat));
    ++transport_.heartbeats_sent;
    telemetry_.add(c_heartbeats_sent_);
  }
}

void Communicator::check_failures() {
  if (!detect_failures_ || !world_->alive(rank_)) return;
  for (int peer = 0; peer < size(); ++peer) {
    if (peer == rank_) continue;
    const std::uint64_t heard = last_heard_[static_cast<std::size_t>(peer)];
    if (tick_ <= heard) continue;
    const std::uint64_t silent = tick_ - heard;
    if (silent <= detector_.failure_timeout_ticks) continue;
    const std::uint64_t missed = silent / detector_.heartbeat_period_ticks;
    transport_.heartbeats_missed += missed;
    telemetry_.add(c_heartbeats_missed_, missed);
    throw RankFailureError(
        "Communicator: rank " + std::to_string(peer) + " silent for " +
            std::to_string(silent) + " ticks (last heard at tick " +
            std::to_string(heard) + ", epoch " + std::to_string(epoch_) +
            ") — presumed crashed",
        peer, rank_, epoch_, heard, silent);
  }
}

bool Communicator::reliable_receive(const mpi::Datagram& datagram) {
  const auto src = static_cast<std::size_t>(datagram.source);
  // Any datagram proves the sender was alive recently; heartbeats exist
  // only to keep this clock fresh across otherwise-silent stretches.
  if (detect_failures_) last_heard_[src] = tick_;
  if (datagram.kind == mpi::DatagramKind::kHeartbeat) return false;
  if (datagram.kind == mpi::DatagramKind::kAck) {
    ++transport_.acks_received;
    telemetry_.add(c_acks_received_);
    serial::InArchive ar(datagram.payload);
    auto& channel = send_channels_[src];
    const std::uint64_t cumulative = ar.read_size();
    channel.pending.erase(channel.pending.begin(),
                          channel.pending.upper_bound(cumulative));
    const std::uint64_t selective = ar.read_size();
    for (std::uint64_t i = 0; i < selective; ++i) {
      channel.pending.erase(ar.read_size());
    }
    return false;
  }
  auto& channel = recv_channels_[src];
  channel.ack_due = true;  // (re-)ack even duplicates so the sender stops
  if (datagram.seq <= channel.cumulative ||
      channel.out_of_order.contains(datagram.seq)) {
    ++transport_.duplicates_suppressed;
    telemetry_.add(c_duplicates_);
    return false;
  }
  channel.out_of_order.insert(datagram.seq);
  while (channel.out_of_order.contains(channel.cumulative + 1)) {
    channel.out_of_order.erase(channel.cumulative + 1);
    ++channel.cumulative;
  }
  return true;
}

void Communicator::send_pending_acks() {
  for (int src = 0; src < size(); ++src) {
    auto& channel = recv_channels_[static_cast<std::size_t>(src)];
    if (!channel.ack_due) continue;
    channel.ack_due = false;
    serial::OutArchive ar;
    ar.write_size(channel.cumulative);
    ar.write_size(channel.out_of_order.size());
    for (const std::uint64_t seq : channel.out_of_order) ar.write_size(seq);
    mpi::Datagram ack;
    ack.source = rank_;
    ack.kind = mpi::DatagramKind::kAck;
    ack.payload = ar.release();
    world_->post(src, std::move(ack));
    ++transport_.acks_sent;
    telemetry_.add(c_acks_sent_);
  }
}

void Communicator::drive_retransmits() {
  ++tick_;
  for (int dest = 0; dest < size(); ++dest) {
    auto& channel = send_channels_[static_cast<std::size_t>(dest)];
    for (auto& [seq, pending] : channel.pending) {
      if (pending.retry_at > tick_) continue;
      if (pending.attempts >= retry_.max_retries) {
        throw TransportError(
            "Communicator: datagram " + std::to_string(seq) + " from rank " +
                std::to_string(rank_) + " to rank " + std::to_string(dest) +
                " unacknowledged after " + std::to_string(pending.attempts) +
                " retransmissions (epoch " + std::to_string(epoch_) +
                ") — channel considered failed",
            rank_, dest, seq, pending.attempts, epoch_);
      }
      mpi::Datagram copy;
      copy.source = rank_;
      copy.seq = seq;
      copy.message_count = pending.message_count;
      if constexpr (telemetry::kEnabled) {
        copy.post_ts_us = telemetry::now_us();
      }
      copy.payload = pending.payload;
      world_->post(dest, std::move(copy));
      ++pending.attempts;
      ++transport_.retransmits;
      telemetry_.add(c_retransmits_);
      pending.backoff =
          std::min(pending.backoff * 2, retry_.max_backoff_ticks);
      pending.retry_at = tick_ + pending.backoff;
    }
  }
}

void Communicator::dispatch_traced(int source, HandlerId handler_id,
                                   const TraceContext& ctx,
                                   std::uint64_t send_ts,
                                   serial::InArchive& archive) {
  const Handler& handler = handlers_[handler_id];
  const std::uint64_t start = telemetry::now_us();
  const std::uint64_t queue_us = start >= send_ts ? start - send_ts : 0;
  telemetry_.record(h_queue_latency_, queue_us);
  // Flow finish at handler start: with bp="e" the arrowhead binds to the
  // recv span below, which begins at the same timestamp.
  telemetry_.add_trace_event(
      make_flow_event('f', handler.label, start, ctx.span_id));

  // Make the context current for the handler's own async() calls — and for
  // structured log lines emitted from handler code. Restore on scope exit
  // even if the handler throws (chaos tests exercise throwing handlers).
  struct ActiveScope {
    Communicator* self;
    ~ActiveScope() {
      self->active_ctx_ = TraceContext{};
      util::set_active_trace(0);
    }
  };
  active_ctx_ = ctx;
  util::set_active_trace(ctx.trace_id);
  const ActiveScope scope{this};

  handler.fn(source, archive);

  const std::uint64_t end = telemetry::now_us();
  telemetry_.record(h_handler_time_, end - start);
  telemetry::TraceEvent span;
  span.name = "recv." + handler.label;
  span.category = "handler";
  span.ts_us = start;
  span.dur_us = end - start;
  span.args = "{\"trace\":\"" + telemetry::hex_id(ctx.trace_id) +
              "\",\"span\":\"" + telemetry::hex_id(ctx.span_id) +
              "\",\"hop\":" + std::to_string(ctx.hop) +
              ",\"src\":" + std::to_string(source) +
              ",\"queue_us\":" + std::to_string(queue_us) + '}';
  telemetry_.add_trace_event(std::move(span));
}

void Communicator::dispatch(const mpi::Datagram& datagram) {
  serial::InArchive archive(datagram.payload);
  std::uint32_t handled = 0;
  while (!archive.empty()) {
    const std::uint64_t key = archive.read_size();
    HandlerId handler_id;
    bool traced = false;
    TraceContext ctx;
    std::uint64_t send_ts = 0;
    if constexpr (telemetry::kEnabled) {
      handler_id = static_cast<HandlerId>(key >> 1);
      traced = (key & 1u) != 0;
      if (traced) {
        ctx.trace_id = archive.read_size();
        ctx.span_id = archive.read_size();
        ctx.hop = static_cast<std::uint32_t>(archive.read_size());
        send_ts = archive.read_size();
      }
    } else {
      handler_id = static_cast<HandlerId>(key);
    }
    if (handler_id >= handlers_.size()) {
      throw std::runtime_error("Communicator: unknown handler id");
    }
    if (traced) {
      dispatch_traced(datagram.source, handler_id, ctx, send_ts, archive);
    } else {
      handlers_[handler_id].fn(datagram.source, archive);
    }
    telemetry_.add(recv_counters_[handler_id]);
    // Count each message as processed only after its handler returned, so
    // the quiescence test cannot pass while a handler (which may itself
    // send) is still running.
    world_->note_messages_processed(1);
    ++handled;
  }
  if (handled != datagram.message_count) {
    throw std::runtime_error(
        "Communicator: datagram message count mismatch (handler read too "
        "few/many bytes?)");
  }
}

}  // namespace dnnd::comm

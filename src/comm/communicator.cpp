#include "comm/communicator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dnnd::comm {

Communicator::Communicator(mpi::World& world, int rank,
                           std::size_t send_buffer_bytes, RetryConfig retry)
    : world_(&world),
      rank_(rank),
      send_buffer_bytes_(send_buffer_bytes),
      retry_(retry) {
  if (rank < 0 || rank >= world.size()) {
    throw std::invalid_argument("Communicator: rank out of range");
  }
  send_buffers_.resize(static_cast<std::size_t>(world.size()));
  reliable_ = world.faulty();
  if (reliable_) {
    send_channels_.resize(static_cast<std::size_t>(world.size()));
    recv_channels_.resize(static_cast<std::size_t>(world.size()));
  }
  g_inbox_depth_ = telemetry_.gauge("comm.inbox_depth");
  c_retransmits_ = telemetry_.counter("comm.retransmits");
  c_duplicates_ = telemetry_.counter("comm.duplicates_suppressed");
  c_acks_sent_ = telemetry_.counter("comm.acks_sent");
  c_acks_received_ = telemetry_.counter("comm.acks_received");
}

HandlerId Communicator::register_handler(std::string label, HandlerFn fn) {
  const auto id = static_cast<HandlerId>(handlers_.size());
  stats_.add_handler(label);
  recv_counters_.push_back(telemetry_.counter("comm.recv." + label));
  handlers_.push_back(Handler{std::move(label), std::move(fn)});
  return id;
}

void Communicator::flush() {
  for (int dest = 0; dest < size(); ++dest) {
    flush_to(dest);
  }
}

void Communicator::flush_to(int dest) {
  auto& buffer = send_buffers_[static_cast<std::size_t>(dest)];
  if (buffer.message_count == 0) return;
  mpi::Datagram datagram;
  datagram.source = rank_;
  datagram.message_count = buffer.message_count;
  datagram.payload = buffer.archive.release();
  buffer.archive.clear();
  buffer.message_count = 0;
  if (reliable_) {
    auto& channel = send_channels_[static_cast<std::size_t>(dest)];
    datagram.seq = channel.next_seq++;
    Pending pending;
    pending.payload = datagram.payload;  // retransmission copy
    pending.message_count = datagram.message_count;
    pending.backoff = retry_.initial_backoff_ticks;
    pending.retry_at = tick_ + pending.backoff;
    channel.pending.emplace(datagram.seq, std::move(pending));
  }
  world_->post(dest, std::move(datagram));
}

std::size_t Communicator::process_available(std::size_t max_datagrams) {
  if constexpr (telemetry::kEnabled) {
    // Inbox-depth probe takes the mailbox mutex; keep it out of
    // DNND_TELEMETRY=OFF builds entirely.
    telemetry_.set(g_inbox_depth_,
                   static_cast<std::int64_t>(world_->mailbox_depth(rank_)));
  }
  std::size_t messages = 0;
  mpi::Datagram datagram;
  for (std::size_t i = 0; i < max_datagrams; ++i) {
    if (!world_->try_collect(rank_, datagram)) break;
    if (reliable_ && !reliable_receive(datagram)) continue;
    dispatch(datagram);
    messages += datagram.message_count;
  }
  if (reliable_) {
    send_pending_acks();
    drive_retransmits();
  }
  return messages;
}

bool Communicator::reliable_receive(const mpi::Datagram& datagram) {
  const auto src = static_cast<std::size_t>(datagram.source);
  if (datagram.kind == mpi::DatagramKind::kAck) {
    ++transport_.acks_received;
    telemetry_.add(c_acks_received_);
    serial::InArchive ar(datagram.payload);
    auto& channel = send_channels_[src];
    const std::uint64_t cumulative = ar.read_size();
    channel.pending.erase(channel.pending.begin(),
                          channel.pending.upper_bound(cumulative));
    const std::uint64_t selective = ar.read_size();
    for (std::uint64_t i = 0; i < selective; ++i) {
      channel.pending.erase(ar.read_size());
    }
    return false;
  }
  auto& channel = recv_channels_[src];
  channel.ack_due = true;  // (re-)ack even duplicates so the sender stops
  if (datagram.seq <= channel.cumulative ||
      channel.out_of_order.contains(datagram.seq)) {
    ++transport_.duplicates_suppressed;
    telemetry_.add(c_duplicates_);
    return false;
  }
  channel.out_of_order.insert(datagram.seq);
  while (channel.out_of_order.contains(channel.cumulative + 1)) {
    channel.out_of_order.erase(channel.cumulative + 1);
    ++channel.cumulative;
  }
  return true;
}

void Communicator::send_pending_acks() {
  for (int src = 0; src < size(); ++src) {
    auto& channel = recv_channels_[static_cast<std::size_t>(src)];
    if (!channel.ack_due) continue;
    channel.ack_due = false;
    serial::OutArchive ar;
    ar.write_size(channel.cumulative);
    ar.write_size(channel.out_of_order.size());
    for (const std::uint64_t seq : channel.out_of_order) ar.write_size(seq);
    mpi::Datagram ack;
    ack.source = rank_;
    ack.kind = mpi::DatagramKind::kAck;
    ack.payload = ar.release();
    world_->post(src, std::move(ack));
    ++transport_.acks_sent;
    telemetry_.add(c_acks_sent_);
  }
}

void Communicator::drive_retransmits() {
  ++tick_;
  for (int dest = 0; dest < size(); ++dest) {
    auto& channel = send_channels_[static_cast<std::size_t>(dest)];
    for (auto& [seq, pending] : channel.pending) {
      if (pending.retry_at > tick_) continue;
      if (pending.attempts >= retry_.max_retries) {
        throw TransportError(
            "Communicator: datagram " + std::to_string(seq) + " from rank " +
                std::to_string(rank_) + " to rank " + std::to_string(dest) +
                " unacknowledged after " + std::to_string(pending.attempts) +
                " retransmissions — channel considered failed",
            rank_, dest, seq, pending.attempts);
      }
      mpi::Datagram copy;
      copy.source = rank_;
      copy.seq = seq;
      copy.message_count = pending.message_count;
      copy.payload = pending.payload;
      world_->post(dest, std::move(copy));
      ++pending.attempts;
      ++transport_.retransmits;
      telemetry_.add(c_retransmits_);
      pending.backoff =
          std::min(pending.backoff * 2, retry_.max_backoff_ticks);
      pending.retry_at = tick_ + pending.backoff;
    }
  }
}

void Communicator::dispatch(const mpi::Datagram& datagram) {
  serial::InArchive archive(datagram.payload);
  std::uint32_t handled = 0;
  while (!archive.empty()) {
    const auto handler_id = static_cast<HandlerId>(archive.read_size());
    if (handler_id >= handlers_.size()) {
      throw std::runtime_error("Communicator: unknown handler id");
    }
    handlers_[handler_id].fn(datagram.source, archive);
    telemetry_.add(recv_counters_[handler_id]);
    // Count each message as processed only after its handler returned, so
    // the quiescence test cannot pass while a handler (which may itself
    // send) is still running.
    world_->note_messages_processed(1);
    ++handled;
  }
  if (handled != datagram.message_count) {
    throw std::runtime_error(
        "Communicator: datagram message count mismatch (handler read too "
        "few/many bytes?)");
  }
}

}  // namespace dnnd::comm

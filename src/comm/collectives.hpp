// Message-based collective operations over the async runtime.
//
// The NN-Descent driver needs two collectives: an allreduce-sum for the
// convergence counter c (Algorithm 1 line 23 compares Σc against δ·K·N)
// and an allgather for per-rank live point counts (dynamic updates).
// Instead of letting the single-process runner peek across rank objects,
// these run through the transport like any MPI collective would.
//
// Usage pattern (two quiescence barriers are NOT needed — one suffices):
//
//   env.execute_phase([&](int r) { coll[r]->contribute_sum(value_r); });
//   // after the barrier every rank reads the same total:
//   total = coll[r]->sum();
//
// Each operation advances an epoch counter carried in the messages, so a
// rank that receives contributions before making its own (possible under
// the threaded driver) accumulates them in the right slot.
//
// Algorithm: direct exchange — every rank sends its contribution to every
// rank, O(P²) small messages. Fine for the simulated scale; a tree
// reduction would drop this to O(P log P) on a real machine.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "comm/communicator.hpp"

namespace dnnd::comm {

class Collectives {
 public:
  explicit Collectives(Communicator& comm) : comm_(&comm) {
    h_sum_ = comm_->register_handler(
        "coll_sum", [this](int, serial::InArchive& ar) {
          const auto epoch = ar.read<std::uint64_t>();
          const auto value = ar.read<std::uint64_t>();
          auto& slot = sums_[epoch];
          slot.value += value;
          ++slot.contributions;
        });
    h_gather_ = comm_->register_handler(
        "coll_gather", [this](int source, serial::InArchive& ar) {
          const auto epoch = ar.read<std::uint64_t>();
          const auto value = ar.read<std::uint64_t>();
          auto& slot = gathers_[epoch];
          slot.values.resize(static_cast<std::size_t>(comm_->size()), 0);
          slot.values[static_cast<std::size_t>(source)] = value;
          ++slot.contributions;
        });
  }

  Collectives(const Collectives&) = delete;
  Collectives& operator=(const Collectives&) = delete;

  /// Contributes to an allreduce-sum. Every rank must call exactly once
  /// per collective, inside the same phase; the result is readable after
  /// the phase's barrier.
  void contribute_sum(std::uint64_t value) {
    const std::uint64_t epoch = ++sum_epoch_;
    for (int dest = 0; dest < comm_->size(); ++dest) {
      comm_->async(dest, h_sum_, epoch, value);
    }
  }

  /// Result of the most recent allreduce-sum. Throws if the collective
  /// has not completed (missing contributions — a barrier was skipped).
  [[nodiscard]] std::uint64_t sum() const {
    const auto it = sums_.find(sum_epoch_);
    if (it == sums_.end() ||
        it->second.contributions != static_cast<std::size_t>(comm_->size())) {
      throw std::logic_error("Collectives::sum: collective incomplete");
    }
    return it->second.value;
  }

  /// Contributes to an allgather; same calling discipline as
  /// contribute_sum.
  void contribute_gather(std::uint64_t value) {
    const std::uint64_t epoch = ++gather_epoch_;
    for (int dest = 0; dest < comm_->size(); ++dest) {
      comm_->async(dest, h_gather_, epoch, value);
    }
  }

  /// Per-rank values of the most recent allgather, indexed by rank.
  [[nodiscard]] const std::vector<std::uint64_t>& gathered() const {
    const auto it = gathers_.find(gather_epoch_);
    if (it == gathers_.end() ||
        it->second.contributions != static_cast<std::size_t>(comm_->size())) {
      throw std::logic_error("Collectives::gathered: collective incomplete");
    }
    return it->second.values;
  }

  /// Frees accumulator slots older than the current epochs.
  void garbage_collect() {
    std::erase_if(sums_, [&](const auto& kv) { return kv.first < sum_epoch_; });
    std::erase_if(gathers_,
                  [&](const auto& kv) { return kv.first < gather_epoch_; });
  }

 private:
  struct SumSlot {
    std::uint64_t value = 0;
    std::size_t contributions = 0;
  };
  struct GatherSlot {
    std::vector<std::uint64_t> values;
    std::size_t contributions = 0;
  };

  Communicator* comm_;
  HandlerId h_sum_ = 0;
  HandlerId h_gather_ = 0;
  std::uint64_t sum_epoch_ = 0;
  std::uint64_t gather_epoch_ = 0;
  std::unordered_map<std::uint64_t, SumSlot> sums_;
  std::unordered_map<std::uint64_t, GatherSlot> gathers_;
};

}  // namespace dnnd::comm

// Self-relative pointer for persistent data structures.
//
// A file-backed heap maps at a different virtual address on every open, so
// raw pointers stored inside it dangle after reopen. An offset_ptr stores
// the signed distance between itself and its pointee; as long as pointer
// and pointee live inside the same mapping that distance is invariant
// under remapping. This is the core trick Metall inherits from
// boost::interprocess, reimplemented here from scratch.
//
// Representation: 0 = distance-to-self is reserved as the null encoding,
// exactly as in boost.interprocess; an offset_ptr therefore cannot point
// at its own first byte (never needed in practice: a pointer does not
// alias its pointee).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace dnnd::pmem {

template <typename T>
class offset_ptr {
 public:
  using element_type = T;
  using pointer = T*;

  constexpr offset_ptr() noexcept = default;
  offset_ptr(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  offset_ptr(T* ptr) noexcept { set(ptr); }  // NOLINT(google-explicit-constructor)

  offset_ptr(const offset_ptr& other) noexcept { set(other.get()); }

  /// Converting copy (e.g. offset_ptr<Derived> -> offset_ptr<Base>).
  template <typename U>
    requires std::is_convertible_v<U*, T*>
  offset_ptr(const offset_ptr<U>& other) noexcept {  // NOLINT
    set(other.get());
  }

  offset_ptr& operator=(const offset_ptr& other) noexcept {
    set(other.get());
    return *this;
  }

  offset_ptr& operator=(T* ptr) noexcept {
    set(ptr);
    return *this;
  }

  [[nodiscard]] T* get() const noexcept {
    if (offset_ == 0) return nullptr;
    return reinterpret_cast<T*>(
        const_cast<char*>(reinterpret_cast<const char*>(this)) + offset_);
  }

  T& operator*() const noexcept { return *get(); }
  T* operator->() const noexcept { return get(); }
  T& operator[](std::ptrdiff_t i) const noexcept { return get()[i]; }

  explicit operator bool() const noexcept { return offset_ != 0; }

  friend bool operator==(const offset_ptr& a, const offset_ptr& b) noexcept {
    return a.get() == b.get();
  }
  friend bool operator==(const offset_ptr& a, std::nullptr_t) noexcept {
    return a.offset_ == 0;
  }

  offset_ptr& operator+=(std::ptrdiff_t n) noexcept {
    set(get() + n);
    return *this;
  }
  offset_ptr& operator-=(std::ptrdiff_t n) noexcept {
    set(get() - n);
    return *this;
  }
  friend offset_ptr operator+(offset_ptr p, std::ptrdiff_t n) noexcept {
    p += n;
    return p;
  }
  friend std::ptrdiff_t operator-(const offset_ptr& a,
                                  const offset_ptr& b) noexcept {
    return a.get() - b.get();
  }

  /// Required by std::pointer_traits for allocator-aware containers.
  static offset_ptr pointer_to(T& ref) noexcept { return offset_ptr(&ref); }

 private:
  void set(T* ptr) noexcept {
    offset_ = (ptr == nullptr)
                  ? 0
                  : reinterpret_cast<const char*>(ptr) -
                        reinterpret_cast<const char*>(this);
  }

  std::ptrdiff_t offset_ = 0;
};

static_assert(sizeof(offset_ptr<int>) == sizeof(std::ptrdiff_t));

}  // namespace dnnd::pmem

// Persistent dynamic array.
//
// A std::vector stores raw pointers in its control block, which do not
// survive a remap. pmem::vector stores an offset_ptr and the arena-backed
// allocator, so an instance placed inside the datastore (via
// Manager::find_or_construct) is fully usable after reopen. It also works
// with std::allocator for unit testing the container logic in isolation.
//
// Supported element types: anything destructible and movable. Growth uses
// move-or-copy construction element by element (never memcpy), which keeps
// self-relative members like offset_ptr correct.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>

#include "pmem/allocator.hpp"

namespace dnnd::pmem {

template <typename T, typename Alloc = allocator<T>>
class vector {
 public:
  using value_type = T;
  using size_type = std::size_t;
  using alloc_traits = std::allocator_traits<Alloc>;
  using pointer = typename alloc_traits::pointer;
  using iterator = T*;
  using const_iterator = const T*;

  vector() noexcept(noexcept(Alloc())) = default;
  explicit vector(const Alloc& alloc) noexcept : alloc_(alloc) {}

  vector(size_type count, const T& value, const Alloc& alloc = Alloc())
      : alloc_(alloc) {
    resize(count, value);
  }

  vector(const vector& other)
      : alloc_(alloc_traits::select_on_container_copy_construction(
            other.alloc_)) {
    reserve(other.size_);
    for (size_type i = 0; i < other.size_; ++i) push_back(other[i]);
  }

  vector(vector&& other) noexcept
      : alloc_(std::move(other.alloc_)),
        data_(other.data_),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.data_ = pointer{};
    other.size_ = other.capacity_ = 0;
  }

  vector& operator=(const vector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (size_type i = 0; i < other.size_; ++i) push_back(other[i]);
    return *this;
  }

  vector& operator=(vector&& other) noexcept {
    if (this == &other) return *this;
    destroy_all();
    release_storage();
    alloc_ = std::move(other.alloc_);
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = pointer{};
    other.size_ = other.capacity_ = 0;
    return *this;
  }

  ~vector() {
    destroy_all();
    release_storage();
  }

  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] size_type capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* data() noexcept { return raw(); }
  [[nodiscard]] const T* data() const noexcept { return raw(); }

  iterator begin() noexcept { return raw(); }
  iterator end() noexcept { return raw() + size_; }
  const_iterator begin() const noexcept { return raw(); }
  const_iterator end() const noexcept { return raw() + size_; }

  T& operator[](size_type i) noexcept { return raw()[i]; }
  const T& operator[](size_type i) const noexcept { return raw()[i]; }

  T& at(size_type i) {
    if (i >= size_) throw std::out_of_range("pmem::vector::at");
    return raw()[i];
  }
  const T& at(size_type i) const {
    if (i >= size_) throw std::out_of_range("pmem::vector::at");
    return raw()[i];
  }

  T& front() noexcept { return raw()[0]; }
  T& back() noexcept { return raw()[size_ - 1]; }
  const T& front() const noexcept { return raw()[0]; }
  const T& back() const noexcept { return raw()[size_ - 1]; }

  void reserve(size_type new_capacity) {
    if (new_capacity <= capacity_) return;
    regrow(new_capacity);
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) regrow(next_capacity());
    T* slot = raw() + size_;
    alloc_traits::construct(alloc_, slot, std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() noexcept {
    --size_;
    alloc_traits::destroy(alloc_, raw() + size_);
  }

  void resize(size_type count) {
    if (shrink_if_needed(count)) return;
    reserve(count);
    while (size_ < count) emplace_back();
  }

  void resize(size_type count, const T& value) {
    if (shrink_if_needed(count)) return;
    reserve(count);
    while (size_ < count) emplace_back(value);
  }

  void clear() noexcept {
    destroy_all();
    size_ = 0;
  }

  /// Releases unused capacity back to the arena.
  void shrink_to_fit() {
    if (size_ == capacity_) return;
    if (size_ == 0) {
      release_storage();
      data_ = pointer{};
      capacity_ = 0;
      return;
    }
    regrow(size_);
  }

  [[nodiscard]] Alloc get_allocator() const { return alloc_; }

  friend bool operator==(const vector& a, const vector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* raw() const noexcept { return std::to_address(data_); }

  size_type next_capacity() const noexcept {
    return capacity_ == 0 ? 4 : capacity_ * 2;
  }

  void regrow(size_type new_capacity) {
    pointer fresh = alloc_traits::allocate(alloc_, new_capacity);
    T* dst = std::to_address(fresh);
    T* src = raw();
    for (size_type i = 0; i < size_; ++i) {
      alloc_traits::construct(alloc_, dst + i, std::move_if_noexcept(src[i]));
      alloc_traits::destroy(alloc_, src + i);
    }
    release_storage();
    data_ = fresh;
    capacity_ = new_capacity;
  }

  /// Handles the shrinking half of resize(); returns true if it applied.
  bool shrink_if_needed(size_type count) noexcept {
    if (count >= size_) return false;
    for (size_type i = count; i < size_; ++i) {
      alloc_traits::destroy(alloc_, raw() + i);
    }
    size_ = count;
    return true;
  }

  void destroy_all() noexcept {
    for (size_type i = 0; i < size_; ++i) {
      alloc_traits::destroy(alloc_, raw() + i);
    }
  }

  void release_storage() noexcept {
    if (capacity_ != 0) {
      alloc_traits::deallocate(alloc_, data_, capacity_);
    }
  }

  [[no_unique_address]] Alloc alloc_{};
  pointer data_{};
  size_type size_ = 0;
  size_type capacity_ = 0;
};

}  // namespace dnnd::pmem

#include "pmem/arena.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace dnnd::pmem {
namespace {

constexpr std::size_t kAlignment = 16;

std::size_t round_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) / align * align;
}

/// Each free block stores the offset of the next free block of its class in
/// its first 8 bytes (the block is at least kMinBlockBytes, so it fits).
std::uint64_t& next_free(ArenaHeader* header, std::uint64_t block_offset) {
  return *reinterpret_cast<std::uint64_t*>(
      reinterpret_cast<char*>(header) + block_offset);
}

}  // namespace

std::size_t size_class_of(std::size_t bytes) noexcept {
  const std::size_t need = bytes < kMinBlockBytes ? kMinBlockBytes : bytes;
  const auto width = static_cast<std::size_t>(std::bit_width(need - 1));
  // Class 0 is 16 B == 2^4.
  return width <= 4 ? 0 : width - 4;
}

std::size_t size_class_bytes(std::size_t klass) noexcept {
  return std::size_t{1} << (klass + 4);
}

void arena_format(ArenaHeader* header, std::size_t capacity) {
  *header = ArenaHeader{};
  header->magic = kArenaMagic;
  header->version = kArenaVersion;
  header->capacity = capacity;
  header->bump = round_up(sizeof(ArenaHeader), kAlignment);
}

bool arena_validate(const ArenaHeader* header,
                    std::size_t mapped_bytes) noexcept {
  if (mapped_bytes < sizeof(ArenaHeader)) return false;
  return header->magic == kArenaMagic && header->version == kArenaVersion &&
         header->capacity <= mapped_bytes && header->bump <= header->capacity;
}

void* arena_allocate(ArenaHeader* header, std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  const std::size_t klass = size_class_of(bytes);
  if (klass >= kNumSizeClasses) return nullptr;
  const std::size_t block = size_class_bytes(klass);

  std::uint64_t offset = header->free_lists[klass];
  if (offset != 0) {
    header->free_lists[klass] = next_free(header, offset);
  } else {
    if (header->bump + block > header->capacity) return nullptr;
    offset = header->bump;
    header->bump += block;
  }
  header->allocated += block;
  return reinterpret_cast<char*>(header) + offset;
}

void arena_deallocate(ArenaHeader* header, void* ptr,
                      std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  const std::size_t klass = size_class_of(bytes);
  assert(klass < kNumSizeClasses);
  const std::uint64_t offset = arena_offset_of(header, ptr);
  assert(offset >= sizeof(ArenaHeader) && offset < header->capacity);
  next_free(header, offset) = header->free_lists[klass];
  header->free_lists[klass] = offset;
  header->allocated -= size_class_bytes(klass);
}

std::uint64_t arena_offset_of(const ArenaHeader* header,
                              const void* ptr) noexcept {
  return static_cast<std::uint64_t>(static_cast<const char*>(ptr) -
                                    reinterpret_cast<const char*>(header));
}

void* arena_pointer_at(ArenaHeader* header, std::uint64_t offset) noexcept {
  if (offset == 0) return nullptr;
  return reinterpret_cast<char*>(header) + offset;
}

}  // namespace dnnd::pmem

// STL-compatible allocator over a persistent arena.
//
// Like Metall's allocator, an instance is itself safe to *store inside the
// arena*: it references the ArenaHeader through a self-relative
// offset_ptr, so a container persisted in the datastore still finds its
// heap after the file is remapped at a new address. Transient copies (on
// the stack, inside algorithms) hold the same self-relative encoding and
// work for the lifetime of the mapping.
#pragma once

#include <limits>
#include <new>

#include "pmem/arena.hpp"
#include "pmem/offset_ptr.hpp"

namespace dnnd::pmem {

/// Thrown when the arena cannot satisfy an allocation.
class ArenaExhausted : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "dnnd::pmem arena exhausted";
  }
};

template <typename T>
class allocator {
 public:
  using value_type = T;
  using pointer = offset_ptr<T>;
  using const_pointer = offset_ptr<const T>;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;

  template <typename U>
  struct rebind {
    using other = allocator<U>;
  };

  allocator() noexcept = default;
  explicit allocator(ArenaHeader* header) noexcept : header_(header) {}

  template <typename U>
  allocator(const allocator<U>& other) noexcept  // NOLINT
      : header_(other.header()) {}

  [[nodiscard]] pointer allocate(size_type n) {
    if (n > max_size()) throw ArenaExhausted();
    void* p = arena_allocate(header_.get(), n * sizeof(T));
    if (p == nullptr) throw ArenaExhausted();
    return pointer(static_cast<T*>(p));
  }

  void deallocate(pointer p, size_type n) noexcept {
    arena_deallocate(header_.get(), p.get(), n * sizeof(T));
  }

  [[nodiscard]] size_type max_size() const noexcept {
    return std::numeric_limits<size_type>::max() / sizeof(T);
  }

  [[nodiscard]] ArenaHeader* header() const noexcept { return header_.get(); }

  friend bool operator==(const allocator& a, const allocator& b) noexcept {
    return a.header() == b.header();
  }

 private:
  offset_ptr<ArenaHeader> header_;
};

}  // namespace dnnd::pmem

// Datastore manager (the Metall substitution, DESIGN.md §2).
//
// A Manager owns one file-backed mmap(2) region formatted as a pmem arena
// and exposes Metall's essential API surface:
//
//   Manager::create(path, capacity)     fresh datastore
//   Manager::open(path)                 reopen an existing one (read/write)
//   find_or_construct<T>(name, args...) named root objects
//   find<T>(name) / destroy<T>(name)
//   snapshot(path)                      point-in-time copy
//
// This is what lets DNND split work across executables exactly as the
// paper does: the construction program builds the k-NNG into a datastore,
// closes it, and the separate optimization and query programs reopen it
// (§5.1.3 "There are two DNND execution files...").
//
// Objects stored in the datastore must be *position independent*: use
// pmem::offset_ptr / pmem::vector / pmem::allocator members, never raw
// pointers. Type safety across executables is best-effort via a hash of
// the type name captured at construct time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "pmem/allocator.hpp"
#include "pmem/arena.hpp"

namespace dnnd::pmem {

/// Directory entry: a singly linked list node allocated inside the arena.
/// Names longer than kMaxNameBytes-1 are rejected.
struct NamedEntry {
  static constexpr std::size_t kMaxNameBytes = 96;
  char name[kMaxNameBytes] = {};
  std::uint64_t type_hash = 0;
  std::uint64_t object_offset = 0;
  std::uint32_t object_bytes = 0;
  std::uint32_t flags = 0;
  std::uint64_t next = 0;  ///< base-relative offset of next entry, 0 = end
};

class Manager {
 public:
  /// Creates (truncating any existing file) a datastore of `capacity` bytes.
  static Manager create(const std::string& path, std::size_t capacity);

  /// Opens an existing datastore read/write.
  /// Throws std::runtime_error if the file is missing or not a datastore.
  static Manager open(const std::string& path);

  Manager(Manager&& other) noexcept;
  Manager& operator=(Manager&& other) noexcept;
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Flushes dirty pages and unmaps. Implicit in the destructor.
  ~Manager();
  void close();

  [[nodiscard]] bool is_open() const noexcept { return base_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] ArenaHeader* header() noexcept {
    return static_cast<ArenaHeader*>(base_);
  }

  /// Allocator handle bound to this datastore's arena.
  template <typename T>
  [[nodiscard]] allocator<T> get_allocator() noexcept {
    return allocator<T>(header());
  }

  /// Looks up `name`; constructs T(args...) in the arena if absent.
  /// Returns nullptr only if the arena is exhausted (lookup miss +
  /// allocation failure). Throws std::runtime_error on a type mismatch
  /// with a previously stored object of the same name.
  template <typename T, typename... Args>
  T* find_or_construct(std::string_view name, Args&&... args) {
    if (T* existing = find<T>(name)) return existing;
    void* storage = arena_allocate(header(), sizeof(T));
    if (storage == nullptr) return nullptr;
    T* object = new (storage) T(std::forward<Args>(args)...);
    add_entry(name, type_hash_of<T>(), object, sizeof(T));
    return object;
  }

  /// Returns the named object, or nullptr if absent.
  /// Throws std::runtime_error if the name exists with a different type.
  template <typename T>
  [[nodiscard]] T* find(std::string_view name) {
    std::uint64_t offset = 0;
    if (!lookup(name, type_hash_of<T>(), offset)) return nullptr;
    return static_cast<T*>(arena_pointer_at(header(), offset));
  }

  /// Destroys and deallocates the named object. Returns false if absent.
  template <typename T>
  bool destroy(std::string_view name) {
    std::uint64_t offset = 0;
    if (!remove_entry(name, type_hash_of<T>(), offset)) return false;
    T* object = static_cast<T*>(arena_pointer_at(header(), offset));
    object->~T();
    arena_deallocate(header(), object, sizeof(T));
    return true;
  }

  [[nodiscard]] bool contains(std::string_view name) const;

  /// msync(2) the mapping so the file reflects all stores.
  void flush();

  /// Point-in-time copy of the datastore to `destination_path` (the
  /// Metall snapshot feature). The manager stays open.
  void snapshot(const std::string& destination_path);

  /// Bytes currently allocated from the arena (diagnostics).
  [[nodiscard]] std::size_t allocated_bytes() const noexcept;
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

  template <typename T>
  static std::uint64_t type_hash_of() noexcept;

 private:
  Manager(std::string path, void* base, std::size_t mapped_bytes, int fd)
      : path_(std::move(path)), base_(base), mapped_bytes_(mapped_bytes), fd_(fd) {}

  void add_entry(std::string_view name, std::uint64_t type_hash, void* object,
                 std::size_t bytes);
  bool lookup(std::string_view name, std::uint64_t type_hash,
              std::uint64_t& offset_out) const;
  bool remove_entry(std::string_view name, std::uint64_t type_hash,
                    std::uint64_t& offset_out);

  std::string path_;
  void* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  int fd_ = -1;
};

template <typename T>
std::uint64_t Manager::type_hash_of() noexcept {
  // __PRETTY_FUNCTION__ embeds T's name; hashing it gives a stable
  // per-type id within one compiler. Cross-compiler datastore exchange is
  // out of scope (as it is for Metall).
  constexpr std::string_view signature = __PRETTY_FUNCTION__;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : signature) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dnnd::pmem

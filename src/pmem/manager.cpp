#include "pmem/manager.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace dnnd::pmem {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Manager Manager::create(const std::string& path, std::size_t capacity) {
  if (capacity < sizeof(ArenaHeader) + 4096) {
    throw std::invalid_argument("Manager::create: capacity too small");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("Manager::create open(" + path + ")");
  if (::ftruncate(fd, static_cast<off_t>(capacity)) != 0) {
    ::close(fd);
    throw_errno("Manager::create ftruncate");
  }
  void* base = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    throw_errno("Manager::create mmap");
  }
  arena_format(static_cast<ArenaHeader*>(base), capacity);
  return Manager(path, base, capacity, fd);
}

Manager Manager::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) throw_errno("Manager::open open(" + path + ")");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("Manager::open fstat");
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    throw_errno("Manager::open mmap");
  }
  if (!arena_validate(static_cast<const ArenaHeader*>(base), bytes)) {
    ::munmap(base, bytes);
    ::close(fd);
    throw std::runtime_error("Manager::open: not a dnnd datastore: " + path);
  }
  return Manager(path, base, bytes, fd);
}

Manager::Manager(Manager&& other) noexcept
    : path_(std::move(other.path_)),
      base_(other.base_),
      mapped_bytes_(other.mapped_bytes_),
      fd_(other.fd_) {
  other.base_ = nullptr;
  other.mapped_bytes_ = 0;
  other.fd_ = -1;
}

Manager& Manager::operator=(Manager&& other) noexcept {
  if (this == &other) return *this;
  close();
  path_ = std::move(other.path_);
  base_ = other.base_;
  mapped_bytes_ = other.mapped_bytes_;
  fd_ = other.fd_;
  other.base_ = nullptr;
  other.mapped_bytes_ = 0;
  other.fd_ = -1;
  return *this;
}

Manager::~Manager() { close(); }

void Manager::close() {
  if (base_ == nullptr) return;
  ::msync(base_, mapped_bytes_, MS_SYNC);
  ::munmap(base_, mapped_bytes_);
  ::close(fd_);
  base_ = nullptr;
  mapped_bytes_ = 0;
  fd_ = -1;
}

void Manager::flush() {
  if (base_ == nullptr) return;
  if (::msync(base_, mapped_bytes_, MS_SYNC) != 0) {
    throw_errno("Manager::flush msync");
  }
}

void Manager::snapshot(const std::string& destination_path) {
  flush();
  std::ifstream src(path_, std::ios::binary);
  if (!src) throw std::runtime_error("Manager::snapshot: cannot read " + path_);
  std::ofstream dst(destination_path, std::ios::binary | std::ios::trunc);
  if (!dst) {
    throw std::runtime_error("Manager::snapshot: cannot write " +
                             destination_path);
  }
  dst << src.rdbuf();
  if (!dst.good()) {
    throw std::runtime_error("Manager::snapshot: copy failed");
  }
}

std::size_t Manager::allocated_bytes() const noexcept {
  return base_ == nullptr
             ? 0
             : static_cast<const ArenaHeader*>(base_)->allocated;
}

std::size_t Manager::capacity_bytes() const noexcept {
  return base_ == nullptr ? 0
                          : static_cast<const ArenaHeader*>(base_)->capacity;
}

void Manager::add_entry(std::string_view name, std::uint64_t type_hash,
                        void* object, std::size_t bytes) {
  if (name.size() >= NamedEntry::kMaxNameBytes) {
    throw std::invalid_argument("Manager: object name too long");
  }
  auto* entry =
      static_cast<NamedEntry*>(arena_allocate(header(), sizeof(NamedEntry)));
  if (entry == nullptr) throw ArenaExhausted();
  *entry = NamedEntry{};
  std::memcpy(entry->name, name.data(), name.size());
  entry->type_hash = type_hash;
  entry->object_offset = arena_offset_of(header(), object);
  entry->object_bytes = static_cast<std::uint32_t>(bytes);
  entry->next = header()->directory;
  header()->directory = arena_offset_of(header(), entry);
}

bool Manager::lookup(std::string_view name, std::uint64_t type_hash,
                     std::uint64_t& offset_out) const {
  auto* hdr = const_cast<Manager*>(this)->header();
  std::uint64_t cursor = hdr->directory;
  while (cursor != 0) {
    const auto* entry =
        static_cast<const NamedEntry*>(arena_pointer_at(hdr, cursor));
    if (name == entry->name) {
      if (entry->type_hash != type_hash) {
        throw std::runtime_error("Manager: type mismatch for object '" +
                                 std::string(name) + "'");
      }
      offset_out = entry->object_offset;
      return true;
    }
    cursor = entry->next;
  }
  return false;
}

bool Manager::remove_entry(std::string_view name, std::uint64_t type_hash,
                           std::uint64_t& offset_out) {
  std::uint64_t* link = &header()->directory;
  while (*link != 0) {
    auto* entry = static_cast<NamedEntry*>(arena_pointer_at(header(), *link));
    if (name == entry->name) {
      if (entry->type_hash != type_hash) {
        throw std::runtime_error("Manager: type mismatch for object '" +
                                 std::string(name) + "'");
      }
      offset_out = entry->object_offset;
      *link = entry->next;
      arena_deallocate(header(), entry, sizeof(NamedEntry));
      return true;
    }
    link = &entry->next;
  }
  return false;
}

bool Manager::contains(std::string_view name) const {
  auto* hdr = const_cast<Manager*>(this)->header();
  std::uint64_t cursor = hdr->directory;
  while (cursor != 0) {
    const auto* entry =
        static_cast<const NamedEntry*>(arena_pointer_at(hdr, cursor));
    if (name == entry->name) return true;
    cursor = entry->next;
  }
  return false;
}

}  // namespace dnnd::pmem

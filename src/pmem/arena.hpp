// Persistent arena: allocation state that lives inside the mapped file.
//
// Layout of a datastore file:
//
//   offset 0                 ArenaHeader (magic, capacity, bump cursor,
//                            segregated free lists, directory head)
//   sizeof(ArenaHeader)...   allocated blocks
//
// Every link in the arena (free-list next pointers, directory entries) is a
// *base-relative* byte offset, never a raw pointer, so a reopened mapping
// at any address is immediately usable.
//
// Allocation policy: segregated free lists over power-of-two size classes
// (16 B .. capacity), first-fit within a class, bump allocation when the
// class list is empty. Freed blocks return to their class list. There is no
// coalescing; the workloads this heap serves (append-heavy graph
// construction followed by read-only queries) do not fragment.
//
// Thread safety: none — one datastore belongs to one rank, matching the
// paper's one-Metall-store-per-process usage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace dnnd::pmem {

inline constexpr std::uint64_t kArenaMagic = 0x444e4e445f504d00ULL;  // "DNND_PM\0"
inline constexpr std::uint32_t kArenaVersion = 1;
inline constexpr std::size_t kMinBlockBytes = 16;
inline constexpr std::size_t kNumSizeClasses = 44;  // 16 B .. 2^47 B

/// Lives at offset 0 of the mapped file. Trivially copyable on purpose:
/// the file *is* the object.
struct ArenaHeader {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t capacity = 0;     ///< total file bytes
  std::uint64_t bump = 0;         ///< next never-allocated byte (base-relative)
  std::uint64_t allocated = 0;    ///< live bytes (diagnostics)
  std::uint64_t directory = 0;    ///< offset of first NamedEntry, 0 = none
  std::uint64_t free_lists[kNumSizeClasses] = {};  ///< head offsets, 0 = empty
};

static_assert(std::is_trivially_copyable_v<ArenaHeader>);

/// Rounds a request up to its size class; returns the class index.
std::size_t size_class_of(std::size_t bytes) noexcept;

/// Block size of a size class.
std::size_t size_class_bytes(std::size_t klass) noexcept;

/// Initializes a fresh header for a mapping of `capacity` bytes.
void arena_format(ArenaHeader* header, std::size_t capacity);

/// Validates magic/version/capacity of an existing mapping.
/// Returns false if the bytes are not a DNND datastore.
bool arena_validate(const ArenaHeader* header, std::size_t mapped_bytes) noexcept;

/// Allocates `bytes` (rounded to a size class). Returns nullptr when the
/// arena is exhausted. Alignment: all blocks are 16-byte aligned.
void* arena_allocate(ArenaHeader* header, std::size_t bytes);

/// Returns a block obtained from arena_allocate(header, bytes).
void arena_deallocate(ArenaHeader* header, void* ptr, std::size_t bytes) noexcept;

/// Base-relative offset of an in-arena pointer (diagnostics, directory).
std::uint64_t arena_offset_of(const ArenaHeader* header, const void* ptr) noexcept;

/// Pointer for a base-relative offset.
void* arena_pointer_at(ArenaHeader* header, std::uint64_t offset) noexcept;

}  // namespace dnnd::pmem

#include "telemetry/metrics.hpp"

#include <ostream>
#include <stdexcept>

#include "util/json.hpp"

namespace dnnd::telemetry {

MetricId MetricsRegistry::intern(std::string_view name, MetricKind kind) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (metrics_[it->second].kind != kind) {
      throw std::invalid_argument(
          "MetricsRegistry: metric '" + std::string(name) +
          "' already registered with a different kind");
    }
    return it->second;
  }
  const auto id = static_cast<MetricId>(metrics_.size());
  Metric m;
  m.name = std::string(name);
  m.kind = kind;
  metrics_.push_back(std::move(m));
  index_.emplace(std::string(name), id);
  return id;
}

const MetricsRegistry::Metric& MetricsRegistry::find(std::string_view name,
                                                     MetricKind kind) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    throw std::out_of_range("MetricsRegistry: unknown metric '" +
                            std::string(name) + "'");
  }
  const Metric& m = metrics_[it->second];
  if (m.kind != kind) {
    throw std::invalid_argument("MetricsRegistry: metric '" +
                                std::string(name) + "' has a different kind");
  }
  return m;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Validate every matching name first so a kind conflict cannot leave
  // this registry partially merged.
  for (const auto& src : other.metrics_) {
    const auto it = index_.find(src.name);
    if (it != index_.end() && metrics_[it->second].kind != src.kind) {
      throw std::invalid_argument(
          "MetricsRegistry::merge: metric '" + src.name +
          "' has kind conflict between the two registries");
    }
  }
  for (const auto& src : other.metrics_) {
    const auto it = index_.find(src.name);
    if (it == index_.end()) {
      const auto id = static_cast<MetricId>(metrics_.size());
      metrics_.push_back(src);
      index_.emplace(src.name, id);
      continue;
    }
    Metric& dst = metrics_[it->second];
    switch (src.kind) {
      case MetricKind::kCounter:
        dst.counter += src.counter;
        break;
      case MetricKind::kGauge:
        if (src.gauge > dst.gauge) dst.gauge = src.gauge;
        if (src.gauge_peak > dst.gauge_peak) dst.gauge_peak = src.gauge_peak;
        break;
      case MetricKind::kHistogram:
        dst.hist.merge(src.hist);
        break;
    }
  }
}

void MetricsRegistry::reset() noexcept {
  for (auto& m : metrics_) {
    m.counter = 0;
    m.gauge = 0;
    m.gauge_peak = std::numeric_limits<std::int64_t>::min();
    m.hist.reset();
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  using util::json::write_string;
  const auto section = [&](MetricKind kind, auto&& emit_one) {
    os << '{';
    bool first = true;
    for (const auto& m : metrics_) {
      if (m.kind != kind) continue;
      if (!first) os << ',';
      first = false;
      write_string(os, m.name);
      os << ':';
      emit_one(m);
    }
    os << '}';
  };

  os << "{\"counters\":";
  section(MetricKind::kCounter, [&](const Metric& m) { os << m.counter; });
  os << ",\"gauges\":";
  section(MetricKind::kGauge, [&](const Metric& m) {
    // A never-set gauge reports value 0 / peak 0 rather than the sentinel.
    const std::int64_t peak =
        m.gauge_peak == std::numeric_limits<std::int64_t>::min() ? 0
                                                                 : m.gauge_peak;
    os << "{\"value\":" << m.gauge << ",\"peak\":" << peak << '}';
  });
  os << ",\"histograms\":";
  section(MetricKind::kHistogram, [&](const Metric& m) {
    os << "{\"count\":" << m.hist.count() << ",\"sum\":" << m.hist.sum()
       << ",\"min\":" << (m.hist.count() ? m.hist.min() : 0)
       << ",\"max\":" << m.hist.max() << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
      if (m.hist.bucket(i) == 0) continue;
      if (!first) os << ',';
      first = false;
      os << "{\"lo\":" << LogHistogram::bucket_lower(i)
         << ",\"hi\":" << LogHistogram::bucket_upper(i)
         << ",\"n\":" << m.hist.bucket(i) << '}';
    }
    os << "]}";
  });
  os << '}';
}

}  // namespace dnnd::telemetry

// Per-rank telemetry facade and the DNND_TELEMETRY compile-time gate.
//
// Instrumented code (comm layer, engines, drivers, query service) talks
// to this class only: register metric ids at setup time, then add / set /
// record / span on the hot path. The CMake option DNND_TELEMETRY selects
// between two definitions with identical signatures:
//
//   ON  (default)  Telemetry owns a MetricsRegistry + TraceBuffer and
//                  forwards every call.
//   OFF            every member is an inline empty body — calls compile
//                  to nothing, spans never read the clock, and the hot
//                  path is byte-for-byte the uninstrumented one. The
//                  underlying registry/trace classes still exist (they
//                  are plain data structures and stay unit-testable);
//                  only the recording facade is compiled away.
//
// Callers that need to branch on the configuration at compile time can
// use `if constexpr (telemetry::kEnabled)`; this is how optional probes
// with a real cost (e.g. sampling a mutex-guarded queue depth) are kept
// out of DNND_TELEMETRY=OFF builds entirely.
#pragma once

#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#ifndef DNND_TELEMETRY_ENABLED
#define DNND_TELEMETRY_ENABLED 1
#endif

namespace dnnd::telemetry {

inline constexpr bool kEnabled = (DNND_TELEMETRY_ENABLED != 0);

#if DNND_TELEMETRY_ENABLED

class Telemetry {
 public:
  MetricId counter(std::string_view name) { return metrics_.counter(name); }
  MetricId gauge(std::string_view name) { return metrics_.gauge(name); }
  MetricId histogram(std::string_view name) {
    return metrics_.histogram(name);
  }

  void add(MetricId id, std::uint64_t n = 1) noexcept { metrics_.add(id, n); }
  void set(MetricId id, std::int64_t value) noexcept {
    metrics_.set(id, value);
  }
  void record(MetricId id, std::uint64_t value) noexcept {
    metrics_.record(id, value);
  }
  void record_clamped(MetricId id, double value) noexcept {
    metrics_.record_clamped(id, value);
  }

  /// RAII phase span; `name` and `category` must outlive the span
  /// (string literals at every call site).
  [[nodiscard]] TraceSpan span(const char* name, const char* category,
                               std::uint32_t tid = 0) {
    return TraceSpan(&trace_, name, category, tid);
  }
  void add_trace_event(TraceEvent event) { trace_.add(std::move(event)); }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const TraceBuffer& trace() const noexcept { return trace_; }

  void reset() noexcept {
    metrics_.reset();
    trace_.clear();
  }

 private:
  MetricsRegistry metrics_;
  TraceBuffer trace_;
};

#else  // DNND_TELEMETRY_ENABLED == 0: every member is a no-op

class Telemetry {
 public:
  MetricId counter(std::string_view) noexcept { return 0; }
  MetricId gauge(std::string_view) noexcept { return 0; }
  MetricId histogram(std::string_view) noexcept { return 0; }

  void add(MetricId, std::uint64_t = 1) noexcept {}
  void set(MetricId, std::int64_t) noexcept {}
  void record(MetricId, std::uint64_t) noexcept {}
  void record_clamped(MetricId, double) noexcept {}

  [[nodiscard]] TraceSpan span(const char*, const char*,
                               std::uint32_t = 0) noexcept {
    return TraceSpan{};  // null buffer: never reads the clock
  }
  void add_trace_event(TraceEvent) noexcept {}

  // Read-only views stay available so exporters compile unchanged; they
  // see permanently empty state. The mutable metrics() accessor is
  // deliberately absent: writing through the registry bypasses the no-op
  // gate and will not compile under DNND_TELEMETRY=OFF.
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    static const MetricsRegistry kEmpty;
    return kEmpty;
  }
  [[nodiscard]] const TraceBuffer& trace() const noexcept {
    static const TraceBuffer kEmpty;
    return kEmpty;
  }

  void reset() noexcept {}
};

#endif  // DNND_TELEMETRY_ENABLED

}  // namespace dnnd::telemetry

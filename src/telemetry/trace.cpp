#include "telemetry/trace.hpp"

#include <chrono>
#include <ostream>
#include <set>

#include "util/json.hpp"

namespace dnnd::telemetry {

std::uint64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            epoch)
          .count());
}

void write_chrome_trace(std::ostream& os, std::span<const RankTrace> ranks) {
  using util::json::write_string;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const RankTrace& rt : ranks) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << rt.rank
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << rt.rank << "\"}}";
    if (rt.buffer == nullptr) continue;
    std::set<std::uint32_t> tids;
    for (const TraceEvent& e : rt.buffer->events()) tids.insert(e.tid);
    for (const std::uint32_t tid : tids) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << rt.rank
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << (tid == 0 ? std::string("driver")
                      : "aux " + std::to_string(tid))
         << "\"}}";
    }
    for (const TraceEvent& e : rt.buffer->events()) {
      sep();
      os << "{\"name\":";
      write_string(os, e.name);
      os << ",\"cat\":";
      write_string(os, e.category);
      os << ",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
         << ",\"pid\":" << rt.rank << ",\"tid\":" << e.tid << '}';
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace dnnd::telemetry

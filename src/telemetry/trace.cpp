#include "telemetry/trace.hpp"

#include <cstdio>
#include <ostream>
#include <set>

#include "util/clock.hpp"
#include "util/json.hpp"

namespace dnnd::telemetry {

std::uint64_t now_us() { return util::monotonic_us(); }

std::string hex_id(std::uint64_t id) {
  char buf[19];  // "0x" + 16 hex digits + NUL
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

void write_chrome_trace(std::ostream& os, std::span<const RankTrace> ranks,
                        std::uint64_t origin_us) {
  using util::json::write_string;
  const auto rel = [origin_us](std::uint64_t ts) {
    return ts >= origin_us ? ts - origin_us : 0;
  };
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const RankTrace& rt : ranks) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << rt.rank
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << rt.rank << "\"}}";
    if (rt.buffer == nullptr) continue;
    std::set<std::uint32_t> tids;
    for (const TraceEvent& e : rt.buffer->events()) tids.insert(e.tid);
    for (const std::uint32_t tid : tids) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << rt.rank
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << (tid == 0 ? std::string("driver")
                      : "aux " + std::to_string(tid))
         << "\"}}";
    }
    for (const TraceEvent& e : rt.buffer->events()) {
      sep();
      os << "{\"name\":";
      write_string(os, e.name);
      os << ",\"cat\":";
      write_string(os, e.category);
      os << ",\"ph\":\"" << e.ph << "\",\"ts\":" << rel(e.ts_us);
      if (e.ph == 'X') os << ",\"dur\":" << e.dur_us;
      os << ",\"pid\":" << rt.rank << ",\"tid\":" << e.tid;
      if (e.ph == 's' || e.ph == 'f' || e.ph == 't') {
        os << ",\"id\":\"" << hex_id(e.flow_id) << '"';
        // Bind the arrowhead to the enclosing slice (the receive-side
        // handler span), not the next slice to start.
        if (e.ph == 'f') os << ",\"bp\":\"e\"";
      }
      if (!e.args.empty()) os << ",\"args\":" << e.args;
      os << '}';
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace dnnd::telemetry

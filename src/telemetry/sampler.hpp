// Live time-series sampler: periodic snapshots of every registered
// counter and gauge, across all ranks, into timeseries.json.
//
// Aggregate metrics (metrics.json) answer "how much total"; the paper's
// §4.4 congestion questions — does the batch cadence cause inbox bursts,
// which rank's distance-eval counter stalls a barrier — need "how much,
// when, on which rank". The Sampler provides that: the runner snapshots
// after every NN-Descent iteration, and the Environment optionally
// snapshots on a configurable wall-clock tick between phases.
//
// Cost model: a snapshot walks each rank's registry once (setup-scale
// metric counts, called once per iteration/tick — never on the message
// hot path). With tick_period_us == 0 the tick path is a single integer
// compare; under DNND_TELEMETRY=OFF the Environment never constructs
// snapshots at all, so the class costs nothing beyond its definition
// (it stays compiled and unit-testable, like the registry).
//
// Determinism: the clock is injectable (tests pin a fake clock), and
// snapshots copy values in registration order, so for a fixed schedule of
// sample() calls the JSON document is byte-stable.
//
// Thread safety: none. Snapshots are taken between phases on the driver
// thread, when no rank thread is recording (the same discipline as
// Environment::aggregate_metrics).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace dnnd::telemetry {

/// One rank's metric values at one instant (names in registration order).
struct RankSample {
  int rank = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// name → (value, peak-so-far)
  std::vector<std::pair<std::string, std::pair<std::int64_t, std::int64_t>>>
      gauges;
};

/// One cross-rank snapshot.
struct Snapshot {
  std::uint64_t t_us = 0;  ///< clock at snapshot time
  std::uint64_t seq = 0;   ///< 1-based snapshot index
  std::string label;       ///< "iteration", "tick", or caller-provided
  std::vector<RankSample> ranks;
};

class Sampler {
 public:
  using Clock = std::function<std::uint64_t()>;

  /// `tick_period_us` gates maybe_sample(): 0 disables the tick path
  /// entirely (explicit sample() calls still record). `clock` defaults to
  /// telemetry::now_us; tests inject a fake for determinism.
  explicit Sampler(std::uint64_t tick_period_us = 0, Clock clock = {});

  /// Registers `registry` as rank `rank`'s source. Pointers must outlive
  /// the sampler; attach order defines the per-snapshot rank order.
  void attach(int rank, const MetricsRegistry* registry);

  /// Takes a snapshot unconditionally (the per-iteration hook).
  void sample(std::string_view label);

  /// Takes a snapshot iff the tick period is non-zero and has elapsed
  /// since the previous snapshot (any label). Returns whether it sampled.
  bool maybe_sample(std::string_view label);

  [[nodiscard]] const std::vector<Snapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] std::uint64_t tick_period_us() const noexcept {
    return tick_period_us_;
  }
  void clear() noexcept { snapshots_.clear(); }

  /// Emits the dnnd.timeseries.v1 document:
  ///   {"schema":"dnnd.timeseries.v1","enabled":...,"ranks":N,
  ///    "tick_us":...,"snapshots":[{"t_us":...,"seq":...,"label":...,
  ///    "per_rank":[{"rank":r,"counters":{...},
  ///                 "gauges":{name:{"value":v,"peak":p}}},...]},...]}
  /// Timestamps are relative to `origin_us` (clamped at zero), matching
  /// the Chrome-trace export so the two artifacts share a timeline.
  void write_json(std::ostream& os, bool enabled,
                  std::uint64_t origin_us = 0) const;

 private:
  std::uint64_t tick_period_us_;
  Clock clock_;
  std::uint64_t last_sample_us_ = 0;
  bool sampled_once_ = false;
  std::vector<std::pair<int, const MetricsRegistry*>> sources_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace dnnd::telemetry

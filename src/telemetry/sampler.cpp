#include "telemetry/sampler.hpp"

#include <limits>
#include <ostream>

#include "telemetry/trace.hpp"
#include "util/json.hpp"

namespace dnnd::telemetry {

Sampler::Sampler(std::uint64_t tick_period_us, Clock clock)
    : tick_period_us_(tick_period_us), clock_(std::move(clock)) {
  if (!clock_) clock_ = [] { return now_us(); };
}

void Sampler::attach(int rank, const MetricsRegistry* registry) {
  sources_.emplace_back(rank, registry);
}

void Sampler::sample(std::string_view label) {
  Snapshot snap;
  snap.t_us = clock_();
  snap.seq = snapshots_.size() + 1;
  snap.label = std::string(label);
  snap.ranks.reserve(sources_.size());
  for (const auto& [rank, registry] : sources_) {
    RankSample rs;
    rs.rank = rank;
    for (const auto& m : registry->all()) {
      switch (m.kind) {
        case MetricKind::kCounter:
          rs.counters.emplace_back(m.name, m.counter);
          break;
        case MetricKind::kGauge: {
          const std::int64_t peak =
              m.gauge_peak == std::numeric_limits<std::int64_t>::min()
                  ? 0
                  : m.gauge_peak;
          rs.gauges.emplace_back(m.name, std::make_pair(m.gauge, peak));
          break;
        }
        case MetricKind::kHistogram:
          break;  // distributions live in metrics.json, not the series
      }
    }
    snap.ranks.push_back(std::move(rs));
  }
  last_sample_us_ = snap.t_us;
  sampled_once_ = true;
  snapshots_.push_back(std::move(snap));
}

bool Sampler::maybe_sample(std::string_view label) {
  if (tick_period_us_ == 0) return false;
  const std::uint64_t now = clock_();
  if (sampled_once_ && now - last_sample_us_ < tick_period_us_) return false;
  sample(label);
  return true;
}

void Sampler::write_json(std::ostream& os, bool enabled,
                         std::uint64_t origin_us) const {
  using util::json::write_string;
  const auto rel = [origin_us](std::uint64_t ts) {
    return ts >= origin_us ? ts - origin_us : 0;
  };
  os << "{\"schema\":\"dnnd.timeseries.v1\",\"enabled\":"
     << (enabled ? "true" : "false") << ",\"ranks\":" << sources_.size()
     << ",\"tick_us\":" << tick_period_us_ << ",\"snapshots\":[";
  bool first_snap = true;
  for (const Snapshot& snap : snapshots_) {
    if (!first_snap) os << ',';
    first_snap = false;
    os << "{\"t_us\":" << rel(snap.t_us) << ",\"seq\":" << snap.seq
       << ",\"label\":";
    write_string(os, snap.label);
    os << ",\"per_rank\":[";
    bool first_rank = true;
    for (const RankSample& rs : snap.ranks) {
      if (!first_rank) os << ',';
      first_rank = false;
      os << "{\"rank\":" << rs.rank << ",\"counters\":{";
      bool first = true;
      for (const auto& [name, value] : rs.counters) {
        if (!first) os << ',';
        first = false;
        write_string(os, name);
        os << ':' << value;
      }
      os << "},\"gauges\":{";
      first = true;
      for (const auto& [name, vp] : rs.gauges) {
        if (!first) os << ',';
        first = false;
        write_string(os, name);
        os << ":{\"value\":" << vp.first << ",\"peak\":" << vp.second << '}';
      }
      os << "}}";
    }
    os << "]}";
  }
  os << "]}";
}

}  // namespace dnnd::telemetry

// Offline run analysis — the read side of the telemetry pipeline.
//
// Everything here operates on the parsed JSON artifacts a run leaves
// behind (metrics.json, trace.json, timeseries.json), never on live
// Environment state, so `dnnd_cli stats` can inspect a run from another
// process, another build configuration, or last week. Three jobs:
//
//   * analyze_load  — per-rank work accounting from the Chrome trace:
//     handler vs. phase time, barrier-wait share, traced-message queue
//     latency percentiles, and straggler flagging (rank work more than
//     `straggler_factor` × the mean).
//   * diff_metrics  — tolerance-based regression diff of two metrics.json
//     documents over the deterministic counters (handler send rows,
//     transport counters, registry counters). Time-valued series
//     (names ending in `_us` / `_seconds`) are skipped: wall-clock is not
//     reproducible across machines, message counts are.
//   * summarize_timeseries — snapshot count / label census so the CLI can
//     confirm the sampler actually ran.
//
// All functions throw std::runtime_error on documents that do not match
// the dnnd.metrics.v1 / dnnd.timeseries.v1 / Chrome-trace shapes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace dnnd::telemetry {

/// Work distilled from one rank's spans in trace.json.
struct RankLoad {
  int rank = 0;
  std::uint64_t handler_us = 0;  ///< Σ dur of category "handler" spans
  std::uint64_t phase_us = 0;    ///< Σ dur of category "phase" spans
  std::uint64_t barrier_us = 0;  ///< Σ dur of "barrier_wait" events
  std::uint64_t spans = 0;       ///< number of 'X' events

  /// Work a rank actively did (excludes barrier waits).
  [[nodiscard]] std::uint64_t work_us() const noexcept {
    return handler_us + phase_us;
  }
};

struct LoadReport {
  std::vector<RankLoad> ranks;     ///< sorted by rank id
  double mean_work_us = 0.0;
  std::uint64_t max_work_us = 0;
  double max_over_mean = 0.0;      ///< load-skew factor (1.0 = balanced)
  std::vector<int> stragglers;     ///< ranks with work > factor × mean
  double barrier_share = 0.0;      ///< Σ barrier / Σ (work + barrier)
  // Traced-message queue latency (submit → handler start), exact
  // percentiles over the per-span samples recorded in recv span args.
  std::uint64_t queue_samples = 0;
  std::uint64_t queue_p50_us = 0;
  std::uint64_t queue_p99_us = 0;
  // Causal-flow accounting: matched = flow ids seen with both a start
  // ('s') and a finish ('f') — i.e. arrows chrome://tracing can draw.
  std::uint64_t flows_started = 0;
  std::uint64_t flows_finished = 0;
  std::uint64_t flows_matched = 0;
};

/// Analyzes a parsed Chrome-trace document (trace.json).
[[nodiscard]] LoadReport analyze_load(const util::json::Value& trace_doc,
                                      double straggler_factor = 1.25);

/// One compared value in a regression diff.
struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  ///< (current-baseline)/baseline; ±inf if base 0
  bool violated = false;
};

struct DiffReport {
  std::vector<MetricDelta> deltas;  ///< violations first, then by name
  /// Non-zero counters present on only one side (also violations: a
  /// vanished or brand-new message class is a behaviour change).
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
  std::uint64_t compared = 0;
  std::uint64_t violations = 0;
  [[nodiscard]] bool within_tolerance() const noexcept {
    return violations == 0 && only_in_baseline.empty() &&
           only_in_current.empty();
  }
};

/// Diffs two dnnd.metrics.v1 documents. `tolerance_pct` is the allowed
/// relative drift in percent (0 = exact match required). When either
/// document was produced by a DNND_TELEMETRY=OFF build ("enabled":false),
/// registry counters are excluded from both sides — the always-on
/// handler/transport message stats are still compared exactly, which is
/// what lets one committed baseline gate both build flavours.
[[nodiscard]] DiffReport diff_metrics(const util::json::Value& baseline,
                                      const util::json::Value& current,
                                      double tolerance_pct);

struct TimeseriesSummary {
  bool enabled = false;
  std::uint64_t snapshots = 0;
  std::uint64_t iteration_snapshots = 0;  ///< label == "iteration"
  std::uint64_t span_us = 0;              ///< last t_us − first t_us
};

[[nodiscard]] TimeseriesSummary summarize_timeseries(
    const util::json::Value& timeseries_doc);

/// Human-readable renderings used by `dnnd_cli stats`.
void print_load_report(std::ostream& os, const LoadReport& report,
                       double straggler_factor);
void print_diff_report(std::ostream& os, const DiffReport& report,
                       double tolerance_pct);
void print_timeseries_summary(std::ostream& os,
                              const TimeseriesSummary& summary);

/// Reads and parses a JSON file; std::nullopt when the file cannot be
/// read (missing artifact — callers degrade gracefully), throws on a file
/// that reads but does not parse (a corrupt artifact should be loud).
[[nodiscard]] std::optional<util::json::Value> load_json_file(
    const std::string& path);

}  // namespace dnnd::telemetry

// Per-rank metrics registry: counters, gauges, and fixed-bucket log-scale
// histograms, all mergeable across ranks (same discipline as
// util::RunningStats::merge and comm::MessageStats::merge).
//
// The paper's evaluation is built on per-phase, per-message-type
// accounting (Fig. 4 message/byte breakdowns, the §5.4 batch-size
// congestion study). This registry is the general-purpose half of that:
// every subsystem registers named metrics once (cheap, setup-time) and
// records through dense MetricIds on the hot path (an indexed add).
// After a run the driver merges the per-rank registries into one view and
// the exporters emit machine-readable JSON.
//
// Merge semantics per kind:
//   counter    sum
//   gauge      last-set value and peak both merge by max (gauges track
//              instantaneous levels like queue depth; the cross-rank
//              aggregate of interest is the high-water mark)
//   histogram  bucket-wise sum (fixed log2 bucket layout, so merging is
//              associative and commutative like RunningStats)
//
// Unlike MessageStats, merge matches metrics *by name*, so registries
// with different registration orders — or disjoint metric sets — merge
// correctly; a name registered with different kinds on the two sides is a
// programming error and throws without modifying the destination.
//
// Thread safety: counter add() is safe to call concurrently from one
// rank's thread-pool workers — the hot-path increment is a relaxed
// atomic fetch_add (RelaxedCounter below), and reads/merges happen after
// the pool's join, which orders them. Everything else (registration,
// gauges, histograms, merge, reset, write_json) keeps the original
// discipline: one registry belongs to one rank and is only touched by
// that rank's driver thread, exactly like MessageStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dnnd::telemetry {

using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Fixed-layout log2 histogram over uint64 samples.
///
/// Bucket 0 holds the value 0; bucket i (1 <= i <= 64) holds values with
/// bit width i, i.e. the range [2^(i-1), 2^i - 1]. The layout is the same
/// for every instance, which is what makes merge a plain bucket-wise sum.
class LogHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucket_index(value)];
    ++count_;
    sum_ += static_cast<double>(value);
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Doubles clamp into the uint64 domain: negatives and sub-1 values
  /// record as 0, +inf and anything >= 2^64 saturate into the top bucket,
  /// NaN is dropped (counted nowhere — there is no meaningful bucket).
  void record_clamped(double value) noexcept {
    if (value != value) return;  // NaN
    if (value <= 0.0) {
      record(0);
    } else if (value >= 18446744073709551615.0) {  // 2^64 - 1 rounded up
      record(std::numeric_limits<std::uint64_t>::max());
    } else {
      record(static_cast<std::uint64_t>(value));
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Min/max of recorded samples; min() > max() iff count() == 0.
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i);
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    std::size_t width = 0;
    while (value != 0) {
      value >>= 1;
      ++width;
    }
    return width;  // 0 for value 0, else bit width (1..64)
  }
  /// Inclusive value range covered by bucket i.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i == 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  /// Approximate percentile (p in [0,1]) from the log2 buckets: the upper
  /// bound of the bucket holding the p-th sample, clamped to the observed
  /// [min, max]. Exact for values that landed in single-value buckets
  /// (0 and 1); otherwise accurate to one bucket width — good enough for
  /// the order-of-magnitude latency questions the stats tooling answers.
  [[nodiscard]] double percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    const double target = p * static_cast<double>(count_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      cumulative += static_cast<double>(buckets_[i]);
      if (cumulative >= target && buckets_[i] != 0) {
        const auto upper = static_cast<double>(bucket_upper(i));
        const auto lo = static_cast<double>(min_);
        const auto hi = static_cast<double>(max_);
        return upper < lo ? lo : (upper > hi ? hi : upper);
      }
    }
    return static_cast<double>(max_);
  }

  void merge(const LogHistogram& other) noexcept {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ != 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  void reset() noexcept { *this = LogHistogram{}; }

 private:
  std::vector<std::uint64_t> buckets_ =
      std::vector<std::uint64_t>(kNumBuckets, 0);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Counter cell whose increment is a relaxed atomic fetch_add, so pool
/// workers inside one rank can bump shared counters (engine.tasks,
/// engine.distance_evals from parallel eval tasks) without a data race.
/// Relaxed is sufficient: counters are pure sums with no ordering
/// relationship to other data, and every read that matters happens after
/// the pool's join barrier. Copy/assign use relaxed load+store so the
/// value-semantics the registry relies on (vector relocation on intern,
/// Metric copies in merge) keep working; those only ever run on the
/// driver thread while no workers are recording.
class RelaxedCounter {
 public:
  RelaxedCounter() noexcept = default;
  RelaxedCounter(std::uint64_t v) noexcept : v_(v) {}  // NOLINT(*-explicit-*)
  RelaxedCounter(const RelaxedCounter& other) noexcept
      : v_(other.v_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    v_.store(other.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  operator std::uint64_t() const noexcept {  // NOLINT(*-explicit-*)
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class MetricsRegistry {
 public:
  /// One named metric's full state. Public so read-only consumers (the
  /// time-series Sampler, exporters, tests) can walk the registry in
  /// registration order without a name round-trip per metric.
  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    RelaxedCounter counter;
    std::int64_t gauge = 0;
    std::int64_t gauge_peak = std::numeric_limits<std::int64_t>::min();
    LogHistogram hist;
  };

  /// Register-or-lookup by name. Registering an existing name with the
  /// same kind returns the original id (so independently constructed
  /// subsystems can share a metric); a different kind throws.
  MetricId counter(std::string_view name) {
    return intern(name, MetricKind::kCounter);
  }
  MetricId gauge(std::string_view name) {
    return intern(name, MetricKind::kGauge);
  }
  MetricId histogram(std::string_view name) {
    return intern(name, MetricKind::kHistogram);
  }

  // -- hot-path recording (ids come from registration above) -------------

  void add(MetricId id, std::uint64_t n = 1) noexcept {
    metrics_[id].counter += n;
  }
  void set(MetricId id, std::int64_t value) noexcept {
    auto& m = metrics_[id];
    m.gauge = value;
    if (value > m.gauge_peak) m.gauge_peak = value;
  }
  void record(MetricId id, std::uint64_t value) noexcept {
    metrics_[id].hist.record(value);
  }
  void record_clamped(MetricId id, double value) noexcept {
    metrics_[id].hist.record_clamped(value);
  }

  // -- reads (by name, for tests and exporters) --------------------------

  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  [[nodiscard]] bool contains(std::string_view name) const {
    return index_.find(std::string(name)) != index_.end();
  }
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const {
    return find(name, MetricKind::kCounter).counter;
  }
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const {
    return find(name, MetricKind::kGauge).gauge;
  }
  [[nodiscard]] std::int64_t gauge_peak(std::string_view name) const {
    return find(name, MetricKind::kGauge).gauge_peak;
  }
  [[nodiscard]] const LogHistogram& histogram_of(std::string_view name) const {
    return find(name, MetricKind::kHistogram).hist;
  }
  /// All metrics in registration order (stable across a run).
  [[nodiscard]] const std::vector<Metric>& all() const noexcept {
    return metrics_;
  }

  /// Merges by name (see file header for per-kind semantics). Strong
  /// exception guarantee: a kind conflict throws std::invalid_argument
  /// and leaves this registry untouched.
  void merge(const MetricsRegistry& other);

  /// Zeroes every value but keeps names, kinds, and ids (mirror of
  /// MessageStats::reset).
  void reset() noexcept;

  /// Emits the registry as one JSON object:
  ///   {"counters":{...},"gauges":{name:{"value":v,"peak":p}},
  ///    "histograms":{name:{"count":c,"sum":s,"min":m,"max":M,
  ///                        "buckets":[{"lo":l,"hi":h,"n":c},...]}}}
  /// Members appear in registration order within each section; only
  /// non-empty histogram buckets are listed.
  void write_json(std::ostream& os) const;

 private:
  MetricId intern(std::string_view name, MetricKind kind);
  [[nodiscard]] const Metric& find(std::string_view name,
                                   MetricKind kind) const;

  std::vector<Metric> metrics_;
  std::unordered_map<std::string, MetricId> index_;
};

}  // namespace dnnd::telemetry

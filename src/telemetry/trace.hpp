// Phase-scoped trace spans and the Chrome-trace (catapult) exporter.
//
// Each rank owns a TraceBuffer of *complete* events ("ph":"X" in the
// trace-event format): name, category, start timestamp, duration, and a
// logical thread id within the rank. RAII TraceSpans stamp wall time on
// construction/destruction against a process-global steady-clock epoch,
// so events from different ranks share one timeline.
//
// The exporter writes the JSON object form of the Trace Event Format that
// chrome://tracing and Perfetto load directly: pid = simulated rank,
// tid = logical thread within the rank (0 = the rank's driver thread),
// with metadata records naming both.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dnnd::telemetry {

/// Microseconds since the process-global telemetry epoch (the first call
/// in the process). Monotonic; shared by every rank in the simulation.
[[nodiscard]] std::uint64_t now_us();

struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< start, micros since the telemetry epoch
  std::uint64_t dur_us = 0;  ///< duration in micros
  std::uint32_t tid = 0;     ///< logical thread within the rank
};

/// Per-rank event buffer. Not thread-safe: owned and written by one
/// rank's thread, like MessageStats.
class TraceBuffer {
 public:
  void add(TraceEvent event) { events_.push_back(std::move(event)); }
  void add_complete(std::string name, std::string category,
                    std::uint64_t ts_us, std::uint64_t dur_us,
                    std::uint32_t tid = 0) {
    events_.push_back(TraceEvent{std::move(name), std::move(category), ts_us,
                                 dur_us, tid});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// RAII span: records one complete event into `buffer` on destruction.
/// A null buffer makes the span a no-op (no clock reads) — that is how
/// the DNND_TELEMETRY=OFF facade compiles spans away.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceBuffer* buffer, const char* name, const char* category,
            std::uint32_t tid = 0)
      : buffer_(buffer), name_(name), category_(category), tid_(tid) {
    if (buffer_ != nullptr) start_us_ = now_us();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    buffer_ = std::exchange(other.buffer_, nullptr);
    name_ = other.name_;
    category_ = other.category_;
    tid_ = other.tid_;
    start_us_ = other.start_us_;
    return *this;
  }

  ~TraceSpan() {
    if (buffer_ == nullptr) return;
    const std::uint64_t end = now_us();
    buffer_->add_complete(name_, category_, start_us_, end - start_us_, tid_);
  }

 private:
  TraceBuffer* buffer_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  std::uint32_t tid_ = 0;
  std::uint64_t start_us_ = 0;
};

/// One rank's contribution to the merged trace.
struct RankTrace {
  int rank = 0;
  const TraceBuffer* buffer = nullptr;
};

/// Writes the merged per-rank buffers as a Chrome trace (JSON object
/// format): every event becomes a "ph":"X" record with pid = rank and
/// tid = event.tid, preceded by process_name/thread_name metadata so the
/// viewer labels rows "rank N" / "driver".
void write_chrome_trace(std::ostream& os, std::span<const RankTrace> ranks);

}  // namespace dnnd::telemetry

// Phase-scoped trace spans, cross-rank flow events, and the Chrome-trace
// (catapult) exporter.
//
// Each rank owns a TraceBuffer of events: complete spans ("ph":"X" in the
// trace-event format) plus flow start/finish records ("ph":"s"/"f") that
// stitch a sender-side event to the receiver-side handler span it caused.
// RAII TraceSpans stamp wall time against the process-global monotonic
// clock (util::monotonic_us), so events from different ranks share one
// timeline; the exporter additionally subtracts a per-run origin so every
// run's trace starts near zero even when several Environments live in one
// process.
//
// The exporter writes the JSON object form of the Trace Event Format that
// chrome://tracing and Perfetto load directly: pid = simulated rank,
// tid = logical thread within the rank (0 = the rank's driver thread),
// with metadata records naming both. Flow events carry a shared "id", so
// the viewer draws an arrow from the send site on rank A to the handler
// span on rank B — the §4.3 Type-1 → Type-2+ → Type-3 reply chains line
// up visually across rank tracks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dnnd::telemetry {

/// Microseconds since the process-global telemetry epoch (the first call
/// in the process). Monotonic; shared by every rank in the simulation and
/// by the structured logger (util::monotonic_us under the hood).
[[nodiscard]] std::uint64_t now_us();

/// Renders a trace/span id the way every exporter spells it ("0x" + hex),
/// so trace.json flow ids and structured-log trace fields compare equal.
[[nodiscard]] std::string hex_id(std::uint64_t id);

struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< start, micros since the telemetry epoch
  std::uint64_t dur_us = 0;  ///< duration in micros ('X' events only)
  std::uint32_t tid = 0;     ///< logical thread within the rank
  /// Trace-event phase: 'X' = complete span, 's' = flow start,
  /// 'f' = flow finish (bound to the enclosing slice at its timestamp).
  char ph = 'X';
  std::uint64_t flow_id = 0;  ///< shared id linking 's' and 'f' records
  /// Pre-rendered JSON object emitted as "args" when non-empty (e.g.
  /// {"queue_us":12,"hop":2}); the writer does not re-escape it.
  std::string args;
};

/// Per-rank event buffer. Not thread-safe: owned and written by one
/// rank's thread, like MessageStats.
class TraceBuffer {
 public:
  void add(TraceEvent event) { events_.push_back(std::move(event)); }
  void add_complete(std::string name, std::string category,
                    std::uint64_t ts_us, std::uint64_t dur_us,
                    std::uint32_t tid = 0) {
    TraceEvent e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.ts_us = ts_us;
    e.dur_us = dur_us;
    e.tid = tid;
    events_.push_back(std::move(e));
  }
  /// Flow start ('s') / finish ('f') records; `ts_us` must fall inside the
  /// slice that should anchor the arrow on this rank's track.
  void add_flow(char ph, std::string name, std::uint64_t ts_us,
                std::uint64_t flow_id, std::uint32_t tid = 0) {
    TraceEvent e;
    e.name = std::move(name);
    e.category = "flow";
    e.ts_us = ts_us;
    e.tid = tid;
    e.ph = ph;
    e.flow_id = flow_id;
    events_.push_back(std::move(e));
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// RAII span: records one complete event into `buffer` on destruction.
/// A null buffer makes the span a no-op (no clock reads) — that is how
/// the DNND_TELEMETRY=OFF facade compiles spans away.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceBuffer* buffer, const char* name, const char* category,
            std::uint32_t tid = 0)
      : buffer_(buffer), name_(name), category_(category), tid_(tid) {
    if (buffer_ != nullptr) start_us_ = now_us();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    buffer_ = std::exchange(other.buffer_, nullptr);
    name_ = other.name_;
    category_ = other.category_;
    tid_ = other.tid_;
    start_us_ = other.start_us_;
    return *this;
  }

  ~TraceSpan() {
    if (buffer_ == nullptr) return;
    const std::uint64_t end = now_us();
    buffer_->add_complete(name_, category_, start_us_, end - start_us_, tid_);
  }

 private:
  TraceBuffer* buffer_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  std::uint32_t tid_ = 0;
  std::uint64_t start_us_ = 0;
};

/// One rank's contribution to the merged trace.
struct RankTrace {
  int rank = 0;
  const TraceBuffer* buffer = nullptr;
};

/// Writes the merged per-rank buffers as a Chrome trace (JSON object
/// format): every 'X' event becomes a complete record with pid = rank and
/// tid = event.tid, flow events become "ph":"s"/"f" records sharing an
/// "id" (the cross-rank stitch), preceded by process_name/thread_name
/// metadata so the viewer labels rows "rank N" / "driver".
///
/// `origin_us` is subtracted from every timestamp (clamped at zero): pass
/// the run's start time so every rank's spans share a per-run zero rather
/// than the process-global epoch.
void write_chrome_trace(std::ostream& os, std::span<const RankTrace> ranks,
                        std::uint64_t origin_us = 0);

}  // namespace dnnd::telemetry

#include "telemetry/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dnnd::telemetry {
namespace {

using util::json::Value;

std::uint64_t percentile_of(std::vector<std::uint64_t>& samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

/// True for metric names whose value is a wall-clock quantity — excluded
/// from regression diffs because they vary run to run and machine to
/// machine, unlike message/update counts.
bool is_time_valued(const std::string& name) {
  return name.ends_with("_us") || name.ends_with("_seconds") ||
         name.ends_with("_ticks");
}

/// True for counters that describe the parallel schedule's *shape*
/// (thread-pool tasks dispatched), not algorithmic work. They are a pure
/// function of the work size and are asserted bit-identical across
/// thread counts by the determinism tests — but baselines recorded
/// before a loop was staged (or with a different grain) would diff
/// against them spuriously, so the regression gate skips them the same
/// way it skips wall-clock values.
bool is_schedule_shape(const std::string& name) {
  return name.ends_with(".tasks");
}

/// Flattens the deterministic counters of a dnnd.metrics.v1 document into
/// a single name → value map with namespaced keys. Registry counters are
/// included only when `with_registry` — handler/transport message stats
/// are always-on, but the metrics registry compiles to a no-op under
/// DNND_TELEMETRY=OFF, so cross-flavour diffs must not treat its absence
/// as a regression.
std::map<std::string, double> flatten_counters(const Value& doc,
                                               bool with_registry) {
  std::map<std::string, double> out;
  for (const auto& h : doc.at("handlers").as_array()) {
    const std::string label = h.at("label").as_string();
    for (const char* field : {"remote_messages", "remote_bytes",
                              "local_messages", "local_bytes"}) {
      out["handler." + label + "." + field] = h.at(field).as_number();
    }
  }
  for (const auto& [key, value] : doc.at("transport").as_object()) {
    out["transport." + key] = value.as_number();
  }
  if (with_registry) {
    for (const auto& [name, value] :
         doc.at("metrics").at("counters").as_object()) {
      if (is_time_valued(name) || is_schedule_shape(name)) continue;
      out["counter." + name] = value.as_number();
    }
  }
  return out;
}

/// A document records whether telemetry was compiled in; tolerate legacy
/// documents without the field by assuming enabled.
bool doc_enabled(const Value& doc) {
  return !doc.contains("enabled") || doc.at("enabled").as_bool();
}

}  // namespace

LoadReport analyze_load(const Value& trace_doc, double straggler_factor) {
  const auto& events = trace_doc.at("traceEvents").as_array();
  std::map<int, RankLoad> per_rank;
  std::vector<std::uint64_t> queue_samples;
  std::set<std::uint64_t> started, finished;

  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "s" || ph == "f") {
      // Flow ids are hex strings shared between the send ('s') and the
      // receive ('f') side; parse for matching.
      const std::uint64_t id =
          std::stoull(e.at("id").as_string(), nullptr, 16);
      (ph == "s" ? started : finished).insert(id);
      continue;
    }
    if (ph != "X") continue;
    const int pid = static_cast<int>(e.at("pid").as_number());
    auto& load = per_rank[pid];
    load.rank = pid;
    ++load.spans;
    const auto dur = static_cast<std::uint64_t>(e.at("dur").as_number());
    const std::string& cat = e.at("cat").as_string();
    if (e.at("name").as_string() == "barrier_wait") {
      load.barrier_us += dur;
    } else if (cat == "handler") {
      load.handler_us += dur;
      if (e.contains("args") && e.at("args").contains("queue_us")) {
        queue_samples.push_back(
            static_cast<std::uint64_t>(e.at("args").at("queue_us").as_number()));
      }
    } else if (cat == "phase") {
      load.phase_us += dur;
    }
  }

  LoadReport report;
  std::uint64_t total_work = 0, total_barrier = 0;
  for (auto& [rank, load] : per_rank) {
    total_work += load.work_us();
    total_barrier += load.barrier_us;
    report.max_work_us = std::max(report.max_work_us, load.work_us());
    report.ranks.push_back(load);
  }
  if (!report.ranks.empty()) {
    report.mean_work_us = static_cast<double>(total_work) /
                          static_cast<double>(report.ranks.size());
  }
  if (report.mean_work_us > 0.0) {
    report.max_over_mean =
        static_cast<double>(report.max_work_us) / report.mean_work_us;
    for (const auto& load : report.ranks) {
      if (static_cast<double>(load.work_us()) >
          straggler_factor * report.mean_work_us) {
        report.stragglers.push_back(load.rank);
      }
    }
  }
  if (total_work + total_barrier > 0) {
    report.barrier_share = static_cast<double>(total_barrier) /
                           static_cast<double>(total_work + total_barrier);
  }
  report.queue_samples = queue_samples.size();
  report.queue_p50_us = percentile_of(queue_samples, 0.50);
  report.queue_p99_us = percentile_of(queue_samples, 0.99);
  report.flows_started = started.size();
  report.flows_finished = finished.size();
  for (const std::uint64_t id : started) {
    if (finished.contains(id)) ++report.flows_matched;
  }
  return report;
}

DiffReport diff_metrics(const Value& baseline, const Value& current,
                        double tolerance_pct) {
  const bool registries = doc_enabled(baseline) && doc_enabled(current);
  const auto base = flatten_counters(baseline, registries);
  const auto cur = flatten_counters(current, registries);
  const double tol = tolerance_pct / 100.0;
  DiffReport report;

  for (const auto& [name, base_value] : base) {
    const auto it = cur.find(name);
    if (it == cur.end()) {
      // A zero that vanished is not a behaviour change; a non-zero one is.
      if (base_value != 0.0) report.only_in_baseline.push_back(name);
      continue;
    }
    MetricDelta delta;
    delta.name = name;
    delta.baseline = base_value;
    delta.current = it->second;
    if (base_value == 0.0) {
      delta.rel_change = it->second == 0.0
                             ? 0.0
                             : std::numeric_limits<double>::infinity();
      delta.violated = it->second != 0.0;
    } else {
      delta.rel_change = (it->second - base_value) / base_value;
      delta.violated = std::abs(delta.rel_change) > tol;
    }
    ++report.compared;
    if (delta.violated) ++report.violations;
    report.deltas.push_back(std::move(delta));
  }
  for (const auto& [name, value] : cur) {
    if (!base.contains(name) && value != 0.0) {
      report.only_in_current.push_back(name);
    }
  }
  // Violations first so a truncated terminal still shows what failed.
  std::stable_sort(report.deltas.begin(), report.deltas.end(),
                   [](const MetricDelta& a, const MetricDelta& b) {
                     return a.violated > b.violated;
                   });
  return report;
}

TimeseriesSummary summarize_timeseries(const Value& timeseries_doc) {
  TimeseriesSummary summary;
  summary.enabled = timeseries_doc.at("enabled").as_bool();
  const auto& snapshots = timeseries_doc.at("snapshots").as_array();
  summary.snapshots = snapshots.size();
  for (const auto& s : snapshots) {
    if (s.at("label").as_string() == "iteration") {
      ++summary.iteration_snapshots;
    }
  }
  if (!snapshots.empty()) {
    const auto first =
        static_cast<std::uint64_t>(snapshots.front().at("t_us").as_number());
    const auto last =
        static_cast<std::uint64_t>(snapshots.back().at("t_us").as_number());
    summary.span_us = last >= first ? last - first : 0;
  }
  return summary;
}

void print_load_report(std::ostream& os, const LoadReport& report,
                       double straggler_factor) {
  os << "per-rank load (" << report.ranks.size() << " ranks)\n";
  for (const auto& load : report.ranks) {
    os << "  rank " << load.rank << ": work " << load.work_us()
       << " us (handler " << load.handler_us << ", phase " << load.phase_us
       << "), barrier " << load.barrier_us << " us, " << load.spans
       << " spans\n";
  }
  std::ostringstream skew;
  skew.precision(2);
  skew << std::fixed << report.max_over_mean;
  os << "load skew: max/mean = " << skew.str() << " (mean "
     << static_cast<std::uint64_t>(report.mean_work_us) << " us, max "
     << report.max_work_us << " us)\n";
  if (report.stragglers.empty()) {
    os << "stragglers (> " << straggler_factor << "x mean): none\n";
  } else {
    os << "stragglers (> " << straggler_factor << "x mean):";
    for (const int r : report.stragglers) os << " rank " << r;
    os << '\n';
  }
  std::ostringstream share;
  share.precision(1);
  share << std::fixed << report.barrier_share * 100.0;
  os << "barrier-wait share: " << share.str() << "%\n";
  os << "traced queue latency: p50 " << report.queue_p50_us << " us, p99 "
     << report.queue_p99_us << " us (" << report.queue_samples
     << " samples)\n";
  os << "causal flows: " << report.flows_matched << " matched ("
     << report.flows_started << " started, " << report.flows_finished
     << " finished)\n";
}

void print_diff_report(std::ostream& os, const DiffReport& report,
                       double tolerance_pct) {
  os << "compared " << report.compared << " counters at " << tolerance_pct
     << "% tolerance: " << report.violations << " out of tolerance\n";
  for (const auto& delta : report.deltas) {
    if (!delta.violated) continue;
    std::ostringstream pct;
    pct.precision(1);
    pct << std::fixed << delta.rel_change * 100.0;
    os << "  VIOLATION " << delta.name << ": " << delta.baseline << " -> "
       << delta.current << " (" << pct.str() << "%)\n";
  }
  for (const auto& name : report.only_in_baseline) {
    os << "  VIOLATION " << name << ": present only in baseline\n";
  }
  for (const auto& name : report.only_in_current) {
    os << "  VIOLATION " << name << ": present only in current\n";
  }
  os << (report.within_tolerance() ? "PASS" : "FAIL") << '\n';
}

void print_timeseries_summary(std::ostream& os,
                              const TimeseriesSummary& summary) {
  os << "timeseries: " << summary.snapshots << " snapshots ("
     << summary.iteration_snapshots << " per-iteration) over "
     << summary.span_us << " us"
     << (summary.enabled ? "" : " [telemetry disabled]") << '\n';
}

std::optional<util::json::Value> load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  const std::string text = buffer.str();
  if (text.empty()) return std::nullopt;
  return util::json::parse(text);
}

}  // namespace dnnd::telemetry

#include "core/checkpoint_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/json.hpp"

namespace dnnd::core {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST.json";

/// Full-file streaming CRC-32; also reports the byte count.
bool crc_of_file(const std::string& path, std::uint32_t& crc_out,
                 std::uint64_t& bytes_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  util::Crc32 crc;
  std::uint64_t total = 0;
  char buffer[64 * 1024];
  while (in) {
    in.read(buffer, sizeof buffer);
    const auto got = static_cast<std::size_t>(in.gcount());
    crc.update(buffer, got);
    total += got;
  }
  crc_out = crc.value();
  bytes_out = total;
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string directory)
    : dir_(std::move(directory)) {
  if (dir_.empty()) {
    throw std::invalid_argument("CheckpointStore: empty directory");
  }
  fs::create_directories(dir_);
}

std::string CheckpointStore::generation_path(std::uint64_t gen) const {
  return dir_ + "/gen-" + std::to_string(gen) + ".dat";
}

std::uint64_t CheckpointStore::next_generation() const {
  const auto gens = generations();
  return gens.empty() ? 1 : gens.back().generation + 1;
}

std::vector<GenerationInfo> CheckpointStore::generations() const {
  std::ifstream in(dir_ + "/" + kManifestName, std::ios::binary);
  if (!in) return {};
  std::ostringstream text;
  text << in.rdbuf();
  std::vector<GenerationInfo> gens;
  try {
    const util::json::Value doc = util::json::parse(text.str());
    if (doc.at("schema").as_string() != "dnnd.checkpoint.v1") return {};
    for (const auto& entry : doc.at("generations").as_array()) {
      GenerationInfo info;
      info.generation =
          static_cast<std::uint64_t>(entry.at("generation").as_number());
      info.file = entry.at("file").as_string();
      info.bytes = static_cast<std::uint64_t>(entry.at("bytes").as_number());
      info.crc32 = static_cast<std::uint32_t>(entry.at("crc32").as_number());
      info.iteration =
          static_cast<std::uint64_t>(entry.at("iteration").as_number());
      info.converged = entry.at("converged").as_bool();
      gens.push_back(std::move(info));
    }
  } catch (const std::exception&) {
    // A manifest is published atomically, so a malformed one means outside
    // interference; treat the store as empty rather than failing opens.
    return {};
  }
  return gens;
}

bool CheckpointStore::valid(const GenerationInfo& info) const {
  std::uint32_t crc = 0;
  std::uint64_t bytes = 0;
  if (!crc_of_file(dir_ + "/" + info.file, crc, bytes)) return false;
  return bytes == info.bytes && crc == info.crc32;
}

std::optional<GenerationInfo> CheckpointStore::open_latest() const {
  const auto gens = generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (valid(*it)) return *it;
  }
  return std::nullopt;
}

void CheckpointStore::write_manifest(
    const std::vector<GenerationInfo>& gens) const {
  const std::string final_path = dir_ + "/" + kManifestName;
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("CheckpointStore: cannot write " + tmp_path);
    }
    out << "{\"schema\":\"dnnd.checkpoint.v1\",\"generations\":[";
    bool first = true;
    for (const GenerationInfo& g : gens) {
      if (!first) out << ',';
      first = false;
      out << "{\"generation\":" << g.generation << ",\"file\":";
      util::json::write_string(out, g.file);
      out << ",\"bytes\":" << g.bytes << ",\"crc32\":" << g.crc32
          << ",\"iteration\":" << g.iteration
          << ",\"converged\":" << (g.converged ? "true" : "false") << '}';
    }
    out << "]}\n";
    out.flush();
    if (!out) {
      throw std::runtime_error("CheckpointStore: short write to " + tmp_path);
    }
  }
  // rename(2) within one directory is atomic: readers see the old manifest
  // or the new one, never a prefix.
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw std::runtime_error("CheckpointStore: cannot publish manifest");
  }
}

GenerationInfo CheckpointStore::commit(std::uint64_t gen,
                                       std::uint64_t iteration,
                                       bool converged) {
  GenerationInfo info;
  info.generation = gen;
  info.file = "gen-" + std::to_string(gen) + ".dat";
  info.iteration = iteration;
  info.converged = converged;
  if (!crc_of_file(dir_ + "/" + info.file, info.crc32, info.bytes)) {
    throw std::runtime_error("CheckpointStore: staged generation file '" +
                             info.file + "' missing");
  }

  auto gens = generations();
  // Re-staging an existing generation number replaces its entry.
  std::erase_if(gens, [&](const GenerationInfo& g) {
    return g.generation == gen;
  });
  gens.push_back(info);

  std::vector<GenerationInfo> pruned;
  if (gens.size() > kKeepGenerations) {
    pruned.assign(gens.begin(),
                  gens.end() - static_cast<std::ptrdiff_t>(kKeepGenerations));
    gens.erase(gens.begin(),
               gens.end() - static_cast<std::ptrdiff_t>(kKeepGenerations));
  }
  // Publish first, delete after: a crash between the two leaves an
  // unreferenced file (harmless), never a referenced-but-deleted one.
  write_manifest(gens);
  for (const GenerationInfo& old : pruned) {
    std::error_code ec;
    fs::remove(dir_ + "/" + old.file, ec);
  }
  return info;
}

}  // namespace dnnd::core

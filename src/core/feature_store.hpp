// Feature-vector storage.
//
// Two uses:
//   * a whole dataset in one process (brute force, HNSW baseline, query
//     program) — ids are dense 0..N-1;
//   * the per-rank shard of a distributed run — ids are the global ids of
//     the points hashed to this rank, stored sparsely.
//
// Storage is CSR-style (values + offsets) so variable-length points
// (sparse Jaccard sets) cost nothing extra; dense datasets simply have
// uniform row lengths.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace dnnd::core {

template <typename T>
class FeatureStore {
 public:
  using value_type = T;

  FeatureStore() = default;

  /// Dense constructor: `n` rows of `dim` values, row-major. `n == 0`
  /// yields a valid empty store (offsets primed so add() keeps working).
  FeatureStore(std::size_t n, std::size_t dim, std::vector<T> values)
      : values_(std::move(values)) {
    if (values_.size() != n * dim) {
      throw std::invalid_argument("FeatureStore: values size != n*dim");
    }
    offsets_.reserve(n + 1);
    ids_.reserve(n);
    index_.reserve(n);
    offsets_.push_back(0);
    for (std::size_t i = 0; i < n; ++i) {
      offsets_.push_back((i + 1) * dim);
      ids_.push_back(static_cast<VertexId>(i));
      index_.emplace(static_cast<VertexId>(i), i);
    }
  }

  /// Appends one point. Rows may have different lengths (sparse metrics).
  void add(VertexId id, std::span<const T> feature) {
    if (index_.contains(id)) {
      throw std::invalid_argument("FeatureStore: duplicate id");
    }
    if (offsets_.empty()) offsets_.push_back(0);
    index_.emplace(id, ids_.size());
    ids_.push_back(id);
    values_.insert(values_.end(), feature.begin(), feature.end());
    offsets_.push_back(values_.size());
  }

  [[nodiscard]] bool contains(VertexId id) const { return index_.contains(id); }

  [[nodiscard]] std::span<const T> operator[](VertexId id) const {
    const auto it = index_.find(id);
    if (it == index_.end()) {
      throw std::out_of_range("FeatureStore: unknown id");
    }
    return row(it->second);
  }

  /// Row by local (insertion) index; useful for iteration.
  [[nodiscard]] std::span<const T> row(std::size_t local_index) const {
    const std::size_t begin = offsets_[local_index];
    const std::size_t end = offsets_[local_index + 1];
    return {values_.data() + begin, end - begin};
  }

  /// Bounds-checked raw row pointer, for gathering candidate rows into
  /// the batched distance kernels.
  [[nodiscard]] const T* row_ptr(std::size_t local_index) const {
    if (local_index >= ids_.size()) {
      throw std::out_of_range("FeatureStore: row index out of range");
    }
    return values_.data() + offsets_[local_index];
  }

  [[nodiscard]] VertexId id_at(std::size_t local_index) const {
    return ids_[local_index];
  }

  [[nodiscard]] const std::vector<VertexId>& ids() const noexcept {
    return ids_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  /// Dimension of row 0 (dense datasets); 0 when empty.
  [[nodiscard]] std::size_t dim() const noexcept {
    return offsets_.size() > 1 ? offsets_[1] - offsets_[0] : 0;
  }

  void reserve(std::size_t rows, std::size_t values_per_row) {
    ids_.reserve(rows);
    offsets_.reserve(rows + 1);
    values_.reserve(rows * values_per_row);
    index_.reserve(rows);
  }

  /// Removes a batch of points, compacting storage (one O(total) rebuild
  /// regardless of batch size). Unknown ids are ignored. Local indices of
  /// surviving rows change; callers holding indices must re-resolve.
  void remove_batch(std::span<const VertexId> removed) {
    if (removed.empty()) return;
    std::vector<bool> drop(ids_.size(), false);
    bool any = false;
    for (const VertexId id : removed) {
      const auto it = index_.find(id);
      if (it == index_.end()) continue;
      drop[it->second] = true;
      any = true;
    }
    if (!any) return;
    std::vector<T> values;
    std::vector<std::size_t> offsets;
    std::vector<VertexId> ids;
    values.reserve(values_.size());
    offsets.reserve(offsets_.size());
    ids.reserve(ids_.size());
    index_.clear();
    offsets.push_back(0);
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (drop[i]) continue;
      const auto r = row(i);
      values.insert(values.end(), r.begin(), r.end());
      offsets.push_back(values.size());
      index_.emplace(ids_[i], ids.size());
      ids.push_back(ids_[i]);
    }
    values_ = std::move(values);
    offsets_ = std::move(offsets);
    ids_ = std::move(ids);
  }

 private:
  std::vector<T> values_;
  std::vector<std::size_t> offsets_;  ///< size() + 1 entries when non-empty
  std::vector<VertexId> ids_;
  std::unordered_map<VertexId, std::size_t> index_;
};

/// Dense block layout for the SIMD distance kernels: rows live in one
/// contiguous 64-byte-aligned allocation, each padded with zeros to a
/// 64-byte multiple (16 floats / 64 uint8 — always a multiple of the
/// kernels' 8-lane width). Zero padding is part of the kernel determinism
/// contract (distance_kernels.hpp): a padded lane adds an exact +0.0, so
/// evaluating `padded_dim()` elements is bit-identical to evaluating
/// `dim()` — which lets kernels run whole aligned blocks with no masked
/// tail. Row length is fixed at construction (or by the first add());
/// variable-length sparse data stays in the CSR FeatureStore.
///
/// Exposes the FeatureStore read interface (operator[], row, row_ptr,
/// id_at, ids, size, empty, dim), so GraphSearcher, the brute-force
/// baselines, and the query paths accept either store.
template <typename T>
class DenseBlockStore {
 public:
  using value_type = T;

  static constexpr std::size_t kRowAlignBytes = 64;
  static constexpr std::size_t kPadElements = kRowAlignBytes / sizeof(T);

  /// Row stride (elements) for a logical dimension.
  [[nodiscard]] static constexpr std::size_t padded(std::size_t dim) noexcept {
    return (dim + kPadElements - 1) / kPadElements * kPadElements;
  }

  DenseBlockStore() = default;

  /// Dense constructor: `n` rows of `dim` values, row-major, ids 0..n-1.
  DenseBlockStore(std::size_t n, std::size_t dim, std::span<const T> values)
      : dim_(dim), stride_(padded(dim)), dim_fixed_(true) {
    if (values.size() != n * dim) {
      throw std::invalid_argument("DenseBlockStore: values size != n*dim");
    }
    reserve(n);
    ids_.reserve(n);
    index_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<VertexId>(i);
      ids_.push_back(id);
      index_.emplace(id, i);
      copy_row(i, values.subspan(i * dim, dim));
    }
  }

  /// Re-packs a uniform-row CSR store into the padded block layout.
  [[nodiscard]] static DenseBlockStore from(const FeatureStore<T>& csr) {
    DenseBlockStore out;
    out.reserve(csr.size());
    for (std::size_t i = 0; i < csr.size(); ++i) {
      out.add(csr.id_at(i), csr.row(i));
    }
    return out;
  }

  /// Appends one point; the first add() fixes the row dimension.
  void add(VertexId id, std::span<const T> feature) {
    if (index_.contains(id)) {
      throw std::invalid_argument("DenseBlockStore: duplicate id");
    }
    if (!dim_fixed_) {
      dim_ = feature.size();
      stride_ = padded(dim_);
      dim_fixed_ = true;
      if (pending_rows_ > 0) reserve(pending_rows_);
    } else if (feature.size() != dim_) {
      throw std::invalid_argument(
          "DenseBlockStore: row length differs from store dimension");
    }
    if (ids_.size() == capacity_rows_) {
      reserve(capacity_rows_ == 0 ? 16 : capacity_rows_ * 2);
    }
    const std::size_t i = ids_.size();
    index_.emplace(id, i);
    ids_.push_back(id);
    copy_row(i, feature);
  }

  [[nodiscard]] bool contains(VertexId id) const { return index_.contains(id); }

  /// Logical row (padding excluded) by id.
  [[nodiscard]] std::span<const T> operator[](VertexId id) const {
    const auto it = index_.find(id);
    if (it == index_.end()) {
      throw std::out_of_range("DenseBlockStore: unknown id");
    }
    return row(it->second);
  }

  [[nodiscard]] std::span<const T> row(std::size_t local_index) const {
    return {row_ptr(local_index), dim_};
  }

  /// Bounds-checked 64-byte-aligned row pointer; the row is readable
  /// through padded_dim() elements (padding lanes are zero).
  [[nodiscard]] const T* row_ptr(std::size_t local_index) const {
    if (local_index >= ids_.size()) {
      throw std::out_of_range("DenseBlockStore: row index out of range");
    }
    return block_.get() + local_index * stride_;
  }

  [[nodiscard]] VertexId id_at(std::size_t local_index) const {
    return ids_[local_index];
  }
  [[nodiscard]] const std::vector<VertexId>& ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  /// Row stride in elements (the zero-padded kernel dimension).
  [[nodiscard]] std::size_t padded_dim() const noexcept { return stride_; }

  void reserve(std::size_t rows) {
    // Until the first row fixes the stride there is nothing to size;
    // remember the request and apply it then.
    if (!dim_fixed_) {
      pending_rows_ = std::max(pending_rows_, rows);
      return;
    }
    if (rows <= capacity_rows_) return;
    AlignedBlock grown = allocate(rows * stride_);
    if (block_) {
      std::copy(block_.get(), block_.get() + ids_.size() * stride_,
                grown.get());
    }
    block_ = std::move(grown);
    capacity_rows_ = rows;
  }

 private:
  struct AlignedDelete {
    void operator()(T* p) const {
      ::operator delete[](p, std::align_val_t{kRowAlignBytes});
    }
  };
  using AlignedBlock = std::unique_ptr<T[], AlignedDelete>;

  [[nodiscard]] static AlignedBlock allocate(std::size_t elements) {
    if (elements == 0) return {};
    return AlignedBlock(static_cast<T*>(::operator new[](
        elements * sizeof(T), std::align_val_t{kRowAlignBytes})));
  }

  void copy_row(std::size_t i, std::span<const T> feature) {
    T* dst = block_.get() + i * stride_;
    std::copy(feature.begin(), feature.end(), dst);
    std::fill(dst + dim_, dst + stride_, T{});
  }

  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
  bool dim_fixed_ = false;
  std::size_t pending_rows_ = 0;
  std::size_t capacity_rows_ = 0;
  AlignedBlock block_;
  std::vector<VertexId> ids_;
  std::unordered_map<VertexId, std::size_t> index_;
};

}  // namespace dnnd::core

// Feature-vector storage.
//
// Two uses:
//   * a whole dataset in one process (brute force, HNSW baseline, query
//     program) — ids are dense 0..N-1;
//   * the per-rank shard of a distributed run — ids are the global ids of
//     the points hashed to this rank, stored sparsely.
//
// Storage is CSR-style (values + offsets) so variable-length points
// (sparse Jaccard sets) cost nothing extra; dense datasets simply have
// uniform row lengths.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace dnnd::core {

template <typename T>
class FeatureStore {
 public:
  using value_type = T;

  FeatureStore() = default;

  /// Dense constructor: `n` rows of `dim` values, row-major.
  FeatureStore(std::size_t n, std::size_t dim, std::vector<T> values)
      : values_(std::move(values)) {
    if (values_.size() != n * dim) {
      throw std::invalid_argument("FeatureStore: values size != n*dim");
    }
    offsets_.reserve(n + 1);
    for (std::size_t i = 0; i <= n; ++i) offsets_.push_back(i * dim);
    ids_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids_.push_back(static_cast<VertexId>(i));
      index_.emplace(static_cast<VertexId>(i), i);
    }
  }

  /// Appends one point. Rows may have different lengths (sparse metrics).
  void add(VertexId id, std::span<const T> feature) {
    if (index_.contains(id)) {
      throw std::invalid_argument("FeatureStore: duplicate id");
    }
    if (offsets_.empty()) offsets_.push_back(0);
    index_.emplace(id, ids_.size());
    ids_.push_back(id);
    values_.insert(values_.end(), feature.begin(), feature.end());
    offsets_.push_back(values_.size());
  }

  [[nodiscard]] bool contains(VertexId id) const { return index_.contains(id); }

  [[nodiscard]] std::span<const T> operator[](VertexId id) const {
    const auto it = index_.find(id);
    if (it == index_.end()) {
      throw std::out_of_range("FeatureStore: unknown id");
    }
    return row(it->second);
  }

  /// Row by local (insertion) index; useful for iteration.
  [[nodiscard]] std::span<const T> row(std::size_t local_index) const {
    const std::size_t begin = offsets_[local_index];
    const std::size_t end = offsets_[local_index + 1];
    return {values_.data() + begin, end - begin};
  }

  [[nodiscard]] VertexId id_at(std::size_t local_index) const {
    return ids_[local_index];
  }

  [[nodiscard]] const std::vector<VertexId>& ids() const noexcept {
    return ids_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  /// Dimension of row 0 (dense datasets); 0 when empty.
  [[nodiscard]] std::size_t dim() const noexcept {
    return offsets_.size() > 1 ? offsets_[1] - offsets_[0] : 0;
  }

  void reserve(std::size_t rows, std::size_t values_per_row) {
    ids_.reserve(rows);
    offsets_.reserve(rows + 1);
    values_.reserve(rows * values_per_row);
    index_.reserve(rows);
  }

  /// Removes a batch of points, compacting storage (one O(total) rebuild
  /// regardless of batch size). Unknown ids are ignored. Local indices of
  /// surviving rows change; callers holding indices must re-resolve.
  void remove_batch(std::span<const VertexId> removed) {
    if (removed.empty()) return;
    std::vector<bool> drop(ids_.size(), false);
    bool any = false;
    for (const VertexId id : removed) {
      const auto it = index_.find(id);
      if (it == index_.end()) continue;
      drop[it->second] = true;
      any = true;
    }
    if (!any) return;
    std::vector<T> values;
    std::vector<std::size_t> offsets;
    std::vector<VertexId> ids;
    values.reserve(values_.size());
    offsets.reserve(offsets_.size());
    ids.reserve(ids_.size());
    index_.clear();
    offsets.push_back(0);
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (drop[i]) continue;
      const auto r = row(i);
      values.insert(values.end(), r.begin(), r.end());
      offsets.push_back(values.size());
      index_.emplace(ids_[i], ids.size());
      ids.push_back(ids_[i]);
    }
    values_ = std::move(values);
    offsets_ = std::move(offsets);
    ids_ = std::move(ids);
  }

 private:
  std::vector<T> values_;
  std::vector<std::size_t> offsets_;  ///< size() + 1 entries when non-empty
  std::vector<VertexId> ids_;
  std::unordered_map<VertexId, std::size_t> index_;
};

}  // namespace dnnd::core

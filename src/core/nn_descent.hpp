// Serial NN-Descent: faithful single-process implementation of Algorithm 1.
//
// This is the reference the distributed engine is validated against: both
// must converge to graphs of equivalent recall, and the serial version is
// also the shared-memory baseline for the scaling study (1-rank point).
//
// Parameters follow the paper: K (neighbors), ρ (sample rate, default
// 0.8), δ (termination threshold, default 0.001) — the loop terminates
// when the number of successful neighbor-list updates in an iteration
// drops below δ·K·N.
//
// Intra-rank threading (config.threads > 1) runs the batch-capable path
// through a deterministic staged pipeline: every parallel stage writes
// private, index-addressed slots and a single canonical merge applies the
// results in fixed (task-index, intra-task) order, while everything that
// owns the rng stream stays sequential. The task decomposition depends on
// the work size only — never the thread count — so the graph, the
// convergence counter c, the eval/update counters, AND stats.tasks are
// bit-identical for any thread count (threads == 1 simply runs the same
// decomposition inline, with no threads spawned). A non-batch DistanceFn
// keeps the original truly-serial path: its per-pair live filter makes
// the eval count schedule-dependent, so it cannot be staged without
// changing counters — threading requires a batch functor.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/distance_kernels.hpp"
#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/neighbor_list.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace dnnd::core {

struct NnDescentConfig {
  std::size_t k = 10;
  double rho = 0.8;       ///< sample rate ρ
  double delta = 0.001;   ///< termination threshold δ
  std::size_t max_iterations = 64;  ///< safety bound beyond Algorithm 1
  std::uint64_t seed = 7;
  /// Intra-build worker threads; 0 = auto (DNND_THREADS_PER_RANK, else 1).
  std::size_t threads = 0;
};

struct NnDescentStats {
  std::size_t iterations = 0;
  std::uint64_t distance_evals = 0;
  std::uint64_t updates = 0;
  std::vector<std::uint64_t> updates_per_iteration;
  /// Pool tasks dispatched (batch path). A pure function of the work
  /// shape, asserted bit-identical across thread counts by the parity
  /// tests. 0 on the non-batch path.
  std::uint64_t tasks = 0;
  /// Deterministic per-virtual-thread eval ledger: eval task t charges
  /// its candidate count to slot (rotor++ % threads), in task order. On
  /// this simulator's single-core host wall clock cannot show intra-rank
  /// scaling, so sum/max of this ledger is the thread-scaling headline
  /// (same convention as the simulated cost model in bench_scaling).
  /// Invariant: sum == distance_evals on the batch path.
  std::vector<std::uint64_t> thread_work;
};

/// DistanceFn: Dist(std::span<const T>, std::span<const T>).
template <typename T, typename DistanceFn>
class NnDescent {
 public:
  NnDescent(const FeatureStore<T>& points, DistanceFn distance,
            NnDescentConfig config)
      : points_(&points),
        distance_(std::move(distance)),
        config_(config),
        pool_(resolve_threads(config.threads)) {}

  /// Runs Algorithm 1 to convergence and returns the K-NNG.
  KnnGraph build() {
    const std::size_t n = points_->size();
    util::Xoshiro256 rng(config_.seed);
    lists_.assign(n, NeighborList(config_.k));
    stats_.thread_work.assign(pool_.threads(), 0);

    initialize(rng);

    const auto threshold = static_cast<std::uint64_t>(
        config_.delta * static_cast<double>(config_.k) *
        static_cast<double>(n));
    for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
      ++stats_.iterations;
      const std::uint64_t c = iterate(rng);
      stats_.updates_per_iteration.push_back(c);
      stats_.updates += c;
      if (c < threshold || c == 0) break;
    }
    return export_graph();
  }

  [[nodiscard]] const NnDescentStats& stats() const noexcept { return stats_; }

 private:
  /// Grain for vertex-block stages (split, reversed-matrix passes).
  static constexpr std::size_t kVertexGrain = 256;
  /// Grain for batched-eval tasks: one kernel batch per task.
  static constexpr std::size_t kEvalGrain = 16;
  /// Pending-update streams at least this long use the striped-lock
  /// canonical merge; shorter ones fold inline. The cut depends only on
  /// the stream length, so task counts stay thread-count-invariant.
  static constexpr std::size_t kStripedApplyMin = 64;

  Dist eval(VertexId a, VertexId b) {
    ++stats_.distance_evals;
    return distance_((*points_)[a], (*points_)[b]);
  }

  /// Dispatches the fixed block decomposition through the pool and
  /// accounts the tasks (count is thread-count-independent).
  template <typename Fn>
  void run_blocks(std::size_t items, std::size_t grain, Fn&& fn) {
    stats_.tasks += ThreadPool::block_count(items, grain);
    pool_.for_blocks(items, grain, std::forward<Fn>(fn));
  }

  /// Charges `units` of eval work to the next virtual thread (fixed
  /// round-robin over task order — deterministic for any real pool size).
  void charge_eval(std::uint64_t units) {
    stats_.thread_work[work_rotor_++ % stats_.thread_work.size()] += units;
  }

  /// Charges each eval task of a block decomposition, in task order.
  void charge_eval_blocks(std::size_t items, std::size_t grain) {
    for (std::size_t b = 0; b < items; b += grain) {
      charge_eval(b + grain < items ? grain : items - b);
    }
  }

  /// Lines 2–5: K random neighbors per vertex.
  void initialize(util::Xoshiro256& rng) {
    const std::size_t n = points_->size();
    if constexpr (BatchDistance<DistanceFn, T>) {
      // Stage 1 (sequential: owns the rng stream): draw every vertex's
      // partner ids exactly as the interleaved serial loop would. The
      // draw schedule is independent of the distances because warm-up
      // updates always insert (the list is never full here), so
      // acceptance depends only on previously accepted draws.
      std::vector<std::vector<VertexId>> drawn(n);
      for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<VertexId>(vi);
        auto& mine = drawn[vi];
        while (mine.size() < config_.k && mine.size() + 1 < n) {
          const auto u = static_cast<VertexId>(rng.uniform_below(n));
          if (u == v || std::find(mine.begin(), mine.end(), u) != mine.end()) {
            continue;
          }
          mine.push_back(u);
        }
        stats_.distance_evals += mine.size();
      }
      // Stage 2 (parallel, slot = the vertex's own list): batch-eval each
      // vertex's partners and apply in draw order. Writes touch only
      // lists_[vi] — private to the task that owns block vi.
      for (std::size_t b = 0; b < n; b += kVertexGrain) {
        std::uint64_t units = 0;
        const std::size_t e = b + kVertexGrain < n ? b + kVertexGrain : n;
        for (std::size_t vi = b; vi < e; ++vi) units += drawn[vi].size();
        charge_eval(units);
      }
      run_blocks(n, kVertexGrain,
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   std::vector<const T*> rows;
                   std::vector<Dist> dists;
                   for (std::size_t vi = begin; vi < end; ++vi) {
                     const auto& mine = drawn[vi];
                     if (mine.empty()) continue;
                     rows.clear();
                     for (const VertexId u : mine) {
                       rows.push_back((*points_)[u].data());
                     }
                     dists.resize(mine.size());
                     const auto q = (*points_)[static_cast<VertexId>(vi)];
                     distance_.batch(q.data(), rows.data(), mine.size(),
                                     q.size(), dists.data());
                     for (std::size_t j = 0; j < mine.size(); ++j) {
                       lists_[vi].update(mine[j], dists[j], true);
                     }
                   }
                 });
    } else {
      for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<VertexId>(vi);
        auto& list = lists_[vi];
        // Rejection-sample distinct ids != v; K << N so collisions are
        // rare.
        while (list.size() < config_.k && list.size() + 1 < n) {
          const auto u = static_cast<VertexId>(rng.uniform_below(n));
          if (u == v || list.contains(u)) continue;
          list.update(u, eval(v, u), true);
        }
      }
    }
  }

  /// One round of lines 7–23. Returns the update counter c.
  std::uint64_t iterate(util::Xoshiro256& rng) {
    const std::size_t n = points_->size();
    const auto sample_k = static_cast<std::size_t>(
        config_.rho * static_cast<double>(config_.k));

    // Lines 8–10: split each list into old / sampled-new; flip flags.
    std::vector<std::vector<VertexId>> old_ids(n), new_ids(n);
    if constexpr (BatchDistance<DistanceFn, T>) {
      // Stage 1 (parallel, slots old_ids[vi] / fresh[vi]): read-only
      // split of every list in its deterministic heap order.
      std::vector<std::vector<std::size_t>> fresh(n);
      run_blocks(n, kVertexGrain,
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   for (std::size_t vi = begin; vi < end; ++vi) {
                     const auto entries = std::as_const(lists_[vi]).entries();
                     for (std::size_t e = 0; e < entries.size(); ++e) {
                       if (entries[e].is_new) {
                         fresh[vi].push_back(e);
                       } else {
                         old_ids[vi].push_back(entries[e].id);
                       }
                     }
                   }
                 });
      // Stage 2 (sequential: owns the rng stream and the flag flips) —
      // consumes the rng byte-identically to the fused serial loop.
      for (std::size_t vi = 0; vi < n; ++vi) {
        auto entries = lists_[vi].entries();
        util::shuffle(fresh[vi].begin(), fresh[vi].end(), rng);
        const std::size_t take = std::min(sample_k, fresh[vi].size());
        for (std::size_t s = 0; s < take; ++s) {
          entries[fresh[vi][s]].is_new = false;  // line 10
          new_ids[vi].push_back(entries[fresh[vi][s]].id);
        }
      }
    } else {
      for (std::size_t vi = 0; vi < n; ++vi) {
        auto entries = lists_[vi].entries();
        std::vector<std::size_t> fresh;
        for (std::size_t e = 0; e < entries.size(); ++e) {
          if (entries[e].is_new) {
            fresh.push_back(e);
          } else {
            old_ids[vi].push_back(entries[e].id);
          }
        }
        util::shuffle(fresh.begin(), fresh.end(), rng);
        const std::size_t take = std::min(sample_k, fresh.size());
        for (std::size_t s = 0; s < take; ++s) {
          entries[fresh[s]].is_new = false;  // line 10
          new_ids[vi].push_back(entries[fresh[s]].id);
        }
      }
    }

    // Lines 11–12: reversed matrices.
    std::vector<std::vector<VertexId>> rev_old(n), rev_new(n);
    if constexpr (BatchDistance<DistanceFn, T>) {
      build_reversed(n, old_ids, new_ids, rev_old, rev_new);
    } else {
      for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<VertexId>(vi);
        for (const VertexId u : old_ids[vi]) rev_old[u].push_back(v);
        for (const VertexId u : new_ids[vi]) rev_new[u].push_back(v);
      }
    }

    // Lines 14–16: merge a ρK-sample of the reversed lists (sequential:
    // owns the rng stream).
    for (std::size_t vi = 0; vi < n; ++vi) {
      merge_sample(old_ids[vi], rev_old[vi], sample_k, rng);
      merge_sample(new_ids[vi], rev_new[vi], sample_k, rng);
    }

    // Lines 17–22: neighbor checks. With a batch-capable distance functor
    // the candidates of one center u1 are gathered (filtered against the
    // pre-row list state) and evaluated through the one-query-vs-many
    // kernel; updates are then applied in the original pair order, so the
    // result is a pure function of the values — identical across the
    // scalar and SIMD dispatch paths, and across thread counts.
    std::uint64_t c = 0;
    if constexpr (BatchDistance<DistanceFn, T>) {
      std::vector<VertexId> raw, cand;
      std::vector<std::uint8_t> keep;
      std::vector<const T*> rows;
      std::vector<Dist> dists;
      std::vector<PendingUpdate> pending;
      for (std::size_t vi = 0; vi < n; ++vi) {
        const auto& nu = new_ids[vi];
        const auto& ol = old_ids[vi];
        for (std::size_t i = 0; i < nu.size(); ++i) {
          const VertexId u1 = nu[i];
          raw.clear();
          for (std::size_t j = i + 1; j < nu.size(); ++j) raw.push_back(nu[j]);
          raw.insert(raw.end(), ol.begin(), ol.end());
          if (raw.empty()) continue;
          // Candidate filter (parallel, slot keep[idx]): pure reads of
          // the pre-center list state — exactly the state the fused
          // serial gather saw, because the previous center's updates
          // were applied before this center started.
          keep.assign(raw.size(), 0);
          run_blocks(
              raw.size(), kEvalGrain,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t idx = begin; idx < end; ++idx) {
                  const VertexId u2 = raw[idx];
                  if (u1 == u2) continue;
                  // The both-sides-known skip from check(): purely a work
                  // saver — update() no-ops on contained ids, so a pair
                  // that becomes redundant mid-batch cannot change the
                  // graph.
                  if (lists_[u1].contains(u2) && lists_[u2].contains(u1)) {
                    continue;
                  }
                  keep[idx] = 1;
                }
              });
          cand.clear();
          rows.clear();
          for (std::size_t idx = 0; idx < raw.size(); ++idx) {
            if (keep[idx] == 0) continue;
            cand.push_back(raw[idx]);
            rows.push_back((*points_)[raw[idx]].data());
          }
          if (cand.empty()) continue;
          dists.resize(cand.size());
          const auto q = (*points_)[u1];
          stats_.distance_evals += cand.size();
          charge_eval_blocks(cand.size(), kEvalGrain);
          // Batched eval (parallel, slot dists[b..e)): the kernel
          // contract makes out[i] a function of (q, rows[i]) alone, so
          // any split of the batch is bit-exact.
          run_blocks(cand.size(), kEvalGrain,
                     [&](std::size_t, std::size_t begin, std::size_t end) {
                       distance_.batch(q.data(), rows.data() + begin,
                                       end - begin, q.size(),
                                       dists.data() + begin);
                     });
          // Canonical merge: the pending update stream in serial pair
          // order, applied either inline or striped by target list.
          pending.clear();
          for (std::size_t m = 0; m < cand.size(); ++m) {
            pending.push_back({u1, cand[m], dists[m],
                               static_cast<std::uint8_t>(locks_.stripe_of(u1))});
            pending.push_back(
                {cand[m], u1, dists[m],
                 static_cast<std::uint8_t>(locks_.stripe_of(cand[m]))});
          }
          c += apply_pending(pending);
        }
      }
    } else {
      for (std::size_t vi = 0; vi < n; ++vi) {
        const auto& nu = new_ids[vi];
        const auto& ol = old_ids[vi];
        for (std::size_t i = 0; i < nu.size(); ++i) {
          for (std::size_t j = i + 1; j < nu.size(); ++j) {
            c += check(nu[i], nu[j]);
          }
          for (const VertexId u2 : ol) {
            c += check(nu[i], u2);
          }
        }
      }
    }
    return c;
  }

  struct PendingUpdate {
    VertexId target;    ///< the list being updated
    VertexId candidate; ///< the id offered to it
    Dist distance;
    std::uint8_t stripe;  ///< locks_.stripe_of(target), precomputed
  };

  /// Applies a pending update stream. Updates to one list commute with
  /// updates to any other (update() touches only its target), so any
  /// partition that preserves each list's own subsequence order yields
  /// the same state and the same summed return codes as the serial fold.
  /// The striped path partitions by stripe — one task per stripe, stream
  /// order within it — and sums per-stripe counters in stripe order; the
  /// stripe lock is held across the task, making every access to a
  /// stripe's lists mutex-ordered (TSan-visible if the disjointness were
  /// ever violated).
  std::uint64_t apply_pending(const std::vector<PendingUpdate>& pending) {
    if (pending.size() < kStripedApplyMin) {
      std::uint64_t c = 0;
      for (const PendingUpdate& p : pending) {
        c += static_cast<std::uint64_t>(
            lists_[p.target].update(p.candidate, p.distance, true));
      }
      return c;
    }
    std::array<std::uint64_t, 64> stripe_c{};
    const std::size_t stripes = locks_.stripes();
    stats_.tasks += stripes;
    pool_.run(stripes, [&](std::size_t s) {
      std::uint64_t local = 0;
      const std::lock_guard<std::mutex> lock(locks_.mutex_at(s));
      for (const PendingUpdate& p : pending) {
        if (p.stripe != s) continue;
        local += static_cast<std::uint64_t>(
            lists_[p.target].update(p.candidate, p.distance, true));
      }
      stripe_c[s] = local;
    });
    std::uint64_t c = 0;
    for (std::size_t s = 0; s < stripes; ++s) c += stripe_c[s];
    return c;
  }

  /// Lines 11–12 as a two-pass slotted scatter: pass 1 buckets each
  /// source block's (target, source) pairs by target stripe (slot =
  /// [task][stripe]); pass 2 scatters one target stripe per task,
  /// draining buckets in task order. Both passes preserve source-vertex
  /// order per target, so rev_*[u] is byte-identical to the serial
  /// scatter.
  void build_reversed(std::size_t n,
                      const std::vector<std::vector<VertexId>>& old_ids,
                      const std::vector<std::vector<VertexId>>& new_ids,
                      std::vector<std::vector<VertexId>>& rev_old,
                      std::vector<std::vector<VertexId>>& rev_new) {
    const std::size_t blocks = ThreadPool::block_count(n, kVertexGrain);
    auto stripe_of = [](VertexId u) {
      return static_cast<std::size_t>(u) / kVertexGrain;
    };
    struct Bucket {
      std::vector<std::pair<VertexId, VertexId>> old_pairs;  // (target, src)
      std::vector<std::pair<VertexId, VertexId>> new_pairs;
    };
    std::vector<Bucket> buckets(blocks * blocks);
    run_blocks(n, kVertexGrain,
               [&](std::size_t task, std::size_t begin, std::size_t end) {
                 Bucket* row = buckets.data() + task * blocks;
                 for (std::size_t vi = begin; vi < end; ++vi) {
                   const auto v = static_cast<VertexId>(vi);
                   for (const VertexId u : old_ids[vi]) {
                     row[stripe_of(u)].old_pairs.emplace_back(u, v);
                   }
                   for (const VertexId u : new_ids[vi]) {
                     row[stripe_of(u)].new_pairs.emplace_back(u, v);
                   }
                 }
               });
    stats_.tasks += blocks;
    pool_.run(blocks, [&](std::size_t s) {
      for (std::size_t t = 0; t < blocks; ++t) {
        const Bucket& b = buckets[t * blocks + s];
        for (const auto& [u, v] : b.old_pairs) rev_old[u].push_back(v);
        for (const auto& [u, v] : b.new_pairs) rev_new[u].push_back(v);
      }
    });
  }

  /// Lines 19–22 for one pair.
  std::uint64_t check(VertexId u1, VertexId u2) {
    if (u1 == u2) return 0;
    // Skip the distance evaluation entirely when neither side could
    // accept the candidate — the serial analogue of the §4.3.2/§4.3.3
    // savings; it does not change the result, only the work.
    auto& l1 = lists_[u1];
    auto& l2 = lists_[u2];
    const bool in1 = l1.contains(u2);
    const bool in2 = l2.contains(u1);
    if (in1 && in2) return 0;
    const Dist d = eval(u1, u2);
    std::uint64_t c = 0;
    if (!in1) c += static_cast<std::uint64_t>(l1.update(u2, d, true));
    if (!in2) c += static_cast<std::uint64_t>(l2.update(u1, d, true));
    return c;
  }

  static void merge_sample(std::vector<VertexId>& dst,
                           std::vector<VertexId>& reversed,
                           std::size_t sample_k, util::Xoshiro256& rng) {
    util::shuffle(reversed.begin(), reversed.end(), rng);
    const std::size_t take = std::min(sample_k, reversed.size());
    for (std::size_t i = 0; i < take; ++i) {
      const VertexId u = reversed[i];
      if (std::find(dst.begin(), dst.end(), u) == dst.end()) {
        dst.push_back(u);
      }
    }
  }

  KnnGraph export_graph() const {
    KnnGraph graph(lists_.size());
    for (std::size_t vi = 0; vi < lists_.size(); ++vi) {
      graph.set_neighbors(static_cast<VertexId>(vi), lists_[vi].sorted());
    }
    return graph;
  }

  const FeatureStore<T>* points_;
  DistanceFn distance_;
  NnDescentConfig config_;
  ThreadPool pool_;
  StripedNeighborLocks locks_;
  std::vector<NeighborList> lists_;
  NnDescentStats stats_;
  std::size_t work_rotor_ = 0;
};

/// Deduction-friendly helper.
template <typename T, typename DistanceFn>
KnnGraph build_nn_descent(const FeatureStore<T>& points, DistanceFn distance,
                          const NnDescentConfig& config,
                          NnDescentStats* stats_out = nullptr) {
  NnDescent<T, DistanceFn> builder(points, std::move(distance), config);
  KnnGraph graph = builder.build();
  if (stats_out != nullptr) *stats_out = builder.stats();
  return graph;
}

}  // namespace dnnd::core

// Serial NN-Descent: faithful single-process implementation of Algorithm 1.
//
// This is the reference the distributed engine is validated against: both
// must converge to graphs of equivalent recall, and the serial version is
// also the shared-memory baseline for the scaling study (1-rank point).
//
// Parameters follow the paper: K (neighbors), ρ (sample rate, default
// 0.8), δ (termination threshold, default 0.001) — the loop terminates
// when the number of successful neighbor-list updates in an iteration
// drops below δ·K·N.
#pragma once

#include <cstdint>
#include <vector>

#include "core/distance_kernels.hpp"
#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/neighbor_list.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace dnnd::core {

struct NnDescentConfig {
  std::size_t k = 10;
  double rho = 0.8;       ///< sample rate ρ
  double delta = 0.001;   ///< termination threshold δ
  std::size_t max_iterations = 64;  ///< safety bound beyond Algorithm 1
  std::uint64_t seed = 7;
};

struct NnDescentStats {
  std::size_t iterations = 0;
  std::uint64_t distance_evals = 0;
  std::uint64_t updates = 0;
  std::vector<std::uint64_t> updates_per_iteration;
};

/// DistanceFn: Dist(std::span<const T>, std::span<const T>).
template <typename T, typename DistanceFn>
class NnDescent {
 public:
  NnDescent(const FeatureStore<T>& points, DistanceFn distance,
            NnDescentConfig config)
      : points_(&points), distance_(std::move(distance)), config_(config) {}

  /// Runs Algorithm 1 to convergence and returns the K-NNG.
  KnnGraph build() {
    const std::size_t n = points_->size();
    util::Xoshiro256 rng(config_.seed);
    lists_.assign(n, NeighborList(config_.k));

    initialize(rng);

    const auto threshold = static_cast<std::uint64_t>(
        config_.delta * static_cast<double>(config_.k) *
        static_cast<double>(n));
    for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
      ++stats_.iterations;
      const std::uint64_t c = iterate(rng);
      stats_.updates_per_iteration.push_back(c);
      stats_.updates += c;
      if (c < threshold || c == 0) break;
    }
    return export_graph();
  }

  [[nodiscard]] const NnDescentStats& stats() const noexcept { return stats_; }

 private:
  Dist eval(VertexId a, VertexId b) {
    ++stats_.distance_evals;
    return distance_((*points_)[a], (*points_)[b]);
  }

  /// Lines 2–5: K random neighbors per vertex.
  void initialize(util::Xoshiro256& rng) {
    const std::size_t n = points_->size();
    for (std::size_t vi = 0; vi < n; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      auto& list = lists_[vi];
      // Rejection-sample distinct ids != v; K << N so collisions are rare.
      while (list.size() < config_.k && list.size() + 1 < n) {
        const auto u = static_cast<VertexId>(rng.uniform_below(n));
        if (u == v || list.contains(u)) continue;
        list.update(u, eval(v, u), true);
      }
    }
  }

  /// One round of lines 7–23. Returns the update counter c.
  std::uint64_t iterate(util::Xoshiro256& rng) {
    const std::size_t n = points_->size();
    const auto sample_k = static_cast<std::size_t>(
        config_.rho * static_cast<double>(config_.k));

    // Lines 8–10: split each list into old / sampled-new; flip flags.
    std::vector<std::vector<VertexId>> old_ids(n), new_ids(n);
    for (std::size_t vi = 0; vi < n; ++vi) {
      auto entries = lists_[vi].entries();
      std::vector<std::size_t> fresh;
      for (std::size_t e = 0; e < entries.size(); ++e) {
        if (entries[e].is_new) {
          fresh.push_back(e);
        } else {
          old_ids[vi].push_back(entries[e].id);
        }
      }
      util::shuffle(fresh.begin(), fresh.end(), rng);
      const std::size_t take = std::min(sample_k, fresh.size());
      for (std::size_t s = 0; s < take; ++s) {
        entries[fresh[s]].is_new = false;  // line 10
        new_ids[vi].push_back(entries[fresh[s]].id);
      }
    }

    // Lines 11–12: reversed matrices.
    std::vector<std::vector<VertexId>> rev_old(n), rev_new(n);
    for (std::size_t vi = 0; vi < n; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      for (const VertexId u : old_ids[vi]) rev_old[u].push_back(v);
      for (const VertexId u : new_ids[vi]) rev_new[u].push_back(v);
    }

    // Lines 14–16: merge a ρK-sample of the reversed lists.
    for (std::size_t vi = 0; vi < n; ++vi) {
      merge_sample(old_ids[vi], rev_old[vi], sample_k, rng);
      merge_sample(new_ids[vi], rev_new[vi], sample_k, rng);
    }

    // Lines 17–22: neighbor checks. With a batch-capable distance functor
    // the candidates of one center u1 are gathered (filtered against the
    // pre-row list state) and evaluated through the one-query-vs-many
    // kernel; updates are then applied in the original pair order, so the
    // result is a pure function of the values — identical across the
    // scalar and SIMD dispatch paths.
    std::uint64_t c = 0;
    if constexpr (BatchDistance<DistanceFn, T>) {
      std::vector<VertexId> cand;
      std::vector<const T*> rows;
      std::vector<Dist> dists;
      for (std::size_t vi = 0; vi < n; ++vi) {
        const auto& nu = new_ids[vi];
        const auto& ol = old_ids[vi];
        for (std::size_t i = 0; i < nu.size(); ++i) {
          const VertexId u1 = nu[i];
          cand.clear();
          rows.clear();
          auto consider = [&](VertexId u2) {
            if (u1 == u2) return;
            // The both-sides-known skip from check(): purely a work saver —
            // update() no-ops on contained ids, so evaluating a pair that
            // becomes redundant mid-batch cannot change the graph.
            if (lists_[u1].contains(u2) && lists_[u2].contains(u1)) return;
            cand.push_back(u2);
            rows.push_back((*points_)[u2].data());
          };
          for (std::size_t j = i + 1; j < nu.size(); ++j) consider(nu[j]);
          for (const VertexId u2 : ol) consider(u2);
          if (cand.empty()) continue;
          dists.resize(cand.size());
          const auto q = (*points_)[u1];
          stats_.distance_evals += cand.size();
          distance_.batch(q.data(), rows.data(), cand.size(), q.size(),
                          dists.data());
          for (std::size_t m = 0; m < cand.size(); ++m) {
            const VertexId u2 = cand[m];
            c += static_cast<std::uint64_t>(
                lists_[u1].update(u2, dists[m], true));
            c += static_cast<std::uint64_t>(
                lists_[u2].update(u1, dists[m], true));
          }
        }
      }
    } else {
      for (std::size_t vi = 0; vi < n; ++vi) {
        const auto& nu = new_ids[vi];
        const auto& ol = old_ids[vi];
        for (std::size_t i = 0; i < nu.size(); ++i) {
          for (std::size_t j = i + 1; j < nu.size(); ++j) {
            c += check(nu[i], nu[j]);
          }
          for (const VertexId u2 : ol) {
            c += check(nu[i], u2);
          }
        }
      }
    }
    return c;
  }

  /// Lines 19–22 for one pair.
  std::uint64_t check(VertexId u1, VertexId u2) {
    if (u1 == u2) return 0;
    // Skip the distance evaluation entirely when neither side could
    // accept the candidate — the serial analogue of the §4.3.2/§4.3.3
    // savings; it does not change the result, only the work.
    auto& l1 = lists_[u1];
    auto& l2 = lists_[u2];
    const bool in1 = l1.contains(u2);
    const bool in2 = l2.contains(u1);
    if (in1 && in2) return 0;
    const Dist d = eval(u1, u2);
    std::uint64_t c = 0;
    if (!in1) c += static_cast<std::uint64_t>(l1.update(u2, d, true));
    if (!in2) c += static_cast<std::uint64_t>(l2.update(u1, d, true));
    return c;
  }

  static void merge_sample(std::vector<VertexId>& dst,
                           std::vector<VertexId>& reversed,
                           std::size_t sample_k, util::Xoshiro256& rng) {
    util::shuffle(reversed.begin(), reversed.end(), rng);
    const std::size_t take = std::min(sample_k, reversed.size());
    for (std::size_t i = 0; i < take; ++i) {
      const VertexId u = reversed[i];
      if (std::find(dst.begin(), dst.end(), u) == dst.end()) {
        dst.push_back(u);
      }
    }
  }

  KnnGraph export_graph() const {
    KnnGraph graph(lists_.size());
    for (std::size_t vi = 0; vi < lists_.size(); ++vi) {
      graph.set_neighbors(static_cast<VertexId>(vi), lists_[vi].sorted());
    }
    return graph;
  }

  const FeatureStore<T>* points_;
  DistanceFn distance_;
  NnDescentConfig config_;
  std::vector<NeighborList> lists_;
  NnDescentStats stats_;
};

/// Deduction-friendly helper.
template <typename T, typename DistanceFn>
KnnGraph build_nn_descent(const FeatureStore<T>& points, DistanceFn distance,
                          const NnDescentConfig& config,
                          NnDescentStats* stats_out = nullptr) {
  NnDescent<T, DistanceFn> builder(points, std::move(distance), config);
  KnnGraph graph = builder.build();
  if (stats_out != nullptr) *stats_out = builder.stats();
  return graph;
}

}  // namespace dnnd::core

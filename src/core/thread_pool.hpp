// Deterministic per-rank thread pool (ROADMAP: intra-rank parallelism).
//
// Each simulated rank may own one of these and split its hot per-phase
// loops across `threads_per_rank` OS threads. The pool is built so that
// the thread count can never change the answer:
//
//   * The task DECOMPOSITION is fixed by the work size and a grain,
//     never by the thread count: run(num_tasks, fn) always executes
//     tasks 0..num_tasks-1, whether inline (threads <= 1, or a single
//     task) or scheduled onto workers. Task counters are therefore
//     bit-identical across thread counts.
//   * Tasks communicate only through private, index-addressed output
//     slots provided by the caller; after run() returns, the caller
//     merges the slots in fixed (task-index, intra-task) order. The
//     scheduler decides *which worker* runs a task and *when* — and
//     nothing observable depends on either.
//
// threads <= 1 spawns no OS threads at all: run() degenerates to a plain
// sequential loop over the same task decomposition (today's serial path,
// with zero synchronization on it). The same is true for a single-task
// section on any pool size, so fine-grained callers pay no dispatch cost
// for work too small to split.
//
// Telemetry: an optional sink counts one increment per executed task
// *from the executing thread* (worker or caller) — this is the exercise
// for MetricsRegistry's relaxed-atomic counters; the OFF facade compiles
// the add to nothing. Sections given a span name additionally emit one
// trace event per participating thread (tid 0 = the rank's driver
// thread, tid 1.. = pool workers), stamped by the caller after the
// section's join, so the trace shows per-thread busy intervals without
// concurrent TraceBuffer writes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace dnnd::core {

/// Resolves a configured thread count: 0 means "auto" — take
/// DNND_THREADS_PER_RANK from the environment (the lever the build-matrix
/// TSan leg uses to run the whole suite threaded), else 1. Mirrors the
/// DNND_FORCE_SCALAR precedent: config wins over env, env over default.
inline std::size_t resolve_threads(std::size_t configured) noexcept {
  if (configured != 0) return configured;
  const char* env = std::getenv("DNND_THREADS_PER_RANK");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 256) {
      return static_cast<std::size_t>(v);
    }
  }
  return 1;
}

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 1)
      : threads_(threads == 0 ? 1 : threads), spans_(threads_) {
    if (threads_ > 1) {
      workers_.reserve(threads_ - 1);
      for (std::size_t w = 1; w < threads_; ++w) {
        workers_.emplace_back([this, w] { worker_loop(w); });
      }
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    if (!workers_.empty()) {
      {
        const std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
      }
      cv_.notify_all();
      for (auto& t : workers_) t.join();
    }
  }

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Arms per-task counting (+1 per executed task, from the executing
  /// thread) and per-thread trace spans. `sink` must outlive the pool.
  void set_telemetry(telemetry::Telemetry* sink,
                     telemetry::MetricId task_counter) noexcept {
    sink_ = sink;
    task_counter_ = task_counter;
  }

  /// Executes tasks 0..num_tasks-1 (same decomposition on every pool
  /// size). Fn is invoked as fn(task_index); it must only write state
  /// owned by that task index. Blocks until every task completed; the
  /// calling thread participates. Rethrows the first task exception.
  template <typename Fn>
  void run(std::size_t num_tasks, Fn&& fn, const char* span_name = nullptr) {
    if (num_tasks == 0) return;
    if (workers_.empty() || num_tasks == 1) {
      for (std::size_t t = 0; t < num_tasks; ++t) {
        fn(t);
        if (sink_ != nullptr) sink_->add(task_counter_);
      }
      return;
    }
    using Body = std::remove_reference_t<Fn>;
    const bool tracing =
        telemetry::kEnabled && span_name != nullptr && sink_ != nullptr;
    {
      const std::lock_guard<std::mutex> lock(m_);
      job_ctx_ = const_cast<void*>(static_cast<const void*>(&fn));
      job_invoke_ = [](void* ctx, std::size_t t) {
        (*static_cast<Body*>(ctx))(t);
      };
      job_tasks_ = num_tasks;
      job_tracing_ = tracing;
      next_.store(0, std::memory_order_relaxed);
      active_ = workers_.size();
      ++generation_;
    }
    cv_.notify_all();
    run_tasks(0, tracing);
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_done_.wait(lock, [&] { return active_ == 0; });
      error = error_;
      error_ = nullptr;
    }
    if (tracing) emit_spans(span_name);
    if (error) std::rethrow_exception(error);
  }

  /// Number of grain-sized blocks covering n items — the fixed task
  /// decomposition helpers below use. Independent of the thread count.
  [[nodiscard]] static std::size_t block_count(std::size_t n,
                                               std::size_t grain) noexcept {
    return n == 0 ? 0 : (n + grain - 1) / grain;
  }

  /// run() over contiguous blocks: fn(task, begin, end) with
  /// [begin, end) the task's item range.
  template <typename Fn>
  void for_blocks(std::size_t n, std::size_t grain, Fn&& fn,
                  const char* span_name = nullptr) {
    run(
        block_count(n, grain),
        [&](std::size_t t) {
          const std::size_t begin = t * grain;
          fn(t, begin, begin + grain < n ? begin + grain : n);
        },
        span_name);
  }

 private:
  /// Per-participant busy window for one traced section. Written only by
  /// its owning thread during the section; read by the caller after the
  /// join (the done-handshake's mutex orders the accesses).
  struct SpanSlot {
    std::uint64_t start_us = 0;
    std::uint64_t end_us = 0;
    std::size_t tasks = 0;
  };

  void run_tasks(std::size_t participant, bool tracing) noexcept {
    SpanSlot& slot = spans_[participant];
    slot.tasks = 0;
    while (true) {
      const std::size_t t = next_.fetch_add(1, std::memory_order_relaxed);
      if (t >= job_tasks_) break;
      if (tracing && slot.tasks == 0) slot.start_us = telemetry::now_us();
      try {
        job_invoke_(job_ctx_, t);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(m_);
        if (!error_) error_ = std::current_exception();
      }
      ++slot.tasks;
      if (tracing) slot.end_us = telemetry::now_us();
      if (sink_ != nullptr) sink_->add(task_counter_);
    }
  }

  void worker_loop(std::size_t participant) {
    std::uint64_t seen = 0;
    while (true) {
      bool tracing = false;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        tracing = job_tracing_;
      }
      run_tasks(participant, tracing);
      {
        const std::lock_guard<std::mutex> lock(m_);
        if (--active_ == 0) cv_done_.notify_one();
      }
    }
  }

  void emit_spans(const char* name) {
    for (std::size_t p = 0; p < spans_.size(); ++p) {
      const SpanSlot& slot = spans_[p];
      if (slot.tasks == 0) continue;
      telemetry::TraceEvent event;
      event.name = name;
      event.category = "pool";
      event.ts_us = slot.start_us;
      event.dur_us = slot.end_us - slot.start_us;
      event.tid = static_cast<std::uint32_t>(p);
      event.args = "{\"tasks\":" + std::to_string(slot.tasks) + "}";
      sink_->add_trace_event(std::move(event));
    }
  }

  std::size_t threads_;
  std::vector<SpanSlot> spans_;
  std::vector<std::thread> workers_;

  telemetry::Telemetry* sink_ = nullptr;
  telemetry::MetricId task_counter_ = 0;

  // Job state: published under m_ before the generation bump, read by
  // workers after observing the bump under the same mutex (next_ is the
  // only field touched concurrently, and it is atomic).
  std::mutex m_;
  std::condition_variable cv_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  bool job_tracing_ = false;
  void* job_ctx_ = nullptr;
  void (*job_invoke_)(void*, std::size_t) = nullptr;
  std::size_t job_tasks_ = 0;
  std::size_t active_ = 0;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
};

}  // namespace dnnd::core

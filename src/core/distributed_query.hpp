// Distributed ANN query service: greedy graph search over the *sharded*
// k-NN graph, no gather step.
//
// The paper's query program is shared-memory over a gathered graph
// (§5.3.1), which presumes the graph and dataset fit one node — true on
// Mammoth's 2 TiB nodes, not in general at "massive scale" (the paper's
// related work cites Pyramid for exactly this). This module keeps both
// the adjacency and the features partitioned as DNND left them and runs
// the §3.3 greedy search by message passing:
//
//   submit     coordinator (hash of query index) seeds entry points by
//              weighted-rank sampling: seed_req → owner picks a random
//              local point, evaluates θ(q, ·), replies eval_reply
//   expand     coordinator pops the frontier, asks owner(v) for v's row
//              (row_req → row_reply), filters visited, groups the
//              unvisited neighbors by owner and scatters eval_batch
//              messages carrying the query vector; owners evaluate
//              against local features and send eval_reply
//   terminate  frontier empty or closest frontier entry beyond
//              (1 + epsilon) · d_max — same rule as the shared-memory
//              searcher
//
// Every query is a self-contained state machine on its coordinator rank;
// progress is entirely handler-driven, so ONE quiescence barrier after
// submission runs every in-flight query to completion. Queries proceed
// concurrently across (and within) ranks, which is where a distributed
// deployment gets its throughput — per-query latency pays two message
// hops per expansion.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/environment.hpp"
#include "core/distance_kernels.hpp"
#include "core/dnnd_runner.hpp"
#include "core/knn_query.hpp"
#include "core/partition.hpp"
#include "core/neighbor_list.hpp"
#include "core/thread_pool.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace dnnd::core {

/// Per-rank half of the service. Construct one per rank (same order on
/// every rank), attach the DNND shard, then drive via
/// DistributedQueryService.
template <typename T, typename DistanceFn>
class QueryEngineRank {
 public:
  QueryEngineRank(comm::Communicator& comm, DistanceFn distance,
                  Partition partition, std::size_t threads = 1)
      : comm_(&comm),
        distance_(std::move(distance)),
        partition_(std::move(partition)),
        rng_(util::Xoshiro256(0x9e3779b9) .fork(
            static_cast<std::uint64_t>(comm.rank()))),
        pool_(threads == 0 ? 1 : threads) {
    c_submitted_ = comm_->telemetry().counter("query.submitted");
    c_completed_ = comm_->telemetry().counter("query.completed");
    c_frontier_pops_ = comm_->telemetry().counter("query.frontier_pops");
    c_distance_evals_ = comm_->telemetry().counter("query.distance_evals");
    // Pool tasks from handler-side batch evals: fixed decomposition, so
    // bit-identical across thread counts (schedule-shape counter,
    // excluded from the metrics-regression diff like engine.tasks).
    c_tasks_ = comm_->telemetry().counter("query.tasks");
    pool_.set_telemetry(&comm_->telemetry(), c_tasks_);
    h_evals_per_query_ =
        comm_->telemetry().histogram("query.distance_evals_per_query");
    register_handlers();
  }

  QueryEngineRank(const QueryEngineRank&) = delete;
  QueryEngineRank& operator=(const QueryEngineRank&) = delete;

  /// Snapshots the rank's shard: adjacency rows (optimized if available)
  /// and a pointer to its feature store.
  void attach(DnndEngine<T, DistanceFn>& engine) {
    rows_.clear();
    if (!engine.optimized_rows().empty()) {
      for (const auto& [v, row] : engine.optimized_rows()) rows_[v] = row;
    } else {
      for (auto& [v, row] : engine.shard_rows()) rows_[v] = std::move(row);
    }
    points_ = &engine.local_points();
  }

  void set_rank_weights(std::vector<std::uint64_t> counts) {
    rank_weights_ = std::move(counts);
    total_weight_ = 0;
    for (const auto w : rank_weights_) total_weight_ += w;
  }

  /// Starts one query with this rank as coordinator. Call inside a phase;
  /// results are complete after the phase's barrier.
  void submit(std::uint64_t query_index, std::span<const T> query,
              const SearchParams& params) {
    const std::uint64_t qid = next_local_id_++;
    ActiveQuery& state = active_[qid];
    state.query_index = query_index;
    state.vector.assign(query.begin(), query.end());
    state.params = params;
    state.best = NeighborList(params.num_neighbors);

    comm_->telemetry().add(c_submitted_);
    const std::size_t entries =
        params.num_entry_points > 0 ? params.num_entry_points
                                    : params.num_neighbors;
    // Seed: ask `entries` weighted-random ranks for one random local
    // point each. Owners may return duplicates; the merge dedups.
    state.outstanding = entries;
    for (std::size_t e = 0; e < entries; ++e) {
      comm_->async(sample_weighted_rank(), h_seed_req_, qid,
                   static_cast<std::uint32_t>(comm_->rank()), state.vector);
    }
  }

  /// Completed results, keyed by the caller's query_index.
  [[nodiscard]] std::unordered_map<std::uint64_t, SearchResult>&
  completed() noexcept {
    return completed_;
  }

 private:
  struct ActiveQuery {
    std::uint64_t query_index = 0;
    std::vector<T> vector;
    SearchParams params;
    NeighborList best;
    std::priority_queue<std::pair<Dist, VertexId>,
                        std::vector<std::pair<Dist, VertexId>>, std::greater<>>
        frontier;
    std::unordered_set<VertexId> evaluated;  ///< θ(q, ·) already computed
    std::unordered_set<VertexId> expanded;   ///< row already fetched
    std::size_t outstanding = 0;  ///< replies pending before the next step
    std::uint64_t distance_evals = 0;
  };

  int sample_weighted_rank() {
    if (total_weight_ == 0) {
      return static_cast<int>(
          rng_.uniform_below(static_cast<std::uint64_t>(comm_->size())));
    }
    std::uint64_t pick = rng_.uniform_below(total_weight_);
    for (std::size_t r = 0; r < rank_weights_.size(); ++r) {
      if (pick < rank_weights_[r]) return static_cast<int>(r);
      pick -= rank_weights_[r];
    }
    return comm_->size() - 1;
  }

  /// Merge one evaluated candidate into the query's heaps.
  void merge_candidate(ActiveQuery& state, VertexId v, Dist d) {
    ++state.distance_evals;
    state.evaluated.insert(v);  // seeds arrive without a scatter step
    const double slack = 1.0 + state.params.epsilon;
    const Dist bound = state.best.furthest_distance();
    if (static_cast<double>(d) < slack * static_cast<double>(bound)) {
      state.frontier.emplace(d, v);
      state.best.update(v, d, false);
    }
  }

  /// Called when all outstanding replies for a query arrived: expand the
  /// next frontier vertex or finish.
  void advance(std::uint64_t qid, ActiveQuery& state) {
    const double slack = 1.0 + state.params.epsilon;
    while (!state.frontier.empty()) {
      const auto [d, v] = state.frontier.top();
      const Dist d_max = state.best.furthest_distance();
      if (static_cast<double>(d) > slack * static_cast<double>(d_max)) break;
      state.frontier.pop();
      comm_->telemetry().add(c_frontier_pops_);
      if (state.expanded.contains(v)) continue;
      state.expanded.insert(v);
      state.outstanding = 1;  // the row_reply
      comm_->async(partition_.owner(v), h_row_req_, qid,
                   static_cast<std::uint32_t>(comm_->rank()), v);
      return;
    }
    // Done.
    comm_->telemetry().add(c_completed_);
    comm_->telemetry().record(h_evals_per_query_, state.distance_evals);
    SearchResult result;
    result.neighbors = state.best.sorted();
    result.distance_evals = state.distance_evals;
    result.visited = state.evaluated.size();
    completed_.emplace(state.query_index, std::move(result));
    active_.erase(qid);
  }

  void register_handlers() {
    h_seed_req_ = comm_->register_handler(
        "q_seed_req", [this](int, serial::InArchive& ar) {
          const auto qid = ar.read<std::uint64_t>();
          const auto coordinator = ar.read<std::uint32_t>();
          ar.read_into(scratch_);
          // Evaluate one random local point against the query.
          std::vector<std::pair<VertexId, Dist>> pairs;
          if (points_ != nullptr && !points_->empty()) {
            const VertexId u =
                points_->id_at(rng_.uniform_below(points_->size()));
            pairs.emplace_back(
                u, distance_(std::span<const T>(scratch_), (*points_)[u]));
            comm_->telemetry().add(c_distance_evals_);
          }
          send_eval_reply(static_cast<int>(coordinator), qid, pairs);
        });
    h_row_req_ = comm_->register_handler(
        "q_row_req", [this](int, serial::InArchive& ar) {
          const auto qid = ar.read<std::uint64_t>();
          const auto coordinator = ar.read<std::uint32_t>();
          const auto v = ar.read<VertexId>();
          std::vector<VertexId> ids;
          const auto it = rows_.find(v);
          if (it != rows_.end()) {
            ids.reserve(it->second.size());
            for (const Neighbor& n : it->second) ids.push_back(n.id);
          }
          comm_->async(static_cast<int>(coordinator), h_row_reply_, qid, ids);
        });
    h_row_reply_ = comm_->register_handler(
        "q_row_reply", [this](int, serial::InArchive& ar) {
          const auto qid = ar.read<std::uint64_t>();
          const auto ids = ar.read_vector<VertexId>();
          auto& state = active_.at(qid);
          --state.outstanding;
          // Filter visited, group by owner, scatter evaluation batches.
          std::unordered_map<int, std::vector<VertexId>> by_owner;
          for (const VertexId w : ids) {
            if (state.evaluated.contains(w)) continue;
            state.evaluated.insert(w);
            by_owner[partition_.owner(w)].push_back(w);
          }
          state.outstanding += by_owner.size();
          for (auto& [owner, batch] : by_owner) {
            comm_->async(owner, h_eval_batch_, qid,
                         static_cast<std::uint32_t>(comm_->rank()),
                         state.vector, batch);
          }
          if (state.outstanding == 0) advance(qid, state);
        });
    h_eval_batch_ = comm_->register_handler(
        "q_eval_batch", [this](int, serial::InArchive& ar) {
          const auto qid = ar.read<std::uint64_t>();
          const auto coordinator = ar.read<std::uint32_t>();
          ar.read_into(scratch_);
          const auto ids = ar.read_vector<VertexId>();
          std::vector<std::pair<VertexId, Dist>> pairs;
          pairs.reserve(ids.size());
          if constexpr (BatchDistance<DistanceFn, T>) {
            // The eval_batch message is already a one-query-vs-many
            // evaluation — feed it straight into the batched kernel,
            // split across the rank's pool in kEvalGrain blocks. Each
            // task writes its private dists[begin, end) slot and the
            // kernel contract makes out[i] a function of (q, rows[i])
            // alone, so the reply bytes are bit-identical for any
            // thread count (small rows stay a single inline task).
            if (!ids.empty()) {
              std::vector<const T*> rows;
              rows.reserve(ids.size());
              for (const VertexId w : ids) {
                rows.push_back((*points_)[w].data());
              }
              std::vector<Dist> dists(ids.size());
              pool_.for_blocks(
                  ids.size(), kEvalGrain,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    distance_.batch(scratch_.data(), rows.data() + begin,
                                    end - begin, scratch_.size(),
                                    dists.data() + begin);
                  },
                  "query_eval");
              for (std::size_t i = 0; i < ids.size(); ++i) {
                pairs.emplace_back(ids[i], dists[i]);
              }
            }
          } else {
            for (const VertexId w : ids) {
              pairs.emplace_back(
                  w, distance_(std::span<const T>(scratch_), (*points_)[w]));
            }
          }
          comm_->telemetry().add(c_distance_evals_, ids.size());
          send_eval_reply(static_cast<int>(coordinator), qid, pairs);
        });
    h_eval_reply_ = comm_->register_handler(
        "q_eval_reply", [this](int, serial::InArchive& ar) {
          const auto qid = ar.read<std::uint64_t>();
          const auto ids = ar.read_vector<VertexId>();
          const auto dists = ar.read_vector<Dist>();
          auto& state = active_.at(qid);
          for (std::size_t i = 0; i < ids.size(); ++i) {
            merge_candidate(state, ids[i], dists[i]);
          }
          --state.outstanding;
          if (state.outstanding == 0) advance(qid, state);
        });
  }

  void send_eval_reply(int coordinator, std::uint64_t qid,
                       const std::vector<std::pair<VertexId, Dist>>& pairs) {
    std::vector<VertexId> ids;
    std::vector<Dist> dists;
    ids.reserve(pairs.size());
    dists.reserve(pairs.size());
    for (const auto& [w, d] : pairs) {
      ids.push_back(w);
      dists.push_back(d);
    }
    comm_->async(coordinator, h_eval_reply_, qid, ids, dists);
  }

  /// Grain for handler-side batched-eval tasks (fixed: the task count
  /// must not depend on the thread count).
  static constexpr std::size_t kEvalGrain = 16;

  comm::Communicator* comm_;
  DistanceFn distance_;
  Partition partition_;
  util::Xoshiro256 rng_;
  ThreadPool pool_;

  std::unordered_map<VertexId, std::vector<Neighbor>> rows_;
  const FeatureStore<T>* points_ = nullptr;
  std::vector<std::uint64_t> rank_weights_;
  std::uint64_t total_weight_ = 0;

  std::uint64_t next_local_id_ = 0;
  std::unordered_map<std::uint64_t, ActiveQuery> active_;
  std::unordered_map<std::uint64_t, SearchResult> completed_;
  std::vector<T> scratch_;

  comm::HandlerId h_seed_req_ = 0, h_row_req_ = 0, h_row_reply_ = 0;
  comm::HandlerId h_eval_batch_ = 0, h_eval_reply_ = 0;

  telemetry::MetricId c_submitted_ = 0, c_completed_ = 0;
  telemetry::MetricId c_frontier_pops_ = 0, c_distance_evals_ = 0;
  telemetry::MetricId c_tasks_ = 0;
  telemetry::MetricId h_evals_per_query_ = 0;
};

/// Front-end: binds per-rank query engines to a built DnndRunner and runs
/// query batches to completion.
template <typename T, typename DistanceFn>
class DistributedQueryService {
 public:
  DistributedQueryService(comm::Environment& env,
                          DnndRunner<T, DistanceFn>& runner,
                          DistanceFn distance)
      : env_(&env) {
    ranks_.reserve(static_cast<std::size_t>(env.num_ranks()));
    const std::size_t threads =
        resolve_threads(runner.config().threads_per_rank);
    for (int r = 0; r < env.num_ranks(); ++r) {
      ranks_.push_back(std::make_unique<QueryEngineRank<T, DistanceFn>>(
          env.comm(r), distance, runner.partition(), threads));
    }
    std::vector<std::uint64_t> counts;
    counts.reserve(ranks_.size());
    for (int r = 0; r < env.num_ranks(); ++r) {
      ranks_[static_cast<std::size_t>(r)]->attach(runner.engine(r));
      counts.push_back(runner.engine(r).local_point_count());
    }
    for (auto& rank : ranks_) rank->set_rank_weights(counts);
  }

  /// Runs all queries; queries are assigned to coordinator ranks
  /// round-robin. Results are indexed like `queries`.
  [[nodiscard]] std::vector<SearchResult> run(
      const FeatureStore<T>& queries, const SearchParams& params) {
    for (auto& rank : ranks_) rank->completed().clear();
    const int nranks = env_->num_ranks();
    env_->execute_phase([&](int r) {
      const auto span = env_->telemetry(r).span("query_batch", "query");
      for (std::size_t qi = static_cast<std::size_t>(r); qi < queries.size();
           qi += static_cast<std::size_t>(nranks)) {
        ranks_[static_cast<std::size_t>(r)]->submit(qi, queries.row(qi),
                                                    params);
      }
    });
    // The barrier above ran every query to completion: collect.
    std::vector<SearchResult> results(queries.size());
    for (auto& rank : ranks_) {
      for (auto& [qi, result] : rank->completed()) {
        results[qi] = std::move(result);
      }
    }
    return results;
  }

 private:
  comm::Environment* env_;
  std::vector<std::unique_ptr<QueryEngineRank<T, DistanceFn>>> ranks_;
};

}  // namespace dnnd::core

// Recall metrics (§5.2 graph recall, §5.3.3 query recall@k).
#pragma once

#include <span>
#include <vector>

#include "core/knn_graph.hpp"
#include "core/types.hpp"

namespace dnnd::core {

/// §5.2: per-vertex ratio of approximate neighbor ids present in the
/// ground-truth row, averaged over the graph. Rows are compared on the
/// first min(k, row length) entries of each.
double graph_recall(const KnnGraph& approx, const KnnGraph& ground_truth,
                    std::size_t k);

/// recall@k for one query: |computed ∩ truth| / k over the top-k of each.
double query_recall(std::span<const Neighbor> computed,
                    std::span<const VertexId> truth_ids, std::size_t k);

/// Mean recall@k over a batch (paper reports the mean over 10k queries).
double mean_query_recall(
    const std::vector<std::vector<Neighbor>>& computed,
    const std::vector<std::vector<VertexId>>& truth_ids, std::size_t k);

}  // namespace dnnd::core

// Distance metrics.
//
// NN-Descent's selling point is metric genericity: the algorithm only ever
// calls θ(v₁, v₂) (paper §3.1), so every functor here has the same shape —
// two element spans in, a float out, smaller = closer. The evaluation
// datasets (Table 1) use L2, cosine and Jaccard; inner product is included
// because Big-ANN-Benchmarks track it and it exercises the "similarity
// converted to distance" path.
//
// Variable-length spans make sparse metrics (Jaccard over sorted id sets,
// Kosarak-style) first-class rather than a bolt-on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>

#include "core/distance_kernels.hpp"
#include "core/types.hpp"

namespace dnnd::core {

// The dense arithmetic metrics (squared-L2 / cosine / inner product over
// float or uint8 elements) route through core/distance_kernels.hpp: the
// blocked 8-lane reduction there is the canonical definition of these
// distances, identical bit-for-bit between the scalar reference and the
// runtime-dispatched AVX2 variant. Other element types and the remaining
// metrics keep the straightforward element loops below.

/// Squared Euclidean distance. Monotone in L2, so k-NN ranking under it is
/// identical while skipping the sqrt; construction uses this internally.
template <typename T>
[[nodiscard]] Dist squared_l2(std::span<const T> a, std::span<const T> b) {
  if constexpr (kIsKernelElement<T>) {
    return k_squared_l2(a.data(), b.data(), a.size());
  } else {
    Dist sum = 0;
    const std::size_t n = a.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Dist d = static_cast<Dist>(a[i]) - static_cast<Dist>(b[i]);
      sum += d * d;
    }
    return sum;
  }
}

template <typename T>
[[nodiscard]] Dist l2(std::span<const T> a, std::span<const T> b) {
  return std::sqrt(squared_l2(a, b));
}

/// Cosine distance: 1 - cos(a, b). Zero-norm vectors are treated as
/// maximally distant from everything (distance 1).
template <typename T>
[[nodiscard]] Dist cosine(std::span<const T> a, std::span<const T> b) {
  if constexpr (kIsKernelElement<T>) {
    return k_cosine(a.data(), b.data(), a.size());
  } else {
    Dist dot = 0, na = 0, nb = 0;
    const std::size_t n = a.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Dist x = static_cast<Dist>(a[i]);
      const Dist y = static_cast<Dist>(b[i]);
      dot += x * y;
      na += x * x;
      nb += y * y;
    }
    if (na == 0 || nb == 0) return Dist{1};
    return Dist{1} - dot / std::sqrt(na * nb);
  }
}

/// Inner-product "distance": -<a, b>, so that larger similarity sorts
/// closer. Not a metric; NN-Descent does not require one.
template <typename T>
[[nodiscard]] Dist neg_inner_product(std::span<const T> a,
                                     std::span<const T> b) {
  if constexpr (kIsKernelElement<T>) {
    return k_inner_product(a.data(), b.data(), a.size());
  } else {
    Dist dot = 0;
    const std::size_t n = a.size();
    for (std::size_t i = 0; i < n; ++i) {
      dot += static_cast<Dist>(a[i]) * static_cast<Dist>(b[i]);
    }
    return -dot;
  }
}

/// Jaccard distance over *sorted* sparse id sets: 1 - |a∩b| / |a∪b|.
/// This is the Kosarak representation (each point is the set of item ids).
template <typename T>
[[nodiscard]] Dist jaccard_sorted(std::span<const T> a, std::span<const T> b) {
  if (a.empty() && b.empty()) return Dist{0};
  std::size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - common;
  return Dist{1} - static_cast<Dist>(common) / static_cast<Dist>(uni);
}

/// Manhattan (L1) distance.
template <typename T>
[[nodiscard]] Dist l1(std::span<const T> a, std::span<const T> b) {
  Dist sum = 0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    sum += std::abs(static_cast<Dist>(a[i]) - static_cast<Dist>(b[i]));
  }
  return sum;
}

/// Chebyshev (L∞) distance.
template <typename T>
[[nodiscard]] Dist chebyshev(std::span<const T> a, std::span<const T> b) {
  Dist worst = 0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<Dist>(a[i]) - static_cast<Dist>(b[i])));
  }
  return worst;
}

/// Hamming distance over integral element vectors (count of differing
/// positions); the binary-embedding metric in ANN-Benchmarks.
template <typename T>
  requires std::is_integral_v<T>
[[nodiscard]] Dist hamming(std::span<const T> a, std::span<const T> b) {
  std::size_t diff = 0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) diff += (a[i] != b[i]) ? 1 : 0;
  return static_cast<Dist>(diff);
}

/// Runtime metric tag for tooling (dataset registry, CLI examples).
enum class Metric {
  kL2,
  kSquaredL2,
  kCosine,
  kJaccard,
  kInnerProduct,
  kL1,
  kChebyshev
};

[[nodiscard]] constexpr std::string_view metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kL2: return "L2";
    case Metric::kSquaredL2: return "SqL2";
    case Metric::kCosine: return "Cosine";
    case Metric::kJaccard: return "Jaccard";
    case Metric::kInnerProduct: return "InnerProduct";
    case Metric::kL1: return "L1";
    case Metric::kChebyshev: return "Chebyshev";
  }
  return "?";
}

/// Runtime-dispatched distance functor; use the raw functions above in
/// inner loops where the metric is a compile-time template parameter.
template <typename T>
struct MetricFn {
  Metric metric = Metric::kL2;

  Dist operator()(std::span<const T> a, std::span<const T> b) const {
    switch (metric) {
      case Metric::kL2: return l2(a, b);
      case Metric::kSquaredL2: return squared_l2(a, b);
      case Metric::kCosine: return cosine(a, b);
      case Metric::kJaccard: return jaccard_sorted(a, b);
      case Metric::kInnerProduct: return neg_inner_product(a, b);
      case Metric::kL1: return l1(a, b);
      case Metric::kChebyshev: return chebyshev(a, b);
    }
    throw std::logic_error("MetricFn: unknown metric");
  }
};

}  // namespace dnnd::core

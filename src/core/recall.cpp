#include "core/recall.hpp"

#include <algorithm>
#include <stdexcept>

namespace dnnd::core {

double graph_recall(const KnnGraph& approx, const KnnGraph& ground_truth,
                    std::size_t k) {
  if (approx.num_vertices() != ground_truth.num_vertices()) {
    throw std::invalid_argument("graph_recall: vertex counts differ");
  }
  const std::size_t n = approx.num_vertices();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t vi = 0; vi < n; ++vi) {
    const auto v = static_cast<VertexId>(vi);
    const auto a = approx.neighbors(v);
    const auto g = ground_truth.neighbors(v);
    const std::size_t take = std::min(k, g.size());
    if (take == 0) continue;
    std::size_t hits = 0;
    const std::size_t a_take = std::min(k, a.size());
    for (std::size_t i = 0; i < a_take; ++i) {
      for (std::size_t j = 0; j < take; ++j) {
        if (a[i].id == g[j].id) {
          ++hits;
          break;
        }
      }
    }
    sum += static_cast<double>(hits) / static_cast<double>(take);
  }
  return sum / static_cast<double>(n);
}

double query_recall(std::span<const Neighbor> computed,
                    std::span<const VertexId> truth_ids, std::size_t k) {
  const std::size_t take = std::min(k, truth_ids.size());
  if (take == 0) return 0.0;
  std::size_t hits = 0;
  const std::size_t c_take = std::min(k, computed.size());
  for (std::size_t i = 0; i < c_take; ++i) {
    for (std::size_t j = 0; j < take; ++j) {
      if (computed[i].id == truth_ids[j]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(take);
}

double mean_query_recall(
    const std::vector<std::vector<Neighbor>>& computed,
    const std::vector<std::vector<VertexId>>& truth_ids, std::size_t k) {
  if (computed.size() != truth_ids.size()) {
    throw std::invalid_argument("mean_query_recall: batch sizes differ");
  }
  if (computed.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < computed.size(); ++i) {
    sum += query_recall(computed[i], truth_ids[i], k);
  }
  return sum / static_cast<double>(computed.size());
}

}  // namespace dnnd::core

// Build checkpoint/restore through the persistent datastore.
//
// The paper adopts Metall precisely so that "the ability to store the
// constructed graph data in some form of persistent storage" (§4.6) and
// §7's incremental-update vision work; this module closes the loop: an
// in-progress or finished DNND build can be checkpointed per rank and
// resumed later — in a new process — with refine() or optimize().
//
// Layout inside the datastore (all names under a caller-chosen prefix):
//   <prefix>/meta            CheckpointMeta (ranks, k, counts, type tag)
//   <prefix>/points/<rank>   PersistentFeatures<T> — the rank's shard
//   <prefix>/rows/<rank>     CSR of (id, neighbors-with-flags) rows
//
// Restore requires a runner with the same rank count and k; the element
// type is checked via the pmem type hashes.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/dnnd_runner.hpp"
#include "core/persistent_graph.hpp"
#include "pmem/manager.hpp"
#include "pmem/vector.hpp"

namespace dnnd::core {

struct CheckpointMeta {
  std::uint32_t num_ranks = 0;
  std::uint32_t k = 0;
  std::uint64_t global_count = 0;
  std::uint64_t id_bound = 0;
};

/// Per-rank neighbor rows in persistent CSR form.
struct CheckpointRows {
  explicit CheckpointRows(pmem::allocator<std::byte> alloc)
      : ids(pmem::allocator<VertexId>(alloc.header())),
        row_offsets(pmem::allocator<std::uint64_t>(alloc.header())),
        entries(pmem::allocator<Neighbor>(alloc.header())) {}

  pmem::vector<VertexId> ids;
  pmem::vector<std::uint64_t> row_offsets;  ///< ids.size() + 1
  pmem::vector<Neighbor> entries;
};

namespace detail {
inline std::string ckpt_name(std::string_view prefix, const char* what,
                             int rank) {
  return std::string(prefix) + "/" + what + "/" + std::to_string(rank);
}
}  // namespace detail

/// Writes the runner's full shard state (points + neighbor lists with
/// new/old flags) into the datastore, overwriting a same-named checkpoint.
template <typename T, typename DistanceFn>
void save_checkpoint(pmem::Manager& manager,
                     DnndRunner<T, DistanceFn>& runner,
                     std::string_view prefix) {
  const int ranks = runner.environment().num_ranks();
  auto* meta = manager.find_or_construct<CheckpointMeta>(
      std::string(prefix) + "/meta");
  if (meta == nullptr) throw pmem::ArenaExhausted();
  meta->num_ranks = static_cast<std::uint32_t>(ranks);
  meta->global_count = runner.global_count();
  meta->id_bound = runner.id_bound();

  for (int r = 0; r < ranks; ++r) {
    auto& engine = runner.engine(r);
    meta->k = static_cast<std::uint32_t>(
        engine.list_capacity());
    store_features(manager, engine.local_points(),
                   detail::ckpt_name(prefix, "points", r));

    auto* rows = manager.find_or_construct<CheckpointRows>(
        detail::ckpt_name(prefix, "rows", r), manager.get_allocator<std::byte>());
    if (rows == nullptr) throw pmem::ArenaExhausted();
    rows->ids.clear();
    rows->row_offsets.clear();
    rows->entries.clear();
    rows->row_offsets.push_back(0);
    for (auto& [v, row] : engine.shard_rows()) {
      rows->ids.push_back(v);
      for (const Neighbor& n : row) rows->entries.push_back(n);
      rows->row_offsets.push_back(rows->entries.size());
    }
  }
  manager.flush();
}

/// Loads a checkpoint into a *fresh* runner (no distribute()/build() yet)
/// created with the same rank count and k. Throws std::runtime_error on a
/// missing checkpoint or mismatched topology.
template <typename T, typename DistanceFn>
void load_checkpoint(pmem::Manager& manager,
                     DnndRunner<T, DistanceFn>& runner,
                     std::string_view prefix) {
  auto* meta =
      manager.find<CheckpointMeta>(std::string(prefix) + "/meta");
  if (meta == nullptr) {
    throw std::runtime_error("load_checkpoint: no checkpoint at prefix '" +
                             std::string(prefix) + "'");
  }
  const int ranks = runner.environment().num_ranks();
  if (meta->num_ranks != static_cast<std::uint32_t>(ranks)) {
    throw std::runtime_error(
        "load_checkpoint: rank count mismatch (checkpoint " +
        std::to_string(meta->num_ranks) + ", runner " + std::to_string(ranks) +
        ")");
  }

  for (int r = 0; r < ranks; ++r) {
    auto& engine = runner.engine(r);
    if (meta->k != static_cast<std::uint32_t>(engine.list_capacity())) {
      throw std::runtime_error("load_checkpoint: k mismatch");
    }
    const auto points =
        load_features<T>(manager, detail::ckpt_name(prefix, "points", r));
    for (std::size_t i = 0; i < points.size(); ++i) {
      engine.add_local_point(points.id_at(i), points.row(i));
    }
    auto* rows = manager.find<CheckpointRows>(
        detail::ckpt_name(prefix, "rows", r));
    if (rows == nullptr) {
      throw std::runtime_error("load_checkpoint: missing rows for rank " +
                               std::to_string(r));
    }
    std::vector<std::pair<VertexId, std::vector<Neighbor>>> imported;
    imported.reserve(rows->ids.size());
    for (std::size_t i = 0; i < rows->ids.size(); ++i) {
      const auto begin = rows->row_offsets[i];
      const auto end = rows->row_offsets[i + 1];
      imported.emplace_back(
          rows->ids[i],
          std::vector<Neighbor>(rows->entries.data() + begin,
                                rows->entries.data() + end));
    }
    engine.import_rows(imported);
  }
  runner.adopt_loaded_shards(meta->id_bound);
}

}  // namespace dnnd::core

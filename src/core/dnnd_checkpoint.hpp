// Build checkpoint/restore through the persistent datastore.
//
// The paper adopts Metall precisely so that "the ability to store the
// constructed graph data in some form of persistent storage" (§4.6) and
// §7's incremental-update vision work; this module closes the loop: an
// in-progress or finished DNND build can be checkpointed per rank and
// resumed later — in a new process — with resume_build(), refine(), or
// optimize().
//
// A checkpoint captures a *consistent cut* of the build: it is taken at an
// iteration barrier (transport quiescent, update counters consumed by the
// allreduce, per-iteration cursors reset), and records everything the cut
// does not make implicit — the neighbor rows with their new/old sampling
// flags, each engine's RNG stream state, and the runner's iteration
// bookkeeping. That is sufficient for a resumed build to replay the
// remaining iterations bit-identically to an uninterrupted run.
//
// Layout inside the datastore: double-buffered A/B slots under a
// caller-chosen prefix, with a head record naming the live slot:
//
//   <prefix>/head            CheckpointHead {active_slot, saves}
//   <prefix>/s<A|B>/meta     CheckpointMeta (ranks, k, counts, progress)
//   <prefix>/s<A|B>/rng/<r>  CheckpointRngState — rank r's engine stream
//   <prefix>/s<A|B>/updates  per-iteration global update counts
//   <prefix>/s<A|B>/points/<r>  PersistentFeatures<T> — the rank's shard
//   <prefix>/s<A|B>/rows/<r>    CSR of (id, neighbors-with-flags) rows
//
// save_checkpoint always writes the *inactive* slot, flushes it durable,
// and only then flips head.active_slot (and flushes again): a crash at any
// point mid-save leaves the previous checkpoint intact and loadable. (The
// old single-slot layout overwrote the only copy in place — a crash
// mid-save corrupted it.) For whole-file crash consistency across torn
// datastore writes, wrap saves in a CheckpointStore generation
// (write_checkpoint_generation below), which adds CRC validation and
// atomic manifest publication on top.
//
// Restore requires a runner with the same rank count and k; the element
// type is checked via the pmem type hashes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/checkpoint_store.hpp"
#include "core/dnnd_runner.hpp"
#include "core/persistent_graph.hpp"
#include "pmem/manager.hpp"
#include "pmem/vector.hpp"

namespace dnnd::core {

/// Double-buffer head: which slot holds the live checkpoint. saves == 0
/// means no complete checkpoint exists yet.
struct CheckpointHead {
  std::uint32_t active_slot = 0;  ///< 0 = "A", 1 = "B"
  std::uint64_t saves = 0;        ///< completed save_checkpoint calls
};

struct CheckpointMeta {
  std::uint32_t num_ranks = 0;
  std::uint32_t k = 0;
  std::uint64_t global_count = 0;
  std::uint64_t id_bound = 0;
  // -- build progress at the checkpointed cut --------------------------
  std::uint64_t completed_iterations = 0;
  std::uint64_t total_updates = 0;
  std::uint64_t seed = 0;  ///< config seed, to catch resume-with-wrong-seed
  bool converged = false;
};

/// One engine's xoshiro256** state (the only build-path randomness).
struct CheckpointRngState {
  std::uint64_t s[4] = {};
};

/// Per-rank neighbor rows in persistent CSR form.
struct CheckpointRows {
  explicit CheckpointRows(pmem::allocator<std::byte> alloc)
      : ids(pmem::allocator<VertexId>(alloc.header())),
        row_offsets(pmem::allocator<std::uint64_t>(alloc.header())),
        entries(pmem::allocator<Neighbor>(alloc.header())) {}

  pmem::vector<VertexId> ids;
  pmem::vector<std::uint64_t> row_offsets;  ///< ids.size() + 1
  pmem::vector<Neighbor> entries;
};

/// Per-iteration global update counts (DnndRunner::updates_history).
struct CheckpointUpdates {
  explicit CheckpointUpdates(pmem::allocator<std::byte> alloc)
      : counts(pmem::allocator<std::uint64_t>(alloc.header())) {}

  pmem::vector<std::uint64_t> counts;
};

namespace detail {
inline std::string slot_prefix(std::string_view prefix, std::uint32_t slot) {
  return std::string(prefix) + (slot == 0 ? "/sA" : "/sB");
}
inline std::string ckpt_name(std::string_view prefix, const char* what,
                             int rank) {
  return std::string(prefix) + "/" + what + "/" + std::to_string(rank);
}
}  // namespace detail

/// Writes the runner's full mid-build state (points, neighbor lists with
/// new/old flags, RNG streams, iteration bookkeeping) into the datastore's
/// inactive slot, then atomically flips the head. The previous checkpoint
/// stays intact until the new one is fully durable.
template <typename T, typename DistanceFn>
void save_checkpoint(pmem::Manager& manager,
                     DnndRunner<T, DistanceFn>& runner,
                     std::string_view prefix) {
  auto* head = manager.find_or_construct<CheckpointHead>(
      std::string(prefix) + "/head");
  if (head == nullptr) throw pmem::ArenaExhausted();
  const std::uint32_t slot = head->saves == 0 ? 0 : 1 - head->active_slot;
  const std::string sp = detail::slot_prefix(prefix, slot);

  const int ranks = runner.environment().num_ranks();
  auto* meta = manager.find_or_construct<CheckpointMeta>(sp + "/meta");
  if (meta == nullptr) throw pmem::ArenaExhausted();
  meta->num_ranks = static_cast<std::uint32_t>(ranks);
  meta->global_count = runner.global_count();
  meta->id_bound = runner.id_bound();
  meta->completed_iterations = runner.completed_iterations();
  meta->converged = runner.converged();
  meta->seed = runner.config().seed;
  meta->total_updates = 0;

  auto* updates = manager.find_or_construct<CheckpointUpdates>(
      sp + "/updates", manager.get_allocator<std::byte>());
  if (updates == nullptr) throw pmem::ArenaExhausted();
  updates->counts.clear();
  for (const std::uint64_t c : runner.updates_history()) {
    updates->counts.push_back(c);
    meta->total_updates += c;
  }

  for (int r = 0; r < ranks; ++r) {
    auto& engine = runner.engine(r);
    meta->k = static_cast<std::uint32_t>(engine.list_capacity());
    store_features(manager, engine.local_points(),
                   detail::ckpt_name(sp, "points", r));

    auto* rng = manager.find_or_construct<CheckpointRngState>(
        detail::ckpt_name(sp, "rng", r));
    if (rng == nullptr) throw pmem::ArenaExhausted();
    const auto state = engine.rng_state();
    for (int i = 0; i < 4; ++i) rng->s[i] = state[static_cast<std::size_t>(i)];

    auto* rows = manager.find_or_construct<CheckpointRows>(
        detail::ckpt_name(sp, "rows", r), manager.get_allocator<std::byte>());
    if (rows == nullptr) throw pmem::ArenaExhausted();
    rows->ids.clear();
    rows->row_offsets.clear();
    rows->entries.clear();
    rows->row_offsets.push_back(0);
    for (auto& [v, row] : engine.shard_rows()) {
      rows->ids.push_back(v);
      for (const Neighbor& n : row) rows->entries.push_back(n);
      rows->row_offsets.push_back(rows->entries.size());
    }
  }
  // Slot durable first, head flip durable second: the flip is the commit
  // point, and it only ever points at a completely written slot.
  manager.flush();
  head->active_slot = slot;
  ++head->saves;
  manager.flush();
}

/// Loads the active checkpoint slot into a *fresh* runner (no
/// distribute()/build() yet) created with the same rank count and k.
/// Restores engine rows, RNG streams, and runner progress, so
/// resume_build() continues exactly where the checkpoint was cut. Throws
/// std::runtime_error on a missing checkpoint or mismatched topology.
template <typename T, typename DistanceFn>
void load_checkpoint(pmem::Manager& manager,
                     DnndRunner<T, DistanceFn>& runner,
                     std::string_view prefix) {
  auto* head = manager.find<CheckpointHead>(std::string(prefix) + "/head");
  if (head == nullptr || head->saves == 0) {
    throw std::runtime_error("load_checkpoint: no checkpoint at prefix '" +
                             std::string(prefix) + "'");
  }
  const std::string sp = detail::slot_prefix(prefix, head->active_slot);
  auto* meta = manager.find<CheckpointMeta>(sp + "/meta");
  if (meta == nullptr) {
    throw std::runtime_error("load_checkpoint: head points at missing slot");
  }
  const int ranks = runner.environment().num_ranks();
  if (meta->num_ranks != static_cast<std::uint32_t>(ranks)) {
    throw std::runtime_error(
        "load_checkpoint: rank count mismatch (checkpoint " +
        std::to_string(meta->num_ranks) + ", runner " + std::to_string(ranks) +
        ")");
  }
  if (meta->seed != runner.config().seed) {
    throw std::runtime_error(
        "load_checkpoint: seed mismatch (checkpoint " +
        std::to_string(meta->seed) + ", runner " +
        std::to_string(runner.config().seed) +
        ") — a resumed build must use the original seed");
  }

  for (int r = 0; r < ranks; ++r) {
    auto& engine = runner.engine(r);
    if (meta->k != static_cast<std::uint32_t>(engine.list_capacity())) {
      throw std::runtime_error("load_checkpoint: k mismatch");
    }
    const auto points =
        load_features<T>(manager, detail::ckpt_name(sp, "points", r));
    for (std::size_t i = 0; i < points.size(); ++i) {
      engine.add_local_point(points.id_at(i), points.row(i));
    }
    auto* rng =
        manager.find<CheckpointRngState>(detail::ckpt_name(sp, "rng", r));
    if (rng == nullptr) {
      throw std::runtime_error("load_checkpoint: missing RNG state for rank " +
                               std::to_string(r));
    }
    engine.set_rng_state({rng->s[0], rng->s[1], rng->s[2], rng->s[3]});
    auto* rows = manager.find<CheckpointRows>(detail::ckpt_name(sp, "rows", r));
    if (rows == nullptr) {
      throw std::runtime_error("load_checkpoint: missing rows for rank " +
                               std::to_string(r));
    }
    std::vector<std::pair<VertexId, std::vector<Neighbor>>> imported;
    imported.reserve(rows->ids.size());
    for (std::size_t i = 0; i < rows->ids.size(); ++i) {
      const auto begin = rows->row_offsets[i];
      const auto end = rows->row_offsets[i + 1];
      imported.emplace_back(
          rows->ids[i],
          std::vector<Neighbor>(rows->entries.data() + begin,
                                rows->entries.data() + end));
    }
    engine.import_rows(imported);
  }
  std::vector<std::uint64_t> history;
  if (auto* updates = manager.find<CheckpointUpdates>(sp + "/updates")) {
    history.assign(updates->counts.data(),
                   updates->counts.data() + updates->counts.size());
  }
  runner.restore_progress(meta->completed_iterations, std::move(history),
                          meta->converged);
  runner.adopt_loaded_shards(meta->id_bound);
}

// ---- generation-store glue (crash consistency across torn file writes) ----

/// Stages a fresh generation datastore in `store`, saves the runner's
/// checkpoint into it, and commits it (CRC + atomic manifest publication).
/// Returns the committed generation record.
template <typename T, typename DistanceFn>
GenerationInfo write_checkpoint_generation(CheckpointStore& store,
                                           DnndRunner<T, DistanceFn>& runner,
                                           std::size_t capacity_bytes,
                                           std::string_view prefix = "ckpt") {
  const std::uint64_t gen = store.next_generation();
  {
    auto manager = pmem::Manager::create(store.generation_path(gen),
                                         capacity_bytes);
    save_checkpoint(manager, runner, prefix);
    manager.close();
  }
  return store.commit(gen, runner.completed_iterations(), runner.converged());
}

/// Opens the newest CRC-valid generation (rolling back past torn ones) and
/// loads it into `runner`. Returns the generation record, or nullopt when
/// the store holds no valid checkpoint.
template <typename T, typename DistanceFn>
std::optional<GenerationInfo> load_latest_generation(
    CheckpointStore& store, DnndRunner<T, DistanceFn>& runner,
    std::string_view prefix = "ckpt") {
  const auto info = store.open_latest();
  if (!info.has_value()) return std::nullopt;
  auto manager = pmem::Manager::open(store.directory() + "/" + info->file);
  load_checkpoint(manager, runner, prefix);
  return info;
}

}  // namespace dnnd::core

// Crash-consistent checkpoint directory (generations + CRC manifest).
//
// The per-iteration checkpoints that make crash-stop recovery possible
// (dnnd_checkpoint.hpp) must themselves survive a crash *during* a save —
// otherwise checkpointing converts "lost progress" into "corrupted only
// copy". The store provides that guarantee with a classic
// generation-directory scheme:
//
//   <dir>/gen-<G>.dat      one pmem datastore per checkpoint generation,
//                          written to completion before it is mentioned
//                          anywhere else
//   <dir>/MANIFEST.json    dnnd.checkpoint.v1 — the list of committed
//                          generations (newest last), each with the file's
//                          byte count and CRC-32; published atomically via
//                          write-to-temp + rename(2)
//
// Invariants:
//   * a generation file is immutable once committed;
//   * the manifest only ever references fully written, CRC-stamped files;
//   * rename(2) makes manifest publication atomic, so a crash at any
//     instant leaves either the old manifest or the new one, never a torn
//     mix;
//   * open_latest() re-validates the CRC of the newest generation and
//     walks backwards past torn/bit-flipped/truncated files, so a corrupt
//     newest generation rolls back to the last good one instead of being
//     loaded.
//
// The two newest committed generations are kept (kKeepGenerations);
// older files are pruned at commit time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dnnd::core {

/// One committed checkpoint generation as recorded in the manifest.
struct GenerationInfo {
  std::uint64_t generation = 0;
  std::string file;  ///< filename relative to the store directory
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
  /// NN-Descent iterations completed at the cut this generation captured.
  std::uint64_t iteration = 0;
  bool converged = false;
};

class CheckpointStore {
 public:
  /// Number of committed generations retained; older ones are pruned at
  /// commit. Two generations means a torn newest file always leaves a
  /// CRC-valid predecessor to roll back to.
  static constexpr std::size_t kKeepGenerations = 2;

  /// Opens (creating if needed) the checkpoint directory.
  explicit CheckpointStore(std::string directory);

  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

  /// The generation number a new checkpoint should stage under:
  /// newest committed + 1 (1 for an empty store).
  [[nodiscard]] std::uint64_t next_generation() const;

  /// Absolute path of generation `gen`'s datastore file. The caller writes
  /// the file to completion (e.g. via pmem::Manager) and then commit()s.
  [[nodiscard]] std::string generation_path(std::uint64_t gen) const;

  /// Commits a fully written generation file: stamps its byte count and
  /// CRC-32 into the manifest, publishes the manifest atomically, and
  /// prunes generations beyond kKeepGenerations. Throws std::runtime_error
  /// if the staged file is missing.
  GenerationInfo commit(std::uint64_t gen, std::uint64_t iteration,
                        bool converged);

  /// Newest committed generation whose file still matches its recorded
  /// size and CRC. Torn or corrupted generations are skipped (rolled
  /// back); returns nullopt when no valid generation exists.
  [[nodiscard]] std::optional<GenerationInfo> open_latest() const;

  /// All committed generations (oldest first) as recorded in the manifest;
  /// empty when there is no manifest. No CRC validation.
  [[nodiscard]] std::vector<GenerationInfo> generations() const;

  /// Validates `info`'s file on disk against its recorded size and CRC.
  [[nodiscard]] bool valid(const GenerationInfo& info) const;

 private:
  void write_manifest(const std::vector<GenerationInfo>& gens) const;

  std::string dir_;
};

}  // namespace dnnd::core

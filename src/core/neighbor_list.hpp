// Bounded k-nearest-neighbor list.
//
// Implements the Update() primitive from Algorithm 1: a capacity-K
// max-heap keyed on distance whose root is the current farthest neighbor.
// `update(id, d, flag)` inserts iff the id is absent and d improves on the
// farthest entry, popping the farthest to make room — returning 1/0 so the
// caller can accumulate the convergence counter `c`.
//
// Membership is checked by linear scan: K is small (10–100 in the paper)
// and the entries sit in one cache line run, so a side hash set would cost
// more than it saves.
// Concurrency: a NeighborList itself is not thread-safe. For concurrent
// updates from a rank's thread pool, StripedNeighborLocks (below) maps
// every vertex id onto one of S mutexes; update_locked() takes the owning
// list's stripe lock around a plain update(). Two update streams are
// equivalent iff each list sees its own updates in the same relative
// order — the canonical-merge path in nn_descent partitions the pending
// update stream by stripe (one task per stripe, applied in stream order
// within the task), which preserves exactly that per-list order, so the
// result AND the summed return codes match the serial fold bit-for-bit.
// Under arbitrary interleavings (the property-test hammer) the final
// contents still match the serial fold whenever every id carries one
// fixed distance and distances are distinct: the list converges to the
// K smallest-distance ids regardless of arrival order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace dnnd::core {

/// Fixed set of mutexes striped over vertex ids. Lock i guards every
/// NeighborList whose *owning* vertex id hashes to stripe i, so disjoint
/// stripes can be updated concurrently with no shared state at all.
class StripedNeighborLocks {
 public:
  explicit StripedNeighborLocks(std::size_t stripes = 8)
      : mutexes_(stripes == 0 ? 1 : stripes) {}

  [[nodiscard]] std::size_t stripes() const noexcept {
    return mutexes_.size();
  }
  [[nodiscard]] std::size_t stripe_of(VertexId id) const noexcept {
    return static_cast<std::size_t>(id) % mutexes_.size();
  }
  [[nodiscard]] std::mutex& mutex_of(VertexId id) noexcept {
    return mutexes_[stripe_of(id)];
  }
  [[nodiscard]] std::mutex& mutex_at(std::size_t stripe) noexcept {
    return mutexes_[stripe];
  }

 private:
  std::vector<std::mutex> mutexes_;
};

class NeighborList {
 public:
  NeighborList() = default;
  explicit NeighborList(std::size_t capacity) { heap_.reserve(capacity); capacity_ = capacity; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool full() const noexcept { return heap_.size() == capacity_; }

  /// Distance of the farthest stored neighbor; +inf while not full, so any
  /// candidate is accepted during warm-up.
  [[nodiscard]] Dist furthest_distance() const noexcept {
    return full() ? heap_.front().distance : kInfiniteDistance;
  }

  [[nodiscard]] bool contains(VertexId id) const noexcept {
    return std::any_of(heap_.begin(), heap_.end(),
                       [id](const Neighbor& n) { return n.id == id; });
  }

  /// Algorithm 1's Update(). Returns 1 if the neighbor was inserted.
  int update(VertexId id, Dist distance, bool is_new) {
    if (distance >= furthest_distance()) return 0;
    if (contains(id)) return 0;
    if (full()) pop_farthest();
    push(Neighbor{id, distance, is_new});
    return 1;
  }

  /// update() under this list's stripe lock: the concurrent entry point
  /// for pool workers. `self` is the vertex id that owns this list (the
  /// striping key — callers must pass the same id for the same list).
  int update_locked(StripedNeighborLocks& locks, VertexId self, VertexId id,
                    Dist distance, bool is_new) {
    const std::lock_guard<std::mutex> lock(locks.mutex_of(self));
    return update(id, distance, is_new);
  }

  /// Entries in heap order (not sorted). Mutable access is exposed for the
  /// sampling step, which flips is_new flags in place.
  [[nodiscard]] std::span<const Neighbor> entries() const noexcept {
    return heap_;
  }
  [[nodiscard]] std::span<Neighbor> entries() noexcept { return heap_; }

  /// Entries sorted ascending by distance (closest first): the final
  /// output order of a k-NNG row.
  [[nodiscard]] std::vector<Neighbor> sorted() const {
    std::vector<Neighbor> out(heap_.begin(), heap_.end());
    std::sort(out.begin(), out.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance < b.distance ||
                       (a.distance == b.distance && a.id < b.id);
              });
    return out;
  }

 private:
  void push(const Neighbor& n) {
    heap_.push_back(n);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].distance >= heap_[i].distance) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void pop_farthest() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      std::size_t largest = i;
      if (l < n && heap_[l].distance > heap_[largest].distance) largest = l;
      if (r < n && heap_[r].distance > heap_[largest].distance) largest = r;
      if (largest == i) break;
      std::swap(heap_[i], heap_[largest]);
      i = largest;
    }
  }

  std::vector<Neighbor> heap_;
  std::size_t capacity_ = 0;
};

}  // namespace dnnd::core

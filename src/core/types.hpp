// Fundamental types shared across the DNND core.
#pragma once

#include <cstdint>
#include <limits>

namespace dnnd::core {

/// Global point/vertex id. The paper stores ids as uint32 ("We also used
/// uint32 to represent point IDs", §5.3), which bounds datasets at ~4.3 B
/// points — enough for the billion-scale evaluation.
using VertexId = std::uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Distances are float32: both evaluation datasets use float/uint8
/// features and float accumulation matches Hnswlib/PyNNDescent practice.
using Dist = float;

inline constexpr Dist kInfiniteDistance = std::numeric_limits<Dist>::infinity();

/// One entry of a k-NN list: Algorithm 1 stores (id, distance, new-flag)
/// triples; the flag drives old/new sampling.
struct Neighbor {
  VertexId id = kInvalidVertex;
  Dist distance = kInfiniteDistance;
  bool is_new = true;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace dnnd::core

// k-NN graph: the output artifact of NN-Descent / DNND.
//
// Vertices carry global ids 0..N-1; each row is a distance-sorted neighbor
// array. Rows are independent vectors (not fixed-K) because the §4.5
// optimization (reverse-edge merge + prune to k·m) produces variable
// degrees.
//
// The paper stresses that NN-Descent's output is "a simple graph data
// structure where each vertex has k nearest neighbors" — this class is
// that structure, shared by the serial reference, the distributed engine's
// gather step, and the query program.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"

namespace dnnd::core {

class KnnGraph {
 public:
  KnnGraph() = default;
  explicit KnnGraph(std::size_t num_vertices) : rows_(num_vertices) {}

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return rows_.size();
  }

  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId v) const {
    return rows_.at(v);
  }

  /// Replaces v's row; enforces ascending distance order, the class
  /// invariant every consumer (query engine, recall eval) relies on.
  void set_neighbors(VertexId v, std::vector<Neighbor> sorted_neighbors) {
    if (!std::is_sorted(sorted_neighbors.begin(), sorted_neighbors.end(),
                        [](const Neighbor& a, const Neighbor& b) {
                          return a.distance < b.distance;
                        })) {
      throw std::invalid_argument("KnnGraph: row not sorted by distance");
    }
    rows_.at(v) = std::move(sorted_neighbors);
  }

  /// Total directed edges.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    std::size_t n = 0;
    for (const auto& row : rows_) n += row.size();
    return n;
  }

  [[nodiscard]] std::size_t max_degree() const noexcept {
    std::size_t d = 0;
    for (const auto& row : rows_) d = std::max(d, row.size());
    return d;
  }

  /// §4.5 graph optimization, shared-memory version (the distributed
  /// engine has its own message-based implementation): add each edge's
  /// reverse, deduplicate, keep at most `max_degree` closest per vertex.
  void merge_reverse_edges(std::size_t max_degree);

  friend bool operator==(const KnnGraph&, const KnnGraph&) = default;

 private:
  std::vector<std::vector<Neighbor>> rows_;
};

inline void KnnGraph::merge_reverse_edges(std::size_t max_degree) {
  std::vector<std::vector<Neighbor>> reverse(rows_.size());
  for (VertexId v = 0; v < rows_.size(); ++v) {
    for (const Neighbor& n : rows_[v]) {
      reverse.at(n.id).push_back(Neighbor{v, n.distance, n.is_new});
    }
  }
  for (VertexId v = 0; v < rows_.size(); ++v) {
    auto& row = rows_[v];
    row.insert(row.end(), reverse[v].begin(), reverse[v].end());
    std::sort(row.begin(), row.end(), [](const Neighbor& a, const Neighbor& b) {
      return a.distance < b.distance ||
             (a.distance == b.distance && a.id < b.id);
    });
    row.erase(std::unique(row.begin(), row.end(),
                          [](const Neighbor& a, const Neighbor& b) {
                            return a.id == b.id;
                          }),
              row.end());
    if (row.size() > max_degree) row.resize(max_degree);
    row.shrink_to_fit();
  }
}

}  // namespace dnnd::core

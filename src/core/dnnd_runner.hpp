// DnndRunner: front-end that sequences DNND's distributed phases.
//
// Owns one DnndEngine per simulated rank and drives the build loop:
//
//   distribute → init (batched) → [ sample/reverse → merge →
//   neighbor checks (batched) → convergence test ]* → optimize → gather
//
// Barriers between phases are Environment::execute_phase quiescence
// points; the §4.4 batching shows up as the inner chunk loops that
// re-enter a phase until every rank reports its cursor exhausted.
//
// Besides wall time, the runner accumulates a *simulated parallel time*:
// for every barrier-delimited superstep it takes the maximum per-rank work
// delta (distance evaluations weighted by feature length + bytes sent
// weighted by a configurable cost). On a single-core host this is the
// quantity that scales the way the paper's Figure 3 does — see DESIGN.md
// §2 and EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/environment.hpp"
#include "core/dnnd_engine.hpp"
#include "core/partition.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace dnnd::core {

/// Cost model for simulated parallel time (arbitrary units; only ratios
/// across rank counts matter for the scaling study).
struct WorkModel {
  double per_feature_element = 1.0;  ///< cost of one element in a θ() eval
  double per_sent_byte = 0.25;       ///< network cost per serialized byte
};

/// Cost of one named phase accumulated across a run (§7: profiling).
struct PhaseCost {
  double simulated_parallel_units = 0.0;
  double wall_seconds = 0.0;
  std::size_t barriers = 0;  ///< quiescence points attributed to the phase
};

struct DnndBuildStats {
  std::size_t iterations = 0;
  std::vector<std::uint64_t> updates_per_iteration;
  std::uint64_t total_updates = 0;
  std::uint64_t distance_evals = 0;
  double wall_seconds = 0.0;
  double simulated_parallel_units = 0.0;
  double simulated_serial_units = 0.0;  ///< sum instead of max (sanity ref)
};

template <typename T, typename DistanceFn>
class DnndRunner {
 public:
  /// `partition` defaults to the paper's hash scheme; pass
  /// Partition::even_ranges + an RP-reordered dataset for locality-aware
  /// placement (core/partition.hpp).
  DnndRunner(comm::Environment& env, DnndConfig config, DistanceFn distance,
             WorkModel work_model = {},
             std::optional<Partition> partition = std::nullopt)
      : env_(&env),
        config_(config),
        work_model_(work_model),
        partition_(partition.has_value() ? std::move(*partition)
                                         : Partition::hash(env.num_ranks())) {
    if (partition_.num_ranks() != env.num_ranks()) {
      throw std::invalid_argument("DnndRunner: partition rank count differs");
    }
    engines_.reserve(static_cast<std::size_t>(env.num_ranks()));
    collectives_.reserve(static_cast<std::size_t>(env.num_ranks()));
    // Registration order is part of the wire protocol: collectives first,
    // then the engine, identically on every rank.
    for (int r = 0; r < env.num_ranks(); ++r) {
      collectives_.push_back(std::make_unique<comm::Collectives>(env.comm(r)));
      engines_.push_back(std::make_unique<DnndEngine<T, DistanceFn>>(
          env.comm(r), config_, distance, partition_));
    }
    // Global (not per-rank) quantities are recorded on rank 0 only, so
    // the cross-rank merge does not multiply them by the rank count.
    c_iterations_ = env.telemetry(0).counter("engine.iterations");
    h_updates_per_iter_ =
        env.telemetry(0).histogram("engine.updates_per_iteration");
  }

  /// Hash-partitions a dataset with dense ids 0..N-1 onto the ranks.
  /// (On a real cluster this is parallel file ingestion + all-to-all; the
  /// partitioning function is the same.)
  void distribute(const FeatureStore<T>& dataset) {
    const std::size_t n = dataset.size();
    for (std::size_t i = 0; i < n; ++i) {
      const VertexId id = dataset.id_at(i);
      const int owner = partition_.owner(id);
      engines_[static_cast<std::size_t>(owner)]->add_local_point(id,
                                                                 dataset.row(i));
    }
    for (auto& engine : engines_) engine->set_global_count(n);
    global_n_ = n;
    max_id_bound_ = 0;
    for (std::size_t i = 0; i < n; ++i) {
      max_id_bound_ =
          std::max<std::size_t>(max_id_bound_, dataset.id_at(i) + 1);
    }
    // build()'s random initialization samples ids uniformly in [0, N), so
    // the initial dataset must have dense ids. (Dynamic add/remove after
    // the build may make the id space sparse; that path samples by rank
    // weight instead.)
    if (max_id_bound_ != n) {
      throw std::invalid_argument(
          "DnndRunner::distribute: initial dataset ids must be dense 0..N-1");
    }
  }

  /// Like distribute(), but through the transport: rank r "reads" the
  /// r-th contiguous slice of the dataset (standing in for a parallel
  /// file read) and routes each point to its owner with ingest messages —
  /// the all-to-all exchange pattern of real distributed loading. The
  /// resulting placement is identical to distribute().
  void distribute_via_exchange(const FeatureStore<T>& dataset) {
    const std::size_t n = dataset.size();
    const auto ranks = static_cast<std::size_t>(env_->num_ranks());
    env_->execute_phase([&](int r) {
      const std::size_t begin = n * static_cast<std::size_t>(r) / ranks;
      const std::size_t end = n * static_cast<std::size_t>(r + 1) / ranks;
      for (std::size_t i = begin; i < end; ++i) {
        engines_[at(r)]->ingest(dataset.id_at(i), dataset.row(i));
      }
    });
    for (auto& engine : engines_) engine->set_global_count(n);
    global_n_ = n;
    max_id_bound_ = 0;
    for (std::size_t i = 0; i < n; ++i) {
      max_id_bound_ =
          std::max<std::size_t>(max_id_bound_, dataset.id_at(i) + 1);
    }
    if (max_id_bound_ != n) {
      throw std::invalid_argument(
          "DnndRunner::distribute_via_exchange: ids must be dense 0..N-1");
    }
  }

  /// Runs NN-Descent to convergence (Algorithm 1 on top of §4's phases).
  DnndBuildStats build() {
    if (global_n_ == 0) throw std::logic_error("DnndRunner: distribute() first");
    DnndBuildStats stats;
    util::Timer timer;
    const std::uint64_t quota = per_rank_quota();

    timed_phase(stats, "init", [&](int r) { engines_[at(r)]->start_init(); });
    run_batched(stats, "init", [&](int r) {
      return engines_[at(r)]->emit_init_chunk(quota);
    });
    // Initialization inserts count toward warm-up, not convergence.
    for (auto& engine : engines_) engine->take_update_count();

    run_descent_loop(stats, config_.max_iterations);

    stats.wall_seconds = timer.elapsed_s();
    stats.distance_evals = total_distance_evals();
    last_build_stats_ = stats;
    return stats;
  }

  // ---- dynamic updates (paper §7 future work) -----------------------------

  /// Inserts new points after a build. Their ids may be arbitrary (not
  /// already present); neighbor lists are seeded from k random existing
  /// points and improved by the next refine() call.
  void add_points(const FeatureStore<T>& new_points) {
    DnndBuildStats scratch;
    for (std::size_t i = 0; i < new_points.size(); ++i) {
      const VertexId id = new_points.id_at(i);
      const int owner = partition_.owner(id);
      engines_[at(owner)]->add_pending_point(id, new_points.row(i));
      max_id_bound_ = std::max<std::size_t>(max_id_bound_, id + 1);
    }
    refresh_counts();
    const std::uint64_t quota = per_rank_quota();
    run_batched(scratch, "mutate", [&](int r) {
      return engines_[at(r)]->emit_pending_init_chunk(quota);
    });
    for (auto& engine : engines_) engine->take_update_count();
  }

  /// Deletes points. Every rank drops its local points and then repairs
  /// dangling references; affected rows are re-flagged for exploration so
  /// the next refine() backfills them.
  void remove_points(std::span<const VertexId> ids) {
    std::vector<VertexId> sorted(ids.begin(), ids.end());
    std::sort(sorted.begin(), sorted.end());
    DnndBuildStats scratch;
    timed_phase(scratch, "mutate", [&](int r) {
      std::vector<VertexId> mine;
      for (const VertexId id : sorted) {
        if (partition_.owner(id) == r) mine.push_back(id);
      }
      engines_[at(r)]->remove_local_points(mine);
    });
    timed_phase(scratch, "mutate", [&](int r) {
      engines_[at(r)]->repair_after_removal(sorted);
    });
    refresh_counts();
  }

  /// Runs NN-Descent iterations over the current (mutated) shards until
  /// convergence — the paper's "short graph refinement phase". Returns
  /// iteration statistics like build().
  DnndBuildStats refine(std::size_t max_iterations = 0) {
    DnndBuildStats stats;
    util::Timer timer;
    run_descent_loop(
        stats, max_iterations > 0 ? max_iterations : config_.max_iterations);
    stats.wall_seconds = timer.elapsed_s();
    stats.distance_evals = total_distance_evals();
    optimized_ = false;  // rows changed; a previous optimize() is stale
    last_build_stats_ = stats;
    return stats;
  }

  /// §4.5 graph optimization (reverse-edge merge + k·m prune).
  void optimize() {
    DnndBuildStats scratch;
    timed_phase(scratch, "optimize",
                [&](int r) { engines_[at(r)]->emit_reverse_edges(); });
    timed_phase(scratch, "optimize",
                [&](int r) { engines_[at(r)]->finalize_optimization(); });
    last_build_stats_.simulated_parallel_units +=
        scratch.simulated_parallel_units;
    last_build_stats_.simulated_serial_units += scratch.simulated_serial_units;
    optimized_ = true;
  }

  /// Merges all shards into a dense global graph (the artifact the
  /// shared-memory query program consumes). Rows of deleted vertices are
  /// empty; the id space is [0, max id ever assigned).
  [[nodiscard]] KnnGraph gather() const {
    KnnGraph graph(max_id_bound_);
    for (const auto& engine : engines_) {
      if (optimized_) {
        for (const auto& [v, row] : engine->optimized_rows()) {
          graph.set_neighbors(v, row);
        }
      } else {
        for (auto& [v, row] : engine->shard_rows()) {
          graph.set_neighbors(v, std::move(row));
        }
      }
    }
    return graph;
  }

  [[nodiscard]] DnndEngine<T, DistanceFn>& engine(int rank) {
    return *engines_[at(rank)];
  }
  [[nodiscard]] std::size_t global_count() const noexcept { return global_n_; }
  [[nodiscard]] const Partition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] std::size_t id_bound() const noexcept { return max_id_bound_; }

  /// Restores bookkeeping after loading shard state from a checkpoint
  /// (dnnd_checkpoint.hpp); recomputes live counts and rank weights.
  void adopt_loaded_shards(std::size_t id_bound) {
    max_id_bound_ = id_bound;
    refresh_counts();
  }

  // ---- crash-stop fault tolerance (checkpoint / resume) -------------------

  /// Arms per-iteration checkpointing: `hook(completed_iterations,
  /// converged)` runs at the iteration barrier every `every` completed
  /// iterations, plus once at the final iteration regardless of alignment.
  /// `every == 0` disarms (zero overhead: one integer compare per
  /// iteration). The hook must only *read* runner/engine state — it runs
  /// at a quiescent cut and must not disturb it.
  void set_checkpoint_hook(
      std::size_t every,
      std::function<void(std::size_t, bool)> hook = {}) {
    checkpoint_every_ = every;
    checkpoint_hook_ = std::move(hook);
  }

  /// Restores iteration bookkeeping saved by a checkpoint. Call after
  /// load_checkpoint and before resume_build.
  void restore_progress(std::size_t completed_iterations,
                        std::vector<std::uint64_t> updates_history,
                        bool converged) {
    completed_iterations_ = completed_iterations;
    updates_history_ = std::move(updates_history);
    converged_ = converged;
  }

  /// Continues an interrupted build from restored checkpoint state: runs
  /// the remaining NN-Descent iterations (none if the checkpoint was taken
  /// at convergence). With engine rows + RNG streams restored from an
  /// iteration-boundary cut, the resumed build is bit-identical to the
  /// uninterrupted one.
  DnndBuildStats resume_build() {
    if (global_n_ == 0) {
      throw std::logic_error("DnndRunner: load a checkpoint first");
    }
    DnndBuildStats stats;
    util::Timer timer;
    if (!converged_ && completed_iterations_ < config_.max_iterations) {
      run_descent_loop(stats, config_.max_iterations - completed_iterations_);
    }
    stats.wall_seconds = timer.elapsed_s();
    stats.distance_evals = total_distance_evals();
    last_build_stats_ = stats;
    return stats;
  }

  [[nodiscard]] std::size_t completed_iterations() const noexcept {
    return completed_iterations_;
  }
  [[nodiscard]] bool converged() const noexcept { return converged_; }
  /// Per-iteration global update counts since construction (across
  /// build + refine calls); checkpointed so resumed stats stay exact.
  [[nodiscard]] const std::vector<std::uint64_t>& updates_history()
      const noexcept {
    return updates_history_;
  }
  [[nodiscard]] comm::Environment& environment() noexcept { return *env_; }
  [[nodiscard]] const DnndConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DnndBuildStats& last_build_stats() const noexcept {
    return last_build_stats_;
  }

  /// Accumulated per-phase costs over this runner's lifetime (§7
  /// profiling view: where the supersteps spend their work).
  [[nodiscard]] const std::map<std::string, PhaseCost>& phase_profile()
      const noexcept {
    return phase_profile_;
  }

 private:
  static std::size_t at(int r) { return static_cast<std::size_t>(r); }

  /// Core Algorithm-1 iteration loop, shared by build() and refine().
  void run_descent_loop(DnndBuildStats& stats, std::size_t max_iterations) {
    const std::uint64_t quota = per_rank_quota();
    const auto threshold = static_cast<std::uint64_t>(
        config_.delta * static_cast<double>(config_.k) *
        static_cast<double>(global_n_));
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
      ++stats.iterations;
      timed_phase(stats, "sample", [&](int r) {
        engines_[at(r)]->sample_and_emit_reverse();
      });
      timed_phase(stats, "merge", [&](int r) {
        engines_[at(r)]->merge_reverse_and_prepare_checks();
      });
      run_batched(stats, "checks", [&](int r) {
        return engines_[at(r)]->emit_check_chunk(quota);
      });

      // Allreduce of the convergence counter c (Alg. 1 line 23) through
      // the transport, as an MPI implementation would.
      timed_phase(stats, "allreduce", [&](int r) {
        collectives_[at(r)]->contribute_sum(
            engines_[at(r)]->take_update_count());
      });
      const std::uint64_t c = collectives_.front()->sum();
      stats.updates_per_iteration.push_back(c);
      stats.total_updates += c;
      ++completed_iterations_;
      updates_history_.push_back(c);
      env_->telemetry(0).add(c_iterations_);
      env_->telemetry(0).record(h_updates_per_iter_, c);
      // One time-series snapshot per NN-Descent iteration: the per-rank
      // counter deltas between snapshots are what the stats tool plots.
      env_->sample_timeseries("iteration");
      const bool converged_now = c < threshold || c == 0;
      if (converged_now) converged_ = true;
      const bool stop = converged_now || iter + 1 == max_iterations;
      // The per-iteration barrier just completed is a consistent cut: the
      // transport is quiescent, update counters were consumed by the
      // allreduce, and all per-iteration cursors are reset. Checkpointing
      // here (and on the final iteration, so a resume of a finished build
      // is a no-op) is what makes exact resume possible.
      if (checkpoint_every_ != 0 && checkpoint_hook_ &&
          (completed_iterations_ % checkpoint_every_ == 0 || stop)) {
        checkpoint_hook_(completed_iterations_, converged_);
      }
      if (converged_now) break;
    }
  }

  [[nodiscard]] std::uint64_t total_distance_evals() const {
    std::uint64_t total = 0;
    for (const auto& engine : engines_) total += engine->distance_evals();
    return total;
  }

  /// Re-derives global_n_ (live points) and per-rank weights after a
  /// mutation: one allgather of local counts, then every rank derives the
  /// total and its sampling weights from the gathered vector.
  void refresh_counts() {
    env_->execute_phase([&](int r) {
      collectives_[at(r)]->contribute_gather(
          engines_[at(r)]->local_point_count());
    });
    env_->execute_phase([&](int r) {
      const auto& counts = collectives_[at(r)]->gathered();
      std::uint64_t live = 0;
      for (const auto count : counts) live += count;
      engines_[at(r)]->set_global_count(live);
      engines_[at(r)]->set_rank_weights(counts);
    });
    global_n_ = 0;
    for (const auto count : collectives_.front()->gathered()) {
      global_n_ += count;
    }
  }

  [[nodiscard]] std::uint64_t per_rank_quota() const {
    const auto ranks = static_cast<std::uint64_t>(env_->num_ranks());
    return std::max<std::uint64_t>(1, config_.batch_size / ranks);
  }

  /// Work consumed so far by rank r under the cost model.
  [[nodiscard]] double work_of(int r) const {
    const auto& engine = *engines_[at(r)];
    const auto& stats = env_->comm(r).stats();
    double bytes = 0;
    for (const auto& h : stats.handlers()) {
      bytes += static_cast<double>(h.remote_bytes);
    }
    const double dim =
        static_cast<double>(std::max<std::size_t>(1, engine.local_points().dim()));
    return static_cast<double>(engine.distance_evals()) * dim *
               work_model_.per_feature_element +
           bytes * work_model_.per_sent_byte;
  }

  /// Runs one superstep and charges max-over-ranks work to the simulated
  /// parallel clock (sum-over-ranks to the serial reference clock). The
  /// label attributes the cost to a named phase in phase_profile().
  template <typename Fn>
  void timed_phase(DnndBuildStats& stats, const char* label, Fn&& fn) {
    std::vector<double> before(static_cast<std::size_t>(env_->num_ranks()));
    for (int r = 0; r < env_->num_ranks(); ++r) before[at(r)] = work_of(r);
    util::Timer timer;
    try {
      env_->execute_phase([&](int r) {
        // Per-rank, phase-scoped trace span: every barrier-delimited
        // superstep shows up in trace.json under its phase label.
        const auto span = env_->telemetry(r).span(label, "phase");
        fn(r);
      });
    } catch (const comm::TransportError& e) {
      // Retry exhaustion in the fault-injected transport: surface it with
      // the phase it interrupted so callers can tell a failed barrier from
      // an algorithmic error. The build is not resumable past this point
      // within this environment (a recovery harness reopens a checkpoint
      // in a fresh one). RankFailureError deliberately passes through
      // untouched — its rank/epoch context is what the harness needs.
      throw comm::TransportError(
          std::string("DNND phase '") + label + "' aborted: " + e.what(),
          e.source(), e.dest(), e.seq(), e.attempts(), e.epoch());
    }
    const double wall = timer.elapsed_s();
    double max_delta = 0, sum_delta = 0;
    for (int r = 0; r < env_->num_ranks(); ++r) {
      const double delta = work_of(r) - before[at(r)];
      max_delta = std::max(max_delta, delta);
      sum_delta += delta;
    }
    stats.simulated_parallel_units += max_delta;
    stats.simulated_serial_units += sum_delta;
    auto& cost = phase_profile_[label];
    cost.simulated_parallel_units += max_delta;
    cost.wall_seconds += wall;
    ++cost.barriers;
  }

  /// §4.4: re-enters `chunk` (which returns per-rank done flags) with a
  /// quiescence barrier after every round, until all ranks are done.
  template <typename Fn>
  void run_batched(DnndBuildStats& stats, const char* label, Fn&& chunk) {
    while (true) {
      std::vector<std::uint8_t> done(static_cast<std::size_t>(env_->num_ranks()));
      timed_phase(stats, label, [&](int r) {
        done[at(r)] = chunk(r) ? std::uint8_t{1} : std::uint8_t{0};
      });
      bool all = true;
      for (const auto flag : done) all = all && (flag != 0);
      if (all) break;
    }
  }

  comm::Environment* env_;
  DnndConfig config_;
  WorkModel work_model_;
  Partition partition_ = Partition::hash(1);
  std::vector<std::unique_ptr<DnndEngine<T, DistanceFn>>> engines_;
  std::vector<std::unique_ptr<comm::Collectives>> collectives_;
  std::size_t global_n_ = 0;
  std::size_t max_id_bound_ = 0;
  bool optimized_ = false;
  std::size_t completed_iterations_ = 0;
  bool converged_ = false;
  std::vector<std::uint64_t> updates_history_;
  std::size_t checkpoint_every_ = 0;
  std::function<void(std::size_t, bool)> checkpoint_hook_;
  DnndBuildStats last_build_stats_;
  std::map<std::string, PhaseCost> phase_profile_;
  telemetry::MetricId c_iterations_ = 0;
  telemetry::MetricId h_updates_per_iter_ = 0;
};

}  // namespace dnnd::core

// Scalar reference kernels + runtime dispatch state.
//
// This translation unit is compiled with -ffp-contract=off (no FMA
// fusion) and -fno-tree-vectorize / -fno-tree-slp-vectorize, so what you
// read is what executes: a plain-scalar rendering of the canonical 8-lane
// blocked reduction documented in distance_kernels.hpp. The AVX2 variant
// must match it bit-for-bit; the parity test suite holds both to that.
#include "core/distance_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dnnd::core {

namespace {

constexpr std::size_t kLanes = 8;

/// The fixed lane-combining tree shared with the AVX2 horizontal
/// reduction: extract-high+add, movehl+add, shuffle+add.
inline Dist reduce_lanes(const Dist acc[kLanes]) {
  const Dist s0 = acc[0] + acc[4];
  const Dist s1 = acc[1] + acc[5];
  const Dist s2 = acc[2] + acc[6];
  const Dist s3 = acc[3] + acc[7];
  return (s0 + s2) + (s1 + s3);
}

template <typename T>
inline void lanes_squared_l2(const T* a, const T* b, std::size_t dim,
                             Dist acc[kLanes]) {
  const std::size_t full = dim & ~(kLanes - 1);
  for (std::size_t i = 0; i < full; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const Dist d =
          static_cast<Dist>(a[i + l]) - static_cast<Dist>(b[i + l]);
      acc[l] += d * d;
    }
  }
  // Tail elements land in lanes 0..rem-1, exactly like a zero-padded
  // final block (a zero lane adds an exact +0.0).
  for (std::size_t i = full; i < dim; ++i) {
    const Dist d = static_cast<Dist>(a[i]) - static_cast<Dist>(b[i]);
    acc[i - full] += d * d;
  }
}

template <typename T>
inline Dist squared_l2_impl(const T* a, const T* b, std::size_t dim) {
  Dist acc[kLanes] = {};
  lanes_squared_l2(a, b, dim, acc);
  return reduce_lanes(acc);
}

template <typename T>
inline Dist cosine_impl(const T* a, const T* b, std::size_t dim) {
  Dist dot[kLanes] = {}, na[kLanes] = {}, nb[kLanes] = {};
  const std::size_t full = dim & ~(kLanes - 1);
  for (std::size_t i = 0; i < full; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const Dist x = static_cast<Dist>(a[i + l]);
      const Dist y = static_cast<Dist>(b[i + l]);
      dot[l] += x * y;
      na[l] += x * x;
      nb[l] += y * y;
    }
  }
  for (std::size_t i = full; i < dim; ++i) {
    const Dist x = static_cast<Dist>(a[i]);
    const Dist y = static_cast<Dist>(b[i]);
    dot[i - full] += x * y;
    na[i - full] += x * x;
    nb[i - full] += y * y;
  }
  const Dist d = reduce_lanes(dot);
  const Dist sa = reduce_lanes(na);
  const Dist sb = reduce_lanes(nb);
  if (sa == 0 || sb == 0) return Dist{1};
  return Dist{1} - d / std::sqrt(sa * sb);
}

template <typename T>
inline Dist inner_product_impl(const T* a, const T* b, std::size_t dim) {
  Dist acc[kLanes] = {};
  const std::size_t full = dim & ~(kLanes - 1);
  for (std::size_t i = 0; i < full; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] += static_cast<Dist>(a[i + l]) * static_cast<Dist>(b[i + l]);
    }
  }
  for (std::size_t i = full; i < dim; ++i) {
    acc[i - full] += static_cast<Dist>(a[i]) * static_cast<Dist>(b[i]);
  }
  return -reduce_lanes(acc);
}

}  // namespace

namespace detail {

Dist scalar_squared_l2_f32(const float* a, const float* b, std::size_t dim) {
  return squared_l2_impl(a, b, dim);
}
Dist scalar_cosine_f32(const float* a, const float* b, std::size_t dim) {
  return cosine_impl(a, b, dim);
}
Dist scalar_inner_product_f32(const float* a, const float* b,
                              std::size_t dim) {
  return inner_product_impl(a, b, dim);
}
Dist scalar_squared_l2_u8(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t dim) {
  return squared_l2_impl(a, b, dim);
}
Dist scalar_cosine_u8(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t dim) {
  return cosine_impl(a, b, dim);
}
Dist scalar_inner_product_u8(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t dim) {
  return inner_product_impl(a, b, dim);
}

void scalar_batch_squared_l2_f32(const float* q, const float* const* rows,
                                 std::size_t count, std::size_t dim,
                                 Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = squared_l2_impl(q, rows[i], dim);
  }
}
void scalar_batch_cosine_f32(const float* q, const float* const* rows,
                             std::size_t count, std::size_t dim, Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = cosine_impl(q, rows[i], dim);
  }
}
void scalar_batch_inner_product_f32(const float* q, const float* const* rows,
                                    std::size_t count, std::size_t dim,
                                    Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = inner_product_impl(q, rows[i], dim);
  }
}
void scalar_batch_squared_l2_u8(const std::uint8_t* q,
                                const std::uint8_t* const* rows,
                                std::size_t count, std::size_t dim,
                                Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = squared_l2_impl(q, rows[i], dim);
  }
}
void scalar_batch_cosine_u8(const std::uint8_t* q,
                            const std::uint8_t* const* rows,
                            std::size_t count, std::size_t dim, Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = cosine_impl(q, rows[i], dim);
  }
}
void scalar_batch_inner_product_u8(const std::uint8_t* q,
                                   const std::uint8_t* const* rows,
                                   std::size_t count, std::size_t dim,
                                   Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = inner_product_impl(q, rows[i], dim);
  }
}

}  // namespace detail

// ---- dispatch state ------------------------------------------------------

namespace {

/// -1 = unresolved, 0 = scalar, 1 = simd. Relaxed is enough: resolution
/// is idempotent and any racing first calls compute the same value.
std::atomic<int> g_resolved{-1};
std::atomic<KernelDispatch> g_mode{KernelDispatch::kAuto};

bool force_scalar_env() {
  const char* env = std::getenv("DNND_FORCE_SCALAR");
  if (env == nullptr) return false;
  const std::string v(env);
  return !v.empty() && v != "0";
}

int resolve_dispatch() {
  switch (g_mode.load(std::memory_order_relaxed)) {
    case KernelDispatch::kForceScalar: return 0;
    case KernelDispatch::kForceSimd:
      if (!simd_kernels_compiled()) {
        throw std::runtime_error(
            "kernel dispatch: kForceSimd but the AVX2 variant was not "
            "compiled (-DDNND_SIMD=OFF or compiler without -mavx2)");
      }
      if (!simd_runtime_supported()) {
        throw std::runtime_error(
            "kernel dispatch: kForceSimd but this CPU lacks AVX2");
      }
      return 1;
    case KernelDispatch::kAuto: break;
  }
  if (!simd_kernels_compiled() || !simd_runtime_supported()) return 0;
  return force_scalar_env() ? 0 : 1;
}

}  // namespace

bool simd_kernels_compiled() noexcept { return DNND_SIMD_ENABLED != 0; }

bool simd_runtime_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void set_kernel_dispatch(KernelDispatch mode) noexcept {
  g_mode.store(mode, std::memory_order_relaxed);
  g_resolved.store(-1, std::memory_order_relaxed);
}

KernelDispatch kernel_dispatch() noexcept {
  return g_mode.load(std::memory_order_relaxed);
}

namespace detail {

bool simd_active() {
  int v = g_resolved.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_dispatch();
    g_resolved.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

}  // namespace detail

}  // namespace dnnd::core

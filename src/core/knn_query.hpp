// Approximate nearest-neighbor search on a k-NN graph (paper §3.3).
//
// Greedy best-first traversal with two heaps:
//   * frontier (min-heap on distance): vertices to expand next,
//   * result (max-heap of size l): best l found so far.
//
// Termination: frontier empty, or the closest frontier vertex is already
// farther than the admission bound. PyNNDescent's epsilon parameter
// relaxes the bound to (1 + epsilon) · d_max, trading time for recall —
// this is the knob the Figure-2 tradeoff curves sweep.
//
// The paper's query program is shared-memory (C++/OpenMP over the gathered
// graph); batch_search mirrors that with a std::thread worker pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <queue>
#include <span>
#include <thread>
#include <vector>

#include "core/distance_kernels.hpp"
#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/neighbor_list.hpp"
#include "core/rp_tree.hpp"
#include "core/types.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace dnnd::core {

struct SearchParams {
  std::size_t num_neighbors = 10;  ///< l: results per query
  double epsilon = 0.0;            ///< frontier admission slack (§3.3)
  /// Random entry points seeded into the frontier. 0 = use num_neighbors
  /// (the paper's "l points are chosen randomly"). Larger values guard
  /// against poorly connected graphs — the role PyNNDescent's RP-tree
  /// initialization plays in the original implementation.
  std::size_t num_entry_points = 0;
  std::uint64_t seed = 99;         ///< entry-point sampling
};

struct SearchResult {
  std::vector<Neighbor> neighbors;  ///< ascending distance, size <= l
  std::uint64_t distance_evals = 0;
  std::size_t visited = 0;
};

/// Store must expose the FeatureStore read interface (operator[](id),
/// row(i), id_at(i), size(), empty()); FeatureStore<T> and
/// PersistentFeatureView<T> both qualify — the latter queries straight
/// out of a mapped datastore without loading it.
template <typename T, typename DistanceFn, typename Store = FeatureStore<T>>
class GraphSearcher {
 public:
  GraphSearcher(const KnnGraph& graph, const Store& points,
                DistanceFn distance)
      : graph_(&graph), points_(&points), distance_(std::move(distance)) {}

  /// Attaches an RP-forest for entry-point selection (the PyNNDescent
  /// strategy, paper §6): searches seed the frontier from the leaf the
  /// query routes to, topped up with random points to the configured
  /// entry count. The forest must outlive the searcher.
  void set_entry_forest(const RpForest<T>* forest) noexcept {
    forest_ = forest;
  }

  [[nodiscard]] SearchResult search(std::span<const T> query,
                                    const SearchParams& params) const {
    SearchResult result;
    const std::size_t n = graph_->num_vertices();
    if (n == 0 || params.num_neighbors == 0 || points_->empty()) return result;

    util::Xoshiro256 rng(params.seed);
    NeighborList best(params.num_neighbors);

    // Min-heap frontier of (distance, id).
    using Entry = std::pair<Dist, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
    std::vector<bool> visited(n, false);

    const std::size_t entries = std::min(
        params.num_entry_points > 0 ? params.num_entry_points
                                    : params.num_neighbors,
        n);
    if (forest_ != nullptr && !forest_->empty()) {
      for (const VertexId v : forest_->entry_candidates(query)) {
        if (visited[v]) continue;
        visited[v] = true;
        ++result.visited;
        const Dist d = eval(result, query, v);
        best.update(v, d, false);
        frontier.emplace(d, v);
      }
    }
    // Random entries are drawn from the *point store* rather than the id
    // range: after dynamic deletions vertex ids are no longer dense, and
    // only stored points can be evaluated.
    const std::size_t live = points_->size();
    std::size_t attempts = 0;
    while (result.visited < entries && attempts < 4 * entries + 16) {
      ++attempts;
      const VertexId v = points_->id_at(rng.uniform_below(live));
      if (v >= n || visited[v]) continue;
      visited[v] = true;
      ++result.visited;
      const Dist d = eval(result, query, v);
      best.update(v, d, false);
      frontier.emplace(d, v);
    }

    const double slack = 1.0 + params.epsilon;
    if constexpr (BatchDistance<DistanceFn, T>) {
      // Batch-capable functor: gather the popped vertex's unvisited
      // neighbors, evaluate them through the one-query-vs-many kernel,
      // then admit in edge order. The admission bound is re-read per
      // candidate exactly as in the scalar loop below, so both paths
      // expand the same vertices in the same order.
      std::vector<VertexId> batch;
      std::vector<const T*> rows;
      std::vector<Dist> dists;
      while (!frontier.empty()) {
        const auto [d, v] = frontier.top();
        frontier.pop();
        // d_max is +inf until `best` fills, so early expansion is unbounded.
        const Dist d_max = best.furthest_distance();
        if (static_cast<double>(d) >
            slack * static_cast<double>(d_max)) {
          break;
        }
        batch.clear();
        rows.clear();
        for (const Neighbor& edge : graph_->neighbors(v)) {
          const VertexId w = edge.id;
          if (visited[w]) continue;
          visited[w] = true;
          ++result.visited;
          batch.push_back(w);
          rows.push_back((*points_)[w].data());
        }
        if (batch.empty()) continue;
        dists.resize(batch.size());
        result.distance_evals += batch.size();
        distance_.batch(query.data(), rows.data(), batch.size(),
                        query.size(), dists.data());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const Dist dw = dists[i];
          const Dist bound = best.furthest_distance();
          if (static_cast<double>(dw) < slack * static_cast<double>(bound)) {
            frontier.emplace(dw, batch[i]);
            best.update(batch[i], dw, false);
          }
        }
      }
    } else {
      while (!frontier.empty()) {
        const auto [d, v] = frontier.top();
        frontier.pop();
        // d_max is +inf until `best` fills, so early expansion is unbounded.
        const Dist d_max = best.furthest_distance();
        if (static_cast<double>(d) >
            slack * static_cast<double>(d_max)) {
          break;
        }
        for (const Neighbor& edge : graph_->neighbors(v)) {
          const VertexId w = edge.id;
          if (visited[w]) continue;
          visited[w] = true;
          ++result.visited;
          const Dist dw = eval(result, query, w);
          const Dist bound = best.furthest_distance();
          if (static_cast<double>(dw) < slack * static_cast<double>(bound)) {
            frontier.emplace(dw, w);
            best.update(w, dw, false);
          }
        }
      }
    }

    result.neighbors = best.sorted();
    return result;
  }

  /// Runs all queries with `num_threads` workers (0 = hardware default).
  template <typename QueryStore = FeatureStore<T>>
  [[nodiscard]] std::vector<SearchResult> batch_search(
      const QueryStore& queries, const SearchParams& params,
      unsigned num_threads = 0) const {
    const std::size_t q = queries.size();
    std::vector<SearchResult> results(q);
    if (q == 0) return results;
    if (num_threads == 0) {
      num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    num_threads = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, q));

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= q) break;
        SearchParams p = params;
        p.seed = util::mix64(params.seed + i);  // decorrelate entry points
        results[i] = search(queries.row(i), p);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    return results;
  }

 private:
  Dist eval(SearchResult& result, std::span<const T> query, VertexId v) const {
    ++result.distance_evals;
    return distance_(query, (*points_)[v]);
  }

  const KnnGraph* graph_;
  const Store* points_;
  DistanceFn distance_;
  const RpForest<T>* forest_ = nullptr;
};

/// Deduction guide: GraphSearcher(graph, store, fn) infers T from the
/// store's value type.
template <typename Store, typename DistanceFn>
GraphSearcher(const KnnGraph&, const Store&, DistanceFn)
    -> GraphSearcher<typename Store::value_type, DistanceFn, Store>;

}  // namespace dnnd::core

// AVX2 kernel variants. Compiled with -mavx2 and -ffp-contract=off (the
// latter matters: GCC will otherwise fuse a _mm256_mul_ps feeding a
// _mm256_add_ps into an FMA when -mfma is in effect, which changes
// rounding and breaks bit-parity with the scalar reference).
//
// Every kernel realizes the canonical reduction from
// distance_kernels.hpp literally:
//   * lane l of the 8-float accumulator holds elements i ≡ l (mod 8);
//   * the tail block is loaded with a mask (floats) or through a
//     zero-filled stack buffer (uint8), so missing lanes contribute an
//     exact +0.0 — identical to the scalar tail and to zero-padded rows;
//   * the horizontal reduction is extract-high+add, movehl+add,
//     shuffle+add, i.e. ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
#include "core/distance_kernels.hpp"

#if DNND_SIMD_ENABLED
#if !defined(__AVX2__)
#error "distance_kernels_avx2.cpp must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include <cstring>

namespace dnnd::core::detail {

namespace {

constexpr std::size_t kLanes = 8;

/// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — the scalar reduce_lanes tree.
inline float reduce256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 s = _mm_add_ps(lo, hi);    // [l0+l4, l1+l5, l2+l6, l3+l7]
  const __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s));  // [s0+s2, s1+s3, ..]
  return _mm_cvtss_f32(
      _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55)));       // t0 + t1
}

/// Mask whose first `rem` (1..7) lanes are set; maskload zeroes the rest.
inline __m256i tail_mask(std::size_t rem) {
  alignas(32) static constexpr std::int32_t kMaskTable[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + kLanes - rem));
}

/// Loads 8 uint8 elements widened to float lanes.
inline __m256 load_u8_block(const std::uint8_t* p) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

/// Loads the final `rem` (1..7) uint8 elements, zero in missing lanes.
inline __m256 load_u8_tail(const std::uint8_t* p, std::size_t rem) {
  std::uint8_t buf[kLanes] = {};
  std::memcpy(buf, p, rem);
  return load_u8_block(buf);
}

struct SquaredL2Op {
  __m256 acc = _mm256_setzero_ps();
  inline void step(__m256 x, __m256 y) {
    const __m256 d = _mm256_sub_ps(x, y);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  inline Dist finish() const { return reduce256(acc); }
};

struct CosineOp {
  __m256 dot = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  inline void step(__m256 x, __m256 y) {
    dot = _mm256_add_ps(dot, _mm256_mul_ps(x, y));
    na = _mm256_add_ps(na, _mm256_mul_ps(x, x));
    nb = _mm256_add_ps(nb, _mm256_mul_ps(y, y));
  }
  inline Dist finish() const {
    const Dist d = reduce256(dot);
    const Dist sa = reduce256(na);
    const Dist sb = reduce256(nb);
    if (sa == 0 || sb == 0) return Dist{1};
    return Dist{1} - d / std::sqrt(sa * sb);
  }
};

struct InnerProductOp {
  __m256 acc = _mm256_setzero_ps();
  inline void step(__m256 x, __m256 y) {
    acc = _mm256_add_ps(acc, _mm256_mul_ps(x, y));
  }
  inline Dist finish() const { return -reduce256(acc); }
};

template <typename Op>
inline Dist run_f32(const float* a, const float* b, std::size_t dim) {
  Op op;
  const std::size_t full = dim & ~(kLanes - 1);
  for (std::size_t i = 0; i < full; i += kLanes) {
    op.step(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
  }
  if (const std::size_t rem = dim - full; rem != 0) {
    const __m256i mask = tail_mask(rem);
    op.step(_mm256_maskload_ps(a + full, mask),
            _mm256_maskload_ps(b + full, mask));
  }
  return op.finish();
}

template <typename Op>
inline Dist run_u8(const std::uint8_t* a, const std::uint8_t* b,
                   std::size_t dim) {
  Op op;
  const std::size_t full = dim & ~(kLanes - 1);
  for (std::size_t i = 0; i < full; i += kLanes) {
    op.step(load_u8_block(a + i), load_u8_block(b + i));
  }
  if (const std::size_t rem = dim - full; rem != 0) {
    op.step(load_u8_tail(a + full, rem), load_u8_tail(b + full, rem));
  }
  return op.finish();
}

}  // namespace

Dist avx2_squared_l2_f32(const float* a, const float* b, std::size_t dim) {
  return run_f32<SquaredL2Op>(a, b, dim);
}
Dist avx2_cosine_f32(const float* a, const float* b, std::size_t dim) {
  return run_f32<CosineOp>(a, b, dim);
}
Dist avx2_inner_product_f32(const float* a, const float* b,
                            std::size_t dim) {
  return run_f32<InnerProductOp>(a, b, dim);
}
Dist avx2_squared_l2_u8(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t dim) {
  return run_u8<SquaredL2Op>(a, b, dim);
}
Dist avx2_cosine_u8(const std::uint8_t* a, const std::uint8_t* b,
                    std::size_t dim) {
  return run_u8<CosineOp>(a, b, dim);
}
Dist avx2_inner_product_u8(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t dim) {
  return run_u8<InnerProductOp>(a, b, dim);
}

void avx2_batch_squared_l2_f32(const float* q, const float* const* rows,
                               std::size_t count, std::size_t dim,
                               Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = run_f32<SquaredL2Op>(q, rows[i], dim);
  }
}
void avx2_batch_cosine_f32(const float* q, const float* const* rows,
                           std::size_t count, std::size_t dim, Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = run_f32<CosineOp>(q, rows[i], dim);
  }
}
void avx2_batch_inner_product_f32(const float* q, const float* const* rows,
                                  std::size_t count, std::size_t dim,
                                  Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = run_f32<InnerProductOp>(q, rows[i], dim);
  }
}
void avx2_batch_squared_l2_u8(const std::uint8_t* q,
                              const std::uint8_t* const* rows,
                              std::size_t count, std::size_t dim, Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = run_u8<SquaredL2Op>(q, rows[i], dim);
  }
}
void avx2_batch_cosine_u8(const std::uint8_t* q,
                          const std::uint8_t* const* rows, std::size_t count,
                          std::size_t dim, Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = run_u8<CosineOp>(q, rows[i], dim);
  }
}
void avx2_batch_inner_product_u8(const std::uint8_t* q,
                                 const std::uint8_t* const* rows,
                                 std::size_t count, std::size_t dim,
                                 Dist* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = run_u8<InnerProductOp>(q, rows[i], dim);
  }
}

}  // namespace dnnd::core::detail

#endif  // DNND_SIMD_ENABLED

// Persistence glue: k-NN graphs and feature stores inside a pmem datastore.
//
// Reproduces the paper's two-executable workflow (§5.1.3): the
// construction program stores the k-NNG and the dataset in the datastore;
// the optimization and query programs reopen it later — possibly in a
// different process at a different mapping address. Hence the CSR layout
// built from pmem::vector (position independent) rather than serialized
// blobs: reopening is O(1), no deserialization pass.
#pragma once

#include <algorithm>
#include <string_view>

#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/types.hpp"
#include "pmem/manager.hpp"
#include "pmem/vector.hpp"

namespace dnnd::core {

/// CSR adjacency in persistent memory. Construct only via
/// Manager::find_or_construct with the datastore's allocator.
struct PersistentGraph {
  explicit PersistentGraph(pmem::allocator<std::byte> alloc)
      : row_offsets(pmem::allocator<std::uint64_t>(alloc.header())),
        edges(pmem::allocator<Neighbor>(alloc.header())) {}

  pmem::vector<std::uint64_t> row_offsets;  ///< num_vertices + 1 entries
  pmem::vector<Neighbor> edges;
};

/// CSR feature storage in persistent memory.
template <typename T>
struct PersistentFeatures {
  explicit PersistentFeatures(pmem::allocator<std::byte> alloc)
      : values(pmem::allocator<T>(alloc.header())),
        offsets(pmem::allocator<std::uint64_t>(alloc.header())),
        ids(pmem::allocator<VertexId>(alloc.header())) {}

  pmem::vector<T> values;
  pmem::vector<std::uint64_t> offsets;
  pmem::vector<VertexId> ids;
};

/// Build provenance stored with an index so a later session (possibly a
/// different executable — §5.1.3) can refuse to search with the wrong
/// metric or mismatched dimensionality. Trivially copyable on purpose.
struct IndexMetadata {
  static constexpr std::size_t kMaxMetricBytes = 32;
  char metric[kMaxMetricBytes] = {};
  std::uint32_t k = 0;
  std::uint32_t dim = 0;
  std::uint64_t num_points = 0;
  std::uint64_t build_seed = 0;

  void set_metric(std::string_view name) {
    const std::size_t n = std::min(name.size(), kMaxMetricBytes - 1);
    std::copy_n(name.begin(), n, metric);
    metric[n] = '\0';
  }
  [[nodiscard]] std::string_view metric_name() const {
    return {metric};
  }
};
static_assert(std::is_trivially_copyable_v<IndexMetadata>);

inline void store_index_metadata(pmem::Manager& manager,
                                 const IndexMetadata& meta,
                                 std::string_view name = "index_meta") {
  auto* stored = manager.find_or_construct<IndexMetadata>(name);
  if (stored == nullptr) throw pmem::ArenaExhausted();
  *stored = meta;
}

/// Loads and returns the named metadata; throws if absent.
inline IndexMetadata load_index_metadata(
    pmem::Manager& manager, std::string_view name = "index_meta") {
  const auto* meta = manager.find<IndexMetadata>(name);
  if (meta == nullptr) {
    throw std::runtime_error("datastore has no index metadata '" +
                             std::string(name) + "'");
  }
  return *meta;
}

/// Validates that an index was built with the expected metric and
/// dimensionality; throws std::runtime_error with a precise message.
inline void validate_index_metadata(const IndexMetadata& meta,
                                    std::string_view expected_metric,
                                    std::size_t expected_dim) {
  if (meta.metric_name() != expected_metric) {
    throw std::runtime_error("index metric mismatch: built with '" +
                             std::string(meta.metric_name()) +
                             "', queried with '" +
                             std::string(expected_metric) + "'");
  }
  if (expected_dim != 0 && meta.dim != expected_dim) {
    throw std::runtime_error(
        "index dimensionality mismatch: built with " +
        std::to_string(meta.dim) + ", queried with " +
        std::to_string(expected_dim));
  }
}

/// Writes (or overwrites the contents of) a named graph in the datastore.
inline void store_graph(pmem::Manager& manager, const KnnGraph& graph,
                        std::string_view name) {
  auto* pg = manager.find_or_construct<PersistentGraph>(
      name, manager.get_allocator<std::byte>());
  if (pg == nullptr) throw pmem::ArenaExhausted();
  pg->row_offsets.clear();
  pg->edges.clear();
  pg->row_offsets.reserve(graph.num_vertices() + 1);
  pg->edges.reserve(graph.num_edges());
  pg->row_offsets.push_back(0);
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    for (const Neighbor& n : graph.neighbors(static_cast<VertexId>(v))) {
      pg->edges.push_back(n);
    }
    pg->row_offsets.push_back(pg->edges.size());
  }
}

/// Loads a named graph; throws std::runtime_error if absent.
inline KnnGraph load_graph(pmem::Manager& manager, std::string_view name) {
  auto* pg = manager.find<PersistentGraph>(name);
  if (pg == nullptr) {
    throw std::runtime_error("datastore has no graph named '" +
                             std::string(name) + "'");
  }
  const std::size_t n = pg->row_offsets.size() - 1;
  KnnGraph graph(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto begin = pg->row_offsets[v];
    const auto end = pg->row_offsets[v + 1];
    std::vector<Neighbor> row(pg->edges.data() + begin,
                              pg->edges.data() + end);
    graph.set_neighbors(static_cast<VertexId>(v), std::move(row));
  }
  return graph;
}

template <typename T>
void store_features(pmem::Manager& manager, const FeatureStore<T>& features,
                    std::string_view name) {
  auto* pf = manager.find_or_construct<PersistentFeatures<T>>(
      name, manager.get_allocator<std::byte>());
  if (pf == nullptr) throw pmem::ArenaExhausted();
  pf->values.clear();
  pf->offsets.clear();
  pf->ids.clear();
  pf->offsets.reserve(features.size() + 1);
  pf->ids.reserve(features.size());
  pf->offsets.push_back(0);
  for (std::size_t i = 0; i < features.size(); ++i) {
    const auto row = features.row(i);
    for (const T& v : row) pf->values.push_back(v);
    pf->offsets.push_back(pf->values.size());
    pf->ids.push_back(features.id_at(i));
  }
}

/// Zero-copy read view over persistent features: serves feature spans
/// straight out of the mapped file, so the query program touches only the
/// pages it actually visits (the out-of-core mode §7 points at via
/// DiskANN). Satisfies the same read interface as FeatureStore, so
/// GraphSearcher works on it directly. Valid while the Manager stays open.
template <typename T>
class PersistentFeatureView {
 public:
  using value_type = T;

  explicit PersistentFeatureView(const PersistentFeatures<T>& features)
      : features_(&features) {
    index_.reserve(features.ids.size());
    for (std::size_t i = 0; i < features.ids.size(); ++i) {
      index_.emplace(features.ids[i], i);
    }
  }

  /// Convenience: resolve the named object inside `manager` first.
  PersistentFeatureView(pmem::Manager& manager, std::string_view name)
      : PersistentFeatureView(*resolve(manager, name)) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return features_->ids.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] bool contains(VertexId id) const {
    return index_.contains(id);
  }

  [[nodiscard]] std::span<const T> operator[](VertexId id) const {
    const auto it = index_.find(id);
    if (it == index_.end()) {
      throw std::out_of_range("PersistentFeatureView: unknown id");
    }
    return row(it->second);
  }

  [[nodiscard]] std::span<const T> row(std::size_t local_index) const {
    const auto begin = features_->offsets[local_index];
    const auto end = features_->offsets[local_index + 1];
    return {features_->values.data() + begin,
            static_cast<std::size_t>(end - begin)};
  }

  [[nodiscard]] VertexId id_at(std::size_t local_index) const {
    return features_->ids[local_index];
  }

  [[nodiscard]] std::size_t dim() const noexcept {
    if (features_->ids.empty()) return 0;
    return static_cast<std::size_t>(features_->offsets[1] -
                                    features_->offsets[0]);
  }

 private:
  static const PersistentFeatures<T>* resolve(pmem::Manager& manager,
                                              std::string_view name) {
    const auto* pf = manager.find<PersistentFeatures<T>>(name);
    if (pf == nullptr) {
      throw std::runtime_error("datastore has no features named '" +
                               std::string(name) + "'");
    }
    return pf;
  }

  const PersistentFeatures<T>* features_;
  std::unordered_map<VertexId, std::size_t> index_;
};

template <typename T>
FeatureStore<T> load_features(pmem::Manager& manager, std::string_view name) {
  auto* pf = manager.find<PersistentFeatures<T>>(name);
  if (pf == nullptr) {
    throw std::runtime_error("datastore has no features named '" +
                             std::string(name) + "'");
  }
  FeatureStore<T> store;
  const std::size_t n = pf->ids.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto begin = pf->offsets[i];
    const auto end = pf->offsets[i + 1];
    store.add(pf->ids[i],
              std::span<const T>(pf->values.data() + begin, end - begin));
  }
  return store;
}

}  // namespace dnnd::core

// Vertex-to-rank partitioning.
//
// DNND assigns each vertex (feature + neighbor list) to a rank "based on
// the hash values of the vertex IDs" (paper §4) — great load balance,
// zero locality: a vertex's neighbors land on random ranks, so nearly all
// neighbor checks go off-node. This module makes the mapping pluggable:
//
//   Partition::hash(R)             the paper's scheme (default everywhere)
//   Partition::range(bounds)       contiguous id ranges per rank; paired
//                                  with an RP-tree reordering of the
//                                  dataset it becomes locality-aware
//                                  (Pyramid-style): spatial neighbors get
//                                  nearby ids, nearby ids share a rank
//
// Every rank holds the same Partition (O(R) state), so ownership is
// computable anywhere without communication — the invariant the whole
// message protocol relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/feature_store.hpp"
#include "core/rp_tree.hpp"
#include "core/types.hpp"
#include "util/hash.hpp"

namespace dnnd::core {

class Partition {
 public:
  /// Paper default: owner = mix(id) mod R.
  static Partition hash(int num_ranks) {
    if (num_ranks < 1) throw std::invalid_argument("Partition: ranks < 1");
    Partition p;
    p.num_ranks_ = num_ranks;
    return p;
  }

  /// Range scheme: rank r owns ids in [bounds[r-1], bounds[r]) with an
  /// implicit bounds[-1] = 0; ids >= bounds.back() belong to the last
  /// rank. `upper_bounds` must be non-decreasing, one entry per rank.
  static Partition range(std::vector<VertexId> upper_bounds) {
    if (upper_bounds.empty()) {
      throw std::invalid_argument("Partition: empty bounds");
    }
    if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end())) {
      throw std::invalid_argument("Partition: bounds not sorted");
    }
    Partition p;
    p.num_ranks_ = static_cast<int>(upper_bounds.size());
    p.bounds_ = std::move(upper_bounds);
    return p;
  }

  /// Equal-count ranges over a dense id space [0, n).
  static Partition even_ranges(std::size_t n, int num_ranks) {
    std::vector<VertexId> bounds;
    bounds.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 1; r <= num_ranks; ++r) {
      bounds.push_back(static_cast<VertexId>(
          n * static_cast<std::size_t>(r) /
          static_cast<std::size_t>(num_ranks)));
    }
    return range(std::move(bounds));
  }

  [[nodiscard]] int owner(VertexId id) const noexcept {
    if (bounds_.empty()) return util::owner_rank(id, num_ranks_);
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), id);
    const auto idx = static_cast<int>(it - bounds_.begin());
    return idx < num_ranks_ ? idx : num_ranks_ - 1;
  }

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] bool is_hash() const noexcept { return bounds_.empty(); }

 private:
  Partition() = default;
  int num_ranks_ = 1;
  std::vector<VertexId> bounds_;  ///< empty = hash mode
};

/// Spatial reordering for locality partitioning: returns the ids of
/// `points` permuted by one RP-tree's leaf traversal (points in the same
/// leaf — spatial neighbors — become contiguous).
template <typename T>
std::vector<VertexId> rp_tree_order(const FeatureStore<T>& points,
                                    std::uint64_t seed = 1337) {
  RpTreeParams params;
  params.num_trees = 1;
  params.seed = seed;
  const RpForest<T> forest(points, params);
  return std::vector<VertexId>(forest.leaf_order(0).begin(),
                               forest.leaf_order(0).end());
}

/// Builds a new store with dense ids 0..N-1 assigned in `order`; returns
/// the reordered store plus old-id lookup (new id -> original id).
template <typename T>
std::pair<FeatureStore<T>, std::vector<VertexId>> reorder_dense(
    const FeatureStore<T>& points, const std::vector<VertexId>& order) {
  FeatureStore<T> out;
  std::vector<VertexId> original;
  original.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    out.add(static_cast<VertexId>(i), points[order[i]]);
    original.push_back(order[i]);
  }
  return {std::move(out), std::move(original)};
}

}  // namespace dnnd::core

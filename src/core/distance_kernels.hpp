// Blocked SIMD distance kernels with a pinned reduction order.
//
// `core/distance.hpp` defines *what* each metric computes; this layer
// defines *how* the dense arithmetic metrics (squared-L2, cosine, inner
// product over float / uint8 rows) are evaluated on the hot paths:
// batched one-query-vs-many-candidates kernels whose inner loops are
// 8-lane blocked so the compiler (or the AVX2 intrinsics variant) can
// vectorize them.
//
// Determinism contract
// --------------------
// Every kernel — scalar reference and AVX2 alike — accumulates into the
// SAME eight logical lanes and combines them with the SAME fixed tree:
//
//   lane l accumulates elements i with i mod 8 == l   (tail elements
//   land in lanes 0..rem-1, exactly like a zero-padded final block), and
//
//   reduce(acc) = ((acc0+acc4) + (acc2+acc6)) + ((acc1+acc5) + (acc3+acc7))
//
// which is precisely the lane order an AVX2 horizontal reduction
// (extract-high + add, movehl + add, shuffle + add) produces. Per-lane
// operations are plain IEEE mul/sub/add (no FMA contraction: the kernel
// translation units are compiled with -ffp-contract=off), so the scalar
// and SIMD paths execute the identical rounded operation sequence and
// return bit-identical Dist values. Rows padded with zeros (see
// DenseBlockStore) are covered by the same contract: a zero element
// contributes an exact +0.0 to its lane, which never changes the sum.
//
// Because graph construction consumes only these values, a build is a
// pure function of (dataset, seed, config) regardless of dispatch — the
// chaos/recovery suites' bit-identical guarantees survive the SIMD path,
// and tests/distance_kernel_test.cpp proves equality bit-for-bit.
//
// Dispatch
// --------
// Compile time: -DDNND_SIMD=OFF drops the AVX2 translation unit and pins
// the scalar reference. Run time: the first kernel call resolves once to
// AVX2 iff the TU was compiled, the CPU reports AVX2, and
// DNND_FORCE_SCALAR is unset/0; tests may override with
// set_kernel_dispatch() (kForceScalar / kForceSimd / kAuto).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <type_traits>

#include "core/types.hpp"

namespace dnnd::core {

/// Dispatch override, primarily a test hook; kAuto is the default and
/// re-reads DNND_FORCE_SCALAR on the next kernel call.
enum class KernelDispatch { kAuto, kForceScalar, kForceSimd };

namespace detail {

// ---- scalar reference (distance_kernels_scalar.cpp, -ffp-contract=off,
// -fno-tree-vectorize: an auditable plain-scalar baseline) ---------------
Dist scalar_squared_l2_f32(const float* a, const float* b, std::size_t dim);
Dist scalar_cosine_f32(const float* a, const float* b, std::size_t dim);
Dist scalar_inner_product_f32(const float* a, const float* b,
                              std::size_t dim);
Dist scalar_squared_l2_u8(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t dim);
Dist scalar_cosine_u8(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t dim);
Dist scalar_inner_product_u8(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t dim);

void scalar_batch_squared_l2_f32(const float* q, const float* const* rows,
                                 std::size_t count, std::size_t dim,
                                 Dist* out);
void scalar_batch_cosine_f32(const float* q, const float* const* rows,
                             std::size_t count, std::size_t dim, Dist* out);
void scalar_batch_inner_product_f32(const float* q, const float* const* rows,
                                    std::size_t count, std::size_t dim,
                                    Dist* out);
void scalar_batch_squared_l2_u8(const std::uint8_t* q,
                                const std::uint8_t* const* rows,
                                std::size_t count, std::size_t dim, Dist* out);
void scalar_batch_cosine_u8(const std::uint8_t* q,
                            const std::uint8_t* const* rows, std::size_t count,
                            std::size_t dim, Dist* out);
void scalar_batch_inner_product_u8(const std::uint8_t* q,
                                   const std::uint8_t* const* rows,
                                   std::size_t count, std::size_t dim,
                                   Dist* out);

// ---- dispatch state (distance_kernels_scalar.cpp) ----------------------
/// True when the resolved dispatch is the AVX2 path. Throws
/// std::runtime_error if kForceSimd is set on a build/host without it.
[[nodiscard]] bool simd_active();

#if DNND_SIMD_ENABLED
// ---- AVX2 variants (distance_kernels_avx2.cpp, -mavx2) -----------------
Dist avx2_squared_l2_f32(const float* a, const float* b, std::size_t dim);
Dist avx2_cosine_f32(const float* a, const float* b, std::size_t dim);
Dist avx2_inner_product_f32(const float* a, const float* b, std::size_t dim);
Dist avx2_squared_l2_u8(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t dim);
Dist avx2_cosine_u8(const std::uint8_t* a, const std::uint8_t* b,
                    std::size_t dim);
Dist avx2_inner_product_u8(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t dim);

void avx2_batch_squared_l2_f32(const float* q, const float* const* rows,
                               std::size_t count, std::size_t dim, Dist* out);
void avx2_batch_cosine_f32(const float* q, const float* const* rows,
                           std::size_t count, std::size_t dim, Dist* out);
void avx2_batch_inner_product_f32(const float* q, const float* const* rows,
                                  std::size_t count, std::size_t dim,
                                  Dist* out);
void avx2_batch_squared_l2_u8(const std::uint8_t* q,
                              const std::uint8_t* const* rows,
                              std::size_t count, std::size_t dim, Dist* out);
void avx2_batch_cosine_u8(const std::uint8_t* q,
                          const std::uint8_t* const* rows, std::size_t count,
                          std::size_t dim, Dist* out);
void avx2_batch_inner_product_u8(const std::uint8_t* q,
                                 const std::uint8_t* const* rows,
                                 std::size_t count, std::size_t dim,
                                 Dist* out);
#endif  // DNND_SIMD_ENABLED

}  // namespace detail

/// True when the AVX2 translation unit was compiled in (-DDNND_SIMD=ON
/// and the compiler accepted -mavx2).
[[nodiscard]] bool simd_kernels_compiled() noexcept;

/// True when the running CPU reports AVX2.
[[nodiscard]] bool simd_runtime_supported() noexcept;

/// Overrides the dispatch decision (and invalidates the cached one).
void set_kernel_dispatch(KernelDispatch mode) noexcept;
[[nodiscard]] KernelDispatch kernel_dispatch() noexcept;

/// Resolved dispatch for the next kernel call: true = AVX2.
[[nodiscard]] inline bool simd_kernels_active() { return detail::simd_active(); }

/// Element types the kernel layer accelerates; everything else (sparse
/// Jaccard ids, exotic scalar types) stays on core/distance.hpp.
template <typename T>
inline constexpr bool kIsKernelElement =
    std::is_same_v<T, float> || std::is_same_v<T, std::uint8_t>;

// ---- single-pair kernels (batch of one; same reduction order) ----------

#if DNND_SIMD_ENABLED
#define DNND_KERNEL_DISPATCH(fn, ...) \
  (detail::simd_active() ? detail::avx2_##fn(__VA_ARGS__) \
                         : detail::scalar_##fn(__VA_ARGS__))
#else
#define DNND_KERNEL_DISPATCH(fn, ...) detail::scalar_##fn(__VA_ARGS__)
#endif

template <typename T>
[[nodiscard]] inline Dist k_squared_l2(const T* a, const T* b,
                                       std::size_t dim) {
  static_assert(kIsKernelElement<T>);
  if constexpr (std::is_same_v<T, float>) {
    return DNND_KERNEL_DISPATCH(squared_l2_f32, a, b, dim);
  } else {
    return DNND_KERNEL_DISPATCH(squared_l2_u8, a, b, dim);
  }
}

template <typename T>
[[nodiscard]] inline Dist k_cosine(const T* a, const T* b, std::size_t dim) {
  static_assert(kIsKernelElement<T>);
  if constexpr (std::is_same_v<T, float>) {
    return DNND_KERNEL_DISPATCH(cosine_f32, a, b, dim);
  } else {
    return DNND_KERNEL_DISPATCH(cosine_u8, a, b, dim);
  }
}

template <typename T>
[[nodiscard]] inline Dist k_inner_product(const T* a, const T* b,
                                          std::size_t dim) {
  static_assert(kIsKernelElement<T>);
  if constexpr (std::is_same_v<T, float>) {
    return DNND_KERNEL_DISPATCH(inner_product_f32, a, b, dim);
  } else {
    return DNND_KERNEL_DISPATCH(inner_product_u8, a, b, dim);
  }
}

// ---- batched one-query-vs-many kernels ---------------------------------
// out[i] is bit-identical to the single-pair kernel on (q, rows[i]); the
// batch form exists so callers amortize the query load and dispatch.

template <typename T>
inline void k_batch_squared_l2(const T* q, const T* const* rows,
                               std::size_t count, std::size_t dim,
                               Dist* out) {
  static_assert(kIsKernelElement<T>);
  if constexpr (std::is_same_v<T, float>) {
    DNND_KERNEL_DISPATCH(batch_squared_l2_f32, q, rows, count, dim, out);
  } else {
    DNND_KERNEL_DISPATCH(batch_squared_l2_u8, q, rows, count, dim, out);
  }
}

template <typename T>
inline void k_batch_cosine(const T* q, const T* const* rows,
                           std::size_t count, std::size_t dim, Dist* out) {
  static_assert(kIsKernelElement<T>);
  if constexpr (std::is_same_v<T, float>) {
    DNND_KERNEL_DISPATCH(batch_cosine_f32, q, rows, count, dim, out);
  } else {
    DNND_KERNEL_DISPATCH(batch_cosine_u8, q, rows, count, dim, out);
  }
}

template <typename T>
inline void k_batch_inner_product(const T* q, const T* const* rows,
                                  std::size_t count, std::size_t dim,
                                  Dist* out) {
  static_assert(kIsKernelElement<T>);
  if constexpr (std::is_same_v<T, float>) {
    DNND_KERNEL_DISPATCH(batch_inner_product_f32, q, rows, count, dim, out);
  } else {
    DNND_KERNEL_DISPATCH(batch_inner_product_u8, q, rows, count, dim, out);
  }
}

#undef DNND_KERNEL_DISPATCH

// ---- drop-in DistanceFn functors with a batch entry point --------------
// Hot callers detect the `batch` member via the BatchDistance concept and
// gather candidate rows; anything else falls back to per-pair calls.

template <typename Fn, typename T>
concept BatchDistance =
    requires(const Fn f, const T* q, const T* const* rows, std::size_t n,
             std::size_t dim, Dist* out) {
      { f.batch(q, rows, n, dim, out) };
    };

template <typename T>
struct SquaredL2Kernel {
  Dist operator()(std::span<const T> a, std::span<const T> b) const {
    return k_squared_l2(a.data(), b.data(), a.size());
  }
  void batch(const T* q, const T* const* rows, std::size_t count,
             std::size_t dim, Dist* out) const {
    k_batch_squared_l2(q, rows, count, dim, out);
  }
};

template <typename T>
struct L2Kernel {
  Dist operator()(std::span<const T> a, std::span<const T> b) const {
    return std::sqrt(k_squared_l2(a.data(), b.data(), a.size()));
  }
  void batch(const T* q, const T* const* rows, std::size_t count,
             std::size_t dim, Dist* out) const {
    k_batch_squared_l2(q, rows, count, dim, out);
    // sqrtf is correctly rounded, so applying it after the batch keeps
    // out[i] bit-identical to the single-pair operator().
    for (std::size_t i = 0; i < count; ++i) out[i] = std::sqrt(out[i]);
  }
};

template <typename T>
struct CosineKernel {
  Dist operator()(std::span<const T> a, std::span<const T> b) const {
    return k_cosine(a.data(), b.data(), a.size());
  }
  void batch(const T* q, const T* const* rows, std::size_t count,
             std::size_t dim, Dist* out) const {
    k_batch_cosine(q, rows, count, dim, out);
  }
};

template <typename T>
struct InnerProductKernel {
  Dist operator()(std::span<const T> a, std::span<const T> b) const {
    return k_inner_product(a.data(), b.data(), a.size());
  }
  void batch(const T* q, const T* const* rows, std::size_t count,
             std::size_t dim, Dist* out) const {
    k_batch_inner_product(q, rows, count, dim, out);
  }
};

/// RAII dispatch override for tests: pins a mode, restores on scope exit.
class ScopedKernelDispatch {
 public:
  explicit ScopedKernelDispatch(KernelDispatch mode)
      : previous_(kernel_dispatch()) {
    set_kernel_dispatch(mode);
  }
  ~ScopedKernelDispatch() { set_kernel_dispatch(previous_); }
  ScopedKernelDispatch(const ScopedKernelDispatch&) = delete;
  ScopedKernelDispatch& operator=(const ScopedKernelDispatch&) = delete;

 private:
  KernelDispatch previous_;
};

}  // namespace dnnd::core

// Configuration for distributed NN-Descent.
#pragma once

#include <cstdint>

namespace dnnd::core {

struct DnndConfig {
  // -- Algorithm 1 parameters (paper §5.1.3 defaults) --------------------
  std::size_t k = 10;      ///< neighbors per vertex in the constructed graph
  double rho = 0.8;        ///< sample rate ρ
  double delta = 0.001;    ///< termination threshold δ (stop when c < δ·K·N)
  std::size_t max_iterations = 64;  ///< safety bound

  // -- §4.4 batched communication ----------------------------------------
  /// Global async-request budget between application-level barriers. The
  /// paper uses 2^25–2^29 at billion scale; defaults here suit the
  /// simulator's scale. Each rank gets batch_size / num_ranks per chunk.
  std::uint64_t batch_size = std::uint64_t{1} << 20;

  // -- §4.3 communication-saving techniques (independently togglable for
  //    the ablation bench; the paper evaluates all-on vs all-off) ---------
  /// Master switch: false reproduces the unoptimized Figure-1a pattern
  /// (Type 1 to both endpoints, full feature exchange both ways).
  bool optimized_checks = true;
  /// §4.3.2 redundant neighbor check reduction (skip when already known).
  bool redundant_check_reduction = true;
  /// §4.3.3 pruning of long-distance Type-3 replies via the piggybacked
  /// farthest-neighbor bound on Type-2+ messages.
  bool distance_pruning = true;

  // -- §4.5 graph optimization --------------------------------------------
  /// Neighborhood-size limit factor m: degrees are pruned to k·m after the
  /// reverse-edge merge (paper default 1.5).
  double prune_factor_m = 1.5;

  // -- intra-rank parallelism --------------------------------------------
  /// Worker threads per simulated rank for the hot per-rank loops
  /// (core/thread_pool.hpp). 0 = auto: DNND_THREADS_PER_RANK from the
  /// environment, else 1 (today's serial path, no threads spawned). The
  /// deterministic-reduction design makes the built graph, the
  /// convergence counter, and every metrics counter bit-identical for
  /// any value, so this is purely a throughput knob — it is deliberately
  /// NOT checkpointed, and a run may resume under a different count.
  std::size_t threads_per_rank = 0;

  std::uint64_t seed = 7;
};

}  // namespace dnnd::core

// Crash-stop recovery driver: supervises a checkpointed DNND build.
//
// The failure model (DESIGN.md §2): a rank may die permanently at an
// arbitrary point (mpi::CrashFault, or a real process loss). The layers
// below turn that into a structured comm::RankFailureError — the heartbeat
// detector when a surviving rank times out a silent peer, or the
// Environment's post-barrier liveness check when the crash stranded no
// messages. This harness closes the loop the way an HPC job script would
// (resubmit from the last checkpoint):
//
//   attempt 0:  fresh build, checkpointing every N iterations into a
//               CheckpointStore generation (CRC + atomic manifest)
//   on RankFailureError:  tear the environment down, make a fresh one
//               (all ranks healthy — the simulated equivalent of the
//               scheduler giving the job a replacement node), reopen the
//               newest valid generation, and resume from its iteration
//   no checkpoint yet:  deterministic full restart from scratch
//
// Because checkpoints are iteration-boundary consistent cuts that include
// each engine's RNG stream, the recovered build is bit-identical to an
// uninterrupted one — the recovery chaos test asserts exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/environment.hpp"
#include "core/checkpoint_store.hpp"
#include "core/dnnd_checkpoint.hpp"
#include "core/dnnd_runner.hpp"
#include "util/timer.hpp"

namespace dnnd::core {

struct RecoveryOptions {
  /// Checkpoint every N completed iterations (plus the final one).
  /// 0 disables checkpointing entirely — a failure then degrades to a
  /// full restart, and the build path carries zero checkpoint overhead.
  std::size_t checkpoint_every = 0;
  /// Arena capacity of each generation datastore.
  std::size_t checkpoint_capacity_bytes = 64ull << 20;
  /// Give up (rethrow the failure) after this many failed attempts.
  std::size_t max_attempts = 8;
  /// Resume from an existing store on the *first* attempt too (the CLI's
  /// --resume: pick up a build interrupted in a previous process).
  bool resume = false;
  /// Object-name prefix inside each generation datastore.
  std::string prefix = "ckpt";
};

struct RecoveryReport {
  std::size_t attempts = 1;           ///< total build attempts (>= 1)
  std::size_t failures_detected = 0;  ///< RankFailureErrors absorbed
  std::vector<int> failed_ranks;      ///< one entry per absorbed failure
  /// Iteration each resumed attempt continued from (empty: never resumed).
  std::vector<std::uint64_t> resumed_from;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;   ///< committed generation bytes
  double checkpoint_seconds = 0.0;      ///< wall time spent saving
  DnndBuildStats stats;                 ///< the successful attempt's stats
};

/// The surviving environment/runner pair of the successful attempt, plus
/// what it took to get there. `env` must outlive `runner` (declaration
/// order handles destruction; keep it when moving members out).
template <typename T, typename DistanceFn>
struct RecoveryResult {
  RecoveryReport report;
  std::unique_ptr<comm::Environment> env;
  std::unique_ptr<DnndRunner<T, DistanceFn>> runner;
};

/// Runs a DNND build under crash-stop supervision (see file comment).
///
/// `make_env(attempt)` builds the environment for each attempt — attempt 0
/// may carry a fault plan with scheduled crashes; recovery attempts should
/// return a healthy one. `make_runner(env)` constructs the runner (same
/// config every attempt). `distribute(runner)` loads the dataset; it runs
/// only for from-scratch attempts (a resumed runner gets its shards from
/// the checkpoint).
template <typename T, typename DistanceFn>
RecoveryResult<T, DistanceFn> run_build_with_recovery(
    CheckpointStore& store,
    const std::function<std::unique_ptr<comm::Environment>(std::size_t)>&
        make_env,
    const std::function<std::unique_ptr<DnndRunner<T, DistanceFn>>(
        comm::Environment&)>& make_runner,
    const std::function<void(DnndRunner<T, DistanceFn>&)>& distribute,
    RecoveryOptions options = {}) {
  RecoveryReport report;
  for (std::size_t attempt = 0;; ++attempt) {
    auto env = make_env(attempt);
    auto runner = make_runner(*env);
    if (options.checkpoint_every != 0) {
      DnndRunner<T, DistanceFn>* rp = runner.get();
      runner->set_checkpoint_hook(
          options.checkpoint_every, [&store, &report, &options, rp](
                                        std::size_t, bool) {
            util::Timer timer;
            const GenerationInfo info = write_checkpoint_generation(
                store, *rp, options.checkpoint_capacity_bytes,
                options.prefix);
            ++report.checkpoints_written;
            report.checkpoint_bytes += info.bytes;
            report.checkpoint_seconds += timer.elapsed_s();
          });
    }
    try {
      bool resumed = false;
      if (attempt > 0 || options.resume) {
        if (load_latest_generation(store, *runner, options.prefix)
                .has_value()) {
          resumed = true;
          report.resumed_from.push_back(runner->completed_iterations());
        }
      }
      if (resumed) {
        report.stats = runner->resume_build();
      } else {
        distribute(*runner);
        report.stats = runner->build();
      }
      report.attempts = attempt + 1;
      // Fold harness-lifetime totals into the surviving environment's
      // registry so metrics.json carries them (earlier attempts' sinks
      // died with their environments).
      auto& tel = env->telemetry(0);
      tel.add(tel.counter("ckpt.checkpoints_written"),
              report.checkpoints_written);
      tel.add(tel.counter("ckpt.bytes_written"), report.checkpoint_bytes);
      tel.add(tel.counter("ckpt.write_us"),
              static_cast<std::uint64_t>(report.checkpoint_seconds * 1e6));
      tel.add(tel.counter("recovery.events"), report.failures_detected);
      tel.add(tel.counter("recovery.resumes"), report.resumed_from.size());
      return RecoveryResult<T, DistanceFn>{std::move(report), std::move(env),
                                           std::move(runner)};
    } catch (const comm::RankFailureError& failure) {
      ++report.failures_detected;
      report.failed_ranks.push_back(failure.failed_rank());
      if (attempt + 1 >= options.max_attempts) throw;
      // Loop: fresh environment, resume from the newest valid generation
      // (or restart from scratch if the crash predated every checkpoint).
    }
  }
}

}  // namespace dnnd::core

// Random-projection tree for query entry-point selection.
//
// PyNNDescent "divides data points using a random projection tree and
// selects the search's starting point based on this information" (paper
// §6). Purely random entry points work on well-connected graphs, but on
// clustered data they start the greedy search in the wrong region; an
// RP-tree routes the query to a leaf of nearby points first.
//
// Construction: recursively split on the sign of a projection onto the
// difference of two randomly chosen points (the classic RP-split used by
// Dasgupta & Freund and by PyNNDescent), stopping at `leaf_size`. Query:
// descend to a leaf, seed the frontier with its members. Multiple trees
// (a small forest) union their leaves for robustness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/feature_store.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace dnnd::core {

struct RpTreeParams {
  std::size_t leaf_size = 30;
  std::size_t num_trees = 2;
  std::uint64_t seed = 505;
  std::size_t max_depth = 64;  ///< guards against degenerate splits
};

/// A forest of RP-trees over a dense float-convertible feature store.
/// T must be an arithmetic element type (float, uint8, ...).
template <typename T>
class RpForest {
 public:
  RpForest() = default;

  RpForest(const FeatureStore<T>& points, RpTreeParams params)
      : points_(&points), params_(params) {
    util::Xoshiro256 rng(params.seed);
    trees_.reserve(params.num_trees);
    for (std::size_t t = 0; t < params.num_trees; ++t) {
      trees_.push_back(build_tree(rng));
    }
  }

  [[nodiscard]] bool empty() const noexcept { return trees_.empty(); }

  /// Entry candidates for `query`: union of the leaves the query lands in
  /// across all trees (deduplicated, insertion order preserved).
  [[nodiscard]] std::vector<VertexId> entry_candidates(
      std::span<const T> query) const {
    std::vector<VertexId> out;
    for (const auto& tree : trees_) {
      if (tree.nodes.empty()) continue;  // empty point store
      std::int32_t node = 0;
      while (node >= 0 && !tree.nodes[static_cast<std::size_t>(node)].is_leaf()) {
        const auto& n = tree.nodes[static_cast<std::size_t>(node)];
        node = project(query, n) <= n.threshold ? n.left : n.right;
      }
      if (node < 0) continue;
      const auto& leaf = tree.nodes[static_cast<std::size_t>(node)];
      for (std::uint32_t i = leaf.begin; i < leaf.end; ++i) {
        const VertexId v = tree.order[i];
        if (std::find(out.begin(), out.end(), v) == out.end()) {
          out.push_back(v);
        }
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t num_trees() const noexcept { return trees_.size(); }

  /// The ids permuted by tree `t`'s construction: leaves are contiguous
  /// runs, so this order groups spatial neighbors (used for locality
  /// partitioning, core/partition.hpp).
  [[nodiscard]] std::span<const VertexId> leaf_order(std::size_t t) const {
    return trees_.at(t).order;
  }

 private:
  struct Node {
    // Internal node: projection = points[a] - points[b]; descend left when
    // <q - midpoint, a - b> <= 0, encoded as threshold on <q, a-b>.
    VertexId a = kInvalidVertex;
    VertexId b = kInvalidVertex;
    float threshold = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaf: [begin, end) into `order`.
    std::uint32_t begin = 0;
    std::uint32_t end = 0;

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  struct Tree {
    std::vector<Node> nodes;
    std::vector<VertexId> order;  ///< permutation of local indices
  };

  [[nodiscard]] float project(std::span<const T> q, const Node& n) const {
    const auto pa = (*points_)[n.a];
    const auto pb = (*points_)[n.b];
    float dot = 0;
    const std::size_t dim = q.size();
    for (std::size_t i = 0; i < dim; ++i) {
      dot += static_cast<float>(q[i]) *
             (static_cast<float>(pa[i]) - static_cast<float>(pb[i]));
    }
    return dot;
  }

  Tree build_tree(util::Xoshiro256& rng) {
    Tree tree;
    const std::size_t n = points_->size();
    tree.order.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      tree.order[i] = points_->id_at(i);
    }
    if (n > 0) split(tree, 0, static_cast<std::uint32_t>(n), 0, rng);
    return tree;
  }

  /// Builds the subtree over order[begin, end); returns its node index.
  std::int32_t split(Tree& tree, std::uint32_t begin, std::uint32_t end,
                     std::size_t depth, util::Xoshiro256& rng) {
    const auto index = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.push_back(Node{});
    if (end - begin <= params_.leaf_size || depth >= params_.max_depth) {
      tree.nodes[static_cast<std::size_t>(index)].begin = begin;
      tree.nodes[static_cast<std::size_t>(index)].end = end;
      return index;
    }

    // Pick two distinct anchor points from the range.
    const std::uint32_t span = end - begin;
    const VertexId a = tree.order[begin + rng.uniform_below(span)];
    VertexId b = a;
    for (int tries = 0; tries < 8 && b == a; ++tries) {
      b = tree.order[begin + rng.uniform_below(span)];
    }
    if (b == a) {  // give up: all samples collided
      tree.nodes[static_cast<std::size_t>(index)].begin = begin;
      tree.nodes[static_cast<std::size_t>(index)].end = end;
      return index;
    }

    Node probe;
    probe.a = a;
    probe.b = b;
    // Threshold at the midpoint of the two anchors' projections, so the
    // split passes between them.
    probe.threshold = 0.5f * (project((*points_)[a], probe) +
                              project((*points_)[b], probe));

    const auto mid = std::partition(
        tree.order.begin() + begin, tree.order.begin() + end,
        [&](VertexId v) { return project((*points_)[v], probe) <= probe.threshold; });
    auto cut = static_cast<std::uint32_t>(mid - tree.order.begin());
    if (cut == begin || cut == end) {
      // Degenerate split (duplicates / colinear data): fall back to a
      // balanced cut so depth stays logarithmic.
      cut = begin + span / 2;
    }

    tree.nodes[static_cast<std::size_t>(index)].a = probe.a;
    tree.nodes[static_cast<std::size_t>(index)].b = probe.b;
    tree.nodes[static_cast<std::size_t>(index)].threshold = probe.threshold;
    const std::int32_t left = split(tree, begin, cut, depth + 1, rng);
    const std::int32_t right = split(tree, cut, end, depth + 1, rng);
    tree.nodes[static_cast<std::size_t>(index)].left = left;
    tree.nodes[static_cast<std::size_t>(index)].right = right;
    return index;
  }

  const FeatureStore<T>* points_ = nullptr;
  RpTreeParams params_;
  std::vector<Tree> trees_;
};

}  // namespace dnnd::core

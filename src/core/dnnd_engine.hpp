// DNND engine: the per-rank half of distributed NN-Descent (paper §4).
//
// One engine instance lives on each simulated rank and owns that rank's
// shard of the dataset and of the k-NN graph (points and their neighbor
// lists are co-located by hashing the vertex id, §4). All cross-rank work
// happens through fire-and-forget handlers registered with the
// communicator; the DnndRunner sequences the phases and the barriers.
//
// Message protocol (labels appear in MessageStats and feed Figure 4):
//
//   init_req / init_rep   k-NNG random initialization (§4.1's example:
//                         v ships its feature to owner(u), which computes
//                         θ(v,u) and replies with the distance)
//   rev_sample            reversed old/new matrix entries (§4.2)
//   type1                 neighbor-check request: center v tells owner(u1)
//                         to check the pair (u1, u2)          [optimized]
//   type2plus             u1's feature + farthest-neighbor bound → u2
//                         (§4.3.1 one-sided + §4.3.3 bound)   [optimized]
//   type3                 computed distance returned u2 → u1   [optimized]
//   type1_unopt           check request sent to *both* endpoints
//   type2_unopt           full feature exchange, both directions
//   rev_edge              §4.5 reverse-edge merge for graph optimization
//
// Correctness note on §4.3.3 pruning: the bound piggybacked on a Type-2+
// message is u1's farthest-neighbor distance at send time. Farthest
// distances only decrease, so a reply suppressed because d >= bound could
// never have been accepted by u1 later — pruning is lossless. A property
// test asserts this by comparing optimized and unoptimized runs.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/distance_kernels.hpp"
#include "core/dnnd_config.hpp"
#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/neighbor_list.hpp"
#include "core/partition.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace dnnd::core {

/// DistanceFn: Dist(std::span<const T>, std::span<const T>).
template <typename T, typename DistanceFn>
class DnndEngine {
 public:
  DnndEngine(comm::Communicator& comm, DnndConfig config, DistanceFn distance,
             Partition partition)
      : comm_(&comm),
        config_(config),
        distance_(std::move(distance)),
        partition_(std::move(partition)),
        rng_(util::Xoshiro256(config.seed).fork(
            static_cast<std::uint64_t>(comm.rank()))),
        pool_(resolve_threads(config.threads_per_rank)) {
    c_distance_evals_ = comm_->telemetry().counter("engine.distance_evals");
    c_updates_ = comm_->telemetry().counter("engine.updates");
    // Pool tasks dispatched by this rank's staged phases. The task
    // decomposition is a pure function of the work shape (size + grain),
    // so the count is bit-identical across thread counts; each task
    // increments from its executing thread (the relaxed-atomic counter
    // hot path). Excluded from the metrics-regression diff as a
    // schedule-shape counter — the parity tests assert it directly.
    c_tasks_ = comm_->telemetry().counter("engine.tasks");
    pool_.set_telemetry(&comm_->telemetry(), c_tasks_);
    register_handlers();
  }

  DnndEngine(const DnndEngine&) = delete;
  DnndEngine& operator=(const DnndEngine&) = delete;

  [[nodiscard]] int rank() const noexcept { return comm_->rank(); }

  // ---- setup ------------------------------------------------------------

  /// Adds a point this rank owns. Pre: owner_rank(id, size) == rank().
  void add_local_point(VertexId id, std::span<const T> feature) {
    assert(partition_.owner(id) == comm_->rank());
    points_.add(id, feature);
  }

  /// Global dataset size; must be set on every rank before begin_init().
  /// Vertex ids are assumed dense in [0, n).
  void set_global_count(std::uint64_t n) { global_n_ = n; }

  /// Distributed ingestion: routes a point read by *this* rank to its
  /// owner (possibly itself) through the transport — the all-to-all
  /// exchange a real deployment performs after parallel file reads.
  void ingest(VertexId id, std::span<const T> feature) {
    comm_->async(partition_.owner(id), h_ingest_, id,
                 std::vector<T>(feature.begin(), feature.end()));
  }

  [[nodiscard]] const FeatureStore<T>& local_points() const noexcept {
    return points_;
  }

  // ---- phase: random initialization (Alg. 1 lines 2–5) -------------------

  void start_init() {
    lists_.clear();
    lists_.reserve(points_.size());
    for (const VertexId v : points_.ids()) {
      lists_.emplace(v, NeighborList(config_.k));
    }
    init_cursor_ = 0;
    init_targets_.clear();
  }

  /// Emits up to `quota` init requests; returns true when this rank has
  /// emitted all of its requests (§4.4 batching: the runner interleaves
  /// chunks with barriers).
  bool emit_init_chunk(std::uint64_t quota) {
    std::uint64_t emitted = 0;
    while (init_cursor_ < points_.size()) {
      const VertexId v = points_.id_at(init_cursor_);
      if (init_targets_.empty()) generate_init_targets(v);
      while (init_emitted_ < init_targets_.size()) {
        if (emitted >= quota) return false;
        const VertexId u = init_targets_[init_emitted_++];
        const auto feature = points_[v];
        comm_->async(partition_.owner(u), h_init_req_, u, v,
                     std::vector<T>(feature.begin(), feature.end()));
        ++emitted;
      }
      init_targets_.clear();
      init_emitted_ = 0;
      ++init_cursor_;
    }
    return true;
  }

  // ---- dynamic updates (paper §7: add/delete + short refinement) ----------

  /// Adds a point after the initial build. Its neighbor list starts empty
  /// and is seeded by emit_pending_init_chunk() + refinement iterations.
  void add_pending_point(VertexId id, std::span<const T> feature) {
    assert(partition_.owner(id) == comm_->rank());
    points_.add(id, feature);
    lists_.emplace(id, NeighborList(config_.k));
    pending_init_.push_back(id);
  }

  /// Per-rank live point counts, used to sample init targets when vertex
  /// ids are no longer dense (after deletions). Must be set on every rank
  /// before emit_pending_init_chunk().
  void set_rank_weights(std::vector<std::uint64_t> counts) {
    rank_weights_ = std::move(counts);
    total_weight_ = 0;
    for (const auto w : rank_weights_) total_weight_ += w;
  }

  [[nodiscard]] std::uint64_t local_point_count() const noexcept {
    return points_.size();
  }

  /// Configured k (neighbor-list capacity); checkpoints validate it.
  [[nodiscard]] std::size_t list_capacity() const noexcept {
    return config_.k;
  }

  /// The engine's RNG stream state. This stream is the *only* randomness
  /// on the build path, so checkpointing it (and the neighbor rows) at an
  /// iteration boundary is sufficient for a resumed build to replay the
  /// remaining iterations bit-identically.
  [[nodiscard]] std::array<std::uint64_t, 4> rng_state() const noexcept {
    return rng_.state();
  }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) noexcept {
    rng_.set_state(s);
  }

  [[nodiscard]] const Partition& partition() const noexcept {
    return partition_;
  }

  /// Emits init requests for points added since the last build/refine.
  /// Targets are sampled by weighted rank + random-local-point (the
  /// dense-id assumption does not survive deletions). Returns true when
  /// this rank has drained its pending list.
  bool emit_pending_init_chunk(std::uint64_t quota) {
    std::uint64_t emitted = 0;
    while (!pending_init_.empty()) {
      const VertexId v = pending_init_.back();
      while (pending_emitted_ < config_.k) {
        if (emitted >= quota) return false;
        const int dest = sample_weighted_rank();
        const auto feature = points_[v];
        comm_->async(dest, h_init_sample_, v,
                     std::vector<T>(feature.begin(), feature.end()));
        ++pending_emitted_;
        ++emitted;
      }
      pending_init_.pop_back();
      pending_emitted_ = 0;
    }
    return true;
  }

  /// Deletes local points and their neighbor lists. The caller must then
  /// run repair_after_removal() on *every* rank with the full removed set.
  void remove_local_points(std::span<const VertexId> ids) {
    for (const VertexId id : ids) {
      lists_.erase(id);
      old_ids_.erase(id);
      new_ids_.erase(id);
    }
    points_.remove_batch(ids);
  }

  /// Drops dangling references to removed vertices from every local list.
  /// Rows that lost neighbors are re-flagged as new so the next
  /// refinement iterations re-explore around them. Each vertex's rebuild
  /// touches only its own list, so the loop parallelizes as vertex
  /// blocks with no cross-task state at all.
  void repair_after_removal(const std::vector<VertexId>& removed_sorted) {
    auto is_removed = [&](VertexId id) {
      return std::binary_search(removed_sorted.begin(), removed_sorted.end(),
                                id);
    };
    const auto& ids = points_.ids();
    pool_.for_blocks(
        ids.size(), kVertexGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            auto& list = lists_.at(ids[i]);
            bool lost = false;
            NeighborList rebuilt(config_.k);
            for (const Neighbor& n : list.entries()) {
              if (is_removed(n.id)) {
                lost = true;
              } else {
                rebuilt.update(n.id, n.distance, n.is_new);
              }
            }
            if (lost) {
              for (Neighbor& n : rebuilt.entries()) n.is_new = true;
              list = std::move(rebuilt);
            }
          }
        },
        "repair");
  }

  // ---- phase: sampling + reversed matrices (Alg. 1 lines 8–16, §4.2) -----

  /// Splits every local list into old/new, flips sampled flags, and sends
  /// reversed entries to the owners of the referenced vertices. The
  /// destination order is shuffled (§4.2) to avoid all ranks draining
  /// toward the same destination at once.
  ///
  /// Entries are visited in canonical (distance, id) order, not internal
  /// heap order: heap layout depends on insertion order, which varies with
  /// message-delivery schedule (threaded driver, fault injection). Pinning
  /// the visit order makes the sampled subset — and hence the whole build —
  /// a function of list *content* only, so any two schedules that deliver
  /// the same messages produce the same graph.
  /// Staged for intra-rank threading: stage 1 (parallel, slot = local
  /// vertex index) computes each list's canonical split — pure reads of
  /// list content plus a private sort; stage 2 (sequential, local-index
  /// order) owns everything schedule-sensitive: the rng stream, the
  /// is_new flag flips, and the emission order. The rng consumption and
  /// the outbound byte stream are identical to the fused serial loop for
  /// any thread count.
  void sample_and_emit_reverse() {
    const std::size_t sample_k = scaled_sample_k();
    old_ids_.clear();
    new_ids_.clear();
    rev_old_.clear();
    rev_new_.clear();

    const auto& ids = points_.ids();
    struct SplitSlot {
      std::vector<VertexId> old_list;  ///< old ids, canonical order
      std::vector<std::size_t> fresh;  ///< fresh entry indices, canonical
    };
    std::vector<SplitSlot> slots(ids.size());
    pool_.for_blocks(
        ids.size(), kVertexGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const auto entries = std::as_const(lists_.at(ids[i])).entries();
            std::vector<std::size_t> order(entries.size());
            for (std::size_t e = 0; e < entries.size(); ++e) order[e] = e;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return entries[a].distance < entries[b].distance ||
                               (entries[a].distance == entries[b].distance &&
                                entries[a].id < entries[b].id);
                      });
            for (const std::size_t e : order) {
              if (entries[e].is_new) {
                slots[i].fresh.push_back(e);
              } else {
                slots[i].old_list.push_back(entries[e].id);
              }
            }
          }
        },
        "sample_split");

    struct RevEntry {
      VertexId target;
      VertexId source;
      std::uint8_t is_new;
    };
    std::vector<RevEntry> outbound;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const VertexId v = ids[i];
      auto entries = lists_.at(v).entries();
      auto& fresh = slots[i].fresh;
      util::shuffle(fresh.begin(), fresh.end(), rng_);
      const std::size_t take = std::min(sample_k, fresh.size());
      auto& old_list = old_ids_[v];
      old_list = std::move(slots[i].old_list);
      auto& new_list = new_ids_[v];
      for (std::size_t s = 0; s < take; ++s) {
        entries[fresh[s]].is_new = false;
        new_list.push_back(entries[fresh[s]].id);
      }
      for (const VertexId u : old_list) outbound.push_back({u, v, 0});
      for (const VertexId u : new_list) outbound.push_back({u, v, 1});
    }

    util::shuffle(outbound.begin(), outbound.end(), rng_);
    for (const RevEntry& e : outbound) {
      comm_->async(partition_.owner(e.target), h_rev_sample_,
                   e.target, e.source, e.is_new);
    }
  }

  /// After the reverse exchange quiesces: merge a ρK-sample of the
  /// reversed lists into old/new (Alg. 1 lines 15–16) and arm the
  /// neighbor-check cursor.
  void merge_reverse_and_prepare_checks() {
    const std::size_t sample_k = scaled_sample_k();
    // Stage 1: collect every reversed list (map operator[] may insert,
    // so this walk stays sequential), then run the canonical pre-sort —
    // the schedule-independence sort merge_sample requires — in parallel;
    // each task sorts disjoint vectors in place. Stage 2 (sequential)
    // owns the rng stream.
    const auto& ids = points_.ids();
    std::vector<std::vector<VertexId>*> rev_lists;
    rev_lists.reserve(2 * ids.size());
    for (const VertexId v : ids) {
      rev_lists.push_back(&rev_old_[v]);
      rev_lists.push_back(&rev_new_[v]);
    }
    pool_.for_blocks(
        rev_lists.size(), kVertexGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            std::sort(rev_lists[i]->begin(), rev_lists[i]->end());
          }
        },
        "rev_sort");
    for (const VertexId v : ids) {
      merge_presorted(old_ids_[v], rev_old_[v], sample_k);
      merge_presorted(new_ids_[v], rev_new_[v], sample_k);
    }
    rev_old_.clear();
    rev_new_.clear();
    check_vertex_ = 0;
    check_i_ = 0;
    check_j_ = 1;
  }

  // ---- phase: neighbor checks (Alg. 1 lines 17–22, §4.3) ------------------

  /// Emits up to `quota` pair checks; returns true when exhausted.
  bool emit_check_chunk(std::uint64_t quota) {
    std::uint64_t emitted = 0;
    while (check_vertex_ < points_.size()) {
      const VertexId v = points_.id_at(check_vertex_);
      const auto& nu = new_ids_[v];
      const auto& ol = old_ids_[v];
      // Pair space for center v: (i, j) with j indexing first the tail of
      // the new list (new-new pairs, i < j) and then the old list.
      while (check_i_ < nu.size()) {
        const std::size_t row_len = nu.size() + ol.size();
        while (check_j_ < row_len) {
          if (emitted >= quota) return false;
          const VertexId u1 = nu[check_i_];
          const VertexId u2 = check_j_ < nu.size()
                                  ? nu[check_j_]
                                  : ol[check_j_ - nu.size()];
          ++check_j_;
          if (u1 == u2) continue;
          emit_pair(u1, u2);
          ++emitted;
        }
        ++check_i_;
        check_j_ = check_i_ + 1;  // new-new pairs are unordered: j > i
      }
      ++check_vertex_;
      check_i_ = 0;
      check_j_ = 1;
    }
    return true;
  }

  /// Successful Update() count since the last call (the counter `c`).
  std::uint64_t take_update_count() noexcept {
    const std::uint64_t c = updates_;
    comm_->telemetry().add(c_updates_, c);
    updates_ = 0;
    return c;
  }

  // ---- phase: graph optimization (§4.5) -----------------------------------

  /// Sends every edge's reverse to the target's owner. Staged: the
  /// reverse-edge tuples are constructed in parallel (slot = local
  /// vertex index, pure reads of the lists), then emitted sequentially
  /// in local-index order — the byte stream on the wire is identical to
  /// the fused serial loop.
  void emit_reverse_edges() {
    extra_edges_.clear();
    const auto& ids = points_.ids();
    struct RevEdge {
      VertexId target;
      Dist distance;
    };
    std::vector<std::vector<RevEdge>> slots(ids.size());
    pool_.for_blocks(
        ids.size(), kVertexGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            for (const Neighbor& n :
                 std::as_const(lists_.at(ids[i])).entries()) {
              slots[i].push_back({n.id, n.distance});
            }
          }
        },
        "rev_edge_build");
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (const RevEdge& e : slots[i]) {
        comm_->async(partition_.owner(e.target), h_rev_edge_, e.target,
                     ids[i], e.distance);
      }
    }
  }

  /// Merges received reverse edges, dedups, prunes to k·m (closest
  /// first). Each output row is a pure function of one vertex's list and
  /// extra_edges_ entry, so the rows build in parallel slots and are
  /// committed in local-index order.
  void finalize_optimization() {
    const auto max_degree = static_cast<std::size_t>(
        static_cast<double>(config_.k) * config_.prune_factor_m);
    const auto& ids = points_.ids();
    const auto& extra = extra_edges_;  // const view: find only, no insert
    std::vector<std::vector<Neighbor>> rows(ids.size());
    pool_.for_blocks(
        ids.size(), kVertexGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            std::vector<Neighbor> row = lists_.at(ids[i]).sorted();
            const auto it = extra.find(ids[i]);
            if (it != extra.end()) {
              row.insert(row.end(), it->second.begin(), it->second.end());
            }
            std::sort(row.begin(), row.end(),
                      [](const Neighbor& a, const Neighbor& b) {
                        return a.distance < b.distance ||
                               (a.distance == b.distance && a.id < b.id);
                      });
            row.erase(std::unique(row.begin(), row.end(),
                                  [](const Neighbor& a, const Neighbor& b) {
                                    return a.id == b.id;
                                  }),
                      row.end());
            if (row.size() > max_degree) row.resize(max_degree);
            rows[i] = std::move(row);
          }
        },
        "optimize_rows");
    optimized_rows_.clear();
    optimized_rows_.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      optimized_rows_.emplace_back(ids[i], std::move(rows[i]));
    }
    extra_edges_.clear();
  }

  // ---- results ------------------------------------------------------------

  /// Raw (unoptimized) shard rows, sorted by distance.
  [[nodiscard]] std::vector<std::pair<VertexId, std::vector<Neighbor>>>
  shard_rows() const {
    std::vector<std::pair<VertexId, std::vector<Neighbor>>> rows;
    rows.reserve(points_.size());
    for (const VertexId v : points_.ids()) {
      rows.emplace_back(v, lists_.at(v).sorted());
    }
    return rows;
  }

  /// Replaces this rank's neighbor lists from checkpointed rows (flags
  /// included). Points must already be loaded; every row id must be local.
  void import_rows(
      const std::vector<std::pair<VertexId, std::vector<Neighbor>>>& rows) {
    lists_.clear();
    lists_.reserve(rows.size());
    for (const auto& [v, entries] : rows) {
      assert(points_.contains(v));
      NeighborList list(config_.k);
      for (const Neighbor& n : entries) {
        list.update(n.id, n.distance, n.is_new);
      }
      lists_.emplace(v, std::move(list));
    }
  }

  /// Rows after finalize_optimization(); empty until then.
  [[nodiscard]] const std::vector<std::pair<VertexId, std::vector<Neighbor>>>&
  optimized_rows() const noexcept {
    return optimized_rows_;
  }

  [[nodiscard]] std::uint64_t distance_evals() const noexcept {
    return distance_evals_;
  }

  [[nodiscard]] const NeighborList& list_of(VertexId v) const {
    return lists_.at(v);
  }

 private:
  /// Grain for staged vertex-block stages. A fixed constant (never a
  /// function of the thread count) so the task decomposition — and the
  /// engine.tasks counter — is bit-identical for any threads_per_rank.
  static constexpr std::size_t kVertexGrain = 256;

  std::size_t scaled_sample_k() const noexcept {
    return static_cast<std::size_t>(config_.rho *
                                    static_cast<double>(config_.k));
  }

  void generate_init_targets(VertexId v) {
    init_targets_.clear();
    init_emitted_ = 0;
    const std::uint64_t want =
        std::min<std::uint64_t>(config_.k, global_n_ > 0 ? global_n_ - 1 : 0);
    while (init_targets_.size() < want) {
      const auto u = static_cast<VertexId>(rng_.uniform_below(global_n_));
      if (u == v) continue;
      if (std::find(init_targets_.begin(), init_targets_.end(), u) !=
          init_targets_.end()) {
        continue;
      }
      init_targets_.push_back(u);
    }
  }

  /// Rank index ~ P(rank) ∝ live point count; falls back to uniform when
  /// weights were not provided.
  int sample_weighted_rank() {
    if (total_weight_ == 0) {
      return static_cast<int>(rng_.uniform_below(
          static_cast<std::uint64_t>(comm_->size())));
    }
    std::uint64_t pick = rng_.uniform_below(total_weight_);
    for (std::size_t r = 0; r < rank_weights_.size(); ++r) {
      if (pick < rank_weights_[r]) return static_cast<int>(r);
      pick -= rank_weights_[r];
    }
    return comm_->size() - 1;
  }

  void merge_presorted(std::vector<VertexId>& dst, std::vector<VertexId>& rev,
                       std::size_t sample_k) {
    // Reversed entries accumulate in arrival order, which is a property of
    // the delivery schedule, not of the algorithm. The caller sorts before
    // sampling (in parallel, see merge_reverse_and_prepare_checks) so the
    // rng draw is applied to a canonical order and the merge result is
    // schedule-independent (entries are distinct: each center emits one
    // reverse entry per neighbor).
    util::shuffle(rev.begin(), rev.end(), rng_);
    const std::size_t take = std::min(sample_k, rev.size());
    for (std::size_t i = 0; i < take; ++i) {
      const VertexId u = rev[i];
      if (std::find(dst.begin(), dst.end(), u) == dst.end()) dst.push_back(u);
    }
  }

  void emit_pair(VertexId u1, VertexId u2) {
    if (config_.optimized_checks) {
      // §4.3.1 one-sided: only owner(u1) is contacted; it forwards.
      comm_->async(partition_.owner(u1), h_type1_, u1, u2);
    } else {
      // Figure 1a: both endpoints get a check request and exchange
      // features in both directions.
      comm_->async(partition_.owner(u1), h_type1_unopt_, u1, u2);
      comm_->async(partition_.owner(u2), h_type1_unopt_, u2, u1);
    }
  }

  Dist eval(std::span<const T> a, std::span<const T> b) {
    ++distance_evals_;
    comm_->telemetry().add(c_distance_evals_);
    if constexpr (BatchDistance<DistanceFn, T>) {
      // Check requests arrive one candidate per message, so the engine
      // evaluates batches of one — but going through the batch entry
      // point keeps it on the same kernel (same dispatch, same reduction
      // order) as the bulk callers.
      Dist d;
      const T* row = b.data();
      distance_.batch(a.data(), &row, 1, a.size(), &d);
      return d;
    } else {
      return distance_(a, b);
    }
  }

  void register_handlers() {
    // Registration order is part of the wire protocol: every rank
    // constructs its engine the same way, so ids line up.
    h_init_req_ = comm_->register_handler(
        "init_req", [this](int, serial::InArchive& ar) {
          const auto u = ar.read<VertexId>();
          const auto v = ar.read<VertexId>();
          ar.read_into(scratch_feature_);
          const Dist d = eval(points_[u], scratch_feature_);
          comm_->async(partition_.owner(v), h_init_rep_, v, u, d);
        });
    h_init_rep_ = comm_->register_handler(
        "init_rep", [this](int, serial::InArchive& ar) {
          const auto v = ar.read<VertexId>();
          const auto u = ar.read<VertexId>();
          const auto d = ar.read<Dist>();
          updates_ += static_cast<std::uint64_t>(
              lists_.at(v).update(u, d, /*is_new=*/true));
        });
    h_rev_sample_ = comm_->register_handler(
        "rev_sample", [this](int, serial::InArchive& ar) {
          const auto target = ar.read<VertexId>();
          const auto source = ar.read<VertexId>();
          const auto is_new = ar.read<std::uint8_t>();
          if (is_new != 0) {
            rev_new_[target].push_back(source);
          } else {
            rev_old_[target].push_back(source);
          }
        });
    h_type1_ = comm_->register_handler(
        "type1", [this](int, serial::InArchive& ar) {
          const auto u1 = ar.read<VertexId>();
          const auto u2 = ar.read<VertexId>();
          auto& l1 = lists_.at(u1);
          // §4.3.2: if u2 is already a neighbor the whole exchange is
          // redundant — its distance is known on this side and the other
          // side either has it or rejected it before.
          if (config_.redundant_check_reduction && l1.contains(u2)) return;
          const Dist bound =
              config_.distance_pruning ? l1.furthest_distance()
                                       : kInfiniteDistance;
          const auto feature = points_[u1];
          comm_->async(partition_.owner(u2), h_type2plus_, u2,
                       u1, bound,
                       std::vector<T>(feature.begin(), feature.end()));
        });
    h_type2plus_ = comm_->register_handler(
        "type2plus", [this](int, serial::InArchive& ar) {
          const auto u2 = ar.read<VertexId>();
          const auto u1 = ar.read<VertexId>();
          const auto bound = ar.read<Dist>();
          ar.read_into(scratch_feature_);
          auto& l2 = lists_.at(u2);
          if (config_.redundant_check_reduction && l2.contains(u1)) return;
          const Dist d = eval(points_[u2], scratch_feature_);
          updates_ += static_cast<std::uint64_t>(l2.update(u1, d, true));
          // §4.3.3: reply only when u1 could still accept the candidate.
          if (d < bound) {
            comm_->async(partition_.owner(u1), h_type3_, u1, u2, d);
          }
        });
    h_type3_ = comm_->register_handler(
        "type3", [this](int, serial::InArchive& ar) {
          const auto u1 = ar.read<VertexId>();
          const auto u2 = ar.read<VertexId>();
          const auto d = ar.read<Dist>();
          updates_ += static_cast<std::uint64_t>(lists_.at(u1).update(u2, d, true));
        });
    h_type1_unopt_ = comm_->register_handler(
        "type1_unopt", [this](int, serial::InArchive& ar) {
          const auto u1 = ar.read<VertexId>();
          const auto u2 = ar.read<VertexId>();
          const auto feature = points_[u1];
          comm_->async(partition_.owner(u2), h_type2_unopt_, u2, u1,
                       std::vector<T>(feature.begin(), feature.end()));
        });
    h_type2_unopt_ = comm_->register_handler(
        "type2_unopt", [this](int, serial::InArchive& ar) {
          const auto u2 = ar.read<VertexId>();
          const auto u1 = ar.read<VertexId>();
          ar.read_into(scratch_feature_);
          const Dist d = eval(points_[u2], scratch_feature_);
          updates_ += static_cast<std::uint64_t>(lists_.at(u2).update(u1, d, true));
        });
    h_ingest_ = comm_->register_handler(
        "ingest", [this](int, serial::InArchive& ar) {
          const auto id = ar.read<VertexId>();
          ar.read_into(scratch_feature_);
          points_.add(id, scratch_feature_);
        });
    h_init_sample_ = comm_->register_handler(
        "init_sample", [this](int, serial::InArchive& ar) {
          // Dynamic-insert seeding: pick a random local point as the
          // candidate neighbor for the new vertex v (weighted-rank
          // sampling made this rank proportionally likely).
          const auto v = ar.read<VertexId>();
          ar.read_into(scratch_feature_);
          if (points_.empty()) return;
          const std::size_t local =
              rng_.uniform_below(points_.size());
          const VertexId u = points_.id_at(local);
          if (u == v) return;  // rare self-collision: drop this sample
          const Dist d = eval(points_[u], scratch_feature_);
          comm_->async(partition_.owner(v), h_init_rep_, v, u, d);
        });
    h_rev_edge_ = comm_->register_handler(
        "rev_edge", [this](int, serial::InArchive& ar) {
          const auto target = ar.read<VertexId>();
          const auto source = ar.read<VertexId>();
          const auto d = ar.read<Dist>();
          extra_edges_[target].push_back(Neighbor{source, d, false});
        });
  }

  comm::Communicator* comm_;
  DnndConfig config_;
  DistanceFn distance_;
  Partition partition_;
  util::Xoshiro256 rng_;
  ThreadPool pool_;

  FeatureStore<T> points_;
  std::uint64_t global_n_ = 0;
  std::unordered_map<VertexId, NeighborList> lists_;

  // Per-iteration sampling state.
  std::unordered_map<VertexId, std::vector<VertexId>> old_ids_;
  std::unordered_map<VertexId, std::vector<VertexId>> new_ids_;
  std::unordered_map<VertexId, std::vector<VertexId>> rev_old_;
  std::unordered_map<VertexId, std::vector<VertexId>> rev_new_;

  // Resumable cursors (§4.4 batching).
  std::size_t init_cursor_ = 0;
  std::vector<VertexId> init_targets_;
  std::size_t init_emitted_ = 0;
  std::size_t check_vertex_ = 0;
  std::size_t check_i_ = 0;
  std::size_t check_j_ = 1;

  // Optimization state.
  std::unordered_map<VertexId, std::vector<Neighbor>> extra_edges_;
  std::vector<std::pair<VertexId, std::vector<Neighbor>>> optimized_rows_;

  std::uint64_t updates_ = 0;
  std::uint64_t distance_evals_ = 0;
  /// Deserialization scratch: features arrive at arbitrary byte offsets
  /// inside packed datagrams, so multi-byte element types must be copied
  /// out before use (alignment); the buffer is reused across messages.
  std::vector<T> scratch_feature_;

  // Dynamic-update state.
  std::vector<VertexId> pending_init_;
  std::size_t pending_emitted_ = 0;
  std::vector<std::uint64_t> rank_weights_;
  std::uint64_t total_weight_ = 0;

  comm::HandlerId h_init_req_ = 0, h_init_rep_ = 0, h_rev_sample_ = 0;
  comm::HandlerId h_type1_ = 0, h_type2plus_ = 0, h_type3_ = 0;
  comm::HandlerId h_type1_unopt_ = 0, h_type2_unopt_ = 0, h_rev_edge_ = 0;
  comm::HandlerId h_init_sample_ = 0;
  comm::HandlerId h_ingest_ = 0;

  telemetry::MetricId c_distance_evals_ = 0;
  telemetry::MetricId c_updates_ = 0;
  telemetry::MetricId c_tasks_ = 0;
};

}  // namespace dnnd::core

#include "data/datasets.hpp"

#include <stdexcept>

namespace dnnd::data {
namespace {

/// Mixture dimensions follow Table 1; cluster counts loosely track corpus
/// "shape" (more clusters for the larger, more varied corpora). Centers
/// overlap (range comparable to the within-cluster spread) because real
/// embedding corpora yield *connected* k-NN graphs; widely separated
/// synthetic clusters do not, and no greedy graph search can cross
/// components (calibration in EXPERIMENTS.md).
MixtureSpec mixture_for(const DatasetSpec& spec, std::size_t clusters) {
  MixtureSpec m;
  m.dim = spec.dim;
  m.num_clusters = clusters;
  m.seed = spec.seed;
  m.cluster_std = 1.5f;
  m.center_range = spec.billion_scale ? 2.0f : 3.0f;
  return m;
}

}  // namespace

const std::vector<DatasetSpec>& table1() {
  static const std::vector<DatasetSpec> specs = {
      // name, dim, paper entries, scaled entries, metric, element, seed
      {"fashion-mnist", 784, 60'000, 4'000, core::Metric::kL2,
       ElementKind::kFloat32, 101, false},
      {"glove-25", 25, 1'183'514, 8'000, core::Metric::kCosine,
       ElementKind::kFloat32, 102, false},
      {"kosarak", 27'983, 74'962, 3'000, core::Metric::kJaccard,
       ElementKind::kSparseIds, 103, false},
      {"mnist", 784, 60'000, 4'000, core::Metric::kL2, ElementKind::kFloat32,
       104, false},
      {"nytimes", 256, 290'000, 5'000, core::Metric::kCosine,
       ElementKind::kFloat32, 105, false},
      {"lastfm", 65, 292'385, 5'000, core::Metric::kCosine,
       ElementKind::kFloat32, 106, false},
      {"deep1b", 96, 1'000'000'000, 20'000, core::Metric::kL2,
       ElementKind::kFloat32, 107, true},
      {"bigann", 128, 1'000'000'000, 20'000, core::Metric::kL2,
       ElementKind::kUint8, 108, true},
  };
  return specs;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const auto& spec : table1()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

DenseFloatDataset make_dense_float(const DatasetSpec& spec, double scale,
                                   std::size_t num_queries) {
  if (spec.element != ElementKind::kFloat32) {
    throw std::invalid_argument(spec.name + " is not a float32 dataset");
  }
  const auto n = static_cast<std::size_t>(
      static_cast<double>(spec.scaled_entries) * scale);
  const GaussianMixture family(mixture_for(spec, spec.billion_scale ? 64 : 24));
  return DenseFloatDataset{family.sample(n, 1), family.sample(num_queries, 2)};
}

DenseU8Dataset make_dense_u8(const DatasetSpec& spec, double scale,
                             std::size_t num_queries) {
  if (spec.element != ElementKind::kUint8) {
    throw std::invalid_argument(spec.name + " is not a uint8 dataset");
  }
  const auto n = static_cast<std::size_t>(
      static_cast<double>(spec.scaled_entries) * scale);
  const GaussianMixture family(mixture_for(spec, spec.billion_scale ? 64 : 24));
  return DenseU8Dataset{family.sample_u8(n, 1),
                        family.sample_u8(num_queries, 2)};
}

SparseDataset make_sparse(const DatasetSpec& spec, double scale,
                          std::size_t num_queries) {
  if (spec.element != ElementKind::kSparseIds) {
    throw std::invalid_argument(spec.name + " is not a sparse dataset");
  }
  const auto n = static_cast<std::size_t>(
      static_cast<double>(spec.scaled_entries) * scale);
  SparseSetSpec s;
  s.universe = static_cast<std::uint32_t>(spec.dim);
  s.seed = spec.seed;
  const SparseSetFamily family(s);
  return SparseDataset{family.sample(n, 1), family.sample(num_queries, 2)};
}

}  // namespace dnnd::data

// Dataset file formats.
//
// Readers/writers for the formats the paper's corpora ship in, so the
// system runs unmodified on the real data when it is available:
//
//   *.fvecs / *.bvecs / *.ivecs   TEXMEX layout: per row, an int32
//                                 dimension followed by dim values
//                                 (float32 / uint8 / int32 respectively);
//                                 ANN-Benchmarks ground truth uses ivecs.
//   *.fbin / *.u8bin / *.ibin     Big-ANN-Benchmarks layout: uint32 n,
//                                 uint32 dim header, then n*dim values.
//
// All functions throw std::runtime_error on malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/feature_store.hpp"
#include "core/types.hpp"

namespace dnnd::data {

// -- TEXMEX *vecs ------------------------------------------------------------

void write_fvecs(const std::string& path,
                 const core::FeatureStore<float>& points);
core::FeatureStore<float> read_fvecs(const std::string& path);

void write_bvecs(const std::string& path,
                 const core::FeatureStore<std::uint8_t>& points);
core::FeatureStore<std::uint8_t> read_bvecs(const std::string& path);

/// Ground-truth neighbor id lists (one row per query).
void write_ivecs(const std::string& path,
                 const std::vector<std::vector<core::VertexId>>& rows);
std::vector<std::vector<core::VertexId>> read_ivecs(const std::string& path);

// -- Big-ANN *bin ------------------------------------------------------------

void write_fbin(const std::string& path,
                const core::FeatureStore<float>& points);
core::FeatureStore<float> read_fbin(const std::string& path);

void write_u8bin(const std::string& path,
                 const core::FeatureStore<std::uint8_t>& points);
core::FeatureStore<std::uint8_t> read_u8bin(const std::string& path);

}  // namespace dnnd::data

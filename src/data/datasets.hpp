// Dataset registry mirroring Table 1 of the paper.
//
// Each entry records the paper's dataset (name, dimensionality, entry
// count, metric) and the scaled-down synthetic stand-in this reproduction
// evaluates on (see DESIGN.md §2). `scaled_entries` keeps the *relative*
// sizes of the corpora while staying tractable in simulation; benches may
// scale further via a multiplier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distance.hpp"
#include "core/feature_store.hpp"
#include "data/synthetic.hpp"

namespace dnnd::data {

enum class ElementKind { kFloat32, kUint8, kSparseIds };

struct DatasetSpec {
  std::string name;
  std::size_t dim = 0;            ///< paper dimensionality
  std::size_t paper_entries = 0;  ///< Table 1 entry count
  std::size_t scaled_entries = 0; ///< stand-in size at scale 1.0
  core::Metric metric = core::Metric::kL2;
  ElementKind element = ElementKind::kFloat32;
  std::uint64_t seed = 0;         ///< family seed (fixed per dataset)
  bool billion_scale = false;     ///< true for DEEP1B / BigANN rows
};

/// All eight Table-1 rows.
const std::vector<DatasetSpec>& table1();

/// Lookup by name ("fashion-mnist", "glove-25", "kosarak", "mnist",
/// "nytimes", "lastfm", "deep1b", "bigann"). Throws on unknown name.
const DatasetSpec& dataset_by_name(const std::string& name);

/// Base + query sets for one spec. Query ground truth is computed by the
/// caller via brute force (baselines/brute_force.hpp).
struct DenseFloatDataset {
  core::FeatureStore<float> base;
  core::FeatureStore<float> queries;
};
struct DenseU8Dataset {
  core::FeatureStore<std::uint8_t> base;
  core::FeatureStore<std::uint8_t> queries;
};
struct SparseDataset {
  core::FeatureStore<std::uint32_t> base;
  core::FeatureStore<std::uint32_t> queries;
};

/// Instantiates the synthetic stand-in for a dense float spec.
/// `scale` multiplies scaled_entries. Pre: spec.element == kFloat32.
DenseFloatDataset make_dense_float(const DatasetSpec& spec, double scale,
                                   std::size_t num_queries);

/// Pre: spec.element == kUint8.
DenseU8Dataset make_dense_u8(const DatasetSpec& spec, double scale,
                             std::size_t num_queries);

/// Pre: spec.element == kSparseIds.
SparseDataset make_sparse(const DatasetSpec& spec, double scale,
                          std::size_t num_queries);

}  // namespace dnnd::data

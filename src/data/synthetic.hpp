// Synthetic dataset generators (DESIGN.md §2 substitution for the
// ANN-Benchmarks / Big-ANN corpora).
//
// NN-Descent's convergence behaviour depends on points having *local
// neighborhood structure* — the "my neighbors' neighbors are my
// neighbors" property. Clustered Gaussian mixtures provide it; uniform
// data is the adversarial control. Queries must come from the same
// distribution as the base set, so generators are stateful families:
// construct once (fixes the cluster centers), then sample base and query
// sets with different seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "core/feature_store.hpp"

namespace dnnd::data {

struct MixtureSpec {
  std::size_t dim = 16;
  std::size_t num_clusters = 32;
  float center_range = 10.0f;  ///< centers uniform in [-range, range]^dim
  float cluster_std = 1.0f;    ///< isotropic within-cluster std deviation
  std::uint64_t seed = 1234;   ///< fixes the centers
};

/// Isotropic Gaussian mixture over fixed random centers.
class GaussianMixture {
 public:
  explicit GaussianMixture(MixtureSpec spec);

  [[nodiscard]] const MixtureSpec& spec() const noexcept { return spec_; }

  /// `n` float32 points; `seed` selects the draw (base vs query sets).
  [[nodiscard]] core::FeatureStore<float> sample(std::size_t n,
                                                 std::uint64_t seed) const;

  /// BigANN-style uint8 points: same mixture, affinely quantized to
  /// [0, 255] using the family's fixed value range.
  [[nodiscard]] core::FeatureStore<std::uint8_t> sample_u8(
      std::size_t n, std::uint64_t seed) const;

 private:
  MixtureSpec spec_;
  std::vector<float> centers_;  ///< num_clusters x dim, row-major
};

/// Uniform points in [lo, hi]^dim — the no-structure control.
[[nodiscard]] core::FeatureStore<float> make_uniform(std::size_t n,
                                                     std::size_t dim, float lo,
                                                     float hi,
                                                     std::uint64_t seed);

struct SparseSetSpec {
  std::uint32_t universe = 20000;  ///< item id range (Kosarak: ~28k)
  std::size_t num_topics = 64;     ///< latent topics points draw items from
  std::size_t items_per_topic = 50;
  std::size_t min_size = 10;       ///< set cardinality range
  std::size_t max_size = 60;
  double background_rate = 0.1;    ///< fraction of items drawn uniformly
  std::uint64_t seed = 4321;       ///< fixes the topics
};

/// Sparse sorted id-set generator (Jaccard metric, Kosarak stand-in).
/// Each point picks a topic and draws most items from it, so points on
/// the same topic are Jaccard-close.
class SparseSetFamily {
 public:
  explicit SparseSetFamily(SparseSetSpec spec);

  [[nodiscard]] const SparseSetSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] core::FeatureStore<std::uint32_t> sample(
      std::size_t n, std::uint64_t seed) const;

 private:
  SparseSetSpec spec_;
  std::vector<std::uint32_t> topic_items_;  ///< num_topics x items_per_topic
};

}  // namespace dnnd::data

#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dnnd::data {

GaussianMixture::GaussianMixture(MixtureSpec spec) : spec_(spec) {
  util::Xoshiro256 rng(spec_.seed);
  centers_.resize(spec_.num_clusters * spec_.dim);
  for (auto& c : centers_) {
    c = rng.uniform_float(-spec_.center_range, spec_.center_range);
  }
}

core::FeatureStore<float> GaussianMixture::sample(std::size_t n,
                                                  std::uint64_t seed) const {
  util::Xoshiro256 rng(util::Xoshiro256(spec_.seed).fork(seed)());
  std::vector<float> values(n * spec_.dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cluster = rng.uniform_below(spec_.num_clusters);
    const float* center = centers_.data() + cluster * spec_.dim;
    for (std::size_t d = 0; d < spec_.dim; ++d) {
      values[i * spec_.dim + d] =
          center[d] + spec_.cluster_std * static_cast<float>(rng.normal());
    }
  }
  return core::FeatureStore<float>(n, spec_.dim, std::move(values));
}

core::FeatureStore<std::uint8_t> GaussianMixture::sample_u8(
    std::size_t n, std::uint64_t seed) const {
  const auto floats = sample(n, seed);
  // Fixed affine range: centers live in [-range, range], plus ~4 sigma of
  // within-cluster spread. Clamping the tail loses negligible mass and
  // keeps the mapping identical across base/query draws.
  const float lo = -spec_.center_range - 4.0f * spec_.cluster_std;
  const float hi = spec_.center_range + 4.0f * spec_.cluster_std;
  const float scale = 255.0f / (hi - lo);
  std::vector<std::uint8_t> values(n * spec_.dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = floats.row(i);
    for (std::size_t d = 0; d < spec_.dim; ++d) {
      const float clamped = std::clamp(row[d], lo, hi);
      values[i * spec_.dim + d] =
          static_cast<std::uint8_t>(std::lround((clamped - lo) * scale));
    }
  }
  return core::FeatureStore<std::uint8_t>(n, spec_.dim, std::move(values));
}

core::FeatureStore<float> make_uniform(std::size_t n, std::size_t dim,
                                       float lo, float hi,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<float> values(n * dim);
  for (auto& v : values) v = rng.uniform_float(lo, hi);
  return core::FeatureStore<float>(n, dim, std::move(values));
}

SparseSetFamily::SparseSetFamily(SparseSetSpec spec) : spec_(spec) {
  util::Xoshiro256 rng(spec_.seed);
  topic_items_.resize(spec_.num_topics * spec_.items_per_topic);
  for (auto& item : topic_items_) {
    item = static_cast<std::uint32_t>(rng.uniform_below(spec_.universe));
  }
}

core::FeatureStore<std::uint32_t> SparseSetFamily::sample(
    std::size_t n, std::uint64_t seed) const {
  util::Xoshiro256 rng(util::Xoshiro256(spec_.seed).fork(seed)());
  core::FeatureStore<std::uint32_t> store;
  std::vector<std::uint32_t> set;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t topic = rng.uniform_below(spec_.num_topics);
    const std::uint32_t* items =
        topic_items_.data() + topic * spec_.items_per_topic;
    const std::size_t size =
        spec_.min_size + rng.uniform_below(spec_.max_size - spec_.min_size + 1);
    set.clear();
    while (set.size() < size) {
      std::uint32_t item;
      if (rng.bernoulli(spec_.background_rate)) {
        item = static_cast<std::uint32_t>(rng.uniform_below(spec_.universe));
      } else {
        item = items[rng.uniform_below(spec_.items_per_topic)];
      }
      if (std::find(set.begin(), set.end(), item) == set.end()) {
        set.push_back(item);
      }
    }
    std::sort(set.begin(), set.end());
    store.add(static_cast<core::VertexId>(i), set);
  }
  return store;
}

}  // namespace dnnd::data

#include "data/io.hpp"

#include <fstream>
#include <stdexcept>

namespace dnnd::data {
namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

template <typename T>
void write_raw(std::ofstream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
void read_raw(std::ifstream& in, T* data, std::size_t count,
              const std::string& path) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (in.gcount() != static_cast<std::streamsize>(count * sizeof(T))) {
    throw std::runtime_error("truncated file: " + path);
  }
}

/// TEXMEX rows: int32 dim + `dim` elements of V.
template <typename V>
void write_vecs(const std::string& path, const core::FeatureStore<V>& points) {
  auto out = open_out(path);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto row = points.row(i);
    const auto dim = static_cast<std::int32_t>(row.size());
    write_raw(out, &dim, 1);
    write_raw(out, row.data(), row.size());
  }
  if (!out.good()) throw std::runtime_error("write failed: " + path);
}

template <typename V>
core::FeatureStore<V> read_vecs(const std::string& path) {
  auto in = open_in(path);
  core::FeatureStore<V> store;
  std::vector<V> row;
  core::VertexId next_id = 0;
  while (true) {
    std::int32_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    if (in.gcount() == 0 && in.eof()) break;
    if (in.gcount() != sizeof(dim) || dim < 0) {
      throw std::runtime_error("malformed vecs row header: " + path);
    }
    row.resize(static_cast<std::size_t>(dim));
    read_raw(in, row.data(), row.size(), path);
    store.add(next_id++, row);
  }
  return store;
}

/// Big-ANN layout: uint32 n, uint32 dim, then n*dim elements. Requires
/// uniform row length (dense datasets only).
template <typename V>
void write_bin(const std::string& path, const core::FeatureStore<V>& points) {
  auto out = open_out(path);
  const auto n = static_cast<std::uint32_t>(points.size());
  const auto dim = static_cast<std::uint32_t>(points.dim());
  write_raw(out, &n, 1);
  write_raw(out, &dim, 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto row = points.row(i);
    if (row.size() != dim) {
      throw std::runtime_error("write_bin: non-uniform row length");
    }
    write_raw(out, row.data(), row.size());
  }
  if (!out.good()) throw std::runtime_error("write failed: " + path);
}

template <typename V>
core::FeatureStore<V> read_bin(const std::string& path) {
  auto in = open_in(path);
  std::uint32_t n = 0, dim = 0;
  read_raw(in, &n, 1, path);
  read_raw(in, &dim, 1, path);
  std::vector<V> values(static_cast<std::size_t>(n) * dim);
  read_raw(in, values.data(), values.size(), path);
  return core::FeatureStore<V>(n, dim, std::move(values));
}

}  // namespace

void write_fvecs(const std::string& path,
                 const core::FeatureStore<float>& points) {
  write_vecs(path, points);
}
core::FeatureStore<float> read_fvecs(const std::string& path) {
  return read_vecs<float>(path);
}

void write_bvecs(const std::string& path,
                 const core::FeatureStore<std::uint8_t>& points) {
  write_vecs(path, points);
}
core::FeatureStore<std::uint8_t> read_bvecs(const std::string& path) {
  return read_vecs<std::uint8_t>(path);
}

void write_ivecs(const std::string& path,
                 const std::vector<std::vector<core::VertexId>>& rows) {
  auto out = open_out(path);
  for (const auto& row : rows) {
    const auto dim = static_cast<std::int32_t>(row.size());
    write_raw(out, &dim, 1);
    write_raw(out, row.data(), row.size());
  }
  if (!out.good()) throw std::runtime_error("write failed: " + path);
}

std::vector<std::vector<core::VertexId>> read_ivecs(const std::string& path) {
  auto in = open_in(path);
  std::vector<std::vector<core::VertexId>> rows;
  while (true) {
    std::int32_t dim = 0;
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    if (in.gcount() == 0 && in.eof()) break;
    if (in.gcount() != sizeof(dim) || dim < 0) {
      throw std::runtime_error("malformed ivecs row header: " + path);
    }
    std::vector<core::VertexId> row(static_cast<std::size_t>(dim));
    read_raw(in, row.data(), row.size(), path);
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_fbin(const std::string& path,
                const core::FeatureStore<float>& points) {
  write_bin(path, points);
}
core::FeatureStore<float> read_fbin(const std::string& path) {
  return read_bin<float>(path);
}

void write_u8bin(const std::string& path,
                 const core::FeatureStore<std::uint8_t>& points) {
  write_bin(path, points);
}
core::FeatureStore<std::uint8_t> read_u8bin(const std::string& path) {
  return read_bin<std::uint8_t>(path);
}

}  // namespace dnnd::data

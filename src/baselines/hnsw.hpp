// HNSW: Hierarchical Navigable Small World index, implemented from scratch
// as the comparator baseline (the paper compares DNND against Hnswlib,
// Malkov & Yashunin 2018 — see DESIGN.md §2 for the substitution note).
//
// Faithful to the published algorithm:
//   * exponentially distributed insertion levels (mult = 1/ln(M));
//   * greedy descent through upper layers with ef = 1;
//   * beam search (search_layer) with ef_construction while inserting and
//     ef while querying;
//   * the "select neighbors by heuristic" rule (Algorithm 4 of the paper)
//     that keeps a candidate only if it is closer to the query than to any
//     already-selected neighbor — the diversification that makes HNSW
//     navigable;
//   * bidirectional links with shrink-to-Mmax on overflow (layer 0 allows
//     2·M links, upper layers M).
//
// The construction knobs (M, ef_construction) and query knob (ef) are the
// exact parameters Table 2 of the DNND paper sweeps.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/feature_store.hpp"
#include "core/neighbor_list.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace dnnd::baselines {

struct HnswParams {
  std::size_t M = 16;               ///< links per node on upper layers
  std::size_t ef_construction = 100;  ///< beam width while building
  std::uint64_t seed = 2017;
};

struct HnswStats {
  std::uint64_t build_distance_evals = 0;
};

template <typename T, typename DistanceFn>
class HnswIndex {
 public:
  HnswIndex(const core::FeatureStore<T>& points, DistanceFn distance,
            HnswParams params)
      : points_(&points),
        distance_(std::move(distance)),
        params_(params),
        level_mult_(1.0 / std::log(static_cast<double>(params.M))),
        rng_(params.seed) {
    if (params.M < 2) throw std::invalid_argument("HnswIndex: M < 2");
  }

  /// Inserts every point of the store in id order.
  void build() {
    nodes_.clear();
    entry_point_ = core::kInvalidVertex;
    max_level_ = -1;
    nodes_.reserve(points_->size());
    for (std::size_t i = 0; i < points_->size(); ++i) {
      insert(static_cast<core::VertexId>(i));
    }
  }

  /// Top-k search with beam width ef (>= k for sensible recall).
  [[nodiscard]] std::vector<core::Neighbor> search(
      std::span<const T> query, std::size_t k, std::size_t ef,
      std::uint64_t* distance_evals = nullptr) const {
    if (nodes_.empty() || k == 0) return {};
    std::uint64_t evals = 0;
    core::VertexId ep = entry_point_;
    core::Dist ep_dist = eval_q(query, ep, evals);
    for (int layer = max_level_; layer > 0; --layer) {
      greedy_step(query, layer, ep, ep_dist, evals);
    }
    auto best = search_layer(query, {{ep_dist, ep}}, std::max(ef, k), 0, evals);
    if (distance_evals != nullptr) *distance_evals += evals;
    std::sort(best.begin(), best.end());
    std::vector<core::Neighbor> out;
    out.reserve(std::min(k, best.size()));
    for (std::size_t i = 0; i < best.size() && i < k; ++i) {
      out.push_back(core::Neighbor{best[i].second, best[i].first, false});
    }
    return out;
  }

  [[nodiscard]] const HnswStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] int max_level() const noexcept { return max_level_; }

  /// Neighbors of `v` on `layer` (diagnostics / tests).
  [[nodiscard]] std::span<const core::VertexId> neighbors(core::VertexId v,
                                                          int layer) const {
    return nodes_.at(v).links.at(static_cast<std::size_t>(layer));
  }

 private:
  /// (distance, id) pairs ordered by distance.
  using Scored = std::pair<core::Dist, core::VertexId>;

  struct Node {
    std::vector<std::vector<core::VertexId>> links;  ///< per layer
  };

  [[nodiscard]] std::size_t max_links(int layer) const noexcept {
    return layer == 0 ? 2 * params_.M : params_.M;
  }

  core::Dist eval(core::VertexId a, core::VertexId b, std::uint64_t& evals) const {
    ++evals;
    return distance_((*points_)[a], (*points_)[b]);
  }

  core::Dist eval_q(std::span<const T> q, core::VertexId v,
                    std::uint64_t& evals) const {
    ++evals;
    return distance_(q, (*points_)[v]);
  }

  int sample_level() {
    const double u = std::max(rng_.uniform_double(), 1e-12);
    return static_cast<int>(-std::log(u) * level_mult_);
  }

  void insert(core::VertexId v) {
    const int level = sample_level();
    Node node;
    node.links.resize(static_cast<std::size_t>(level) + 1);

    if (entry_point_ == core::kInvalidVertex) {
      nodes_.push_back(std::move(node));
      entry_point_ = v;
      max_level_ = level;
      return;
    }

    std::uint64_t evals = 0;
    const auto query = (*points_)[v];
    core::VertexId ep = entry_point_;
    core::Dist ep_dist = eval_q(query, ep, evals);

    for (int layer = max_level_; layer > level; --layer) {
      greedy_step(query, layer, ep, ep_dist, evals);
    }

    std::vector<Scored> entry = {{ep_dist, ep}};
    for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
      auto candidates =
          search_layer(query, entry, params_.ef_construction, layer, evals);
      auto selected = select_neighbors(candidates, params_.M, evals);
      auto& my_links = node.links[static_cast<std::size_t>(layer)];
      for (const auto& [d, u] : selected) {
        my_links.push_back(u);
        link_back(u, v, d, layer, evals);
      }
      entry = std::move(candidates);  // next layer starts from this beam
    }

    nodes_.push_back(std::move(node));
    if (level > max_level_) {
      max_level_ = level;
      entry_point_ = v;
    }
    stats_.build_distance_evals += evals;
  }

  /// Greedy ef=1 descent within one layer: move to the closest neighbor
  /// until no improvement.
  void greedy_step(std::span<const T> query, int layer, core::VertexId& ep,
                   core::Dist& ep_dist, std::uint64_t& evals) const {
    bool improved = true;
    while (improved) {
      improved = false;
      for (const core::VertexId u :
           nodes_[ep].links[static_cast<std::size_t>(layer)]) {
        const core::Dist d = eval_q(query, u, evals);
        if (d < ep_dist) {
          ep = u;
          ep_dist = d;
          improved = true;
        }
      }
    }
  }

  /// Algorithm 2 of Malkov & Yashunin: beam search within a layer.
  /// Returns up to ef (distance, id) pairs, unordered.
  [[nodiscard]] std::vector<Scored> search_layer(std::span<const T> query,
                                                 const std::vector<Scored>& entry,
                                                 std::size_t ef, int layer,
                                                 std::uint64_t& evals) const {
    std::priority_queue<Scored, std::vector<Scored>, std::greater<>> candidates;
    std::priority_queue<Scored> best;  // max-heap: worst of the ef best on top
    std::vector<bool> visited(nodes_.size(), false);
    for (const auto& e : entry) {
      if (visited[e.second]) continue;
      visited[e.second] = true;
      candidates.push(e);
      best.push(e);
      if (best.size() > ef) best.pop();
    }
    while (!candidates.empty()) {
      const auto [d, u] = candidates.top();
      candidates.pop();
      if (best.size() >= ef && d > best.top().first) break;
      for (const core::VertexId w :
           nodes_[u].links[static_cast<std::size_t>(layer)]) {
        if (visited[w]) continue;
        visited[w] = true;
        const core::Dist dw = eval_q(query, w, evals);
        if (best.size() < ef || dw < best.top().first) {
          candidates.emplace(dw, w);
          best.emplace(dw, w);
          if (best.size() > ef) best.pop();
        }
      }
    }
    std::vector<Scored> out;
    out.reserve(best.size());
    while (!best.empty()) {
      out.push_back(best.top());
      best.pop();
    }
    return out;
  }

  /// Algorithm 4 (heuristic selection): scan candidates closest-first and
  /// keep one only if it is closer to the query point than to every
  /// already-kept neighbor.
  [[nodiscard]] std::vector<Scored> select_neighbors(std::vector<Scored> candidates,
                                                     std::size_t m,
                                                     std::uint64_t& evals) const {
    std::sort(candidates.begin(), candidates.end());
    std::vector<Scored> selected;
    selected.reserve(m);
    for (const auto& [d, u] : candidates) {
      if (selected.size() >= m) break;
      bool keep = true;
      for (const auto& [sd, s] : selected) {
        if (eval(u, s, evals) < d) {
          keep = false;
          break;
        }
      }
      if (keep) selected.emplace_back(d, u);
    }
    return selected;
  }

  /// Adds v to u's adjacency on `layer`, shrinking with the heuristic if
  /// the list overflows Mmax.
  void link_back(core::VertexId u, core::VertexId v, core::Dist d, int layer,
                 std::uint64_t& evals) {
    auto& links = nodes_[u].links[static_cast<std::size_t>(layer)];
    links.push_back(v);
    const std::size_t cap = max_links(layer);
    if (links.size() <= cap) return;
    std::vector<Scored> scored;
    scored.reserve(links.size());
    for (const core::VertexId w : links) {
      scored.emplace_back(w == v ? d : eval(u, w, evals), w);
    }
    auto selected = select_neighbors(std::move(scored), cap, evals);
    links.clear();
    for (const auto& [sd, w] : selected) links.push_back(w);
  }

  const core::FeatureStore<T>* points_;
  DistanceFn distance_;
  HnswParams params_;
  double level_mult_;
  util::Xoshiro256 rng_;

  std::vector<Node> nodes_;
  core::VertexId entry_point_ = core::kInvalidVertex;
  int max_level_ = -1;
  HnswStats stats_;
};

}  // namespace dnnd::baselines

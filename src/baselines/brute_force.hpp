// Exact k-NN by exhaustive comparison.
//
// The §5.2 ground truth: "The brute-force approach performs similarity
// comparisons between all pairs in the datasets." O(N²) distance
// evaluations, halved by symmetry. Also provides exact query answers for
// generating synthetic query ground truth (the Big-ANN datasets ship
// theirs; ours are computed).
//
// Store-generic: FeatureStore (CSR) and DenseBlockStore (padded SIMD
// layout) both qualify. With a batch-capable distance functor the row
// loops go through the one-query-vs-many kernels in fixed-size chunks;
// update order is identical to the pairwise loops, so the graph is the
// same either way.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/distance_kernels.hpp"
#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/neighbor_list.hpp"
#include "core/types.hpp"

namespace dnnd::baselines {

namespace detail {

/// Evaluates `query` against rows [begin, end) of `points` and calls
/// sink(row_index, distance) in row order, batching when the functor
/// supports it.
template <typename Store, typename DistanceFn, typename Sink>
void eval_rows(const Store& points, std::span<const typename Store::value_type> query,
               DistanceFn& distance, std::size_t begin, std::size_t end,
               Sink&& sink) {
  using T = typename Store::value_type;
  if constexpr (core::BatchDistance<DistanceFn, T>) {
    constexpr std::size_t kChunk = 512;
    std::vector<const T*> rows;
    std::vector<core::Dist> dists;
    for (std::size_t base = begin; base < end; base += kChunk) {
      const std::size_t count = std::min(kChunk, end - base);
      rows.clear();
      for (std::size_t j = 0; j < count; ++j) {
        rows.push_back(points.row(base + j).data());
      }
      dists.resize(count);
      distance.batch(query.data(), rows.data(), count, query.size(),
                     dists.data());
      for (std::size_t j = 0; j < count; ++j) sink(base + j, dists[j]);
    }
  } else {
    for (std::size_t j = begin; j < end; ++j) {
      sink(j, distance(query, std::span<const T>(points.row(j))));
    }
  }
}

}  // namespace detail

/// Exact K-NNG over all pairs (θ symmetric: each pair evaluated once).
/// Vertices are the store's *ids* (which need not be dense — e.g. a
/// survivor set after deletions); the graph spans [0, max id].
template <typename Store, typename DistanceFn>
core::KnnGraph brute_force_knn_graph(const Store& points, DistanceFn distance,
                                     std::size_t k) {
  const std::size_t n = points.size();
  std::vector<core::NeighborList> lists(n, core::NeighborList(k));
  core::VertexId max_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_id = std::max(max_id, points.id_at(i));
    detail::eval_rows(points, points.row(i), distance, i + 1, n,
                      [&](std::size_t j, core::Dist d) {
                        lists[i].update(points.id_at(j), d, false);
                        lists[j].update(points.id_at(i), d, false);
                      });
  }
  core::KnnGraph graph(n == 0 ? 0 : max_id + 1);
  for (std::size_t i = 0; i < n; ++i) {
    graph.set_neighbors(points.id_at(i), lists[i].sorted());
  }
  return graph;
}

/// Exact top-k ids for one query, ascending by distance.
template <typename Store, typename DistanceFn>
std::vector<core::VertexId> brute_force_query(
    const Store& points, std::span<const typename Store::value_type> query,
    DistanceFn distance, std::size_t k) {
  core::NeighborList best(k);
  detail::eval_rows(points, query, distance, 0, points.size(),
                    [&](std::size_t i, core::Dist d) {
                      best.update(points.id_at(i), d, false);
                    });
  std::vector<core::VertexId> ids;
  ids.reserve(best.size());
  for (const auto& nb : best.sorted()) ids.push_back(nb.id);
  return ids;
}

/// Exact ground truth for a query batch.
template <typename Store, typename QueryStore, typename DistanceFn>
std::vector<std::vector<core::VertexId>> brute_force_query_batch(
    const Store& points, const QueryStore& queries, DistanceFn distance,
    std::size_t k) {
  std::vector<std::vector<core::VertexId>> out;
  out.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out.push_back(brute_force_query(points, queries.row(i), distance, k));
  }
  return out;
}

}  // namespace dnnd::baselines

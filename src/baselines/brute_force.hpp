// Exact k-NN by exhaustive comparison.
//
// The §5.2 ground truth: "The brute-force approach performs similarity
// comparisons between all pairs in the datasets." O(N²) distance
// evaluations, halved by symmetry. Also provides exact query answers for
// generating synthetic query ground truth (the Big-ANN datasets ship
// theirs; ours are computed).
#pragma once

#include <span>
#include <vector>

#include "core/feature_store.hpp"
#include "core/knn_graph.hpp"
#include "core/neighbor_list.hpp"
#include "core/types.hpp"

namespace dnnd::baselines {

/// Exact K-NNG over all pairs (θ symmetric: each pair evaluated once).
/// Vertices are the store's *ids* (which need not be dense — e.g. a
/// survivor set after deletions); the graph spans [0, max id].
template <typename T, typename DistanceFn>
core::KnnGraph brute_force_knn_graph(const core::FeatureStore<T>& points,
                                     DistanceFn distance, std::size_t k) {
  const std::size_t n = points.size();
  std::vector<core::NeighborList> lists(n, core::NeighborList(k));
  core::VertexId max_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_id = std::max(max_id, points.id_at(i));
    for (std::size_t j = i + 1; j < n; ++j) {
      const core::Dist d = distance(points.row(i), points.row(j));
      lists[i].update(points.id_at(j), d, false);
      lists[j].update(points.id_at(i), d, false);
    }
  }
  core::KnnGraph graph(n == 0 ? 0 : max_id + 1);
  for (std::size_t i = 0; i < n; ++i) {
    graph.set_neighbors(points.id_at(i), lists[i].sorted());
  }
  return graph;
}

/// Exact top-k ids for one query, ascending by distance.
template <typename T, typename DistanceFn>
std::vector<core::VertexId> brute_force_query(
    const core::FeatureStore<T>& points, std::span<const T> query,
    DistanceFn distance, std::size_t k) {
  core::NeighborList best(k);
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    best.update(points.id_at(i), distance(query, points.row(i)), false);
  }
  std::vector<core::VertexId> ids;
  ids.reserve(best.size());
  for (const auto& nb : best.sorted()) ids.push_back(nb.id);
  return ids;
}

/// Exact ground truth for a query batch.
template <typename T, typename DistanceFn>
std::vector<std::vector<core::VertexId>> brute_force_query_batch(
    const core::FeatureStore<T>& points, const core::FeatureStore<T>& queries,
    DistanceFn distance, std::size_t k) {
  std::vector<std::vector<core::VertexId>> out;
  out.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out.push_back(brute_force_query(points, queries.row(i), distance, k));
  }
  return out;
}

}  // namespace dnnd::baselines
